module colocmodel

go 1.22
