package colocmodel_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"colocmodel"
)

// The facade tests exercise the public API end to end on a reduced
// campaign: collect → train → predict → schedule → energy.

var (
	apiOnce  sync.Once
	apiDS    *colocmodel.Dataset
	apiModel *colocmodel.Model
	apiErr   error
)

func apiFixtures(t testing.TB) (*colocmodel.Dataset, *colocmodel.Model) {
	t.Helper()
	apiOnce.Do(func() {
		spec := colocmodel.XeonE5649()
		plan := colocmodel.DefaultPlan(spec, 99)
		// Reduce the campaign for test speed: P0 and P3 only.
		plan.PStates = []int{0, 3}
		apiDS, apiErr = colocmodel.CollectDataset(plan)
		if apiErr != nil {
			return
		}
		setF, err := colocmodel.FeatureSetByName("F")
		if err != nil {
			apiErr = err
			return
		}
		apiModel, apiErr = colocmodel.TrainModel(colocmodel.ModelSpec{
			Technique:  colocmodel.NeuralNet,
			FeatureSet: setF,
			Seed:       99,
		}, apiDS, apiDS.Records)
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiDS, apiModel
}

func TestMachinesAndApps(t *testing.T) {
	if len(colocmodel.Machines()) != 2 {
		t.Fatal("want two machines")
	}
	if len(colocmodel.Apps()) != 11 {
		t.Fatal("want eleven applications")
	}
	if len(colocmodel.TrainingCoApps()) != 4 {
		t.Fatal("want four training co-apps")
	}
	a, err := colocmodel.AppByName("cg")
	if err != nil || a.Class != colocmodel.ClassI {
		t.Fatalf("cg lookup: %+v, %v", a, err)
	}
	if _, err := colocmodel.AppByName("ghost"); err == nil {
		t.Fatal("unknown app accepted")
	}
	if len(colocmodel.FeatureSets()) != 6 {
		t.Fatal("want six feature sets")
	}
	if len(colocmodel.AllModelSpecs(1)) != 12 {
		t.Fatal("want twelve model specs")
	}
}

func TestPublicCollectTrainPredict(t *testing.T) {
	ds, model := apiFixtures(t)
	if ds.Machine != "Xeon E5649" {
		t.Fatalf("machine = %q", ds.Machine)
	}
	slow, err := model.PredictedSlowdown(colocmodel.Scenario{
		Target: "canneal",
		CoApps: []string{"cg", "cg", "cg"},
		PState: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow < 1.02 || slow > 2.5 {
		t.Fatalf("predicted slowdown %v implausible", slow)
	}
}

func TestPublicEvaluate(t *testing.T) {
	ds, _ := apiFixtures(t)
	setA, err := colocmodel.FeatureSetByName("A")
	if err != nil {
		t.Fatal(err)
	}
	res, err := colocmodel.EvaluateModel(colocmodel.ModelSpec{
		Technique:  colocmodel.Linear,
		FeatureSet: setA,
	}, ds, colocmodel.EvalConfig{Partitions: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TestMPE <= 0 || res.TestMPE > 30 {
		t.Fatalf("test MPE = %v", res.TestMPE)
	}
}

func TestPublicScheduling(t *testing.T) {
	_, model := apiFixtures(t)
	spec := colocmodel.XeonE5649()
	jobs := []string{"cg", "cg", "ep", "ep", "canneal", "canneal", "canneal"}
	obl := colocmodel.ScheduleOblivious(spec, jobs)
	if obl.JobCount() != len(jobs) {
		t.Fatal("oblivious lost jobs")
	}
	aware, err := colocmodel.ScheduleAware(model, spec, jobs, colocmodel.AwareConfig{
		MaxSlowdown: 1.2, PState: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := colocmodel.MeasureAssignment(spec, aware, 0, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Outcomes) != len(jobs) {
		t.Fatalf("measured %d outcomes", len(ev.Outcomes))
	}
}

func TestPublicEnergy(t *testing.T) {
	_, model := apiFixtures(t)
	est, err := colocmodel.NewEnergyEstimator(colocmodel.XeonE5649())
	if err != nil {
		t.Fatal(err)
	}
	e, err := colocmodel.PredictTargetEnergy(model, est, colocmodel.Scenario{
		Target: "canneal", CoApps: []string{"cg"}, PState: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.TargetEnergyJ <= 0 {
		t.Fatalf("energy = %v", e.TargetEnergyJ)
	}
	sweep, err := colocmodel.SweepEnergyPStates(model, est, colocmodel.Scenario{
		Target: "canneal", CoApps: []string{"cg"},
	})
	if err != nil || len(sweep) != 6 {
		t.Fatalf("sweep: %d estimates, %v", len(sweep), err)
	}
}

func TestPublicSimulatorAccess(t *testing.T) {
	proc, err := colocmodel.NewProcessor(colocmodel.XeonE52697v2())
	if err != nil {
		t.Fatal(err)
	}
	canneal, err := colocmodel.AppByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	cg, err := colocmodel.AppByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	run, err := proc.RunColocation(canneal, []colocmodel.App{cg, cg}, 0, colocmodel.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if run.TargetSeconds <= 0 {
		t.Fatal("no execution time")
	}
}

func TestPublicBatchSimulation(t *testing.T) {
	_, model := apiFixtures(t)
	spec := colocmodel.XeonE5649()
	jobs := []string{"cg", "cg", "ep", "canneal", "canneal", "ft", "sp"}
	packed, err := colocmodel.SimulateBatch(spec, jobs, colocmodel.BatchConfig{
		Machines: 1, Policy: colocmodel.PackFirst, MaxSlowdown: 1.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := colocmodel.SimulateBatch(spec, jobs, colocmodel.BatchConfig{
		Machines: 2, Policy: colocmodel.AwareSpread, Model: model, MaxSlowdown: 1.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(packed.Jobs) != len(jobs) || len(aware.Jobs) != len(jobs) {
		t.Fatal("jobs lost")
	}
	if aware.MeanSlowdown > packed.MeanSlowdown {
		t.Fatalf("aware-spread on 2 machines (%.3f) worse than packed on 1 (%.3f)",
			aware.MeanSlowdown, packed.MeanSlowdown)
	}
}

func TestPublicModelPersistence(t *testing.T) {
	_, model := apiFixtures(t)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := colocmodel.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sc := colocmodel.Scenario{Target: "canneal", CoApps: []string{"cg"}, PState: 0}
	want, err := model.Predict(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(sc)
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("loaded model predicts %v, original %v", got, want)
	}
}

func TestPublicServingTier(t *testing.T) {
	_, model := apiFixtures(t)
	reg := colocmodel.NewModelRegistry()
	if err := reg.Add("nn-f", "", model); err != nil {
		t.Fatal(err)
	}
	srv := colocmodel.NewPredictionServer(reg, colocmodel.PredictionServerConfig{})
	h := srv.Handler()

	sc := colocmodel.Scenario{Target: "canneal", CoApps: []string{"cg", "cg"}, PState: 0}
	want, err := model.PredictedSlowdown(sc)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"target":"canneal","co_apps":["cg","cg"],"pstate":0}`
	req := httptest.NewRequest("POST", "/v1/predict", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Slowdown float64 `json:"predicted_slowdown"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Slowdown != want {
		t.Fatalf("served slowdown %v, model says %v", resp.Slowdown, want)
	}
	if infos := reg.List(); len(infos) != 1 || infos[0].Spec != "neural-net-F" {
		t.Fatalf("registry listing: %+v", infos)
	}
}

func TestPublicPlacementOptimizer(t *testing.T) {
	_, model := apiFixtures(t)
	spec := colocmodel.XeonE5649()
	prob := colocmodel.PlacementProblem{
		Model: model,
		Machines: []colocmodel.PlacementMachine{
			{Spec: spec}, {Spec: spec}, {Spec: spec},
		},
		Apps:      []string{"cg", "canneal", "ep", "cg", "canneal", "ep", "cg", "ep"},
		Objective: colocmodel.MinDegradation,
		QoSBound:  2.5,
		Seed:      11,
		Beam:      8,
	}
	var improved int
	res, err := colocmodel.OptimizePlacement(context.Background(), prob, func(*colocmodel.PlacementPlan) {
		improved++
	})
	if err != nil {
		t.Fatal(err)
	}
	if improved == 0 {
		t.Fatal("onImprove never fired (the greedy plan alone should)")
	}
	base, err := colocmodel.PackFirstPlacement(context.Background(), prob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Objective > base.Objective {
		t.Fatalf("optimized objective %.4f worse than pack-first %.4f", res.Plan.Objective, base.Objective)
	}
	if len(res.Plan.Apps) != len(prob.Apps) {
		t.Fatalf("plan accounts %d apps, want %d", len(res.Plan.Apps), len(prob.Apps))
	}
}
