package placement

import (
	"context"
	"strings"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
)

// machineClass groups machines that score identically: same processor
// spec, usable core count and allowed P-states. Scores are memoised per
// (class, resident multiset), so a 64-machine homogeneous fleet shares
// one score table.
type machineClass struct {
	machine Machine
	id      string
}

func classKey(m Machine) string {
	var b strings.Builder
	b.WriteString(m.Spec.Name)
	b.WriteByte('/')
	for i := 0; i < m.Cores; i++ {
		b.WriteByte('c')
	}
	b.WriteByte('/')
	for _, ps := range m.PStates {
		b.WriteByte('0' + byte(ps%10))
		b.WriteByte(',')
	}
	return b.String()
}

// appScore is one resident's predicted outcome on a scored machine.
type appScore struct {
	predictedSeconds float64
	baselineSeconds  float64 // at the scored P-state
	slowdown         float64
	degradation      float64
}

// machineScore is one machine membership's best account over the
// machine's allowed P-states.
type machineScore struct {
	pstate      int
	perApp      []appScore // aligned with the sorted resident names
	violations  int
	degradation float64
	slowSum     float64
	energyJ     float64
	objective   float64
	worst       float64 // worst interference slowdown (GreedyPack's criterion)
}

var emptyScore = &machineScore{}

// scoreReq asks for one (class, resident multiset) score. pinPState ≥ 0
// fixes the operating point (the pack-first baseline and the /v1/schedule
// compatibility path); -1 co-optimises over the class's allowed P-states.
type scoreReq struct {
	class     int
	residents []string // sorted
	pinPState int
}

// engine scores machine memberships through batched model calls, with a
// memo so repeated candidates (local search revisits neighbourhoods
// constantly) cost nothing.
type engine struct {
	model     *core.Model
	obj       Objective
	qos       float64
	classes   []machineClass
	classOf   []int // machine index → class index
	memo      map[string]*machineScore
	scenarios int
}

func newEngine(model *core.Model, machines []Machine, obj Objective, qos float64) *engine {
	e := &engine{
		model:   model,
		obj:     obj,
		qos:     qos,
		classOf: make([]int, len(machines)),
		memo:    make(map[string]*machineScore),
	}
	byKey := make(map[string]int)
	for i, m := range machines {
		k := classKey(m)
		ci, ok := byKey[k]
		if !ok {
			ci = len(e.classes)
			byKey[k] = ci
			e.classes = append(e.classes, machineClass{machine: m, id: k})
		}
		e.classOf[i] = ci
	}
	return e
}

func (e *engine) memoKey(r scoreReq) string {
	var b strings.Builder
	b.WriteString(e.classes[r.class].id)
	if r.pinPState >= 0 {
		b.WriteByte('@')
		b.WriteByte('0' + byte(r.pinPState%10))
		b.WriteByte('0' + byte(r.pinPState/10%10))
	}
	b.WriteByte('|')
	for _, name := range r.residents {
		b.WriteString(name)
		b.WriteByte(',')
	}
	return b.String()
}

// pstatesFor lists the operating points a request may use.
func (e *engine) pstatesFor(r scoreReq) []int {
	if r.pinPState >= 0 {
		return []int{r.pinPState}
	}
	return e.classes[r.class].machine.PStates
}

// scoreAll resolves every request, predicting all memo misses in one
// batched model call. Results are returned in request order; requests
// may repeat (repeats share one prediction).
func (e *engine) scoreAll(ctx context.Context, reqs []scoreReq) ([]*machineScore, error) {
	out := make([]*machineScore, len(reqs))
	type pending struct {
		req  scoreReq
		key  string
		outs []int // indices in out
	}
	var misses []pending
	missAt := make(map[string]int)
	for i, r := range reqs {
		if len(r.residents) == 0 {
			out[i] = emptyScore
			continue
		}
		key := e.memoKey(r)
		if sc, ok := e.memo[key]; ok {
			out[i] = sc
			continue
		}
		if at, ok := missAt[key]; ok {
			misses[at].outs = append(misses[at].outs, i)
			continue
		}
		missAt[key] = len(misses)
		misses = append(misses, pending{req: r, key: key, outs: []int{i}})
	}
	if len(misses) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Assemble the prediction batch: for every missing membership, one
	// scenario per resident per candidate P-state. Single residents need
	// no prediction (their time is the baseline by definition, matching
	// the scheduling tier's convention).
	var scs []features.Scenario
	for _, p := range misses {
		res := p.req.residents
		if len(res) < 2 {
			continue
		}
		for _, ps := range e.pstatesFor(p.req) {
			for i, target := range res {
				co := make([]string, 0, len(res)-1)
				co = append(co, res[:i]...)
				co = append(co, res[i+1:]...)
				scs = append(scs, features.Scenario{Target: target, CoApps: co, PState: ps})
			}
		}
	}
	var preds []float64
	if len(scs) > 0 {
		var err error
		preds, err = e.model.PredictScenarios(scs)
		if err != nil {
			return nil, err
		}
		e.scenarios += len(scs)
	}

	// Walk the batch back in the exact assembly order and pick each
	// membership's best P-state.
	cursor := 0
	for _, p := range misses {
		res := p.req.residents
		var best *machineScore
		for _, ps := range e.pstatesFor(p.req) {
			sc, err := e.scoreState(p.req.class, res, ps, preds, &cursor)
			if err != nil {
				return nil, err
			}
			if best == nil || sc.betterState(best) {
				best = sc
			}
		}
		e.memo[p.key] = best
		for _, i := range p.outs {
			out[i] = best
		}
	}
	return out, nil
}

// betterState orders candidate machine states: fewer violations, then
// lower objective, then lower (faster) P-state index for determinism.
func (s *machineScore) betterState(than *machineScore) bool {
	if s.violations != than.violations {
		return s.violations < than.violations
	}
	if s.objective != than.objective {
		return s.objective < than.objective
	}
	return s.pstate < than.pstate
}

// scoreState builds one (membership, P-state) account, consuming the
// residents' predictions from the shared batch via cursor (untouched for
// single residents, whose predicted time is the baseline).
func (e *engine) scoreState(class int, residents []string, ps int, preds []float64, cursor *int) (*machineScore, error) {
	m := e.classes[class].machine
	sc := &machineScore{pstate: ps, perApp: make([]appScore, len(residents))}
	st, err := m.Spec.PStates.State(ps)
	if err != nil {
		return nil, err
	}
	corePower := st.DynamicPowerW(m.Spec.CoreCEffW)
	sharePower := corePower + m.Spec.UncorePowerW/float64(len(residents))
	for i, target := range residents {
		base, err := e.model.BaselineSeconds(target, ps)
		if err != nil {
			return nil, err
		}
		base0, err := e.model.BaselineSeconds(target, 0)
		if err != nil {
			return nil, err
		}
		pred := base
		if len(residents) > 1 {
			pred = preds[*cursor]
			*cursor++
		}
		a := appScore{
			predictedSeconds: pred,
			baselineSeconds:  base,
			slowdown:         pred / base,
			degradation:      pred / base0,
		}
		sc.perApp[i] = a
		sc.slowSum += a.slowdown
		sc.degradation += a.degradation
		sc.energyJ += sharePower * pred
		if e.qos > 0 && a.slowdown > e.qos {
			sc.violations++
		}
		if a.slowdown > sc.worst {
			sc.worst = a.slowdown
		}
	}
	if e.obj == MinEnergy {
		sc.objective = sc.energyJ
	} else {
		sc.objective = sc.degradation
	}
	return sc, nil
}
