package placement

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/sched"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

var (
	modelOnce sync.Once
	modelVal  *core.Model
	modelErr  error
)

// trainedModel trains one neural F model with two P-states, shared by
// every test in the package.
func trainedModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		sp, _ := workload.ByName("sp")
		ep, _ := workload.ByName("ep")
		canneal, _ := workload.ByName("canneal")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, canneal, ep},
			CoApps:     []workload.App{cg, sp, ep},
			CoCounts:   []int{1, 2, 3, 5},
			PStates:    []int{0, 1},
			NoiseSigma: 0.005,
			Seed:       3,
		}
		ds, err := harness.Collect(plan)
		if err != nil {
			modelErr = err
			return
		}
		set, _ := features.SetByName("F")
		modelVal, modelErr = core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: set, Seed: 4}, ds, ds.Records)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelVal
}

// benchProblem builds the seeded benchmark fleet: machines homogeneous
// Xeon E5649 nodes, 4 apps per machine drawn round-robin from the model's
// target set.
func benchProblem(t testing.TB, machines int) Problem {
	t.Helper()
	model := trainedModel(t)
	fleet := make([]Machine, machines)
	for i := range fleet {
		fleet[i] = Machine{Spec: simproc.XeonE5649()}
	}
	names := []string{"cg", "canneal", "ep"}
	apps := make([]string, 4*machines)
	for i := range apps {
		apps[i] = names[i%len(names)]
	}
	return Problem{
		Model:    model,
		Machines: fleet,
		Apps:     apps,
		QoSBound: 2.5,
		Seed:     11,
		Beam:     12,
	}
}

// TestOptimizerUsesCompiledPath pins the optimizer's transparent pickup
// of the inference fast path: the shared trained model carries a
// compiled closure, and the batched PredictScenarios call the decision
// engine issues returns bit-for-bit the interpreted reference — so every
// plan scored since the fast path landed is the plan the interpreted
// engine would have scored.
func TestOptimizerUsesCompiledPath(t *testing.T) {
	m := trainedModel(t)
	if !m.IsCompiled() {
		t.Fatal("trained placement model is not compiled")
	}
	var scs []features.Scenario
	for _, target := range m.Apps() {
		for p := 0; p < m.PStates(); p++ {
			scs = append(scs, features.Scenario{Target: target, PState: p},
				features.Scenario{Target: target, CoApps: []string{"cg", "ep", "cg"}, PState: p})
		}
	}
	want, err := m.PredictScenariosInterpreted(scs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.PredictScenarios(scs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compiled batch diverges from interpreted:\n got %v\nwant %v", got, want)
	}
}

func TestOptimizeBeatsPackFirst(t *testing.T) {
	// The acceptance fleet: 16 machines, 64 apps, seeded.
	prob := benchProblem(t, 16)
	ctx := context.Background()
	base, err := PackFirst(ctx, prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(ctx, prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.TotalDegradation >= base.TotalDegradation {
		t.Fatalf("optimized degradation %.4f not strictly better than pack-first %.4f",
			res.Plan.TotalDegradation, base.TotalDegradation)
	}
	if !res.Plan.Better(base) {
		t.Fatalf("optimized plan (viol=%d obj=%.4f) does not beat pack-first (viol=%d obj=%.4f)",
			res.Plan.QoSViolations, res.Plan.Objective, base.QoSViolations, base.Objective)
	}
	if res.Stats.Scenarios == 0 {
		t.Fatal("search reported zero predicted scenarios")
	}
	if got := len(res.Plan.Apps); got != len(prob.Apps) {
		t.Fatalf("plan covers %d apps, want %d", got, len(prob.Apps))
	}
}

func TestOptimizeDeterministicSoak(t *testing.T) {
	// Same seed + same fleet/apps ⇒ byte-identical plan JSON, three runs.
	prob := benchProblem(t, 8)
	var first []byte
	for run := 0; run < 3; run++ {
		res, err := Optimize(context.Background(), prob, nil)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = js
			if res.Stats.Improvements == 0 {
				t.Fatal("local search found no improving move on the soak fleet")
			}
			continue
		}
		if string(js) != string(first) {
			t.Fatalf("run %d diverged:\n%s\nwant:\n%s", run, js, first)
		}
	}
}

func TestOptimizeIncrementalPlansMonotone(t *testing.T) {
	prob := benchProblem(t, 8)
	var plans []*Plan
	res, err := Optimize(context.Background(), prob, func(p *Plan) {
		plans = append(plans, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The greedy plan plus at least two improvements before the final.
	if len(plans) < 3 {
		t.Fatalf("got %d incremental plans, want >= 3", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if !plans[i].Better(plans[i-1]) {
			t.Fatalf("plan %d (viol=%d obj=%.6f) does not improve on plan %d (viol=%d obj=%.6f)",
				i, plans[i].QoSViolations, plans[i].Objective,
				i-1, plans[i-1].QoSViolations, plans[i-1].Objective)
		}
	}
	if last := plans[len(plans)-1]; !reflect.DeepEqual(last, res.Plan) {
		t.Fatal("final incremental plan is not the returned plan")
	}
}

func TestOptimizeEnergyObjective(t *testing.T) {
	prob := benchProblem(t, 4)
	prob.Objective = MinEnergy
	res, err := Optimize(context.Background(), prob, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Objective != res.Plan.TotalEnergyJ {
		t.Fatalf("energy objective %.4f != total energy %.4f", res.Plan.Objective, res.Plan.TotalEnergyJ)
	}
	if res.Plan.TotalEnergyJ <= 0 {
		t.Fatalf("non-positive total energy %v", res.Plan.TotalEnergyJ)
	}
	// With the energy objective and slack QoS, slower P-states are in
	// play: every chosen operating point must still be an allowed one.
	for m, ps := range res.Plan.PStates {
		if ps < 0 || ps >= trainedModel(t).PStates() {
			t.Fatalf("machine %d chose out-of-range P-state %d", m, ps)
		}
	}
}

func TestOptimizeCancelledContextReturnsBestSoFar(t *testing.T) {
	prob := benchProblem(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	res, err := Optimize(ctx, prob, func(*Plan) {
		calls++
		if calls == 1 {
			cancel() // expire mid-search, after the greedy plan exists
		}
	})
	if err != nil {
		t.Fatalf("cancelled search should return best-so-far, got error %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatal("cancelled search did not report TimedOut")
	}
	if res.Plan == nil || len(res.Plan.Apps) != len(prob.Apps) {
		t.Fatal("cancelled search returned no usable plan")
	}
}

func TestProblemValidation(t *testing.T) {
	model := trainedModel(t)
	ok := Problem{
		Model:    model,
		Machines: []Machine{{Spec: simproc.XeonE5649()}},
		Apps:     []string{"cg"},
	}
	cases := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"nil model", func(p *Problem) { p.Model = nil }},
		{"no machines", func(p *Problem) { p.Machines = nil }},
		{"no apps", func(p *Problem) { p.Apps = nil }},
		{"unknown app", func(p *Problem) { p.Apps = []string{"nosuch"} }},
		{"bad qos", func(p *Problem) { p.QoSBound = 0.5 }},
		{"negative beam", func(p *Problem) { p.Beam = -1 }},
		{"zero cores", func(p *Problem) { p.Machines[0].Cores = -1 }},
		{"too many cores", func(p *Problem) { p.Machines[0].Cores = 99 }},
		{"bad pstate", func(p *Problem) { p.Machines[0].PStates = []int{7} }},
		{"dup pstate", func(p *Problem) { p.Machines[0].PStates = []int{0, 0} }},
		{"overfull", func(p *Problem) {
			p.Apps = make([]string, 7)
			for i := range p.Apps {
				p.Apps[i] = "cg"
			}
			p.Machines[0].Cores = 2
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := ok
			p.Machines = append([]Machine(nil), ok.Machines...)
			tc.mutate(&p)
			if _, err := Optimize(context.Background(), p, nil); err == nil {
				t.Fatal("want validation error, got nil")
			} else if !IsInvalid(err) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
		})
	}
	// The valid base problem must pass.
	if _, err := Optimize(context.Background(), ok, nil); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestGreedyPackMatchesSchedGreedyAware(t *testing.T) {
	// /v1/schedule routes through GreedyPack; it must reproduce
	// sched.GreedyAware's assignments exactly (predictions are
	// bit-identical between the scalar and batched paths).
	model := trainedModel(t)
	spec := simproc.XeonE5649()
	jobs := []string{"cg", "cg", "ep", "canneal", "cg", "ep", "canneal", "canneal", "cg", "ep"}
	for _, cfg := range []sched.AwareConfig{
		{MaxSlowdown: 1.3},
		{MaxSlowdown: 2.0},
		{MaxSlowdown: 1.1, MaxMachines: 2},
	} {
		want, err := sched.GreedyAware(model, spec, jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GreedyPack(context.Background(), model, spec, jobs, PackConfig{
			MaxSlowdown: cfg.MaxSlowdown,
			PState:      cfg.PState,
			MaxMachines: cfg.MaxMachines,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual([][]string(want), got) {
			t.Fatalf("cfg %+v: GreedyPack %v != sched.GreedyAware %v", cfg, got, want)
		}
	}
}

func TestGreedyPackValidation(t *testing.T) {
	model := trainedModel(t)
	spec := simproc.XeonE5649()
	if _, err := GreedyPack(context.Background(), model, spec, []string{"cg"}, PackConfig{MaxSlowdown: 1.0}); !IsInvalid(err) {
		t.Fatalf("bound 1.0: want ErrInvalid, got %v", err)
	}
	if _, err := GreedyPack(context.Background(), model, spec, []string{"nosuch"}, PackConfig{MaxSlowdown: 1.5}); !IsInvalid(err) {
		t.Fatalf("unknown app: want ErrInvalid, got %v", err)
	}
	if _, err := GreedyPack(context.Background(), model, spec, []string{"cg"}, PackConfig{MaxSlowdown: 1.5, PState: 99}); !IsInvalid(err) {
		t.Fatalf("bad pstate: want ErrInvalid, got %v", err)
	}
}

func BenchmarkPlacementSearch(b *testing.B) {
	for _, machines := range []int{4, 16, 64} {
		prob := benchProblem(b, machines)
		b.Run(map[int]string{4: "fleet4", 16: "fleet16", 64: "fleet64"}[machines], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Optimize(context.Background(), prob, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.Scenarios), "scenarios/op")
			}
		})
	}
}
