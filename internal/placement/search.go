package placement

import (
	"context"
	"fmt"
	"sort"

	"colocmodel/internal/core"
	"colocmodel/internal/simproc"
	"colocmodel/internal/xrand"
)

// state is the search's mutable placement: app → machine plus each
// machine's membership (app indices in placement order) and its current
// score.
type state struct {
	prob    *Problem
	eng     *engine
	assign  []int   // app index → machine
	members [][]int // machine → app indices, placement order
	scores  []*machineScore
}

func newState(prob *Problem, eng *engine) *state {
	st := &state{
		prob:    prob,
		eng:     eng,
		assign:  make([]int, len(prob.Apps)),
		members: make([][]int, len(prob.Machines)),
		scores:  make([]*machineScore, len(prob.Machines)),
	}
	for i := range st.assign {
		st.assign[i] = -1
	}
	for m := range st.scores {
		st.scores[m] = emptyScore
	}
	return st
}

// residentsWith returns machine m's resident names, sorted, with the
// named extras added and the app at index except removed (except < 0
// removes nothing).
func (st *state) residentsWith(m int, except int, extra ...string) []string {
	names := make([]string, 0, len(st.members[m])+len(extra))
	for _, ai := range st.members[m] {
		if ai == except {
			continue
		}
		names = append(names, st.prob.Apps[ai])
	}
	names = append(names, extra...)
	sort.Strings(names)
	return names
}

func (st *state) free(m int) bool {
	return len(st.members[m]) < st.prob.Machines[m].Cores
}

// place commits app ai to machine m with its freshly scored membership.
func (st *state) place(ai, m int, sc *machineScore) {
	st.assign[ai] = m
	st.members[m] = append(st.members[m], ai)
	st.scores[m] = sc
}

// plan snapshots the state into a reportable Plan.
func (st *state) plan() *Plan {
	p := &Plan{
		Assignments: make([][]string, len(st.members)),
		PStates:     make([]int, len(st.members)),
		Apps:        make([]AppPlacement, len(st.prob.Apps)),
	}
	for m, mem := range st.members {
		idx := append([]int(nil), mem...)
		sort.Ints(idx)
		names := make([]string, len(idx))
		for j, ai := range idx {
			names[j] = st.prob.Apps[ai]
		}
		p.Assignments[m] = names
		sc := st.scores[m]
		if len(mem) == 0 {
			p.PStates[m] = st.prob.Machines[m].PStates[0]
			continue
		}
		p.PStates[m] = sc.pstate
		p.MachinesUsed++
		sorted := st.residentsWith(m, -1)
		for _, ai := range idx {
			name := st.prob.Apps[ai]
			// Locate the app's account: identical names share identical
			// scenarios, so the first occurrence is exact.
			j := sort.SearchStrings(sorted, name)
			a := sc.perApp[j]
			p.Apps[ai] = AppPlacement{
				App: name, Machine: m, PState: sc.pstate,
				PredictedSeconds: a.predictedSeconds,
				BaselineSeconds:  a.baselineSeconds,
				Slowdown:         a.slowdown,
				Degradation:      a.degradation,
			}
		}
		p.TotalDegradation += sc.degradation
		p.TotalSlowdown += sc.slowSum
		p.TotalEnergyJ += sc.energyJ
		p.QoSViolations += sc.violations
		p.Objective += sc.objective
	}
	return p
}

// appOrder returns app indices in construction order: longest-running
// first (descending P0 baseline — the heavy jobs spread across machines
// before the fleet fills), ties by name then index for determinism.
func appOrder(prob *Problem) ([]int, error) {
	base := make([]float64, len(prob.Apps))
	for i, a := range prob.Apps {
		b, err := prob.Model.BaselineSeconds(a, 0)
		if err != nil {
			return nil, err
		}
		base[i] = b
	}
	order := make([]int, len(prob.Apps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if base[i] != base[j] {
			return base[i] > base[j]
		}
		if prob.Apps[i] != prob.Apps[j] {
			return prob.Apps[i] < prob.Apps[j]
		}
		return i < j
	})
	return order, nil
}

// construct greedily places every app: each app goes to the machine
// (with a free core) where the fleet's (violations, objective) grows
// least, all candidate machines scored in one batched model call.
func construct(ctx context.Context, st *state) error {
	order, err := appOrder(st.prob)
	if err != nil {
		return err
	}
	for _, ai := range order {
		name := st.prob.Apps[ai]
		var reqs []scoreReq
		var cands []int
		for m := range st.prob.Machines {
			if !st.free(m) {
				continue
			}
			reqs = append(reqs, scoreReq{
				class:     st.eng.classOf[m],
				residents: st.residentsWith(m, -1, name),
				pinPState: -1,
			})
			cands = append(cands, m)
		}
		if len(cands) == 0 {
			return fmt.Errorf("placement: no free core for app %d (%s)", ai, name)
		}
		scores, err := st.eng.scoreAll(ctx, reqs)
		if err != nil {
			return err
		}
		best := -1
		var bestDV int
		var bestDO float64
		for c, sc := range scores {
			m := cands[c]
			dv := sc.violations - st.scores[m].violations
			do := sc.objective - st.scores[m].objective
			if best == -1 || dv < bestDV || (dv == bestDV && do < bestDO) {
				best, bestDV, bestDO = c, dv, do
			}
		}
		st.place(ai, cands[best], scores[best])
	}
	return nil
}

// move is one local-search neighbour: relocate app a to machine to, or
// exchange apps a and b across machines.
type move struct {
	swap bool
	a, b int
	to   int
}

// sampleMoves draws up to beam distinct candidate moves from the seeded
// source. Swaps between equal app names are no-ops and skipped.
func sampleMoves(st *state, rng *xrand.Source, beam int) []move {
	nApps, nMach := len(st.prob.Apps), len(st.prob.Machines)
	seen := make(map[move]struct{}, beam)
	out := make([]move, 0, beam)
	for tries := 0; tries < beam*6 && len(out) < beam; tries++ {
		var mv move
		if nMach > 1 && rng.Bool(0.5) {
			mv = move{a: rng.Intn(nApps), to: rng.Intn(nMach)}
			if mv.to == st.assign[mv.a] || !st.free(mv.to) {
				continue
			}
		} else {
			mv = move{swap: true, a: rng.Intn(nApps), b: rng.Intn(nApps)}
			if mv.a > mv.b {
				mv.a, mv.b = mv.b, mv.a
			}
			if st.assign[mv.a] == st.assign[mv.b] ||
				st.prob.Apps[mv.a] == st.prob.Apps[mv.b] {
				continue
			}
		}
		if _, dup := seen[mv]; dup {
			continue
		}
		seen[mv] = struct{}{}
		out = append(out, mv)
	}
	return out
}

// affected returns the machines a move touches and their new
// memberships.
func (st *state) affected(mv move) (ms [2]int, res [2][]string) {
	if mv.swap {
		ma, mb := st.assign[mv.a], st.assign[mv.b]
		return [2]int{ma, mb}, [2][]string{
			st.residentsWith(ma, mv.a, st.prob.Apps[mv.b]),
			st.residentsWith(mb, mv.b, st.prob.Apps[mv.a]),
		}
	}
	from := st.assign[mv.a]
	return [2]int{from, mv.to}, [2][]string{
		st.residentsWith(from, mv.a),
		st.residentsWith(mv.to, -1, st.prob.Apps[mv.a]),
	}
}

// apply commits a move with its two freshly scored memberships.
func (st *state) apply(mv move, ms [2]int, scs [2]*machineScore) {
	remove := func(m, ai int) {
		mem := st.members[m]
		for i, v := range mem {
			if v == ai {
				st.members[m] = append(mem[:i], mem[i+1:]...)
				return
			}
		}
	}
	if mv.swap {
		remove(ms[0], mv.a)
		remove(ms[1], mv.b)
		st.members[ms[0]] = append(st.members[ms[0]], mv.b)
		st.members[ms[1]] = append(st.members[ms[1]], mv.a)
		st.assign[mv.a], st.assign[mv.b] = ms[1], ms[0]
	} else {
		remove(ms[0], mv.a)
		st.members[ms[1]] = append(st.members[ms[1]], mv.a)
		st.assign[mv.a] = ms[1]
	}
	st.scores[ms[0]], st.scores[ms[1]] = scs[0], scs[1]
}

// Optimize searches for the best placement: greedy construction, then
// seeded local search over sampled move/swap neighbourhoods, every
// candidate scored through batched model predictions. onImprove (may be
// nil) receives the constructed plan and then every strictly improving
// plan, in order — the streaming endpoint's incremental results. A
// context expiring mid-search returns the best plan found so far with
// Stats.TimedOut set; only cancellation before any plan exists is an
// error.
func Optimize(ctx context.Context, prob Problem, onImprove func(*Plan)) (*Result, error) {
	np, err := prob.normalize()
	if err != nil {
		return nil, err
	}
	eng := newEngine(np.Model, np.Machines, np.Objective, np.QoSBound)
	st := newState(&np, eng)
	if err := construct(ctx, st); err != nil {
		return nil, err
	}
	res := &Result{Plan: st.plan()}
	if onImprove != nil {
		onImprove(res.Plan)
	}
	if np.Beam == 0 {
		res.Stats.Converged = true
		res.Stats.Scenarios = eng.scenarios
		return res, nil
	}

	rng := xrand.New(np.Seed)
	dry := 0
	for res.Stats.Rounds < np.MaxRounds && dry < 2 {
		if ctx.Err() != nil {
			res.Stats.TimedOut = true
			break
		}
		res.Stats.Rounds++
		moves := sampleMoves(st, rng, np.Beam)
		if len(moves) == 0 {
			dry++
			continue
		}
		reqs := make([]scoreReq, 0, len(moves)*2)
		for _, mv := range moves {
			ms, res2 := st.affected(mv)
			for k := 0; k < 2; k++ {
				reqs = append(reqs, scoreReq{
					class:     eng.classOf[ms[k]],
					residents: res2[k],
					pinPState: -1,
				})
			}
		}
		scores, err := eng.scoreAll(ctx, reqs)
		if err != nil {
			if ctx.Err() != nil {
				res.Stats.TimedOut = true
				break
			}
			return nil, err
		}
		best := -1
		var bestDV int
		var bestDO float64
		for c, mv := range moves {
			ms, _ := st.affected(mv)
			na, nb := scores[2*c], scores[2*c+1]
			dv := na.violations + nb.violations - st.scores[ms[0]].violations - st.scores[ms[1]].violations
			do := na.objective + nb.objective - st.scores[ms[0]].objective - st.scores[ms[1]].objective
			if dv > 0 || (dv == 0 && do >= 0) {
				continue // not strictly improving
			}
			if best == -1 || dv < bestDV || (dv == bestDV && do < bestDO) {
				best, bestDV, bestDO = c, dv, do
			}
		}
		if best == -1 {
			dry++
			continue
		}
		dry = 0
		mv := moves[best]
		ms, _ := st.affected(mv)
		st.apply(mv, ms, [2]*machineScore{scores[2*best], scores[2*best+1]})
		res.Plan = st.plan()
		res.Stats.Improvements++
		if onImprove != nil {
			onImprove(res.Plan)
		}
	}
	res.Stats.Converged = dry >= 2
	res.Stats.Scenarios = eng.scenarios
	return res, nil
}

// PackFirst is the interference-oblivious baseline: apps fill the fleet
// in input order, each machine to capacity at its first allowed
// P-state. It is the consolidation default the paper's introduction
// describes, and the yardstick the optimizer must beat.
func PackFirst(ctx context.Context, prob Problem) (*Plan, error) {
	np, err := prob.normalize()
	if err != nil {
		return nil, err
	}
	eng := newEngine(np.Model, np.Machines, np.Objective, np.QoSBound)
	st := newState(&np, eng)
	m := 0
	for ai := range np.Apps {
		for !st.free(m) {
			m++
		}
		st.assign[ai] = m
		st.members[m] = append(st.members[m], ai)
	}
	reqs := make([]scoreReq, 0, len(np.Machines))
	var idx []int
	for mi := range np.Machines {
		if len(st.members[mi]) == 0 {
			continue
		}
		reqs = append(reqs, scoreReq{
			class:     eng.classOf[mi],
			residents: st.residentsWith(mi, -1),
			pinPState: np.Machines[mi].PStates[0],
		})
		idx = append(idx, mi)
	}
	scores, err := eng.scoreAll(ctx, reqs)
	if err != nil {
		return nil, err
	}
	for i, mi := range idx {
		st.scores[mi] = scores[i]
	}
	return st.plan(), nil
}

// PackConfig tunes GreedyPack, mirroring sched.AwareConfig.
type PackConfig struct {
	// MaxSlowdown is the QoS bound on predicted interference slowdown
	// (must exceed 1).
	MaxSlowdown float64
	// PState is every machine's fixed operating point.
	PState int
	// MaxMachines optionally caps the fleet; 0 = unlimited. When the
	// cap binds, jobs go to the least-bad machine even over the bound.
	MaxMachines int
}

// GreedyPack is the open-fleet greedy packer behind POST /v1/schedule:
// semantically identical to sched.GreedyAware (each job goes to the
// feasible machine with the smallest predicted worst slowdown after
// placement, opening a new machine when none is feasible), but every
// decision's candidate machines are scored in one batched model call
// through the placement engine — one scoring path for the whole
// scheduling surface. Predictions are bit-identical to the per-scenario
// path, so assignments match sched.GreedyAware exactly.
func GreedyPack(ctx context.Context, model *core.Model, spec simproc.Spec, jobs []string, cfg PackConfig) ([][]string, error) {
	if model == nil {
		return nil, invalidf("nil model")
	}
	if cfg.MaxSlowdown <= 1 {
		return nil, invalidf("QoS bound %v must exceed 1", cfg.MaxSlowdown)
	}
	if cfg.PState < 0 || cfg.PState >= model.PStates() {
		return nil, invalidf("P-state %d out of range [0,%d)", cfg.PState, model.PStates())
	}
	if err := spec.Validate(); err != nil {
		return nil, invalidf("%v", err)
	}
	for _, j := range jobs {
		if !model.HasApp(j) {
			return nil, invalidf("unknown app %q", j)
		}
	}
	eng := newEngine(model, []Machine{{
		Spec: spec, Cores: spec.Cores, PStates: []int{cfg.PState},
	}}, MinDegradation, cfg.MaxSlowdown)

	var out [][]string
	for _, job := range jobs {
		var reqs []scoreReq
		var cands []int
		for mi, resident := range out {
			if len(resident) >= spec.Cores {
				continue
			}
			names := append(append([]string{}, resident...), job)
			sort.Strings(names)
			reqs = append(reqs, scoreReq{class: 0, residents: names, pinPState: cfg.PState})
			cands = append(cands, mi)
		}
		scores, err := eng.scoreAll(ctx, reqs)
		if err != nil {
			return nil, err
		}
		best, bestWorst := -1, 0.0
		for c, sc := range scores {
			if sc.worst <= cfg.MaxSlowdown && (best == -1 || sc.worst < bestWorst) {
				best, bestWorst = c, sc.worst
			}
		}
		if best >= 0 {
			mi := cands[best]
			out[mi] = append(out[mi], job)
			continue
		}
		if cfg.MaxMachines > 0 && len(out) >= cfg.MaxMachines {
			// Fleet is capped: fall back to the least-bad machine.
			for c, sc := range scores {
				if best == -1 || sc.worst < bestWorst {
					best, bestWorst = c, sc.worst
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("placement: fleet capped at %d machines and all cores busy", cfg.MaxMachines)
			}
			out[cands[best]] = append(out[cands[best]], job)
			continue
		}
		out = append(out, []string{job})
	}
	return out, nil
}
