// Package placement is the what-if placement optimizer the paper's
// introduction motivates: given a fleet of multicore machines and a
// multiset of pending applications, it searches for the assignment (and
// per-machine P-state) that minimises the total predicted degradation —
// or, with the energy objective, the total predicted energy — using a
// trained co-location model as its only oracle.
//
// The optimizer is deliberately built as a heavy consumer of the batch
// inference tier: every candidate it considers is scored by funneling
// the implied co-location scenarios through one batched
// core.PredictScenarios call per decision round, so a single placement
// request fans out to thousands of predictions. Search is greedy
// construction followed by seeded local search (move/swap neighbourhoods
// sampled at a configurable beam width), and everything stochastic draws
// from one explicit seed so the same problem always yields the same plan
// byte for byte.
//
// P-states are co-optimised per machine: a machine's score is the best
// (fewest QoS violations, then lowest objective) over its allowed
// P-states, realising the paper's conclusion that operating points shift
// under power and temperature pressure and a scheduler should plan with
// that freedom rather than around it.
package placement

import (
	"errors"
	"fmt"
	"sort"

	"colocmodel/internal/core"
	"colocmodel/internal/simproc"
)

// ErrInvalid marks a malformed problem: every validation failure wraps
// it, so the serve tier can map client mistakes to typed 400s while
// genuine faults stay 500s.
var ErrInvalid = errors.New("invalid placement problem")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("placement: %s: %w", fmt.Sprintf(format, args...), ErrInvalid)
}

// IsInvalid reports whether err stems from a malformed problem (as
// opposed to a model or context fault).
func IsInvalid(err error) bool {
	return errors.Is(err, ErrInvalid)
}

// Objective selects what the optimizer minimises.
type Objective int

const (
	// MinDegradation minimises the sum over apps of predicted execution
	// time divided by the app's best-case (P0, solo) baseline — total
	// completion-time stretch from both interference and DVFS throttling.
	MinDegradation Objective = iota
	// MinEnergy minimises the fleet's total predicted energy: each
	// machine's uncore plus per-core dynamic power over each resident's
	// predicted execution time, with the P-state chosen per machine.
	MinEnergy
)

// String names the objective (also its wire form).
func (o Objective) String() string {
	switch o {
	case MinDegradation:
		return "slowdown"
	case MinEnergy:
		return "energy"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ObjectiveByName parses the wire form ("slowdown" or "energy"; empty
// selects MinDegradation).
func ObjectiveByName(name string) (Objective, error) {
	switch name {
	case "", "slowdown", "degradation":
		return MinDegradation, nil
	case "energy":
		return MinEnergy, nil
	}
	return 0, invalidf("unknown objective %q (want slowdown or energy)", name)
}

// Machine describes one fleet machine: its processor model, how many
// cores the optimizer may use, and which P-states it may choose.
type Machine struct {
	// Name identifies the machine in plans ("m3" when empty).
	Name string
	// Spec is the processor model (power parameters, P-state table).
	Spec simproc.Spec
	// Cores is the number of usable cores, 1..Spec.Cores. 0 selects
	// Spec.Cores.
	Cores int
	// PStates are the allowed P-state indices. Empty allows every
	// P-state known to both the machine and the model.
	PStates []int
}

// Problem is one placement instance.
type Problem struct {
	// Model scores every candidate (required).
	Model *core.Model
	// Machines is the fleet (at least one machine).
	Machines []Machine
	// Apps are the pending applications, one entry per copy.
	Apps []string
	// Objective selects what to minimise.
	Objective Objective
	// QoSBound caps each app's predicted interference slowdown
	// (predicted over baseline at the chosen P-state); 0 disables the
	// bound, otherwise it must exceed 1. Candidates violating the bound
	// are only chosen when no feasible candidate exists; violations are
	// reported on the plan.
	QoSBound float64
	// Seed drives local-search neighbourhood sampling.
	Seed uint64
	// Beam is the number of candidate moves sampled per local-search
	// round; 0 disables local search (greedy construction only).
	Beam int
	// MaxRounds caps local-search rounds. 0 selects the default (64).
	MaxRounds int
}

// normalize fills defaults and validates; it returns a deep copy so the
// search never mutates caller state.
func (p Problem) normalize() (Problem, error) {
	if p.Model == nil {
		return p, invalidf("nil model")
	}
	if len(p.Machines) == 0 {
		return p, invalidf("fleet must have at least one machine")
	}
	if len(p.Apps) == 0 {
		return p, invalidf("apps must not be empty")
	}
	if p.Objective != MinDegradation && p.Objective != MinEnergy {
		return p, invalidf("unknown objective %d", int(p.Objective))
	}
	if p.QoSBound != 0 && p.QoSBound <= 1 {
		return p, invalidf("QoS bound %v must exceed 1 (or 0 to disable)", p.QoSBound)
	}
	if p.Beam < 0 {
		return p, invalidf("negative beam %d", p.Beam)
	}
	if p.MaxRounds < 0 {
		return p, invalidf("negative round cap %d", p.MaxRounds)
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 64
	}
	apps := make([]string, len(p.Apps))
	for i, a := range p.Apps {
		if !p.Model.HasApp(a) {
			return p, invalidf("unknown app %q", a)
		}
		apps[i] = a
	}
	p.Apps = apps
	machines := make([]Machine, len(p.Machines))
	totalCores := 0
	for i, m := range p.Machines {
		if err := m.Spec.Validate(); err != nil {
			return p, invalidf("machine %d: %v", i, err)
		}
		if m.Cores == 0 {
			m.Cores = m.Spec.Cores
		}
		if m.Cores < 1 || m.Cores > m.Spec.Cores {
			return p, invalidf("machine %d: %d cores out of [1,%d]", i, m.Cores, m.Spec.Cores)
		}
		if m.Name == "" {
			m.Name = fmt.Sprintf("m%d", i)
		}
		maxPS := p.Model.PStates()
		if n := m.Spec.PStates.Len(); n < maxPS {
			maxPS = n
		}
		if len(m.PStates) == 0 {
			m.PStates = make([]int, maxPS)
			for ps := range m.PStates {
				m.PStates[ps] = ps
			}
		} else {
			ps := append([]int(nil), m.PStates...)
			sort.Ints(ps)
			for j, v := range ps {
				if v < 0 || v >= maxPS {
					return p, invalidf("machine %d: P-state %d out of range [0,%d) (conflicts with the model or machine P-state table)", i, v, maxPS)
				}
				if j > 0 && ps[j-1] == v {
					return p, invalidf("machine %d: duplicate P-state %d", i, v)
				}
			}
			m.PStates = ps
		}
		totalCores += m.Cores
		machines[i] = m
	}
	if totalCores < len(p.Apps) {
		return p, invalidf("%d apps exceed the fleet's %d cores", len(p.Apps), totalCores)
	}
	p.Machines = machines
	return p, nil
}

// AppPlacement is one app's predicted outcome under a plan.
type AppPlacement struct {
	// App is the application name; Machine is the fleet index it was
	// placed on; PState is that machine's chosen operating point.
	App     string `json:"app"`
	Machine int    `json:"machine"`
	PState  int    `json:"pstate"`
	// PredictedSeconds is the model's co-located execution-time
	// prediction at the machine's P-state; BaselineSeconds is the solo
	// baseline at the same P-state.
	PredictedSeconds float64 `json:"predicted_seconds"`
	BaselineSeconds  float64 `json:"baseline_seconds"`
	// Slowdown is the interference slowdown (predicted over baseline at
	// the same P-state); Degradation additionally charges DVFS
	// throttling (predicted over the P0 baseline).
	Slowdown    float64 `json:"slowdown"`
	Degradation float64 `json:"degradation"`
}

// Plan is one complete placement with its predicted account.
type Plan struct {
	// Assignments maps machine index to the app names placed there (in
	// input order); PStates is each machine's chosen operating point
	// (the machine's lowest-index allowed P-state when it is empty).
	Assignments [][]string `json:"assignments"`
	PStates     []int      `json:"pstates"`
	// Apps reports every app's predicted outcome, in input order.
	Apps []AppPlacement `json:"apps"`
	// TotalDegradation sums per-app degradation; TotalSlowdown sums
	// interference slowdowns; TotalEnergyJ sums predicted machine
	// energies.
	TotalDegradation float64 `json:"total_degradation"`
	TotalSlowdown    float64 `json:"total_slowdown"`
	TotalEnergyJ     float64 `json:"total_energy_j"`
	// Objective is the minimised value (TotalDegradation or
	// TotalEnergyJ, per the problem's objective).
	Objective float64 `json:"objective"`
	// QoSViolations counts apps whose interference slowdown exceeds the
	// bound (0 when no bound is set).
	QoSViolations int `json:"qos_violations"`
	// MachinesUsed counts non-empty machines.
	MachinesUsed int `json:"machines_used"`
}

// Better orders plans lexicographically: fewer QoS violations first,
// then lower objective. Strict — equal plans are not better, so local
// search terminates; it is also how the streaming endpoint's incremental
// plans are ordered.
func (pl *Plan) Better(than *Plan) bool {
	if pl.QoSViolations != than.QoSViolations {
		return pl.QoSViolations < than.QoSViolations
	}
	return pl.Objective < than.Objective
}

// SearchStats reports how the search went.
type SearchStats struct {
	// Rounds is the number of local-search rounds run; Improvements
	// counts accepted improving moves (the greedy construction is not
	// counted).
	Rounds       int `json:"rounds"`
	Improvements int `json:"improvements"`
	// Scenarios counts co-location scenarios sent through the model
	// (cache-deduplicated candidates are not re-predicted).
	Scenarios int `json:"scenarios_predicted"`
	// Converged reports that local search ran dry (two consecutive
	// rounds without an improving move) before hitting the round cap.
	Converged bool `json:"converged"`
	// TimedOut reports that the context expired mid-search; the plan is
	// the best found so far.
	TimedOut bool `json:"timed_out,omitempty"`
}

// Result is a completed optimisation.
type Result struct {
	Plan  *Plan       `json:"plan"`
	Stats SearchStats `json:"search"`
}
