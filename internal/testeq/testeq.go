// Package testeq is the compiled-vs-interpreted equivalence harness: a
// seeded random model generator plus bit-for-bit assertion helpers that
// prove a model's compiled predict program (internal/core/compile.go)
// reproduces the interpreted reference path exactly — scalar, batched,
// and PredictScenarios, across techniques, widths and P-state counts.
//
// It extends the pattern PR 5 established for batched-vs-scalar kernels
// into a reusable harness: models are generated as *artefact JSON* and
// materialised through core.LoadModel, so every generated model also
// exercises the load→compile boundary the serving tier depends on, with
// parameters drawn randomly rather than trained (equivalence does not
// care whether the weights are good, only that both paths agree on
// them). The package is imported only by tests but lives outside _test
// files so the core, serve and fuzz suites can all share one generator.
package testeq

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/xrand"
)

// GenConfig bounds the generator's model space. The zero value selects
// the full space the acceptance harness sweeps: both techniques, hidden
// widths 1–64, 1–8 P-states, 2–6 applications, optional interaction
// columns and occasional two-layer or non-tanh networks.
type GenConfig struct {
	// MaxHidden caps neural hidden-layer width (default 64).
	MaxHidden int
	// MaxPStates caps the baseline P-state count (default 8).
	MaxPStates int
	// MaxApps caps the baseline store size (default 6).
	MaxApps int
}

func (c *GenConfig) defaults() {
	if c.MaxHidden == 0 {
		c.MaxHidden = 64
	}
	if c.MaxPStates == 0 {
		c.MaxPStates = 8
	}
	if c.MaxApps == 0 {
		c.MaxApps = 6
	}
}

// Gen generates random models and scenarios from one seeded stream.
type Gen struct {
	src *xrand.Source
	cfg GenConfig
}

// New returns a generator; equal seeds generate equal sequences.
func New(seed uint64, cfg GenConfig) *Gen {
	cfg.defaults()
	return &Gen{src: xrand.New(seed), cfg: cfg}
}

// Artifact emits one random model artefact as the JSON core.LoadModel
// reads. The artefact is always loadable: every invariant the loader
// checks (finite positive baselines, coefficient arity, parameter count)
// holds by construction.
func (g *Gen) Artifact() []byte {
	r := g.src
	pstates := 1 + r.Intn(g.cfg.MaxPStates)
	apps := 2 + r.Intn(g.cfg.MaxApps-1)

	baselines := make(map[string]any, apps)
	for a := 0; a < apps; a++ {
		secs := make([]float64, pstates)
		for p := range secs {
			secs[p] = math.Exp(r.Normal(4, 0.7)) // tens to hundreds of seconds
		}
		baselines[fmt.Sprintf("app%d", a)] = map[string]any{
			"App":             fmt.Sprintf("app%d", a),
			"SecondsByPState": secs,
			"MemIntensity":    math.Abs(r.Normal(0, 1e-3)),
			"CMPerCA":         r.Float64(),
			"CAPerIns":        math.Abs(r.Normal(0, 0.05)),
		}
	}
	freqs := make([]float64, pstates)
	for p := range freqs {
		freqs[p] = 1.6 + 0.2*float64(p)
	}

	// Feature columns: a random non-empty subset of the eight Table I
	// features in random order (occasionally with a duplicate — the
	// pipeline must tolerate it), plus up to three interaction products
	// whose operands may fall outside the base set.
	nf := 1 + r.Intn(8)
	perm := r.Perm(8)
	feats := append([]int(nil), perm[:nf]...)
	if r.Float64() < 0.15 {
		feats = append(feats, feats[r.Intn(len(feats))])
	}
	var pairs [][2]int
	for i, k := 0, r.Intn(4); i < k; i++ {
		pairs = append(pairs, [2]int{r.Intn(8), r.Intn(8)})
	}
	width := len(feats) + len(pairs)

	dto := map[string]any{
		"format":       1,
		"feature_set":  fmt.Sprintf("rand%d", nf),
		"features":     feats,
		"seed":         r.Uint64(),
		"machine":      "testeq-machine",
		"pstate_freqs": freqs,
		"llc_bytes":    12e6,
		"baselines":    baselines,
	}
	if len(pairs) > 0 {
		dto["interactions"] = pairs
	}

	if r.Intn(2) == 0 {
		// Linear: Eq. 1 folded to width coefficients + a constant.
		dto["technique"] = 0
		coef := make([]float64, width)
		for j := range coef {
			coef[j] = r.Normal(0, 1)
		}
		dto["linear"] = map[string]any{"Coefficients": coef, "Constant": r.Normal(0, 10)}
	} else {
		// Neural: one hidden layer of width 1–MaxHidden (two layers or a
		// non-tanh activation occasionally, to cover the generic compiled
		// path as well as the fused one).
		dto["technique"] = 1
		hidden := []int{1 + r.Intn(g.cfg.MaxHidden)}
		if r.Float64() < 0.2 {
			hidden = append(hidden, 1+r.Intn(16))
		}
		activation := 0
		if r.Float64() < 0.2 {
			activation = 1 + r.Intn(2)
		}
		sizes := append([]int{width}, hidden...)
		sizes = append(sizes, 1)
		nparams := 0
		for l := 0; l+1 < len(sizes); l++ {
			nparams += sizes[l]*sizes[l+1] + sizes[l+1]
		}
		params := make([]float64, nparams)
		for i := range params {
			params[i] = r.Normal(0, 0.8)
		}
		mean := make([]float64, width)
		std := make([]float64, width)
		for j := range mean {
			mean[j] = r.Normal(0, 5)
			std[j] = math.Exp(r.Normal(0, 1))
		}
		dto["net_config"] = map[string]any{
			"Inputs": width, "Hidden": hidden, "Activation": activation, "Seed": 1,
		}
		dto["net_params"] = params
		dto["x_scaler"] = map[string]any{"Mean": mean, "Std": std}
		dto["y_scaler"] = map[string]any{"Mean": r.Normal(100, 30), "Std": math.Exp(r.Normal(1, 1))}
	}
	raw, err := json.Marshal(dto)
	if err != nil {
		panic(fmt.Sprintf("testeq: marshalling generated artefact: %v", err))
	}
	return raw
}

// Model materialises one random model through core.LoadModel, so every
// generated model crosses the same load→compile boundary deployed
// artefacts do.
func (g *Gen) Model() (*core.Model, error) {
	raw := g.Artifact()
	m, err := core.LoadModel(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("testeq: generated artefact rejected: %w (artefact: %s)", err, raw)
	}
	return m, nil
}

// Scenarios draws n random valid scenarios for m: known targets, 0–8
// co-located copies of known apps, in-range P-states.
func (g *Gen) Scenarios(m *core.Model, n int) []features.Scenario {
	apps := m.Apps()
	out := make([]features.Scenario, n)
	for i := range out {
		co := make([]string, g.src.Intn(9))
		for j := range co {
			co[j] = apps[g.src.Intn(len(apps))]
		}
		out[i] = features.Scenario{
			Target: apps[g.src.Intn(len(apps))],
			CoApps: co,
			PState: g.src.Intn(m.PStates()),
		}
	}
	return out
}

// HostileScenarios draws scenarios the model must reject: unknown
// targets or co-apps and out-of-range P-states. Both paths must fail on
// them (error parity is part of equivalence).
func (g *Gen) HostileScenarios(m *core.Model, n int) []features.Scenario {
	apps := m.Apps()
	out := make([]features.Scenario, n)
	for i := range out {
		sc := features.Scenario{Target: apps[g.src.Intn(len(apps))], PState: g.src.Intn(m.PStates())}
		switch g.src.Intn(3) {
		case 0:
			sc.Target = "no-such-app"
		case 1:
			sc.CoApps = []string{apps[0], "no-such-app"}
		default:
			sc.PState = m.PStates() + g.src.Intn(3)
		}
		out[i] = sc
	}
	return out
}

// CheckModel asserts bit-for-bit equivalence of the model's compiled and
// interpreted predict paths on the given scenarios:
//
//   - scalar: Compiled.Predict and the pooled Model.Predict dispatch both
//     reproduce PredictInterpreted exactly (values compared by bits, so
//     NaNs must match too; errors must agree on presence);
//   - batched: Compiled.PredictScenarios and the Model.PredictScenarios
//     dispatch both reproduce PredictScenariosInterpreted exactly, for
//     the full batch and for mixed-width sub-batches re-evaluated
//     through the *same* compiled instance (scratch reuse across batch
//     shapes must not perturb results).
func CheckModel(tb testing.TB, m *core.Model, scs []features.Scenario) {
	tb.Helper()
	if !m.IsCompiled() {
		tb.Fatalf("model %s did not compile at load", m.Spec)
	}
	c, err := m.Compile()
	if err != nil {
		tb.Fatalf("Compile(%s): %v", m.Spec, err)
	}

	valid := scs[:0:0]
	for _, sc := range scs {
		want, wantErr := m.PredictInterpreted(sc)
		got, gotErr := c.Predict(sc)
		if (wantErr == nil) != (gotErr == nil) {
			tb.Fatalf("%s scalar %+v: error parity broken: interpreted err=%v, compiled err=%v",
				m.Spec, sc, wantErr, gotErr)
		}
		disp, dispErr := m.Predict(sc)
		if (wantErr == nil) != (dispErr == nil) {
			tb.Fatalf("%s scalar %+v: dispatch error parity broken: interpreted err=%v, dispatch err=%v",
				m.Spec, sc, wantErr, dispErr)
		}
		if wantErr != nil {
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			tb.Fatalf("%s scalar %+v: compiled %v != interpreted %v (not bit-identical)",
				m.Spec, sc, got, want)
		}
		if math.Float64bits(disp) != math.Float64bits(want) {
			tb.Fatalf("%s scalar %+v: dispatch %v != interpreted %v (not bit-identical)",
				m.Spec, sc, disp, want)
		}
		valid = append(valid, sc)
	}
	if len(valid) == 0 {
		return
	}

	// Mixed-width batches through one compiled instance: growing and
	// shrinking the batch exercises scratch reuse across shapes.
	sizes := []int{len(valid), 1, min(3, len(valid)), len(valid)}
	for _, n := range sizes {
		sub := valid[:n]
		want, err := m.PredictScenariosInterpreted(sub)
		if err != nil {
			tb.Fatalf("%s interpreted batch(%d): %v", m.Spec, n, err)
		}
		out := make([]float64, n)
		if err := c.PredictScenarios(sub, out); err != nil {
			tb.Fatalf("%s compiled batch(%d): %v", m.Spec, n, err)
		}
		disp, err := m.PredictScenarios(sub)
		if err != nil {
			tb.Fatalf("%s dispatch batch(%d): %v", m.Spec, n, err)
		}
		for i := range want {
			if math.Float64bits(out[i]) != math.Float64bits(want[i]) {
				tb.Fatalf("%s batch(%d) slot %d: compiled %v != interpreted %v (not bit-identical)",
					m.Spec, n, i, out[i], want[i])
			}
			if math.Float64bits(disp[i]) != math.Float64bits(want[i]) {
				tb.Fatalf("%s batch(%d) slot %d: dispatch %v != interpreted %v (not bit-identical)",
					m.Spec, n, i, disp[i], want[i])
			}
		}
	}
}
