// Package harness implements the testing environment and data-collection
// protocol of Section IV of the paper: baseline sweeps of every
// application across the six selected P-states, and the nested-loop
// collection of co-location training data (Table V) in which each of the
// eleven target applications runs against multiple homogeneous copies of
// each of the four representative co-location applications.
//
// The harness mirrors the paper's pseudocode:
//
//	for each multicore processor:
//	    for each frequency:
//	        for each target application:
//	            for each co-located application:
//	                for each number of co-locations:
//	                    get_exec_time_of_target()
//
// Measurement noise: the paper's lightweight-OS environment minimises but
// cannot eliminate run-to-run variability, so the harness injects small
// multiplicative log-normal noise into measured execution times. With
// NoiseSigma = 0 the harness is fully deterministic.
package harness

import (
	"fmt"
	"sort"

	"colocmodel/internal/perfctr"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// Baseline is the per-application serial measurement the methodology
// requires exactly once per machine (Section I: "only a single serial
// baseline measurement of parameters for each application").
type Baseline struct {
	// App is the application name.
	App string
	// SecondsByPState is the baseline execution time at each P-state
	// index (P0 first).
	SecondsByPState []float64
	// MemIntensity is LLC misses per instruction measured at P0.
	MemIntensity float64
	// CMPerCA is LLC misses per LLC access at P0.
	CMPerCA float64
	// CAPerIns is LLC accesses per instruction at P0.
	CAPerIns float64
}

// Record is one co-location measurement: the target's observed execution
// time in one scenario. CoApp is empty for baseline (solo) records.
type Record struct {
	// Machine is the processor name.
	Machine string
	// PState is the P-state index of the run.
	PState int
	// FreqGHz is the frequency of that P-state.
	FreqGHz float64
	// Target is the measured application's name.
	Target string
	// CoApp is the co-located application's name ("" if none).
	CoApp string
	// NumCoLoc is the number of co-located copies (0 for baseline).
	NumCoLoc int
	// Seconds is the measured (noisy) target execution time.
	Seconds float64
	// TrueSeconds is the noise-free simulated execution time, kept for
	// harness-level diagnostics; models never see it.
	TrueSeconds float64
	// Counts are the target's hardware counters for the run.
	Counts perfctr.Counts
}

// Dataset is everything collected from one machine: baselines plus
// co-location records.
type Dataset struct {
	// Machine is the processor name.
	Machine string
	// PStateFreqs lists the frequency of each P-state index.
	PStateFreqs []float64
	// LLCBytes is the machine's LLC capacity (kept for reporting).
	LLCBytes float64
	// Baselines maps application name to its baseline measurement.
	Baselines map[string]Baseline
	// Records are the co-location measurements.
	Records []Record
}

// Plan describes a data-collection campaign on one machine (one row of
// Table V).
type Plan struct {
	// Spec is the processor to collect on.
	Spec simproc.Spec
	// Targets are the applications measured as targets.
	Targets []workload.App
	// CoApps are the applications used as homogeneous co-runners.
	CoApps []workload.App
	// CoCounts are the numbers of co-located copies to sweep
	// ("num. of co-locations" in Table V).
	CoCounts []int
	// PStates are the P-state indices to sweep (six per machine).
	PStates []int
	// NoiseSigma is the log-normal sigma of measurement noise (0.01 ≈
	// 1 % run-to-run variation). Zero disables noise.
	NoiseSigma float64
	// Seed drives the noise stream.
	Seed uint64
}

// DefaultCoCounts returns the Table V co-location counts for a machine
// with the given core count: every count up to cores−1 when that is small
// (the 6-core machine uses 1–5), and a sparse, evenly spread subset up to
// cores−1 for larger machines (the 12-core machine uses 1,2,3,5,7,9,11).
func DefaultCoCounts(cores int) []int {
	max := cores - 1
	if max <= 0 {
		return nil
	}
	if max <= 5 {
		out := make([]int, max)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := []int{1, 2, 3}
	for k := 5; k <= max; k += 2 {
		out = append(out, k)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// DefaultPlan returns the paper's Table V campaign for a machine: all
// eleven applications as targets, the four representative co-apps, the
// default co-location counts, all six P-states, and 1 % measurement noise.
func DefaultPlan(spec simproc.Spec, seed uint64) Plan {
	ps := make([]int, spec.PStates.Len())
	for i := range ps {
		ps[i] = i
	}
	return Plan{
		Spec:       spec,
		Targets:    workload.All(),
		CoApps:     workload.TrainingCoApps(),
		CoCounts:   DefaultCoCounts(spec.Cores),
		PStates:    ps,
		NoiseSigma: 0.01,
		Seed:       seed,
	}
}

// Validate checks the plan.
func (p Plan) Validate() error {
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if len(p.Targets) == 0 {
		return fmt.Errorf("harness: plan has no targets")
	}
	if len(p.CoApps) == 0 {
		return fmt.Errorf("harness: plan has no co-apps")
	}
	if len(p.CoCounts) == 0 {
		return fmt.Errorf("harness: plan has no co-location counts")
	}
	for _, k := range p.CoCounts {
		if k < 1 || k > p.Spec.Cores-1 {
			return fmt.Errorf("harness: co-location count %d out of [1,%d]", k, p.Spec.Cores-1)
		}
	}
	if len(p.PStates) == 0 {
		return fmt.Errorf("harness: plan has no P-states")
	}
	for _, ps := range p.PStates {
		if _, err := p.Spec.PStates.State(ps); err != nil {
			return err
		}
	}
	if p.NoiseSigma < 0 || p.NoiseSigma > 0.2 {
		return fmt.Errorf("harness: noise sigma %v out of [0,0.2]", p.NoiseSigma)
	}
	return nil
}

// RunCount returns the number of co-location measurements the plan will
// take (excluding baselines).
func (p Plan) RunCount() int {
	return len(p.Targets) * len(p.CoApps) * len(p.CoCounts) * len(p.PStates)
}

// Collect executes the plan: baseline sweeps first, then the full nested
// co-location loop.
func Collect(p Plan) (*Dataset, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	proc, err := simproc.New(p.Spec)
	if err != nil {
		return nil, err
	}
	noise := xrand.New(p.Seed)
	ds := &Dataset{
		Machine:   p.Spec.Name,
		LLCBytes:  p.Spec.LLCBytes,
		Baselines: make(map[string]Baseline),
	}
	for _, st := range p.Spec.PStates.States() {
		ds.PStateFreqs = append(ds.PStateFreqs, st.FreqGHz)
	}

	// Baselines: union of targets and co-apps, every P-state.
	baseApps := map[string]workload.App{}
	for _, a := range p.Targets {
		baseApps[a.Name] = a
	}
	for _, a := range p.CoApps {
		baseApps[a.Name] = a
	}
	apps := make([]workload.App, 0, len(baseApps))
	for _, a := range baseApps {
		apps = append(apps, a)
	}
	baselines, err := CollectBaselines(proc, apps, p.NoiseSigma, noise)
	if err != nil {
		return nil, err
	}
	ds.Baselines = baselines

	// Co-location sweep, in the paper's loop order.
	for _, ps := range p.PStates {
		st, err := p.Spec.PStates.State(ps)
		if err != nil {
			return nil, err
		}
		for _, target := range p.Targets {
			for _, coApp := range p.CoApps {
				for _, k := range p.CoCounts {
					co := make([]workload.App, k)
					for i := range co {
						co[i] = coApp
					}
					r, err := proc.RunColocation(target, co, ps, simproc.Options{})
					if err != nil {
						return nil, fmt.Errorf("harness: %s + %d×%s P%d: %w",
							target.Name, k, coApp.Name, ps, err)
					}
					ds.Records = append(ds.Records, Record{
						Machine:     p.Spec.Name,
						PState:      ps,
						FreqGHz:     st.FreqGHz,
						Target:      target.Name,
						CoApp:       coApp.Name,
						NumCoLoc:    k,
						Seconds:     applyNoise(r.TargetSeconds, p.NoiseSigma, noise),
						TrueSeconds: r.TargetSeconds,
						Counts:      r.Target.Counts,
					})
				}
			}
		}
	}
	return ds, nil
}

// CollectBaselines measures the serial baseline of each application on
// the processor: execution time at every P-state plus the P0 counter
// ratios. Applications are processed in name order so the noise stream
// assignment is deterministic. This is also the entry point for adding
// baselines of *new* applications (e.g. microbenchmarks) to an existing
// dataset, since prediction requires nothing else.
func CollectBaselines(proc *simproc.Processor, apps []workload.App, sigma float64, noise *xrand.Source) (map[string]Baseline, error) {
	byName := map[string]workload.App{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	spec := proc.Spec()
	out := make(map[string]Baseline, len(names))
	for _, name := range names {
		a := byName[name]
		b := Baseline{App: name, SecondsByPState: make([]float64, spec.PStates.Len())}
		for ps := 0; ps < spec.PStates.Len(); ps++ {
			r, err := proc.RunBaseline(a, ps)
			if err != nil {
				return nil, fmt.Errorf("harness: baseline %s P%d: %w", name, ps, err)
			}
			b.SecondsByPState[ps] = applyNoise(r.TargetSeconds, sigma, noise)
			if ps == 0 {
				b.MemIntensity = r.Target.Counts.MemoryIntensity()
				b.CMPerCA = r.Target.Counts.CMPerCA()
				b.CAPerIns = r.Target.Counts.CAPerIns()
			}
		}
		out[name] = b
	}
	return out, nil
}

// applyNoise multiplies v by a log-normal factor with the given sigma.
func applyNoise(v, sigma float64, src *xrand.Source) float64 {
	if sigma == 0 {
		return v
	}
	return v * src.LogNormal(0, sigma)
}

// Baseline returns the baseline for app, or an error if it was never
// measured.
func (d *Dataset) Baseline(app string) (Baseline, error) {
	b, ok := d.Baselines[app]
	if !ok {
		return Baseline{}, fmt.Errorf("harness: no baseline for %q on %s", app, d.Machine)
	}
	return b, nil
}

// RecordsForTarget returns all records whose target is app.
func (d *Dataset) RecordsForTarget(app string) []Record {
	var out []Record
	for _, r := range d.Records {
		if r.Target == app {
			out = append(out, r)
		}
	}
	return out
}

// Targets returns the sorted distinct target names in the dataset.
func (d *Dataset) Targets() []string {
	seen := map[string]bool{}
	for _, r := range d.Records {
		seen[r.Target] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
