package harness

import (
	"fmt"
	"sort"

	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// The Table V campaign co-locates homogeneous copies of one co-runner at
// a time — that keeps the sample-space sweep tractable and uniform. This
// file adds the complementary capability: measuring explicit, possibly
// heterogeneous scenarios. It serves two purposes: collecting richer
// training data (the mixed-training extension experiment) and measuring
// ground truth for arbitrary schedules.

// Scenario describes one explicit co-location run to measure.
type Scenario struct {
	// Target is the measured application.
	Target workload.App
	// CoApps are the co-located applications (possibly mixed).
	CoApps []workload.App
	// PState is the operating point.
	PState int
}

// MixedRecord is one measured heterogeneous scenario. Unlike Record it
// carries the full co-runner name list.
type MixedRecord struct {
	Machine string
	PState  int
	FreqGHz float64
	Target  string
	CoApps  []string
	Seconds float64
}

// CollectScenarios measures each scenario on the processor, with the same
// log-normal measurement noise as the main campaign.
func CollectScenarios(proc *simproc.Processor, scenarios []Scenario, sigma float64, noise *xrand.Source) ([]MixedRecord, error) {
	if proc == nil {
		return nil, fmt.Errorf("harness: nil processor")
	}
	out := make([]MixedRecord, 0, len(scenarios))
	for i, sc := range scenarios {
		st, err := proc.Spec().PStates.State(sc.PState)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %d: %w", i, err)
		}
		run, err := proc.RunColocation(sc.Target, sc.CoApps, sc.PState, simproc.Options{})
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %d: %w", i, err)
		}
		names := make([]string, len(sc.CoApps))
		for j, a := range sc.CoApps {
			names[j] = a.Name
		}
		out = append(out, MixedRecord{
			Machine: proc.Spec().Name,
			PState:  sc.PState,
			FreqGHz: st.FreqGHz,
			Target:  sc.Target.Name,
			CoApps:  names,
			Seconds: applyNoise(run.TargetSeconds, sigma, noise),
		})
	}
	return out, nil
}

// RandomMixedScenarios draws n scenarios with uniformly random targets
// (from targets), random co-runner counts in [1, maxCo], and co-runners
// sampled independently from pool — the random-sampling strategy of
// [DwF12] that the paper contrasts with its uniform sweep.
func RandomMixedScenarios(targets, pool []workload.App, maxCo, n int, pstates []int, src *xrand.Source) ([]Scenario, error) {
	if len(targets) == 0 || len(pool) == 0 {
		return nil, fmt.Errorf("harness: empty targets or pool")
	}
	if maxCo < 1 || n < 1 {
		return nil, fmt.Errorf("harness: need positive maxCo and n")
	}
	if len(pstates) == 0 {
		return nil, fmt.Errorf("harness: no P-states")
	}
	out := make([]Scenario, n)
	for i := range out {
		k := 1 + src.Intn(maxCo)
		co := make([]workload.App, k)
		for j := range co {
			co[j] = pool[src.Intn(len(pool))]
		}
		out[i] = Scenario{
			Target: targets[src.Intn(len(targets))],
			CoApps: co,
			PState: pstates[src.Intn(len(pstates))],
		}
	}
	return out, nil
}

// AsRecords converts mixed records whose co-runner sets happen to be
// homogeneous into harness Records (others are skipped), so they can be
// appended to a Dataset for training. The returned count reports how many
// were heterogeneous and therefore skipped.
func AsRecords(mixed []MixedRecord) (records []Record, skipped int) {
	for _, m := range mixed {
		if !homogeneous(m.CoApps) {
			skipped++
			continue
		}
		co := ""
		if len(m.CoApps) > 0 {
			co = m.CoApps[0]
		}
		records = append(records, Record{
			Machine:     m.Machine,
			PState:      m.PState,
			FreqGHz:     m.FreqGHz,
			Target:      m.Target,
			CoApp:       co,
			NumCoLoc:    len(m.CoApps),
			Seconds:     m.Seconds,
			TrueSeconds: m.Seconds,
		})
	}
	return records, skipped
}

func homogeneous(names []string) bool {
	for _, n := range names[1:] {
		if n != names[0] {
			return false
		}
	}
	return true
}

// SortScenarioNames canonicalises a co-runner name list (sorted copy), so
// feature extraction and grouping are order-independent.
func SortScenarioNames(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
