package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"colocmodel/internal/perfctr"
)

// The CSV layout is two sections separated by blank-line-free headers: a
// baselines section and a records section. Columns are fixed; floats use
// full precision so a round trip is lossless to within strconv accuracy.

var baselineHeader = []string{"section", "app", "mem_intensity", "cm_per_ca", "ca_per_ins", "seconds_by_pstate..."}
var recordHeader = []string{"section", "machine", "pstate", "freq_ghz", "target", "coapp", "num_coloc",
	"seconds", "true_seconds", "instructions", "cycles", "llc_misses", "llc_accesses"}

// WriteCSV serialises the dataset.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{"meta", d.Machine, strconv.FormatFloat(d.LLCBytes, 'g', -1, 64)}
	for _, f := range d.PStateFreqs {
		meta = append(meta, strconv.FormatFloat(f, 'g', -1, 64))
	}
	if err := cw.Write(meta); err != nil {
		return err
	}
	if err := cw.Write(baselineHeader); err != nil {
		return err
	}
	for _, name := range sortedKeys(d.Baselines) {
		b := d.Baselines[name]
		row := []string{"baseline", b.App,
			fstr(b.MemIntensity), fstr(b.CMPerCA), fstr(b.CAPerIns)}
		for _, s := range b.SecondsByPState {
			row = append(row, fstr(s))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	if err := cw.Write(recordHeader); err != nil {
		return err
	}
	for _, r := range d.Records {
		row := []string{"record", r.Machine, strconv.Itoa(r.PState), fstr(r.FreqGHz),
			r.Target, r.CoApp, strconv.Itoa(r.NumCoLoc), fstr(r.Seconds), fstr(r.TrueSeconds),
			strconv.FormatUint(r.Counts.Instructions, 10),
			strconv.FormatUint(r.Counts.Cycles, 10),
			strconv.FormatUint(r.Counts.LLCMisses, 10),
			strconv.FormatUint(r.Counts.LLCAccesses, 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV deserialises a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	ds := &Dataset{Baselines: map[string]Baseline{}}
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if len(row) == 0 {
			continue
		}
		switch row[0] {
		case "meta":
			if len(row) < 3 {
				return nil, fmt.Errorf("harness: short meta row %d", i)
			}
			ds.Machine = row[1]
			if ds.LLCBytes, err = strconv.ParseFloat(row[2], 64); err != nil {
				return nil, fmt.Errorf("harness: meta row %d: %w", i, err)
			}
			ds.PStateFreqs = nil
			for _, f := range row[3:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("harness: meta row %d: %w", i, err)
				}
				ds.PStateFreqs = append(ds.PStateFreqs, v)
			}
		case "baseline":
			if len(row) < 6 {
				return nil, fmt.Errorf("harness: short baseline row %d", i)
			}
			b := Baseline{App: row[1]}
			vals, err := parseFloats(row[2:])
			if err != nil {
				return nil, fmt.Errorf("harness: baseline row %d: %w", i, err)
			}
			b.MemIntensity, b.CMPerCA, b.CAPerIns = vals[0], vals[1], vals[2]
			b.SecondsByPState = vals[3:]
			ds.Baselines[b.App] = b
		case "record":
			if len(row) != 13 {
				return nil, fmt.Errorf("harness: record row %d has %d fields, want 13", i, len(row))
			}
			rec := Record{Machine: row[1], Target: row[4], CoApp: row[5]}
			if rec.PState, err = strconv.Atoi(row[2]); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if rec.FreqGHz, err = strconv.ParseFloat(row[3], 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if rec.NumCoLoc, err = strconv.Atoi(row[6]); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if rec.Seconds, err = strconv.ParseFloat(row[7], 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if rec.TrueSeconds, err = strconv.ParseFloat(row[8], 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			var c perfctr.Counts
			if c.Instructions, err = strconv.ParseUint(row[9], 10, 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if c.Cycles, err = strconv.ParseUint(row[10], 10, 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if c.LLCMisses, err = strconv.ParseUint(row[11], 10, 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			if c.LLCAccesses, err = strconv.ParseUint(row[12], 10, 64); err != nil {
				return nil, fmt.Errorf("harness: record row %d: %w", i, err)
			}
			rec.Counts = c
			ds.Records = append(ds.Records, rec)
		case "section":
			// header rows
		default:
			return nil, fmt.Errorf("harness: unknown section %q at row %d", row[0], i)
		}
	}
	if ds.Machine == "" {
		return nil, fmt.Errorf("harness: CSV missing meta row")
	}
	return ds, nil
}

func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func parseFloats(ss []string) ([]float64, error) {
	out := make([]float64, len(ss))
	for i, s := range ss {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func sortedKeys(m map[string]Baseline) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
