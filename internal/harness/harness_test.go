package harness

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// smallPlan keeps tests fast: two targets, two co-apps, two counts, two
// P-states.
func smallPlan(t testing.TB, noise float64) Plan {
	t.Helper()
	cg, err := workload.ByName("cg")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := workload.ByName("ep")
	if err != nil {
		t.Fatal(err)
	}
	canneal, err := workload.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	return Plan{
		Spec:       simproc.XeonE5649(),
		Targets:    []workload.App{canneal, ep},
		CoApps:     []workload.App{cg, ep},
		CoCounts:   []int{1, 3},
		PStates:    []int{0, 5},
		NoiseSigma: noise,
		Seed:       1,
	}
}

func TestDefaultCoCounts(t *testing.T) {
	if got := DefaultCoCounts(6); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("6-core counts = %v", got)
	}
	if got := DefaultCoCounts(12); !reflect.DeepEqual(got, []int{1, 2, 3, 5, 7, 9, 11}) {
		t.Fatalf("12-core counts = %v", got)
	}
	if got := DefaultCoCounts(1); got != nil {
		t.Fatalf("1-core counts = %v", got)
	}
	// Even max gets appended explicitly.
	if got := DefaultCoCounts(9); !reflect.DeepEqual(got, []int{1, 2, 3, 5, 7, 8}) {
		t.Fatalf("9-core counts = %v", got)
	}
}

func TestDefaultPlanMatchesTableV(t *testing.T) {
	p := DefaultPlan(simproc.XeonE5649(), 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Targets) != 11 {
		t.Fatalf("targets = %d, want 11", len(p.Targets))
	}
	if len(p.CoApps) != 4 {
		t.Fatalf("co-apps = %d, want 4", len(p.CoApps))
	}
	if len(p.PStates) != 6 {
		t.Fatalf("P-states = %d, want 6", len(p.PStates))
	}
	if want := 11 * 4 * 5 * 6; p.RunCount() != want {
		t.Fatalf("run count = %d, want %d", p.RunCount(), want)
	}
	p12 := DefaultPlan(simproc.XeonE52697v2(), 1)
	if want := 11 * 4 * 7 * 6; p12.RunCount() != want {
		t.Fatalf("12-core run count = %d, want %d", p12.RunCount(), want)
	}
}

func TestPlanValidation(t *testing.T) {
	base := smallPlan(t, 0.01)
	mut := []func(*Plan){
		func(p *Plan) { p.Targets = nil },
		func(p *Plan) { p.CoApps = nil },
		func(p *Plan) { p.CoCounts = nil },
		func(p *Plan) { p.CoCounts = []int{0} },
		func(p *Plan) { p.CoCounts = []int{6} }, // 6-core machine: max 5
		func(p *Plan) { p.PStates = nil },
		func(p *Plan) { p.PStates = []int{9} },
		func(p *Plan) { p.NoiseSigma = -1 },
		func(p *Plan) { p.NoiseSigma = 0.5 },
		func(p *Plan) { p.Spec.Cores = 0 },
	}
	for i, m := range mut {
		p := base
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCollectShape(t *testing.T) {
	p := smallPlan(t, 0.01)
	ds, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Machine != "Xeon E5649" {
		t.Fatalf("machine = %q", ds.Machine)
	}
	if len(ds.Records) != p.RunCount() {
		t.Fatalf("records = %d, want %d", len(ds.Records), p.RunCount())
	}
	// Baselines for the union of targets and co-apps: canneal, ep, cg.
	if len(ds.Baselines) != 3 {
		t.Fatalf("baselines = %d, want 3", len(ds.Baselines))
	}
	for name, b := range ds.Baselines {
		if len(b.SecondsByPState) != 6 {
			t.Fatalf("%s baseline has %d P-state times", name, len(b.SecondsByPState))
		}
		for i, s := range b.SecondsByPState {
			if s <= 0 {
				t.Fatalf("%s baseline P%d nonpositive", name, i)
			}
		}
		if b.MemIntensity <= 0 || b.CMPerCA <= 0 || b.CAPerIns <= 0 {
			t.Fatalf("%s baseline metrics empty: %+v", name, b)
		}
	}
	if got := ds.Targets(); len(got) != 2 {
		t.Fatalf("dataset targets = %v", got)
	}
	if got := ds.RecordsForTarget("canneal"); len(got) != p.RunCount()/2 {
		t.Fatalf("canneal records = %d", len(got))
	}
}

func TestCollectDeterministicGivenSeed(t *testing.T) {
	p := smallPlan(t, 0.01)
	a, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i].Seconds != b.Records[i].Seconds {
			t.Fatalf("record %d differs between identical collects", i)
		}
	}
}

func TestNoiseIsSmallAndCentered(t *testing.T) {
	p := smallPlan(t, 0.01)
	ds, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRatio := 0.0
	for _, r := range ds.Records {
		ratio := r.Seconds / r.TrueSeconds
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("noise ratio %v out of ±10%%", ratio)
		}
		sumRatio += ratio
	}
	mean := sumRatio / float64(len(ds.Records))
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("noise not centered: mean ratio %v", mean)
	}
}

func TestZeroNoiseIsExact(t *testing.T) {
	p := smallPlan(t, 0)
	ds, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		if r.Seconds != r.TrueSeconds {
			t.Fatal("zero-noise record differs from true value")
		}
	}
}

func TestColocationSlowerThanBaseline(t *testing.T) {
	p := smallPlan(t, 0)
	ds, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		b, err := ds.Baseline(r.Target)
		if err != nil {
			t.Fatal(err)
		}
		if r.Seconds < b.SecondsByPState[r.PState]*0.999 {
			t.Fatalf("%s + %d×%s faster than baseline: %v < %v",
				r.Target, r.NumCoLoc, r.CoApp, r.Seconds, b.SecondsByPState[r.PState])
		}
	}
}

func TestBaselineLookupError(t *testing.T) {
	ds := &Dataset{Baselines: map[string]Baseline{}}
	if _, err := ds.Baseline("nope"); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p := smallPlan(t, 0.01)
	ds, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != ds.Machine || got.LLCBytes != ds.LLCBytes {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.PStateFreqs, ds.PStateFreqs) {
		t.Fatalf("P-state freqs mismatch: %v vs %v", got.PStateFreqs, ds.PStateFreqs)
	}
	if !reflect.DeepEqual(got.Baselines, ds.Baselines) {
		t.Fatal("baselines mismatch after round trip")
	}
	if !reflect.DeepEqual(got.Records, ds.Records) {
		t.Fatal("records mismatch after round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,row\n",
		"meta,machine\n",                        // short meta
		"meta,m,12\nbaseline,app,x,y,z,1\n",     // bad float
		"meta,m,12\nrecord,m,0,2.5,t,c,1,bad\n", // short/bad record
		"meta,m,12\nrecord,m,a,2.5,t,c,1,1,1,1,1,1,1\n", // bad pstate
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func BenchmarkCollectSmallPlan(b *testing.B) {
	p := smallPlan(b, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Collect(p); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzReadCSV guards the dataset parser against malformed input: it must
// return an error or a dataset, never panic, and any dataset it accepts
// must round-trip.
func FuzzReadCSV(f *testing.F) {
	p := smallPlan(f, 0.01)
	ds, err := Collect(p)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("meta,m,12\n")
	f.Add("bogus\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadCSV(bytes.NewBufferString(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("accepted dataset failed to serialise: %v", err)
		}
		if _, err := ReadCSV(&out); err != nil {
			t.Fatalf("round trip of accepted dataset failed: %v", err)
		}
	})
}

func TestCollectScenariosAndRandomMixed(t *testing.T) {
	proc, err := simproc.New(simproc.XeonE5649())
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(6)
	targets := []workload.App{}
	for _, n := range []string{"canneal", "ep"} {
		a, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, a)
	}
	scs, err := RandomMixedScenarios(targets, workload.All(), 5, 8, []int{0, 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 8 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	for _, sc := range scs {
		if len(sc.CoApps) < 1 || len(sc.CoApps) > 5 {
			t.Fatalf("co-runner count %d out of [1,5]", len(sc.CoApps))
		}
		if sc.PState != 0 && sc.PState != 3 {
			t.Fatalf("unexpected P-state %d", sc.PState)
		}
	}
	measured, err := CollectScenarios(proc, scs, 0.01, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(measured) != len(scs) {
		t.Fatalf("measured %d of %d", len(measured), len(scs))
	}
	for i, m := range measured {
		if m.Seconds <= 0 {
			t.Fatalf("scenario %d has no time", i)
		}
		if m.Machine != "Xeon E5649" || len(m.CoApps) != len(scs[i].CoApps) {
			t.Fatalf("record %d metadata wrong: %+v", i, m)
		}
	}
}

func TestCollectScenariosErrors(t *testing.T) {
	src := xrand.New(7)
	if _, err := CollectScenarios(nil, nil, 0, src); err == nil {
		t.Fatal("nil processor accepted")
	}
	proc, _ := simproc.New(simproc.XeonE5649())
	cg, _ := workload.ByName("cg")
	bad := []Scenario{{Target: cg, PState: 99}}
	if _, err := CollectScenarios(proc, bad, 0, src); err == nil {
		t.Fatal("bad P-state accepted")
	}
	if _, err := RandomMixedScenarios(nil, nil, 1, 1, []int{0}, src); err == nil {
		t.Fatal("empty pools accepted")
	}
	if _, err := RandomMixedScenarios([]workload.App{cg}, []workload.App{cg}, 0, 1, []int{0}, src); err == nil {
		t.Fatal("zero maxCo accepted")
	}
	if _, err := RandomMixedScenarios([]workload.App{cg}, []workload.App{cg}, 1, 1, nil, src); err == nil {
		t.Fatal("no P-states accepted")
	}
}

func TestAsRecords(t *testing.T) {
	mixed := []MixedRecord{
		{Machine: "m", Target: "t", CoApps: []string{"cg", "cg"}, Seconds: 10, PState: 1, FreqGHz: 2},
		{Machine: "m", Target: "t", CoApps: []string{"cg", "ep"}, Seconds: 12},
	}
	recs, skipped := AsRecords(mixed)
	if len(recs) != 1 || skipped != 1 {
		t.Fatalf("got %d records, %d skipped", len(recs), skipped)
	}
	if recs[0].CoApp != "cg" || recs[0].NumCoLoc != 2 || recs[0].Seconds != 10 {
		t.Fatalf("record = %+v", recs[0])
	}
	if got := SortScenarioNames([]string{"b", "a"}); got[0] != "a" {
		t.Fatalf("sorted = %v", got)
	}
}
