package energy

import (
	"math"
	"sync"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

var (
	modelOnce sync.Once
	modelVal  *core.Model
	modelErr  error
)

func trainedModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		ep, _ := workload.ByName("ep")
		canneal, _ := workload.ByName("canneal")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, canneal, ep},
			CoApps:     []workload.App{cg, ep},
			CoCounts:   []int{1, 3, 5},
			PStates:    []int{0, 2, 4},
			NoiseSigma: 0.005,
			Seed:       8,
		}
		ds, err := harness.Collect(plan)
		if err != nil {
			modelErr = err
			return
		}
		set, _ := features.SetByName("F")
		modelVal, modelErr = core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: set, Seed: 6}, ds, ds.Records)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelVal
}

func TestNewEstimatorValidates(t *testing.T) {
	if _, err := NewEstimator(simproc.Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := NewEstimator(simproc.XeonE5649()); err != nil {
		t.Fatal(err)
	}
}

func TestPowerScalesWithCoresAndPState(t *testing.T) {
	e, err := NewEstimator(simproc.XeonE5649())
	if err != nil {
		t.Fatal(err)
	}
	idle, err := e.PowerW(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idle != simproc.XeonE5649().UncorePowerW {
		t.Fatalf("idle power %v, want uncore only", idle)
	}
	one, _ := e.PowerW(0, 1)
	six, _ := e.PowerW(0, 6)
	if six <= one || one <= idle {
		t.Fatalf("power not increasing with cores: %v %v %v", idle, one, six)
	}
	// Lower P-state, lower power.
	low, _ := e.PowerW(5, 6)
	if low >= six {
		t.Fatalf("low P-state power %v not below P0 %v", low, six)
	}
}

func TestPowerErrors(t *testing.T) {
	e, _ := NewEstimator(simproc.XeonE5649())
	if _, err := e.PowerW(0, -1); err == nil {
		t.Fatal("negative cores accepted")
	}
	if _, err := e.PowerW(0, 7); err == nil {
		t.Fatal("too many cores accepted")
	}
	if _, err := e.PowerW(9, 1); err == nil {
		t.Fatal("bad P-state accepted")
	}
}

func TestEnergyJ(t *testing.T) {
	e, _ := NewEstimator(simproc.XeonE5649())
	p, _ := e.PowerW(0, 2)
	got, err := e.EnergyJ(0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10*p) > 1e-9 {
		t.Fatalf("energy %v, want %v", got, 10*p)
	}
	if _, err := e.EnergyJ(0, 2, -1); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestPredictTargetEnergy(t *testing.T) {
	m := trainedModel(t)
	e, _ := NewEstimator(simproc.XeonE5649())
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg", "cg", "cg"}, PState: 0}
	est, err := PredictTargetEnergy(m, e, sc)
	if err != nil {
		t.Fatal(err)
	}
	if est.PredictedSeconds <= est.BaselineSeconds {
		t.Fatalf("co-located time %v not above baseline %v", est.PredictedSeconds, est.BaselineSeconds)
	}
	if est.TargetEnergyJ <= 0 || est.BaselineEnergyJ <= 0 {
		t.Fatalf("non-positive energies: %+v", est)
	}
	if est.InterferenceOverheadJ <= 0 {
		t.Fatalf("interference overhead %v not positive for a slowed-down target", est.InterferenceOverheadJ)
	}
	if est.ConsolidationSavingJ <= 0 {
		t.Fatalf("consolidation saving %v not positive with co-runners", est.ConsolidationSavingJ)
	}
	// Accounting identity.
	got := est.BaselineEnergyJ + est.InterferenceOverheadJ - est.ConsolidationSavingJ
	if math.Abs(got-est.TargetEnergyJ) > 1e-6*est.TargetEnergyJ {
		t.Fatalf("energy identity violated: %v vs %v", got, est.TargetEnergyJ)
	}
}

func TestPredictTargetEnergyErrors(t *testing.T) {
	m := trainedModel(t)
	e, _ := NewEstimator(simproc.XeonE5649())
	if _, err := PredictTargetEnergy(nil, e, features.Scenario{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := PredictTargetEnergy(m, nil, features.Scenario{}); err == nil {
		t.Fatal("nil estimator accepted")
	}
	tooMany := make([]string, 6)
	for i := range tooMany {
		tooMany[i] = "ep"
	}
	if _, err := PredictTargetEnergy(m, e, features.Scenario{Target: "canneal", CoApps: tooMany, PState: 0}); err == nil {
		t.Fatal("over-subscription accepted")
	}
	if _, err := PredictTargetEnergy(m, e, features.Scenario{Target: "canneal", PState: 99}); err == nil {
		t.Fatal("bad P-state accepted")
	}
	if _, err := PredictTargetEnergy(m, e, features.Scenario{Target: "ghost", PState: 0}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestSweepPStates(t *testing.T) {
	m := trainedModel(t)
	e, _ := NewEstimator(simproc.XeonE5649())
	sc := features.Scenario{Target: "cg", CoApps: []string{"ep"}}
	ests, err := SweepPStates(m, e, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 6 {
		t.Fatalf("got %d estimates, want 6", len(ests))
	}
	// Execution time must increase monotonically toward lower P-states.
	for i := 1; i < len(ests); i++ {
		if ests[i].PredictedSeconds <= ests[i-1].PredictedSeconds {
			t.Fatalf("P%d predicted %v not above P%d's %v",
				i, ests[i].PredictedSeconds, i-1, ests[i-1].PredictedSeconds)
		}
	}
	if _, err := SweepPStates(m, nil, sc); err == nil {
		t.Fatal("nil estimator accepted")
	}
}

func TestPredictedEnergyTracksSimulatedRAPL(t *testing.T) {
	// End-to-end energy validation: predicted execution time × package
	// power must track the simulator's own package-energy counter within
	// the time-prediction error margin.
	m := trainedModel(t)
	spec := simproc.XeonE5649()
	e, _ := NewEstimator(spec)
	proc, err := simproc.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	canneal, _ := workload.ByName("canneal")
	cg, _ := workload.ByName("cg")

	run, err := proc.RunColocation(canneal, []workload.App{cg, cg, cg}, 0, simproc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.Predict(features.Scenario{Target: "canneal", CoApps: []string{"cg", "cg", "cg"}, PState: 0})
	if err != nil {
		t.Fatal(err)
	}
	pkgPower, err := e.PowerW(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	predictedPkgEnergy := pkgPower * pred
	rel := math.Abs(predictedPkgEnergy-run.PackageEnergyJ) / run.PackageEnergyJ
	if rel > 0.10 {
		t.Fatalf("predicted package energy %v vs simulated %v (%.1f%% off)",
			predictedPkgEnergy, run.PackageEnergyJ, 100*rel)
	}
}
