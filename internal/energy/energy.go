// Package energy implements the extension sketched in the paper's
// conclusion: "Having this methodology that is capable of predicting an
// application's execution time when presented with the uncertainty of
// memory interference from co-location allows this work to lend itself
// very well to being able to also ... estimate the energy used by the
// system during execution of a particular application, as well as the
// increase in energy use that is caused by memory interference."
//
// Energy = power × time: the package combines the processor's P-state
// power model (dynamic core power C·V²·f plus uncore power) with the
// execution-time predictions of a trained core.Model.
package energy

import (
	"fmt"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/simproc"
)

// Estimator computes package power for a processor specification.
type Estimator struct {
	spec simproc.Spec
}

// NewEstimator validates the spec and returns an estimator.
func NewEstimator(spec simproc.Spec) (*Estimator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{spec: spec}, nil
}

// PowerW returns package power (watts) at the given P-state with the
// given number of active cores: uncore power plus per-core dynamic power
// C·V²·f.
func (e *Estimator) PowerW(pstate, activeCores int) (float64, error) {
	if activeCores < 0 || activeCores > e.spec.Cores {
		return 0, fmt.Errorf("energy: %d active cores out of [0,%d]", activeCores, e.spec.Cores)
	}
	st, err := e.spec.PStates.State(pstate)
	if err != nil {
		return 0, err
	}
	return e.spec.UncorePowerW + float64(activeCores)*st.DynamicPowerW(e.spec.CoreCEffW), nil
}

// EnergyJ returns package energy (joules) for a run of the given duration.
func (e *Estimator) EnergyJ(pstate, activeCores int, seconds float64) (float64, error) {
	if seconds < 0 {
		return 0, fmt.Errorf("energy: negative duration %v", seconds)
	}
	p, err := e.PowerW(pstate, activeCores)
	if err != nil {
		return 0, err
	}
	return p * seconds, nil
}

// Estimate is a predicted energy account for one target application run
// under co-location.
type Estimate struct {
	// PredictedSeconds is the model's execution-time prediction.
	PredictedSeconds float64
	// BaselineSeconds is the solo baseline at the same P-state.
	BaselineSeconds float64
	// TargetEnergyJ is the energy attributed to the target: its share of
	// uncore power plus one core's dynamic power, over the predicted
	// duration.
	TargetEnergyJ float64
	// BaselineEnergyJ is the solo-run energy: one core's dynamic power
	// plus the whole uncore (alone, the target owns the package).
	BaselineEnergyJ float64
	// InterferenceOverheadJ is the extra energy memory interference
	// causes: the predicted extra execution time at the co-located power
	// attribution. Always ≥ 0 when co-location slows the target down.
	InterferenceOverheadJ float64
	// ConsolidationSavingJ is the uncore energy the target no longer
	// pays for because co-runners share the package. The identity
	// TargetEnergyJ = BaselineEnergyJ + InterferenceOverheadJ −
	// ConsolidationSavingJ holds.
	ConsolidationSavingJ float64
}

// PredictTargetEnergy predicts the energy a target application will
// consume under the scenario, attributing to the target one core's
// dynamic power plus a 1/activeCores share of uncore power. The model
// must have been trained on the same machine as spec describes.
func PredictTargetEnergy(model *core.Model, e *Estimator, sc features.Scenario) (*Estimate, error) {
	if model == nil || e == nil {
		return nil, fmt.Errorf("energy: nil model or estimator")
	}
	activeCores := len(sc.CoApps) + 1
	if activeCores > e.spec.Cores {
		return nil, fmt.Errorf("energy: %d active contexts exceed %d cores", activeCores, e.spec.Cores)
	}
	st, err := e.spec.PStates.State(sc.PState)
	if err != nil {
		return nil, err
	}
	pred, err := model.Predict(sc)
	if err != nil {
		return nil, err
	}
	slowdown, err := model.PredictedSlowdown(sc)
	if err != nil {
		return nil, err
	}
	base := pred / slowdown

	corePower := st.DynamicPowerW(e.spec.CoreCEffW)
	sharedPower := e.spec.UncorePowerW / float64(activeCores)
	targetPower := corePower + sharedPower
	soloPower := corePower + e.spec.UncorePowerW // alone, the target owns the uncore

	est := &Estimate{
		PredictedSeconds:      pred,
		BaselineSeconds:       base,
		TargetEnergyJ:         targetPower * pred,
		BaselineEnergyJ:       soloPower * base,
		InterferenceOverheadJ: targetPower * (pred - base),
		ConsolidationSavingJ:  base * e.spec.UncorePowerW * (1 - 1/float64(activeCores)),
	}
	return est, nil
}

// SweepPStates predicts target energy at every P-state of the machine for
// a fixed co-location, supporting energy-vs-performance trade-off studies.
func SweepPStates(model *core.Model, e *Estimator, sc features.Scenario) ([]*Estimate, error) {
	if e == nil {
		return nil, fmt.Errorf("energy: nil estimator")
	}
	out := make([]*Estimate, e.spec.PStates.Len())
	for ps := 0; ps < e.spec.PStates.Len(); ps++ {
		sc.PState = ps
		est, err := PredictTargetEnergy(model, e, sc)
		if err != nil {
			return nil, err
		}
		out[ps] = est
	}
	return out, nil
}
