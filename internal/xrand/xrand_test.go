package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 1000", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first outputs")
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded source produced repeats: %d distinct of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(6)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("Intn(10) digit %d frequency %v, want ~0.1", d, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnOne(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		if v := s.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d, want 0", v)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(10)
	const n = 200000
	mean, m2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(5, 2)
		mean += v
		m2 += v * v
	}
	mean /= n
	variance := m2/n - mean*mean
	if math.Abs(mean-5) > 0.02 {
		t.Fatalf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestParetoMinimum(t *testing.T) {
	s := New(13)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2,1.5) below scale: %v", v)
		}
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto with bad params did not panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(15)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(16)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", frac)
	}
}

func TestZipfSupport(t *testing.T) {
	s := New(17)
	z := NewZipf(s, 1.0, 50)
	if z.N() != 50 {
		t.Fatalf("N = %d, want 50", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 50 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(18)
	z := NewZipf(s, 1.2, 100)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Empirical frequency of rank 0 should be close to its analytic mass.
	want := z.Prob(0)
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Zipf rank-0 frequency %v, want ~%v", got, want)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	s := New(19)
	z := NewZipf(s, 0, 10)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-12 {
			t.Fatalf("Zipf(s=0) mass of %d is %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	s := New(20)
	z := NewZipf(s, 0.8, 37)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf masses sum to %v", sum)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 1, 0)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 1.1, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
