package xrand

import "math"

// Weighted samples integers in [0, n) with probability proportional to a
// fixed weight per index. It precomputes the cumulative distribution for
// O(log n) sampling via binary search, mirroring Zipf. Zero-weight
// indices are never drawn. The load generator uses it for its operation
// mix (predict vs. batch vs. observation vs. reload traffic).
type Weighted struct {
	cdf []float64
	src *Source
}

// NewWeighted returns a sampler over [0, len(weights)). Weights must be
// non-negative, finite, and sum to a positive value.
func NewWeighted(src *Source, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("xrand: NewWeighted with no weights")
	}
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("xrand: NewWeighted weights must be non-negative and finite")
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		panic("xrand: NewWeighted with zero total weight")
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[len(cdf)-1] = 1 // guard against rounding
	return &Weighted{cdf: cdf, src: src}
}

// N returns the size of the sampler's support.
func (w *Weighted) N() int { return len(w.cdf) }

// Next draws the next weighted index.
func (w *Weighted) Next() int {
	u := w.src.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of index i.
func (w *Weighted) Prob(i int) float64 {
	if i < 0 || i >= len(w.cdf) {
		return 0
	}
	if i == 0 {
		return w.cdf[0]
	}
	return w.cdf[i] - w.cdf[i-1]
}
