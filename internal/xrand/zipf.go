package xrand

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution for O(log n)
// sampling via binary search, which is faster and simpler than rejection
// sampling for the modest n used by the trace generators.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s >= 0. s = 0
// degenerates to the uniform distribution.
func NewZipf(src *Source, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, src: src}
}

// N returns the size of the sampler's support.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next Zipf-distributed rank.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
