package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readArtifacts(t *testing.T, path string) []BenchArtifact {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var arts []BenchArtifact
	if err := json.Unmarshal(raw, &arts); err != nil {
		t.Fatalf("trajectory file is not a JSON array: %v\n%s", err, raw)
	}
	return arts
}

func TestMergeArtifactFreshAndReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	// First write starts the trajectory.
	if _, err := MergeArtifact(path, BenchArtifact{Bench: "ci-soak", Pass: true}); err != nil {
		t.Fatal(err)
	}
	// A second bench appends; names stay sorted.
	if _, err := MergeArtifact(path, BenchArtifact{Bench: "cluster-soak", Pass: true}); err != nil {
		t.Fatal(err)
	}
	arts := readArtifacts(t, path)
	if len(arts) != 2 || arts[0].Bench != "ci-soak" || arts[1].Bench != "cluster-soak" {
		t.Fatalf("unexpected trajectory: %+v", arts)
	}

	// Re-running one bench replaces its entry and preserves the other.
	merged, err := MergeArtifact(path, BenchArtifact{Bench: "ci-soak", Pass: false, Violations: []string{"slow"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("replace grew the trajectory: %+v", merged)
	}
	arts = readArtifacts(t, path)
	if arts[0].Bench != "ci-soak" || arts[0].Pass || len(arts[0].Violations) != 1 {
		t.Fatalf("ci-soak entry not replaced: %+v", arts[0])
	}
	if arts[1].Bench != "cluster-soak" || !arts[1].Pass {
		t.Fatalf("cluster-soak entry disturbed by replace: %+v", arts[1])
	}
}

func TestMergeArtifactAdoptsLegacyObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	legacy := BenchArtifact{Bench: "ci-soak", Pass: true}
	raw, _ := json.MarshalIndent(legacy, "", "  ")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	merged, err := MergeArtifact(path, BenchArtifact{Bench: "cluster-soak", Pass: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("legacy single-object file not adopted: %+v", merged)
	}
	arts := readArtifacts(t, path)
	if arts[0].Bench != "ci-soak" || arts[1].Bench != "cluster-soak" {
		t.Fatalf("adopted trajectory out of order: %+v", arts)
	}
}

func TestMergeArtifactRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeArtifact(path, BenchArtifact{Bench: "x"}); err == nil {
		t.Fatal("MergeArtifact silently overwrote an unparseable trajectory file")
	}
}
