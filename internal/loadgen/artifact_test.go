package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readArtifacts(t *testing.T, path string) []BenchArtifact {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var arts []BenchArtifact
	if err := json.Unmarshal(raw, &arts); err != nil {
		t.Fatalf("trajectory file is not a JSON array: %v\n%s", err, raw)
	}
	return arts
}

func TestMergeArtifactFreshAndReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")

	// First write starts the trajectory.
	if _, err := MergeArtifact(path, BenchArtifact{Bench: "ci-soak", Pass: true}); err != nil {
		t.Fatal(err)
	}
	// A second bench appends; names stay sorted.
	if _, err := MergeArtifact(path, BenchArtifact{Bench: "cluster-soak", Pass: true}); err != nil {
		t.Fatal(err)
	}
	arts := readArtifacts(t, path)
	if len(arts) != 2 || arts[0].Bench != "ci-soak" || arts[1].Bench != "cluster-soak" {
		t.Fatalf("unexpected trajectory: %+v", arts)
	}

	// Re-running one bench replaces its entry and preserves the other.
	merged, err := MergeArtifact(path, BenchArtifact{Bench: "ci-soak", Pass: false, Violations: []string{"slow"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("replace grew the trajectory: %+v", merged)
	}
	arts = readArtifacts(t, path)
	if arts[0].Bench != "ci-soak" || arts[0].Pass || len(arts[0].Violations) != 1 {
		t.Fatalf("ci-soak entry not replaced: %+v", arts[0])
	}
	if arts[1].Bench != "cluster-soak" || !arts[1].Pass {
		t.Fatalf("cluster-soak entry disturbed by replace: %+v", arts[1])
	}
}

func TestMergeArtifactAdoptsLegacyObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	legacy := BenchArtifact{Bench: "ci-soak", Pass: true}
	raw, _ := json.MarshalIndent(legacy, "", "  ")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	merged, err := MergeArtifact(path, BenchArtifact{Bench: "cluster-soak", Pass: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("legacy single-object file not adopted: %+v", merged)
	}
	arts := readArtifacts(t, path)
	if arts[0].Bench != "ci-soak" || arts[1].Bench != "cluster-soak" {
		t.Fatalf("adopted trajectory out of order: %+v", arts)
	}
}

func TestMergeArtifactRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeArtifact(path, BenchArtifact{Bench: "x"}); err == nil {
		t.Fatal("MergeArtifact silently overwrote an unparseable trajectory file")
	}
}

func TestMergeRawArtifactAdoptsLegacyBenchmarkKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_train.json")
	// A pre-array trajectory: one bare object keyed "benchmark", with
	// fields no loadgen schema knows about.
	legacy := `{"benchmark":"train-scg-batched","go_version":"go1.24.0","cases":[{"name":"batched/rows64","ns_per_op":1575420}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	// Merging a differently-keyed artifact adopts the legacy object into
	// the array and preserves it byte-for-byte semantically.
	merged, err := MergeRawArtifact(path, json.RawMessage(`{"bench":"predict-path","cases":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("got %d entries, want 2", len(merged))
	}
	keys := make([]string, len(merged))
	for i, e := range merged {
		if keys[i], err = artifactKey(e); err != nil {
			t.Fatal(err)
		}
	}
	if keys[0] != "predict-path" || keys[1] != "train-scg-batched" {
		t.Fatalf("wrong key order: %v", keys)
	}
	var train struct {
		GoVersion string `json:"go_version"`
		Cases     []struct {
			NsPerOp int64 `json:"ns_per_op"`
		} `json:"cases"`
	}
	if err := json.Unmarshal(merged[1], &train); err != nil {
		t.Fatal(err)
	}
	if train.GoVersion != "go1.24.0" || len(train.Cases) != 1 || train.Cases[0].NsPerOp != 1575420 {
		t.Fatalf("legacy entry's foreign fields were not preserved: %s", merged[1])
	}

	// Re-merging under the legacy alias replaces the adopted entry.
	if merged, err = MergeRawArtifact(path, json.RawMessage(`{"bench":"train-scg-batched","cases":[]}`)); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("replace under legacy alias appended instead: %d entries", len(merged))
	}
}

func TestMergeRawArtifactRejectsKeylessEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if _, err := MergeRawArtifact(path, json.RawMessage(`{"pass":true}`)); err == nil {
		t.Fatal("artifact without a bench name accepted")
	}
	if err := os.WriteFile(path, []byte(`[{"pass":true}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeRawArtifact(path, json.RawMessage(`{"bench":"x"}`)); err == nil {
		t.Fatal("trajectory with a keyless entry silently rewritten")
	}
}
