package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"
)

// Doer executes one generated request against a serve tier and reports
// the HTTP status, the response headers (for X-Request-ID and the
// Server-Timing stage breakdown) and the response body. Implementations
// must be safe for concurrent use by many workers.
type Doer interface {
	Do(op Op) (status int, header http.Header, body []byte, err error)
}

// HTTPDoer drives a live server over the network.
type HTTPDoer struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// Client is the HTTP client; nil selects a dedicated client with a
	// 30s timeout and enough idle connections for heavy fan-out.
	Client *http.Client
}

// NewHTTPDoer returns a Doer for the given server root.
func NewHTTPDoer(base string) *HTTPDoer {
	tr := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	return &HTTPDoer{
		Base:   strings.TrimRight(base, "/"),
		Client: &http.Client{Timeout: 30 * time.Second, Transport: tr},
	}
}

// Do sends the op and reads the full response.
func (h *HTTPDoer) Do(op Op) (int, http.Header, []byte, error) {
	var rd io.Reader
	if op.Body != nil {
		rd = bytes.NewReader(op.Body)
	}
	req, err := http.NewRequest(op.Method, strings.TrimRight(h.Base, "/")+op.Path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, nil, fmt.Errorf("loadgen: reading response: %w", err)
	}
	return resp.StatusCode, resp.Header, body, nil
}

// HandlerDoer drives an http.Handler directly in process — no sockets,
// no serialization across a wire. This is how the seeded soak becomes a
// deterministic unit test: the serve tier's real mux (Server.Handler)
// is exercised end to end under -race without network jitter.
type HandlerDoer struct {
	Handler http.Handler
}

// Do synthesises the request and records the handler's response.
func (h *HandlerDoer) Do(op Op) (int, http.Header, []byte, error) {
	var rd io.Reader
	if op.Body != nil {
		rd = bytes.NewReader(op.Body)
	}
	req := httptest.NewRequest(op.Method, op.Path, rd)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.Handler.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes(), nil
}
