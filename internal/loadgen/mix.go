package loadgen

import (
	"encoding/json"
	"fmt"

	"colocmodel/internal/serve"
	"colocmodel/internal/xrand"
)

// Space enumerates the scenario universe of a served model: every
// (target, homogeneous co-runner set, P-state) combination, where the
// co-runner sets are "no co-runner" plus every app at 1..maxCo copies.
// Scenarios are addressed by a dense index so a Zipf sampler over a
// seeded permutation of the space yields a skewed, realistic request
// population: a few scenarios dominate (a scheduling loop re-evaluating
// its hot jobs) while the long tail keeps the cache honest.
type Space struct {
	apps    []string
	pstates int
	maxCo   int
}

// NewSpace builds a scenario space from a model's app list, P-state
// count, and the largest co-runner multiplicity to generate.
func NewSpace(apps []string, pstates, maxCo int) (*Space, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("loadgen: scenario space needs at least one app")
	}
	for _, a := range apps {
		if a == "" {
			return nil, fmt.Errorf("loadgen: empty app name in scenario space")
		}
	}
	if pstates < 1 {
		return nil, fmt.Errorf("loadgen: scenario space needs at least one P-state")
	}
	if maxCo < 0 {
		return nil, fmt.Errorf("loadgen: negative max co-runners")
	}
	return &Space{apps: append([]string(nil), apps...), pstates: pstates, maxCo: maxCo}, nil
}

// SpaceFromModel builds the space served by a registry entry, as
// described by the /v1/models listing.
func SpaceFromModel(info serve.ModelInfo, maxCo int) (*Space, error) {
	return NewSpace(info.Apps, info.PStates, maxCo)
}

// Size returns the number of distinct scenarios.
func (s *Space) Size() int {
	return len(s.apps) * (1 + len(s.apps)*s.maxCo) * s.pstates
}

// Scenario decodes a dense index into a wire scenario: mixed-radix over
// (target, co-runner set, P-state).
func (s *Space) Scenario(idx int) serve.ScenarioRequest {
	n := len(s.apps)
	t := idx % n
	idx /= n
	coSets := 1 + n*s.maxCo
	c := idx % coSets
	ps := idx / coSets
	sr := serve.ScenarioRequest{Target: s.apps[t], PState: ps}
	if c > 0 {
		app := s.apps[(c-1)%n]
		count := (c-1)/n + 1
		co := make([]string, count)
		for i := range co {
			co[i] = app
		}
		sr.CoApps = co
	}
	return sr
}

// Mix tunes the generated traffic: the Zipf skew of the scenario
// population and the relative weights of the operation types. A weight
// of zero removes the operation from the mix; all-zero weights default
// to predict-only. Observation traffic requires the target server to
// run with the adaptation loop enabled (it answers 503 otherwise).
type Mix struct {
	// ZipfSkew is the scenario popularity exponent (0 = uniform).
	// Default 1.1.
	ZipfSkew float64
	// PredictWeight, BatchWeight, ObserveWeight and ReloadWeight set the
	// relative frequency of POST /v1/predict, /v1/predict/batch,
	// /v1/observations and /v1/models/reload operations.
	PredictWeight float64
	BatchWeight   float64
	ObserveWeight float64
	ReloadWeight  float64
	// PlacementWeight sets the relative frequency of POST /v1/placements
	// operations: small seeded optimizer problems (a two-machine fleet,
	// a handful of pending apps) that fan out to many batched predictions
	// server-side — the heaviest op in the mix by design.
	PlacementWeight float64
	// BatchSize is the scenarios per batch request. Default 16.
	BatchSize int
}

func (m *Mix) defaults() {
	if m.ZipfSkew == 0 {
		m.ZipfSkew = 1.1
	}
	if m.PredictWeight == 0 && m.BatchWeight == 0 && m.ObserveWeight == 0 && m.ReloadWeight == 0 && m.PlacementWeight == 0 {
		m.PredictWeight = 1
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 16
	}
}

// MixPreset returns a named traffic preset. "predict" (or "") is the
// default predict-only mix; "mixed" is the CI soak blend; "ingest" is
// the observe-heavy mix (~80% observations, the rest predicts keeping
// the cache and drift monitor honest) that exercises the feedback
// log's group-commit pipeline.
func MixPreset(name string) (Mix, error) {
	switch name {
	case "", "predict":
		return Mix{PredictWeight: 1}, nil
	case "mixed":
		return Mix{PredictWeight: 8, BatchWeight: 1, ObserveWeight: 2, ReloadWeight: 0.5}, nil
	case "ingest":
		return Mix{PredictWeight: 1.5, BatchWeight: 0.5, ObserveWeight: 8, BatchSize: 8}, nil
	default:
		return Mix{}, fmt.Errorf("loadgen: unknown mix preset %q (have predict, mixed, ingest)", name)
	}
}

func (m Mix) validate() error {
	for _, w := range []float64{m.PredictWeight, m.BatchWeight, m.ObserveWeight, m.ReloadWeight, m.PlacementWeight} {
		if w < 0 {
			return fmt.Errorf("loadgen: negative mix weight")
		}
	}
	if m.ZipfSkew < 0 {
		return fmt.Errorf("loadgen: negative zipf skew")
	}
	return nil
}

// Operation kind names, also the per-op keys of the report.
const (
	OpPredict    = "predict"
	OpBatch      = "predict_batch"
	OpObserve    = "observations"
	OpReload     = "reload"
	OpPlacements = "placements"
)

// Op is one generated request.
type Op struct {
	// Kind is one of the Op* constants.
	Kind string
	// Method and Path address the serve-tier endpoint.
	Method string
	Path   string
	// Body is the JSON request body (nil for reload).
	Body []byte
}

// generator produces the deterministic op stream: a Zipf-permuted
// scenario sampler plus a weighted op-kind sampler, all drawing from one
// seeded source so the sequence is reproducible bit-for-bit.
type generator struct {
	space *Space
	perm  []int
	zipf  *xrand.Zipf
	kinds *xrand.Weighted
	byIdx []string
	batch int
	src   *xrand.Source
}

func newGenerator(space *Space, mix Mix, src *xrand.Source) *generator {
	mix.defaults()
	g := &generator{
		space: space,
		perm:  src.Perm(space.Size()),
		zipf:  xrand.NewZipf(src, mix.ZipfSkew, space.Size()),
		batch: mix.BatchSize,
		src:   src,
	}
	var weights []float64
	for _, kw := range []struct {
		kind   string
		weight float64
	}{
		{OpPredict, mix.PredictWeight},
		{OpBatch, mix.BatchWeight},
		{OpObserve, mix.ObserveWeight},
		{OpReload, mix.ReloadWeight},
		{OpPlacements, mix.PlacementWeight},
	} {
		if kw.weight > 0 {
			g.byIdx = append(g.byIdx, kw.kind)
			weights = append(weights, kw.weight)
		}
	}
	g.kinds = xrand.NewWeighted(src, weights)
	return g
}

func (g *generator) scenario() serve.ScenarioRequest {
	return g.space.Scenario(g.perm[g.zipf.Next()])
}

func mustMarshal(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("loadgen: marshaling request: %v", err))
	}
	return raw
}

// next returns the next op in the stream.
func (g *generator) next() Op {
	switch kind := g.byIdx[g.kinds.Next()]; kind {
	case OpPredict:
		return Op{Kind: kind, Method: "POST", Path: "/v1/predict",
			Body: mustMarshal(serve.PredictRequest{ScenarioRequest: g.scenario()})}
	case OpBatch:
		scs := make([]serve.ScenarioRequest, g.batch)
		for i := range scs {
			scs[i] = g.scenario()
		}
		return Op{Kind: kind, Method: "POST", Path: "/v1/predict/batch",
			Body: mustMarshal(serve.BatchRequest{Scenarios: scs})}
	case OpObserve:
		sc := g.scenario()
		return Op{Kind: kind, Method: "POST", Path: "/v1/observations",
			Body: mustMarshal(serve.ObservationRequest{
				Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
				// A plausible positive runtime; load generation only
				// exercises the ingest path, not model accuracy.
				MeasuredSeconds: g.src.LogNormal(3, 0.5),
			})}
	case OpPlacements:
		// A small seeded optimizer problem: a two-machine fleet of the
		// model's default machine and 3..6 pending apps sampled from the
		// scenario population. The beam is kept narrow so one op stays a
		// bounded (if heavy) unit of work.
		apps := make([]string, 3+g.src.Intn(4))
		for i := range apps {
			apps[i] = g.space.apps[g.src.Intn(len(g.space.apps))]
		}
		return Op{Kind: kind, Method: "POST", Path: "/v1/placements",
			Body: mustMarshal(serve.PlacementsRequest{
				Machines:    []serve.PlacementMachineRequest{{Count: 2}},
				Apps:        apps,
				MaxSlowdown: 2.5,
				Seed:        g.src.Uint64(),
				Beam:        4,
			})}
	default: // OpReload
		return Op{Kind: OpReload, Method: "POST", Path: "/v1/models/reload"}
	}
}
