package loadgen

import (
	"math"
	"time"
)

// Latency is recorded into a log-bucketed histogram: bucket i covers
// durations in [base·g^i, base·g^(i+1)) with base = 1µs and g = 2^(1/8),
// giving ~9 % relative resolution from a microsecond up past an hour in
// a fixed 256-slot array. Each worker owns a private histogram (no
// locking on the hot path); histograms merge after the run.

const (
	histBuckets = 256
	histBase    = float64(time.Microsecond)
)

// histInvLogGrowth is 1/ln(2^(1/8)): buckets per natural-log unit.
var histInvLogGrowth = 8 / math.Ln2

// Histogram is a log-bucketed latency histogram with running min, max,
// sum and count. The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    float64 // seconds
	min    time.Duration
	max    time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	i := int(math.Log(float64(d)/histBase) * histInvLogGrowth)
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) float64 {
	if i <= 0 {
		return 0
	}
	return histBase * math.Exp(float64(i)/histInvLogGrowth)
}

// Record folds one latency sample in.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.count++
	h.sum += d.Seconds()
	if d > h.max {
		h.max = d
	}
	if h.count == 1 || d < h.min {
		h.min = d
	}
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean recorded latency.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.count) * float64(time.Second))
}

// Min and Max return the recorded extremes.
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation
// within the covering log bucket, clamped to the recorded min/max so a
// sparsely filled bucket cannot report a value outside the data.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			lo, hi := bucketLow(i), bucketLow(i+1)
			frac := (rank - cum) / float64(c)
			v := time.Duration(lo + frac*(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}
