package loadgen

// The soak tests promised by the serving tier: the loadgen harness
// drives serve.Server's real mux in process (HandlerDoer), so one
// seeded short soak exercises registry hot-swap, the sharded cache,
// batch prediction and the adaptation ingest path end to end — under
// -race in CI — with zero network jitter and a reproducible op stream.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/drift"
	"colocmodel/internal/features"
	"colocmodel/internal/feedback"
	"colocmodel/internal/harness"
	"colocmodel/internal/serve"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

var (
	soakOnce sync.Once
	soakDS   *harness.Dataset
	soakErr  error
)

// soakDataset is a small offline sweep shared by the soak tests.
func soakDataset(t testing.TB) *harness.Dataset {
	t.Helper()
	soakOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		ep, _ := workload.ByName("ep")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, ep},
			CoApps:     []workload.App{cg, ep},
			CoCounts:   []int{1, 2},
			PStates:    []int{0, 1},
			NoiseSigma: 0.01,
			Seed:       7,
		}
		soakDS, soakErr = harness.Collect(plan)
	})
	if soakErr != nil {
		t.Fatal(soakErr)
	}
	return soakDS
}

// newSoakServer trains a small linear model, saves it so the registry
// entry is disk-backed (reload ops re-read and hot-swap it, bumping the
// generation), and attaches the adaptation loop with an effectively
// untrippable drift monitor so observation traffic exercises the ingest
// path without ever firing the detector.
func newSoakServer(t testing.TB) *serve.Server {
	return newSoakServerWith(t, serve.Config{CacheSize: 1 << 10})
}

// newSoakServerWith is newSoakServer with an explicit serve config, for
// soaks that need observability knobs (slow thresholds, trace rings) on
// the backend tier.
func newSoakServerWith(t testing.TB, cfg serve.Config) *serve.Server {
	t.Helper()
	log, err := feedback.Open(feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return newSoakServerLog(t, cfg, log)
}

// newSoakServerLog is newSoakServerWith with an explicit observation
// store, for soaks that need the disk-backed group-commit log (ingest
// soaks reopening the log mid-run).
func newSoakServerLog(t testing.TB, cfg serve.Config, log feedback.Store) *serve.Server {
	t.Helper()
	ds := soakDataset(t)
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: 1}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "primary.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Add("primary", path, m); err != nil {
		t.Fatal(err)
	}
	s := serve.New(reg, cfg)
	mon := drift.NewMonitor(drift.Config{Lambda: 1e18, MinSamples: 1 << 30})
	if err := s.EnableAdaptation(serve.Adaptation{Log: log, Monitor: mon}); err != nil {
		t.Fatal(err)
	}
	return s
}

// soakSpace derives the scenario space from the served model exactly as
// cmd/coloload does: from the /v1/models listing.
func soakSpace(t testing.TB, s *serve.Server) *Space {
	t.Helper()
	infos := s.Registry().List()
	if len(infos) != 1 {
		t.Fatalf("registry lists %d models, want 1", len(infos))
	}
	space, err := SpaceFromModel(infos[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

// TestSeededSoakInProcess is the CI soak: a request-bounded closed-loop
// run with a mixed predict / batch / observe / reload stream against
// the in-process mux. Reload ops hot-swap the model concurrently with
// predict traffic, so the generation-monotonicity check is live; any
// 4xx proves the generator emits invalid requests, any 5xx or transport
// error proves the serving tier breaks under concurrency.
func TestSeededSoakInProcess(t *testing.T) {
	s := newSoakServer(t)
	space := soakSpace(t, s)
	d := &HandlerDoer{Handler: s.Handler()}

	const requests = 2000
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 8,
		Duration:    time.Minute, // the request budget ends the run
		Requests:    requests,
		Seed:        42,
		Mix: Mix{
			ZipfSkew:      1.1,
			PredictWeight: 8,
			BatchWeight:   1,
			ObserveWeight: 2,
			ReloadWeight:  0.5,
			BatchSize:     8,
		},
		CheckGenerations: true,
	}, d, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != requests {
		t.Fatalf("measured %d requests, want %d", rep.Requests, requests)
	}
	if rep.Status4xx != 0 || rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("soak saw errors: 4xx=%d 5xx=%d transport=%d (rate %.4f)",
			rep.Status4xx, rep.Status5xx, rep.TransportErrors, rep.ErrorRate)
	}
	if rep.GenerationRegressions != 0 {
		t.Fatalf("%d generation regressions: hot swap served a stale model", rep.GenerationRegressions)
	}
	for _, kind := range []string{OpPredict, OpBatch, OpObserve, OpReload} {
		if rep.PerOp[kind] == 0 {
			t.Errorf("op kind %q absent from the soak (per_op: %v)", kind, rep.PerOp)
		}
	}
	// Reload traffic actually swapped: the registry generation moved.
	if infos := s.Registry().List(); infos[0].Generation < 2 {
		t.Fatalf("generation still %d after %d reload ops", infos[0].Generation, rep.PerOp[OpReload])
	}
	// The ingest path actually logged: observation count matches the ops
	// (each observe op carries exactly one observation).
	if got := s.Adaptation().Log.Len(); uint64(got) != rep.PerOp[OpObserve] {
		t.Fatalf("feedback log holds %d observations, want %d", got, rep.PerOp[OpObserve])
	}
	// An SLO gate a healthy in-process run must clear.
	if v := rep.Gate(SLO{MaxErrorRate: 0, MinThroughput: 1}); len(v) != 0 {
		t.Fatalf("SLO violations: %v", v)
	}
}

// TestSeededSoakDeterministic re-runs a single-worker request-bounded
// soak twice with one seed: the op mix — and therefore the per-op
// counts and the feedback-log depth — must be identical across runs.
func TestSeededSoakDeterministic(t *testing.T) {
	run := func() (*Report, int) {
		s := newSoakServer(t)
		space := soakSpace(t, s)
		rep, err := Run(Config{
			Mode:        ClosedLoop,
			Concurrency: 1,
			Duration:    time.Minute,
			Requests:    400,
			Seed:        9,
			Mix: Mix{
				PredictWeight: 4,
				BatchWeight:   1,
				ObserveWeight: 1,
				ReloadWeight:  0.25,
				BatchSize:     4,
			},
			CheckGenerations: true,
		}, &HandlerDoer{Handler: s.Handler()}, space)
		if err != nil {
			t.Fatal(err)
		}
		return rep, s.Adaptation().Log.Len()
	}
	repA, logA := run()
	repB, logB := run()
	if repA.Requests != repB.Requests {
		t.Fatalf("request counts differ: %d vs %d", repA.Requests, repB.Requests)
	}
	for kind, n := range repA.PerOp {
		if repB.PerOp[kind] != n {
			t.Fatalf("per-op %q differs across identically seeded runs: %d vs %d",
				kind, n, repB.PerOp[kind])
		}
	}
	if logA != logB {
		t.Fatalf("feedback log depth differs: %d vs %d", logA, logB)
	}
	if repA.Errors != 0 || repB.Errors != 0 {
		t.Fatalf("deterministic soak saw errors: %d, %d", repA.Errors, repB.Errors)
	}
}

// TestSoakRaceReloadObservations pits a predict-only loadgen soak
// against dedicated reload and observation writers — the exact
// concurrency pattern of a deployed scheduler (hot predictions) whose
// model artefacts are republished while measurement agents stream
// runtimes in. Run under -race in CI. Invariants: zero 5xx anywhere,
// and no worker ever observes the registry generation move backwards.
func TestSoakRaceReloadObservations(t *testing.T) {
	s := newSoakServer(t)
	space := soakSpace(t, s)
	h := s.Handler()

	post := func(path, body string) (int, string) {
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(http.MethodPost, path, rd)
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	done := make(chan struct{})
	errs := make(chan error, 2)
	var writers sync.WaitGroup

	// Reload writer: republishes the artefact as fast as it can.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			if code, body := post("/v1/models/reload", ""); code != http.StatusOK {
				errs <- fmt.Errorf("reload returned %d: %s", code, body)
				return
			}
		}
	}()

	// Observation writer: streams measured runtimes for scenarios the
	// model covers, forcing server-side prediction (and cache traffic)
	// on every ingest.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			sc := space.Scenario(i % space.Size())
			co := ""
			if len(sc.CoApps) > 0 {
				co = `"co_apps":["` + strings.Join(sc.CoApps, `","`) + `"],`
			}
			body := fmt.Sprintf(`{"target":%q,%s"pstate":%d,"measured_seconds":42.5}`, sc.Target, co, sc.PState)
			if code, resp := post("/v1/observations", body); code != http.StatusOK {
				errs <- fmt.Errorf("observation returned %d: %s", code, resp)
				return
			}
		}
	}()

	rep, err := Run(Config{
		Mode:             ClosedLoop,
		Concurrency:      8,
		Duration:         time.Minute,
		Requests:         1500,
		Seed:             1234,
		Mix:              Mix{ZipfSkew: 1.1, PredictWeight: 1},
		CheckGenerations: true,
	}, &HandlerDoer{Handler: h}, space)
	close(done)
	writers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if werr := <-errs; werr != nil {
			t.Fatal(werr)
		}
	}
	if rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("predict traffic failed under concurrent reload: 5xx=%d transport=%d", rep.Status5xx, rep.TransportErrors)
	}
	if rep.Status4xx != 0 {
		t.Fatalf("predict traffic rejected: 4xx=%d", rep.Status4xx)
	}
	if rep.GenerationRegressions != 0 {
		t.Fatalf("%d generation regressions under concurrent reload", rep.GenerationRegressions)
	}
	if infos := s.Registry().List(); infos[0].Generation < 2 {
		t.Fatal("reload writer never swapped the model; race coverage lost")
	}
}
