package loadgen

// The fleet-observability acceptance soak: a seeded in-process cluster
// run (router + replicas over loopback HTTP, under -race in CI) must
// leave stitched cross-process traces in the router's ring — router
// route/proxy spans plus the winning backend's decode → cache → eval →
// encode spans under one trace ID — and the router's fleet-metrics
// merge must equal the arithmetic sum of the per-backend scrapes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colocmodel/internal/cluster"
	"colocmodel/internal/fleetobs"
	"colocmodel/internal/obs"
	"colocmodel/internal/serve"
)

func doHandler(t testing.TB, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestFleetObservabilitySoak(t *testing.T) {
	// Retain-all thresholds on BOTH tiers: the router keeps every trace
	// in its ring and the backends ship their span tree on every sampled
	// request, so the stitching assertions see the whole stream.
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	ct, err := NewClusterTarget(ctx,
		cluster.Config{Replicas: 2, SlowThreshold: -1, ProbeInterval: time.Hour}, 3,
		func(int) (*serve.Server, error) {
			return newSoakServerWith(t, serve.Config{CacheSize: 1 << 10, SlowThreshold: -1}), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ct.Close)
	space := soakSpace(t, ct.Servers[0])

	const requests = 600
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 8,
		Duration:    time.Minute,
		Requests:    requests,
		Seed:        99,
		Mix: Mix{
			ZipfSkew:      1.1,
			PredictWeight: 8,
			BatchWeight:   1,
			ObserveWeight: 1,
			BatchSize:     4,
		},
	}, ct.Doer(), space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status4xx != 0 || rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("soak saw errors: 4xx=%d 5xx=%d transport=%d", rep.Status4xx, rep.Status5xx, rep.TransportErrors)
	}

	h := ct.Router.Handler()

	// 1. The ring retained stitched traces: at least one predict trace
	// carries the router's route span AND the winning backend's full
	// stage pipeline under the router's trace ID.
	rec := doHandler(t, h, http.MethodGet, "/v1/traces?endpoint=predict&limit=200", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("traces returned %d: %s", rec.Code, rec.Body.String())
	}
	var traces serve.TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &traces); err != nil {
		t.Fatal(err)
	}
	stitched := 0
	for _, td := range traces.Traces {
		if td.Status != http.StatusOK || len(td.TraceID) != 32 {
			continue
		}
		spans := make(map[string]int) // "name/origin" -> index
		for i, sp := range td.Spans {
			spans[sp.Name+"/"+sp.Origin] = i
		}
		if _, ok := spans["route/"]; !ok {
			continue
		}
		backend := ""
		for _, name := range []string{"b0", "b1", "b2"} {
			if _, ok := spans["predict/"+name]; ok {
				backend = name
				break
			}
		}
		if backend == "" {
			continue
		}
		complete := true
		for _, stage := range []string{"decode", "cache", "eval", "encode"} {
			if _, ok := spans[stage+"/"+backend]; !ok {
				complete = false
				break
			}
		}
		if complete {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("no stitched predict trace among %d retained traces", traces.Count)
	}

	// 2. The fleet-metrics merge equals the arithmetic sum of the
	// per-backend scrapes (traffic has stopped, so counters are stable;
	// the comparison sticks to the predict endpoints, which the scrapes
	// themselves cannot move).
	rec = doHandler(t, h, http.MethodGet, "/v1/fleet/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet metrics returned %d", rec.Code)
	}
	merged, err := fleetobs.Parse(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("fleet document does not parse: %v", err)
	}
	for _, endpoint := range []string{"predict", "predict_batch"} {
		ep := fleetobs.Label{Key: "endpoint", Value: endpoint}
		var wantReq, wantInf float64
		for i := range ct.Servers {
			resp, err := http.Get(ct.BackendURL(i) + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			doc, err := fleetobs.Parse(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("backend %d scrape does not parse: %v", i, err)
			}
			v, _ := doc.SumSamples("coloserve_requests_total", "coloserve_requests_total", ep)
			wantReq += v
			v, _ = doc.SumSamples("coloserve_request_duration_seconds",
				"coloserve_request_duration_seconds_bucket", ep, fleetobs.Label{Key: "le", Value: "+Inf"})
			wantInf += v
		}
		got, _ := merged.SumSamples("coloserve_requests_total", "coloserve_requests_total", ep)
		if got != wantReq {
			t.Fatalf("%s: merged requests %v, want the per-backend sum %v", endpoint, got, wantReq)
		}
		got, _ = merged.SumSamples("coloserve_request_duration_seconds",
			"coloserve_request_duration_seconds_bucket", ep, fleetobs.Label{Key: "le", Value: "+Inf"})
		if got != wantInf {
			t.Fatalf("%s: merged +Inf bucket %v, want the per-backend sum %v", endpoint, got, wantInf)
		}
	}

	// 3. An error-free soak verdicts ok on both tiers.
	rec = doHandler(t, h, http.MethodGet, "/v1/slo", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("router slo returned %d", rec.Code)
	}
	var st obs.SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "ok" {
		t.Fatalf("router SLO state %q after an error-free soak, want ok (%+v)", st.State, st)
	}
	if st.Short.Good == 0 {
		t.Fatal("router SLO short window saw no observations")
	}
}

// BenchmarkClusterProxyTracing measures the router's cache-hit proxy
// hot path with observability on (default: tracing, traceparent
// injection, SLO accounting) against fully off, to bound the tracing
// overhead. The path includes a real loopback HTTP hop, as production
// does.
func BenchmarkClusterProxyTracing(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  cluster.Config
	}{
		{"traced", cluster.Config{Replicas: 2, HedgeAfter: -1}},
		{"untraced", cluster.Config{Replicas: 2, HedgeAfter: -1, TraceRing: -1, SLOObjective: -1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := mode.cfg
			cfg.ProbeInterval = time.Hour
			ct, err := NewClusterTarget(ctx, cfg, 2, func(int) (*serve.Server, error) {
				return newSoakServer(b), nil
			})
			if err != nil {
				b.Fatal(err)
			}
			defer ct.Close()
			space := soakSpace(b, ct.Servers[0])
			sc := space.Scenario(0)
			co := ""
			if len(sc.CoApps) > 0 {
				co = `"co_apps":["` + strings.Join(sc.CoApps, `","`) + `"],`
			}
			body := fmt.Sprintf(`{"target":%q,%s"pstate":%d}`, sc.Target, co, sc.PState)
			h := ct.Router.Handler()
			if rec := doHandler(b, h, http.MethodPost, "/v1/predict", body); rec.Code != http.StatusOK {
				b.Fatalf("warm-up predict returned %d: %s", rec.Code, rec.Body.String())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rec := doHandler(b, h, http.MethodPost, "/v1/predict", body); rec.Code != http.StatusOK {
					b.Fatalf("predict returned %d", rec.Code)
				}
			}
		})
	}
}
