package loadgen

import (
	"context"
	"fmt"
	"net/http/httptest"

	"colocmodel/internal/cluster"
	"colocmodel/internal/serve"
)

// ClusterTarget is an in-process serving fleet: n coloserve replicas on
// httptest listeners joined to a colorouter gateway. Driving the
// returned Doer exercises the full two-hop path — router routing,
// coalescing and hedging in front, real HTTP to the replicas behind —
// deterministically enough to run as a seeded soak under -race.
type ClusterTarget struct {
	// Router is the gateway; its Pool and Metrics are exposed so soaks
	// can step probes and assert on routing behaviour.
	Router *cluster.Router
	// Servers are the replicas, in join order (backend i is named "bi").
	Servers   []*serve.Server
	listeners []*httptest.Server
}

// NewClusterTarget builds a fleet of n replicas behind a router.
// newServer constructs replica i; each replica must own its registry
// (rolling promotions bump generations per backend, which shared state
// would hide). The router probes every backend once before returning,
// so routing starts with fresh health and generation data; the periodic
// probe loop runs until ctx is cancelled.
func NewClusterTarget(ctx context.Context, cfg cluster.Config, n int, newServer func(i int) (*serve.Server, error)) (*ClusterTarget, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: cluster size must be positive, got %d", n)
	}
	ct := &ClusterTarget{Router: cluster.New(cfg)}
	for i := 0; i < n; i++ {
		srv, err := newServer(i)
		if err != nil {
			ct.Close()
			return nil, fmt.Errorf("loadgen: building replica %d: %w", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		ct.Servers = append(ct.Servers, srv)
		ct.listeners = append(ct.listeners, ts)
		if err := ct.Router.Pool().Add(fmt.Sprintf("b%d", i), ts.URL); err != nil {
			ct.Close()
			return nil, err
		}
	}
	ct.Router.Start(ctx)
	return ct, nil
}

// Doer returns a Doer that drives the router's handler in process (the
// router still reaches its backends over real loopback HTTP).
func (ct *ClusterTarget) Doer() Doer {
	return &HandlerDoer{Handler: ct.Router.Handler()}
}

// BackendURL returns replica i's base URL.
func (ct *ClusterTarget) BackendURL(i int) string { return ct.listeners[i].URL }

// Close shuts the replica listeners down.
func (ct *ClusterTarget) Close() {
	for _, ts := range ct.listeners {
		ts.Close()
	}
}
