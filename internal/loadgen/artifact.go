package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// MergeArtifact folds one benchmark artifact into the trajectory file
// at path: the file holds a JSON array of artifacts keyed by bench
// name; an entry with the same name is replaced in place, every other
// entry is preserved, and the array stays sorted by name so re-running
// one benchmark produces a minimal diff. A legacy single-object file
// (the format before cluster benchmarks joined the trajectory) is
// adopted as a one-entry array. The merged set is written back and
// returned.
func MergeArtifact(path string, art BenchArtifact) ([]BenchArtifact, error) {
	var arts []BenchArtifact
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		arts, err = decodeArtifacts(raw)
		if err != nil {
			return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
		}
	case os.IsNotExist(err):
		// First write: start a fresh trajectory.
	default:
		return nil, err
	}
	replaced := false
	for i := range arts {
		if arts[i].Bench == art.Bench {
			arts[i] = art
			replaced = true
			break
		}
	}
	if !replaced {
		arts = append(arts, art)
	}
	sort.SliceStable(arts, func(i, j int) bool { return arts[i].Bench < arts[j].Bench })
	out, err := json.MarshalIndent(arts, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	return arts, nil
}

// decodeArtifacts parses a trajectory file: a JSON array of artifacts,
// or one bare artifact object from before the format grew.
func decodeArtifacts(raw []byte) ([]BenchArtifact, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, nil
	}
	if trimmed[0] == '[' {
		var arts []BenchArtifact
		if err := json.Unmarshal(trimmed, &arts); err != nil {
			return nil, err
		}
		return arts, nil
	}
	var one BenchArtifact
	if err := json.Unmarshal(trimmed, &one); err != nil {
		return nil, err
	}
	return []BenchArtifact{one}, nil
}
