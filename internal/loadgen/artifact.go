package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// MergeArtifact folds one benchmark artifact into the trajectory file
// at path: the file holds a JSON array of artifacts keyed by bench
// name; an entry with the same name is replaced in place, every other
// entry is preserved, and the array stays sorted by name so re-running
// one benchmark produces a minimal diff. A legacy single-object file
// (the format before cluster benchmarks joined the trajectory) is
// adopted as a one-entry array. The merged set is written back and
// returned.
func MergeArtifact(path string, art BenchArtifact) ([]BenchArtifact, error) {
	raw, err := json.Marshal(art)
	if err != nil {
		return nil, err
	}
	merged, err := MergeRawArtifact(path, raw)
	if err != nil {
		return nil, err
	}
	arts := make([]BenchArtifact, len(merged))
	for i, entry := range merged {
		if err := json.Unmarshal(entry, &arts[i]); err != nil {
			return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
		}
	}
	return arts, nil
}

// MergeRawArtifact is the schema-free core of the trajectory format:
// it folds one pre-encoded artifact object into the file at path,
// keyed by the object's "bench" field ("benchmark" is accepted as a
// legacy alias so trajectories started before the array format can be
// adopted in place). Entries with other schemas — different tools
// share one trajectory file — pass through byte-for-byte. The merged,
// name-sorted set is written back and returned.
func MergeRawArtifact(path string, art json.RawMessage) ([]json.RawMessage, error) {
	key, err := artifactKey(art)
	if err != nil {
		return nil, err
	}
	var arts []json.RawMessage
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		arts, err = decodeRawArtifacts(raw)
		if err != nil {
			return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
		}
	case os.IsNotExist(err):
		// First write: start a fresh trajectory.
	default:
		return nil, err
	}
	type keyed struct {
		key string
		art json.RawMessage
	}
	entries := make([]keyed, 0, len(arts)+1)
	replaced := false
	for i, entry := range arts {
		k, err := artifactKey(entry)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %s entry %d: %w", path, i, err)
		}
		if k == key {
			entry = art
			replaced = true
		}
		entries = append(entries, keyed{key: k, art: entry})
	}
	if !replaced {
		entries = append(entries, keyed{key: key, art: art})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	arts = arts[:0]
	for _, e := range entries {
		arts = append(arts, e.art)
	}
	out, err := json.MarshalIndent(arts, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	return arts, nil
}

// artifactKey extracts the bench name of one artifact object.
func artifactKey(raw json.RawMessage) (string, error) {
	var probe struct {
		Bench     string `json:"bench"`
		Benchmark string `json:"benchmark"` // legacy single-object key
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return "", fmt.Errorf("loadgen: artifact is not a JSON object: %w", err)
	}
	switch {
	case probe.Bench != "":
		return probe.Bench, nil
	case probe.Benchmark != "":
		return probe.Benchmark, nil
	default:
		return "", fmt.Errorf("loadgen: artifact has no bench name")
	}
}

// decodeRawArtifacts parses a trajectory file: a JSON array of
// artifacts, or one bare artifact object from before the format grew.
func decodeRawArtifacts(raw []byte) ([]json.RawMessage, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return nil, nil
	}
	if trimmed[0] == '[' {
		var arts []json.RawMessage
		if err := json.Unmarshal(trimmed, &arts); err != nil {
			return nil, err
		}
		return arts, nil
	}
	var one json.RawMessage
	if err := json.Unmarshal(trimmed, &one); err != nil {
		return nil, err
	}
	return []json.RawMessage{one}, nil
}
