package loadgen

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"testing"
	"time"

	"colocmodel/internal/serve"
	"colocmodel/internal/xrand"
)

// mustStrictDecode decodes JSON exactly as the serve tier does:
// unknown fields are an error.
func mustStrictDecode(t *testing.T, raw []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("strict decode of %s: %v", raw, err)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatalf("zero histogram not empty: count=%d", h.Count())
	}
	samples := []time.Duration{
		50 * time.Microsecond,
		100 * time.Microsecond,
		200 * time.Microsecond,
		400 * time.Microsecond,
		10 * time.Millisecond,
	}
	for _, d := range samples {
		h.Record(d)
	}
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(samples))
	}
	if h.Min() != 50*time.Microsecond || h.Max() != 10*time.Millisecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	wantMean := (50 + 100 + 200 + 400 + 10000) * time.Microsecond / 5
	if got := h.Mean(); got < wantMean-time.Microsecond || got > wantMean+time.Microsecond {
		t.Fatalf("mean = %v, want ~%v", got, wantMean)
	}
	// Quantiles must be monotone and clamped to [min, max].
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("quantile %v = %v outside [%v, %v]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
}

func TestHistogramBucketResolution(t *testing.T) {
	// The log bucketing promises ~9 % relative resolution: any recorded
	// duration's quantile estimate must land within one bucket width.
	for _, d := range []time.Duration{
		time.Microsecond, 37 * time.Microsecond, time.Millisecond,
		73 * time.Millisecond, time.Second, time.Minute,
	} {
		var h Histogram
		h.Record(d)
		got := h.Quantile(0.5)
		rel := math.Abs(got.Seconds()-d.Seconds()) / d.Seconds()
		if rel > 0.10 {
			t.Errorf("Quantile after Record(%v) = %v (relative error %.3f > 0.10)", d, got, rel)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	src := xrand.New(11)
	for i := 0; i < 1000; i++ {
		d := time.Duration(src.LogNormal(math.Log(float64(time.Millisecond)), 1))
		all.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merged count/min/max = %d/%v/%v, want %d/%v/%v",
			a.Count(), a.Min(), a.Max(), all.Count(), all.Min(), all.Max())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merged q%v = %v, direct = %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestWeightedNeverDrawsZeroWeight(t *testing.T) {
	src := xrand.New(3)
	w := xrand.NewWeighted(src, []float64{0, 1, 0, 2})
	for i := 0; i < 10000; i++ {
		got := w.Next()
		if got == 0 || got == 2 {
			t.Fatalf("drew zero-weight index %d", got)
		}
	}
}

func TestWeightedProportions(t *testing.T) {
	src := xrand.New(5)
	w := xrand.NewWeighted(src, []float64{1, 3})
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	frac := float64(counts[1]) / n
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("weight-3 index drawn %.3f of the time, want ~0.75", frac)
	}
}

func TestSpaceScenarioRoundTrip(t *testing.T) {
	space, err := NewSpace([]string{"cg", "ep", "mg"}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := 3 * (1 + 3*2) * 2
	if space.Size() != wantSize {
		t.Fatalf("Size = %d, want %d", space.Size(), wantSize)
	}
	seen := make(map[string]bool)
	for i := 0; i < space.Size(); i++ {
		sc := space.Scenario(i)
		if sc.Target == "" {
			t.Fatalf("scenario %d has empty target", i)
		}
		if sc.PState < 0 || sc.PState >= 2 {
			t.Fatalf("scenario %d pstate %d out of range", i, sc.PState)
		}
		if len(sc.CoApps) > 2 {
			t.Fatalf("scenario %d has %d co-apps, max 2", i, len(sc.CoApps))
		}
		key := sc.Target + "|" + string(rune('0'+sc.PState))
		for _, c := range sc.CoApps {
			key += "|" + c
		}
		if seen[key] {
			t.Fatalf("scenario %d duplicates %q", i, key)
		}
		seen[key] = true
	}
	if len(seen) != wantSize {
		t.Fatalf("decoded %d distinct scenarios, want %d", len(seen), wantSize)
	}
}

func TestSpaceValidation(t *testing.T) {
	cases := []struct {
		apps    []string
		pstates int
		maxCo   int
	}{
		{nil, 1, 1},
		{[]string{""}, 1, 1},
		{[]string{"cg"}, 0, 1},
		{[]string{"cg"}, 1, -1},
	}
	for _, c := range cases {
		if _, err := NewSpace(c.apps, c.pstates, c.maxCo); err == nil {
			t.Errorf("NewSpace(%v, %d, %d) accepted invalid input", c.apps, c.pstates, c.maxCo)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	space, err := NewSpace([]string{"cg", "ep", "canneal"}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	mix := Mix{ZipfSkew: 1.1, PredictWeight: 4, BatchWeight: 1, ObserveWeight: 1, ReloadWeight: 0.1, BatchSize: 4}
	stream := func() []Op {
		g := newGenerator(space, mix, xrand.New(99))
		ops := make([]Op, 500)
		for i := range ops {
			ops[i] = g.next()
		}
		return ops
	}
	a, b := stream(), stream()
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Path != b[i].Path || !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("op %d differs across identically seeded generators", i)
		}
	}
	// A different seed must produce a different stream.
	g2 := newGenerator(space, mix, xrand.New(100))
	same := 0
	for i := 0; i < 100; i++ {
		if bytes.Equal(a[i].Body, g2.next().Body) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical op streams")
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	space, err := NewSpace([]string{"cg", "ep", "mg", "lu"}, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := newGenerator(space, Mix{ZipfSkew: 1.2, PredictWeight: 1}, xrand.New(42))
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[string(g.next().Body)]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if freqs[0] < n/10 {
		t.Fatalf("hottest scenario got %d/%d draws; zipf skew not applied", freqs[0], n)
	}
	if len(counts) < 10 {
		t.Fatalf("only %d distinct scenarios drawn; tail missing", len(counts))
	}
}

// fixedDoer answers every op with a canned status after an optional
// deterministic delay.
type fixedDoer struct {
	status int
	body   []byte
}

func (f *fixedDoer) Do(op Op) (int, http.Header, []byte, error) {
	return f.status, nil, f.body, nil
}

func testSpace(t *testing.T) *Space {
	t.Helper()
	space, err := NewSpace([]string{"cg", "ep"}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func TestRunClosedLoopRequestBound(t *testing.T) {
	space := testSpace(t)
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 4,
		Duration:    time.Minute, // request budget ends the run long before this
		Requests:    500,
		Seed:        7,
	}, &fixedDoer{status: 200, body: []byte(`{"generation":1}`)}, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 500 {
		t.Fatalf("measured %d requests, want 500", rep.Requests)
	}
	if rep.Errors != 0 || rep.ErrorRate != 0 {
		t.Fatalf("errors = %d, rate = %v, want zero", rep.Errors, rep.ErrorRate)
	}
	if rep.Status2xx != 500 {
		t.Fatalf("status_2xx = %d, want 500", rep.Status2xx)
	}
	if rep.ThroughputPerSec <= 0 {
		t.Fatalf("throughput = %v, want > 0", rep.ThroughputPerSec)
	}
	if rep.Mode != "closed-loop" || rep.Concurrency != 4 || rep.Seed != 7 {
		t.Fatalf("config echo wrong: %+v", rep)
	}
	if rep.PerOp[OpPredict] != 500 {
		t.Fatalf("per_op predict = %d, want 500", rep.PerOp[OpPredict])
	}
}

func TestRunCountsErrorStatuses(t *testing.T) {
	space := testSpace(t)
	rep, err := Run(Config{
		Mode:     ClosedLoop,
		Duration: time.Minute,
		Requests: 100,
		Seed:     1,
	}, &fixedDoer{status: 503}, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status5xx != 100 || rep.Errors != 100 || rep.ErrorRate != 1 {
		t.Fatalf("5xx = %d, errors = %d, rate = %v; want all 100", rep.Status5xx, rep.Errors, rep.ErrorRate)
	}
}

func TestRunOpenLoop(t *testing.T) {
	space := testSpace(t)
	rep, err := Run(Config{
		Mode:        OpenLoop,
		Rate:        2000,
		Concurrency: 4,
		Duration:    time.Minute,
		Requests:    200,
		Seed:        3,
	}, &fixedDoer{status: 200}, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 200 {
		t.Fatalf("measured %d requests, want 200", rep.Requests)
	}
	if rep.Mode != "open-loop" || rep.TargetRate != 2000 {
		t.Fatalf("mode/rate echo wrong: %q %v", rep.Mode, rep.TargetRate)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	space := testSpace(t)
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 2,
		Duration:    300 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		Seed:        5,
	}, &fixedDoer{status: 200}, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmupRequests == 0 {
		t.Fatal("no warmup requests recorded despite 100ms warmup")
	}
	if rep.Requests == 0 {
		t.Fatal("no measured requests after warmup")
	}
}

func TestRunValidation(t *testing.T) {
	space := testSpace(t)
	d := &fixedDoer{status: 200}
	if _, err := Run(Config{Mode: OpenLoop}, d, space); err == nil {
		t.Error("open loop without rate accepted")
	}
	if _, err := Run(Config{}, nil, space); err == nil {
		t.Error("nil doer accepted")
	}
	if _, err := Run(Config{}, d, nil); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := Run(Config{Duration: time.Second, Warmup: time.Second}, d, space); err == nil {
		t.Error("warmup >= duration accepted")
	}
	if _, err := Run(Config{Mix: Mix{PredictWeight: -1}}, d, space); err == nil {
		t.Error("negative mix weight accepted")
	}
}

func TestGate(t *testing.T) {
	rep := &Report{
		ThroughputPerSec: 100,
		Requests:         1000,
		Errors:           10,
		ErrorRate:        0.01,
		Latency:          Quantiles{P50: 0.001, P95: 0.004, P99: 0.008, P999: 0.02},
	}
	if v := rep.Gate(SLO{MaxErrorRate: -1}); len(v) != 0 {
		t.Fatalf("everything-unchecked gate violated: %v", v)
	}
	if v := rep.Gate(SLO{MaxP99: 10 * time.Millisecond, MaxErrorRate: 0.02, MinThroughput: 50}); len(v) != 0 {
		t.Fatalf("passing SLO violated: %v", v)
	}
	v := rep.Gate(SLO{
		MaxP50:        500 * time.Microsecond,
		MaxP99:        5 * time.Millisecond,
		MaxP999:       10 * time.Millisecond,
		MaxErrorRate:  0.001,
		MinThroughput: 500,
	})
	if len(v) != 5 {
		t.Fatalf("expected 5 violations, got %d: %v", len(v), v)
	}
	// The zero-valued error-rate bound is strict: any error violates it.
	if v := rep.Gate(SLO{}); len(v) != 1 {
		t.Fatalf("zero-value SLO should flag the nonzero error rate, got %v", v)
	}
}

func TestGeneratedBodiesMatchWireTypes(t *testing.T) {
	// decodeJSON on the serve side disallows unknown fields, so every
	// generated body must round-trip through the exact wire structs.
	space := testSpace(t)
	g := newGenerator(space, Mix{PredictWeight: 1, BatchWeight: 1, ObserveWeight: 1, PlacementWeight: 1, BatchSize: 3}, xrand.New(17))
	kinds := make(map[string]bool)
	for i := 0; i < 200; i++ {
		op := g.next()
		kinds[op.Kind] = true
		switch op.Kind {
		case OpPredict:
			var req serve.PredictRequest
			mustStrictDecode(t, op.Body, &req)
			if req.Target == "" {
				t.Fatal("predict body missing target")
			}
		case OpBatch:
			var req serve.BatchRequest
			mustStrictDecode(t, op.Body, &req)
			if len(req.Scenarios) != 3 {
				t.Fatalf("batch carries %d scenarios, want 3", len(req.Scenarios))
			}
		case OpObserve:
			var req serve.ObservationRequest
			mustStrictDecode(t, op.Body, &req)
			if req.MeasuredSeconds <= 0 {
				t.Fatalf("observation measured_seconds = %v, want > 0", req.MeasuredSeconds)
			}
		case OpPlacements:
			var req serve.PlacementsRequest
			mustStrictDecode(t, op.Body, &req)
			if len(req.Apps) < 3 || len(req.Apps) > 6 {
				t.Fatalf("placements carries %d apps, want 3..6", len(req.Apps))
			}
			if len(req.Machines) != 1 || req.Machines[0].Count != 2 {
				t.Fatalf("placements fleet %+v, want one entry with count 2", req.Machines)
			}
			if req.MaxSlowdown <= 1 || req.Beam <= 0 {
				t.Fatalf("placements bounds max_slowdown=%v beam=%d", req.MaxSlowdown, req.Beam)
			}
		}
	}
	for _, k := range []string{OpPredict, OpBatch, OpObserve, OpPlacements} {
		if !kinds[k] {
			t.Errorf("op kind %q never generated in 200 draws", k)
		}
	}
}
