package loadgen

import (
	"fmt"
	"time"
)

// Quantiles summarises a latency distribution in seconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Report is the outcome of one load run. All counters cover the
// measured window (after warmup); warmup traffic is accounted
// separately so the gate never judges cold-start latency.
type Report struct {
	// Mode, Concurrency, Seed and TargetRate echo the run configuration.
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	Seed        uint64  `json:"seed"`
	TargetRate  float64 `json:"target_rate_per_sec,omitempty"`

	// DurationSeconds is the measured window's wall-clock length.
	DurationSeconds float64 `json:"duration_seconds"`
	// Requests counts measured requests; WarmupRequests the excluded
	// prefix.
	Requests       uint64 `json:"requests"`
	WarmupRequests uint64 `json:"warmup_requests"`
	// ThroughputPerSec is measured requests over the measured window.
	ThroughputPerSec float64 `json:"throughput_per_sec"`

	// Errors counts every failed measured request (transport errors plus
	// any non-2xx status); ErrorRate is Errors/Requests.
	Errors    uint64  `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	// Status breakdown of measured requests.
	Status2xx       uint64 `json:"status_2xx"`
	Status4xx       uint64 `json:"status_4xx"`
	Status5xx       uint64 `json:"status_5xx"`
	TransportErrors uint64 `json:"transport_errors"`
	// WarmupErrors counts failures inside the warmup window.
	WarmupErrors uint64 `json:"warmup_errors"`

	// GenerationRegressions counts predict responses whose registry
	// generation moved backwards within one worker's request sequence —
	// always zero unless the serving tier leaks stale models during
	// hot swap. Tracked only when Config.CheckGenerations is set.
	GenerationRegressions uint64 `json:"generation_regressions"`

	// PerOp counts measured requests by operation kind.
	PerOp map[string]uint64 `json:"per_op"`

	// ServerStages breaks measured requests down by server-side pipeline
	// stage (decode, cache, eval, fanout, ...) as reported in
	// Server-Timing response headers. Absent when the target does not
	// emit the header (tracing disabled).
	ServerStages map[string]StageStat `json:"server_stages,omitempty"`

	// Latency summarises the measured latency distribution. Open-loop
	// latency is measured from each request's scheduled arrival time, so
	// queueing delay under overload is included (no coordinated
	// omission).
	Latency Quantiles `json:"latency_seconds"`
}

// StageStat summarises one server-side stage across the measured
// requests that reported it.
type StageStat struct {
	// Count is how many measured requests reported the stage.
	Count uint64 `json:"count"`
	// TotalSeconds is the summed stage time; MeanSeconds the per-request
	// mean over Count.
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// SLO is a pass/fail gate over a report. Zero-valued duration bounds
// and MinThroughput are unchecked; MaxErrorRate is checked whenever it
// is non-negative, so the zero value demands a clean error-free run.
type SLO struct {
	// MaxP50/P95/P99/P999 bound the latency quantiles (0 = unchecked).
	MaxP50  time.Duration
	MaxP95  time.Duration
	MaxP99  time.Duration
	MaxP999 time.Duration
	// MaxErrorRate bounds Errors/Requests (negative = unchecked; 0
	// demands zero errors).
	MaxErrorRate float64
	// MinThroughput bounds measured req/s from below (0 = unchecked).
	MinThroughput float64
}

// Gate evaluates the SLO and returns one human-readable violation per
// breached bound (empty = pass).
func (r *Report) Gate(slo SLO) []string {
	var v []string
	bound := func(name string, got float64, max time.Duration) {
		if max > 0 && got > max.Seconds() {
			v = append(v, fmt.Sprintf("latency %s %.3fms exceeds SLO %.3fms",
				name, got*1e3, max.Seconds()*1e3))
		}
	}
	bound("p50", r.Latency.P50, slo.MaxP50)
	bound("p95", r.Latency.P95, slo.MaxP95)
	bound("p99", r.Latency.P99, slo.MaxP99)
	bound("p999", r.Latency.P999, slo.MaxP999)
	if slo.MaxErrorRate >= 0 && r.ErrorRate > slo.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f%% exceeds SLO %.4f%% (%d/%d failed)",
			r.ErrorRate*100, slo.MaxErrorRate*100, r.Errors, r.Requests))
	}
	if slo.MinThroughput > 0 && r.ThroughputPerSec < slo.MinThroughput {
		v = append(v, fmt.Sprintf("throughput %.1f req/s below SLO %.1f req/s",
			r.ThroughputPerSec, slo.MinThroughput))
	}
	return v
}

// BenchArtifact is the JSON summary cmd/coloload writes for the
// benchmark trajectory (the BENCH_*.json files CI uploads): one named
// benchmark, its gate verdict, and the full report.
type BenchArtifact struct {
	Bench      string   `json:"bench"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
	Report     *Report  `json:"report"`
}
