package loadgen

// The observability acceptance soak: a seeded in-process run against a
// retain-everything server must leave traces in /v1/traces whose span
// trees cover the full predict pipeline, stamp every response with an
// X-Request-ID that matches a structured log line, and surface the
// server-side stage breakdown in the loadgen report.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/obs"
	"colocmodel/internal/serve"
)

// syncBuffer serializes concurrent writes from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newObsSoakServer is newSoakServer with full trace retention and a
// JSON request log captured in memory.
func newObsSoakServer(t testing.TB) (*serve.Server, *syncBuffer) {
	t.Helper()
	ds := soakDataset(t)
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: 1}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Add("primary", "", m); err != nil {
		t.Fatal(err)
	}
	logBuf := &syncBuffer{}
	logger, err := obs.NewLogger(logBuf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(reg, serve.Config{
		CacheSize:     1 << 10,
		SlowThreshold: -1, // retain and slow-log everything
		TraceRing:     128,
		Logger:        logger,
	})
	return s, logBuf
}

func TestObservabilitySoak(t *testing.T) {
	s, logBuf := newObsSoakServer(t)
	space := soakSpace(t, s)
	h := s.Handler()

	const requests = 300
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 4,
		Duration:    time.Minute,
		Requests:    requests,
		Seed:        11,
		Mix:         Mix{ZipfSkew: 1.1, PredictWeight: 8, BatchWeight: 1, BatchSize: 4},
	}, &HandlerDoer{Handler: h}, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("soak saw %d errors", rep.Errors)
	}

	// The report carries the server-side stage breakdown parsed from
	// Server-Timing headers: decode and cache on every predict, eval on
	// the cold subset.
	for _, stage := range []string{"decode", "cache", "eval"} {
		ss, ok := rep.ServerStages[stage]
		if !ok || ss.Count == 0 {
			t.Fatalf("stage %s missing from report: %v", stage, rep.ServerStages)
		}
		if ss.MeanSeconds < 0 || ss.TotalSeconds < float64(ss.Count)*ss.MeanSeconds*0.999 {
			t.Fatalf("stage %s stats inconsistent: %+v", stage, ss)
		}
	}
	if rep.ServerStages["decode"].Count != rep.Requests {
		t.Fatalf("decode reported by %d of %d requests", rep.ServerStages["decode"].Count, rep.Requests)
	}

	// The trace ring retained traces; at least one cold predict covers
	// the full decode → cache → eval → encode pipeline with monotone,
	// parent-contained timings.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/traces?endpoint=predict", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("traces: %d", w.Code)
	}
	var tr serve.TracesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Count == 0 {
		t.Fatal("soak retained no predict traces")
	}
	full := 0
	for _, td := range tr.Traces {
		seen := map[string]bool{}
		for i, sp := range td.Spans {
			seen[sp.Name] = true
			if sp.EndNS < sp.StartNS {
				t.Fatalf("trace %s span %s not monotone: %+v", td.ID, sp.Name, sp)
			}
			if sp.Parent >= 0 {
				p := td.Spans[sp.Parent]
				if sp.StartNS < p.StartNS || (p.EndNS > 0 && sp.EndNS > p.EndNS) {
					t.Fatalf("trace %s span %d (%s) escapes parent %s", td.ID, i, sp.Name, p.Name)
				}
			}
		}
		if seen["decode"] && seen["cache"] && seen["eval"] && seen["encode"] {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no retained trace covers decode→cache→eval→encode")
	}

	// Every structured log line carries a request ID, and the log saw
	// every soak request.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	logged := make(map[string]bool, len(lines))
	for _, line := range lines {
		var rec struct {
			RequestID string `json:"request_id"`
			Level     string `json:"level"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q", line)
		}
		if rec.RequestID == "" {
			t.Fatalf("log line missing request_id: %q", line)
		}
		if rec.Level != "WARN" { // slow threshold -1: everything is slow
			t.Fatalf("expected WARN slow-request lines, got %q", line)
		}
		logged[rec.RequestID] = true
	}
	if uint64(len(lines)) < rep.Requests {
		t.Fatalf("%d log lines for %d requests", len(lines), rep.Requests)
	}

	// Responses echo X-Request-ID and each echoed ID has its log line.
	for i := 0; i < 5; i++ {
		sc := space.Scenario(i % space.Size())
		body, err := json.Marshal(serve.PredictRequest{ScenarioRequest: serve.ScenarioRequest{
			Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
		}})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, rec.Code, rec.Body.String())
		}
		id := rec.Header().Get("X-Request-ID")
		if id == "" {
			t.Fatal("response missing X-Request-ID")
		}
		if !strings.Contains(logBuf.String(), `"request_id":"`+id+`"`) {
			t.Fatalf("request %s has no structured log line", id)
		}
	}

	// The tracer counted every request it saw.
	if st := s.Tracer().Stats(); st.Seen < uint64(requests) {
		t.Fatalf("tracer saw %d, want >= %d", st.Seen, requests)
	}
}

// TestSoakStagesDisabledTracing: driving a server without tracing
// yields a report with no stage breakdown — the header is advisory.
func TestSoakStagesDisabledTracing(t *testing.T) {
	ds := soakDataset(t)
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: 1}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if err := reg.Add("primary", "", m); err != nil {
		t.Fatal(err)
	}
	s := serve.New(reg, serve.Config{CacheSize: 1 << 10, TraceRing: -1})
	space := soakSpace(t, s)
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 2,
		Duration:    time.Minute,
		Requests:    50,
		Seed:        3,
		Mix:         Mix{PredictWeight: 1},
	}, &HandlerDoer{Handler: s.Handler()}, space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors: %d", rep.Errors)
	}
	if len(rep.ServerStages) != 0 {
		t.Fatalf("stage breakdown present with tracing disabled: %v", rep.ServerStages)
	}
}
