package loadgen

// The observation-ingest soak: an observe-heavy op stream against the
// in-process mux with the DISK-backed group-commit feedback log, torn
// mid-soak by a simulated crash (partial record appended to the active
// segment, log reopened under a fresh server). Run under -race in CI.
// The invariant is the durability contract end to end: every
// observation a client saw acknowledged (2xx) is present and intact
// after the reopen — zero lost, zero torn.

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"colocmodel/internal/feedback"
	"colocmodel/internal/serve"
)

func TestIngestSoak(t *testing.T) {
	dir := t.TempDir()
	mix, err := MixPreset("ingest")
	if err != nil {
		t.Fatal(err)
	}

	phase := func(seed uint64, requests int) uint64 {
		t.Helper()
		log, err := feedback.Open(feedback.Config{Dir: dir, Sync: true})
		if err != nil {
			t.Fatalf("seed %d: opening log: %v", seed, err)
		}
		s := newSoakServerLog(t, serve.Config{CacheSize: 1 << 10}, log)
		space := soakSpace(t, s)
		rep, err := Run(Config{
			Mode:        ClosedLoop,
			Concurrency: 8,
			Duration:    time.Minute,
			Requests:    requests,
			Seed:        seed,
			Mix:         mix,
		}, &HandlerDoer{Handler: s.Handler()}, space)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Status4xx != 0 || rep.Status5xx != 0 || rep.TransportErrors != 0 {
			t.Fatalf("seed %d: ingest soak saw errors: 4xx=%d 5xx=%d transport=%d",
				seed, rep.Status4xx, rep.Status5xx, rep.TransportErrors)
		}
		// The preset is observe-heavy by construction.
		if 2*rep.PerOp[OpObserve] < rep.Requests {
			t.Fatalf("seed %d: observe ops %d of %d requests: mix not ingest-heavy",
				seed, rep.PerOp[OpObserve], rep.Requests)
		}
		// Every acknowledged observation is already in the log.
		if got := uint64(log.Len()); got < rep.PerOp[OpObserve] {
			t.Fatalf("seed %d: log holds %d observations, acknowledged %d", seed, got, rep.PerOp[OpObserve])
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		return rep.PerOp[OpObserve]
	}

	observed := phase(42, 1000)

	// Crash between the phases: the process dies mid-append, leaving a
	// torn record on the active segment. Recovery must drop exactly that
	// fragment and nothing else.
	segs, err := filepath.Glob(filepath.Join(dir, "obs-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files after phase 1 (err=%v)", err)
	}
	sort.Strings(segs) // zero-padded indices: last name = active segment
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"model":"torn-mid-wr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	observed += phase(1234, 1000)

	// Final audit under a fresh open: count and verify every record.
	log, err := feedback.Open(feedback.Config{Dir: dir})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer log.Close()
	all, err := log.All()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(all)) != observed {
		t.Fatalf("log holds %d observations after reopen, want %d (zero lost)", len(all), observed)
	}
	for i, o := range all {
		if err := o.Validate(); err != nil {
			t.Fatalf("observation %d torn or corrupted: %v", i, err)
		}
	}
	st := log.Stats()
	if st.Records != 0 {
		// The fresh open performed no appends; recovery rebuilt state
		// without fabricating ingest traffic.
		t.Fatalf("reopened log claims %d ingested records", st.Records)
	}
}
