// Package loadgen is the load-generation and soak-testing harness for
// the serve tier. The ROADMAP's north star is a prediction service that
// survives heavy traffic; this package is what proves it: it drives a
// coloserve instance (over HTTP, or its handler directly in process)
// with a Zipf-skewed scenario mix sampled from the served model's
// machine/app/P-state space, measures tail latency in log-bucketed
// histograms, and gates the result against SLOs (max p99, max error
// rate, min throughput).
//
// Two driving modes:
//
//   - Open loop: requests arrive at a fixed rate regardless of how fast
//     the server answers, and latency is measured from each request's
//     *scheduled* arrival — queueing delay under overload is part of the
//     number (no coordinated omission).
//   - Closed loop: a fixed number of workers issue requests
//     back-to-back, the classic saturation soak.
//
// Everything stochastic draws from one explicit seed, so the generated
// op stream is reproducible bit-for-bit; an in-process run against
// serve.Server.Handler() turns the whole registry/cache/adaptation
// stack into a deterministic, race-detectable end-to-end test.
package loadgen

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"colocmodel/internal/obs"
	"colocmodel/internal/xrand"
)

// Mode selects how load is offered.
type Mode int

const (
	// ClosedLoop runs Concurrency workers back-to-back.
	ClosedLoop Mode = iota
	// OpenLoop issues requests at a fixed arrival rate.
	OpenLoop
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ClosedLoop:
		return "closed-loop"
	case OpenLoop:
		return "open-loop"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes a load run.
type Config struct {
	// Mode selects open- or closed-loop driving.
	Mode Mode
	// Rate is the open-loop arrival rate in requests/second (required
	// for OpenLoop, ignored for ClosedLoop).
	Rate float64
	// Concurrency is the worker count. Default 8.
	Concurrency int
	// Duration bounds the run's wall-clock time. Default 10s.
	Duration time.Duration
	// Requests optionally bounds the total requests issued (0 =
	// duration-bound only). A request-bound closed-loop run is
	// independent of machine speed, which is what a deterministic soak
	// test wants.
	Requests int
	// Warmup excludes the run's first stretch from the report, so cache
	// fill and connection establishment do not pollute the quantiles.
	Warmup time.Duration
	// Seed drives scenario sampling and the op mix.
	Seed uint64
	// Mix tunes scenario skew and the operation mix.
	Mix Mix
	// CheckGenerations decodes predict responses and verifies that the
	// serving generation never moves backwards within a worker's request
	// sequence (the hot-swap staleness invariant).
	CheckGenerations bool
}

func (c *Config) defaults() {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	c.Mix.defaults()
}

func (c Config) validate() error {
	if c.Mode == OpenLoop && c.Rate <= 0 {
		return fmt.Errorf("loadgen: open-loop mode requires a positive rate")
	}
	if c.Mode != OpenLoop && c.Mode != ClosedLoop {
		return fmt.Errorf("loadgen: unknown mode %d", int(c.Mode))
	}
	if c.Requests < 0 {
		return fmt.Errorf("loadgen: negative request budget")
	}
	if c.Warmup < 0 || c.Duration < 0 {
		return fmt.Errorf("loadgen: negative duration")
	}
	if c.Warmup >= c.Duration && c.Duration > 0 {
		return fmt.Errorf("loadgen: warmup %v consumes the whole run %v", c.Warmup, c.Duration)
	}
	return c.Mix.validate()
}

// workerStats is one worker's private accounting; merged after the run,
// so the hot path takes no locks.
type workerStats struct {
	hist           Histogram
	perOp          map[string]uint64
	stages         map[string]*stageAccum
	ok2xx          uint64
	c4xx           uint64
	s5xx           uint64
	transport      uint64
	warmupRequests uint64
	warmupErrors   uint64
	genRegressions uint64
	lastGen        uint64
}

// stageAccum accumulates one server-side stage's time across a worker's
// measured requests, as reported in Server-Timing response headers.
type stageAccum struct {
	count   uint64
	seconds float64
}

func newWorkerStats() *workerStats {
	return &workerStats{
		perOp:  make(map[string]uint64),
		stages: make(map[string]*stageAccum),
	}
}

// generationOf extracts the serving generation from a predict response.
func generationOf(body []byte) (uint64, bool) {
	var g struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &g); err != nil {
		return 0, false
	}
	return g.Generation, true
}

// execute runs one op and folds the outcome into the worker's stats.
// from is the latency origin: the scheduled arrival for open loop, the
// issue time for closed loop.
func (w *workerStats) execute(d Doer, op Op, from time.Time, warm, checkGen bool) {
	status, header, body, err := d.Do(op)
	lat := time.Since(from)
	if warm {
		w.warmupRequests++
		if err != nil || status < 200 || status >= 300 {
			w.warmupErrors++
		}
		return
	}
	w.hist.Record(lat)
	w.perOp[op.Kind]++
	if err == nil && header != nil {
		obs.EachServerTiming(header.Get("Server-Timing"), func(stage string, seconds float64) {
			sa := w.stages[stage]
			if sa == nil {
				sa = &stageAccum{}
				w.stages[stage] = sa
			}
			sa.count++
			sa.seconds += seconds
		})
	}
	switch {
	case err != nil:
		w.transport++
	case status >= 500:
		w.s5xx++
	case status >= 400:
		w.c4xx++
	default:
		w.ok2xx++
		if checkGen && op.Kind == OpPredict {
			if gen, ok := generationOf(body); ok {
				if gen < w.lastGen {
					w.genRegressions++
				} else {
					w.lastGen = gen
				}
			}
		}
	}
}

// Run executes one load run against the Doer, sampling scenarios from
// the space, and returns the measured report.
func Run(cfg Config, d Doer, space *Space) (*Report, error) {
	if d == nil {
		return nil, fmt.Errorf("loadgen: nil Doer")
	}
	if space == nil {
		return nil, fmt.Errorf("loadgen: nil scenario space")
	}
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	base := xrand.New(cfg.Seed)
	stats := make([]*workerStats, cfg.Concurrency)
	for i := range stats {
		stats[i] = newWorkerStats()
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	warmEnd := start.Add(cfg.Warmup)

	var wg sync.WaitGroup
	switch cfg.Mode {
	case ClosedLoop:
		// Every worker owns an independent split of the seed stream, so
		// each worker's op sequence is deterministic regardless of
		// scheduling.
		var issued atomic.Int64
		for i := range stats {
			gen := newGenerator(space, cfg.Mix, base.Split())
			wg.Add(1)
			go func(ws *workerStats, g *generator) {
				defer wg.Done()
				for {
					now := time.Now()
					if now.After(deadline) {
						return
					}
					if cfg.Requests > 0 && issued.Add(1) > int64(cfg.Requests) {
						return
					}
					ws.execute(d, g.next(), now, now.Before(warmEnd), cfg.CheckGenerations)
				}
			}(stats[i], gen)
		}
	case OpenLoop:
		// One pacer samples the (single, deterministic) op stream and
		// stamps each op with its scheduled arrival; workers measure
		// latency from that stamp, so server-side queueing under
		// overload is charged to the server, not silently omitted.
		type ticket struct {
			op  Op
			due time.Time
		}
		work := make(chan ticket, cfg.Concurrency*64)
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(work)
			g := newGenerator(space, cfg.Mix, base.Split())
			for i := 0; ; i++ {
				if cfg.Requests > 0 && i >= cfg.Requests {
					return
				}
				due := start.Add(time.Duration(i) * interval)
				if due.After(deadline) {
					return
				}
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				work <- ticket{op: g.next(), due: due}
			}
		}()
		for i := range stats {
			wg.Add(1)
			go func(ws *workerStats) {
				defer wg.Done()
				for tk := range work {
					ws.execute(d, tk.op, tk.due, tk.due.Before(warmEnd), cfg.CheckGenerations)
				}
			}(stats[i])
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge worker-local accounting into the report.
	merged := newWorkerStats()
	for _, ws := range stats {
		merged.hist.Merge(&ws.hist)
		for k, v := range ws.perOp {
			merged.perOp[k] += v
		}
		for k, sa := range ws.stages {
			ms := merged.stages[k]
			if ms == nil {
				ms = &stageAccum{}
				merged.stages[k] = ms
			}
			ms.count += sa.count
			ms.seconds += sa.seconds
		}
		merged.ok2xx += ws.ok2xx
		merged.c4xx += ws.c4xx
		merged.s5xx += ws.s5xx
		merged.transport += ws.transport
		merged.warmupRequests += ws.warmupRequests
		merged.warmupErrors += ws.warmupErrors
		merged.genRegressions += ws.genRegressions
	}
	window := elapsed - cfg.Warmup
	if window <= 0 {
		window = elapsed
	}
	r := &Report{
		Mode:                  cfg.Mode.String(),
		Concurrency:           cfg.Concurrency,
		Seed:                  cfg.Seed,
		DurationSeconds:       window.Seconds(),
		Requests:              merged.hist.Count(),
		WarmupRequests:        merged.warmupRequests,
		WarmupErrors:          merged.warmupErrors,
		Errors:                merged.c4xx + merged.s5xx + merged.transport,
		Status2xx:             merged.ok2xx,
		Status4xx:             merged.c4xx,
		Status5xx:             merged.s5xx,
		TransportErrors:       merged.transport,
		GenerationRegressions: merged.genRegressions,
		PerOp:                 merged.perOp,
		Latency: Quantiles{
			P50:  merged.hist.Quantile(0.50).Seconds(),
			P95:  merged.hist.Quantile(0.95).Seconds(),
			P99:  merged.hist.Quantile(0.99).Seconds(),
			P999: merged.hist.Quantile(0.999).Seconds(),
			Mean: merged.hist.Mean().Seconds(),
			Max:  merged.hist.Max().Seconds(),
		},
	}
	if len(merged.stages) > 0 {
		r.ServerStages = make(map[string]StageStat, len(merged.stages))
		for k, sa := range merged.stages {
			ss := StageStat{Count: sa.count, TotalSeconds: sa.seconds}
			if sa.count > 0 {
				ss.MeanSeconds = sa.seconds / float64(sa.count)
			}
			r.ServerStages[k] = ss
		}
	}
	if cfg.Mode == OpenLoop {
		r.TargetRate = cfg.Rate
	}
	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	if window > 0 {
		r.ThroughputPerSec = float64(r.Requests) / window.Seconds()
	}
	return r, nil
}
