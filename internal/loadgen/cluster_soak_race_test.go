package loadgen

// The cluster soaks promised by the scale-out tier: the loadgen harness
// drives the colorouter gateway in process (the router still reaches
// its coloserve replicas over loopback HTTP), so one seeded soak
// exercises consistent-hash routing, coalescing, hedging, health
// probing and rolling promotion end to end — under -race in CI.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"colocmodel/internal/cluster"
	"colocmodel/internal/serve"
)

// newClusterTarget assembles n soak replicas behind a router. The probe
// loop is started with a long interval; tests that need probe
// transitions step ProbeAll explicitly.
func newClusterTarget(t *testing.T, n int, cfg cluster.Config) *ClusterTarget {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // deterministic: tests step probes themselves
	}
	ct, err := NewClusterTarget(ctx, cfg, n, func(int) (*serve.Server, error) {
		return newSoakServer(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ct.Close)
	return ct
}

// TestClusterSoakInProcess is the CI cluster soak: a request-bounded
// closed-loop run with a mixed predict / batch / observe / reload
// stream against a 3-replica fleet. Reload ops become rolling
// promotions rolled by the router, so generation floors, probe
// refreshes and scatter-gather are all live under concurrency. Any 5xx
// or transport error fails the gate; generation monotonicity is checked
// per worker.
func TestClusterSoakInProcess(t *testing.T) {
	ct := newClusterTarget(t, 3, cluster.Config{Replicas: 2})
	space := soakSpace(t, ct.Servers[0])

	const requests = 2000
	rep, err := Run(Config{
		Mode:        ClosedLoop,
		Concurrency: 8,
		Duration:    time.Minute, // the request budget ends the run
		Requests:    requests,
		Seed:        42,
		Mix: Mix{
			ZipfSkew:        1.1,
			PredictWeight:   8,
			BatchWeight:     1,
			ObserveWeight:   2,
			ReloadWeight:    0.25,
			PlacementWeight: 0.5,
			BatchSize:       8,
		},
		CheckGenerations: true,
	}, ct.Doer(), space)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != requests {
		t.Fatalf("measured %d requests, want %d", rep.Requests, requests)
	}
	if rep.Status4xx != 0 || rep.Status5xx != 0 || rep.TransportErrors != 0 {
		t.Fatalf("cluster soak saw errors: 4xx=%d 5xx=%d transport=%d (rate %.4f)",
			rep.Status4xx, rep.Status5xx, rep.TransportErrors, rep.ErrorRate)
	}
	if rep.GenerationRegressions != 0 {
		t.Fatalf("%d generation regressions: a client was routed to a stale backend", rep.GenerationRegressions)
	}
	for _, kind := range []string{OpPredict, OpBatch, OpObserve, OpReload, OpPlacements} {
		if rep.PerOp[kind] == 0 {
			t.Errorf("op kind %q absent from the soak (per_op: %v)", kind, rep.PerOp)
		}
	}
	// Consistent hashing actually spread the load: every replica served.
	m := ct.Router.Metrics()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("b%d", i)
		if got := m.BackendRequests(name); got == 0 {
			t.Errorf("backend %s received no proxied requests", name)
		}
	}
	// Rolling promotions converged: every replica's registry advanced in
	// lockstep to the same generation.
	gen := ct.Servers[0].Registry().List()[0].Generation
	if gen < 2 {
		t.Fatalf("generation still %d after %d reload ops", gen, rep.PerOp[OpReload])
	}
	for i, s := range ct.Servers {
		if g := s.Registry().List()[0].Generation; g != gen {
			t.Fatalf("replica %d at generation %d, replica 0 at %d: rollout did not converge", i, g, gen)
		}
	}
	// The router's Server-Timing hop stages reached the report.
	if _, ok := rep.ServerStages["backend"]; !ok {
		t.Errorf("report missing the router's 'backend' hop stage (stages: %v)", rep.ServerStages)
	}
	if v := rep.Gate(SLO{MaxErrorRate: 0, MinThroughput: 1}); len(v) != 0 {
		t.Fatalf("SLO violations: %v", v)
	}
}

// TestClusterRollingPromotionMonotone is the generation-monotonicity
// soak: concurrent identified clients stream predictions while rolling
// promotions sweep the fleet; no client may ever observe the serving
// generation decrease. This is the per-client floor doing its job — the
// fleet serves mixed generations mid-rollout, the clients never see it.
func TestClusterRollingPromotionMonotone(t *testing.T) {
	ct := newClusterTarget(t, 3, cluster.Config{Replicas: 2})
	space := soakSpace(t, ct.Servers[0])
	h := ct.Router.Handler()

	do := func(method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(method, path, rd)
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	const clients, perClient = 6, 120
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)
	done := make(chan struct{})

	// Promotion writer: rolls reloads across the fleet back-to-back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				errc <- nil
				return
			default:
			}
			if rec := do(http.MethodPost, "/v1/models/reload", "", nil); rec.Code != http.StatusOK {
				errc <- fmt.Errorf("rolling promotion returned %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	var clientsWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		clientsWG.Add(1)
		go func(c int) {
			defer clientsWG.Done()
			hdr := map[string]string{"X-Client-ID": fmt.Sprintf("client-%d", c)}
			var last uint64
			for i := 0; i < perClient; i++ {
				sc := space.Scenario((c*perClient + i) % space.Size())
				co := ""
				if len(sc.CoApps) > 0 {
					co = `"co_apps":["` + strings.Join(sc.CoApps, `","`) + `"],`
				}
				body := fmt.Sprintf(`{"target":%q,%s"pstate":%d}`, sc.Target, co, sc.PState)
				rec := do(http.MethodPost, "/v1/predict", body, hdr)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("client %d predict returned %d: %s", c, rec.Code, rec.Body.String())
					return
				}
				var resp struct {
					Generation uint64 `json:"generation"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errc <- err
					return
				}
				if resp.Generation < last {
					errc <- fmt.Errorf("client %d observed generation %d after %d: mixed-generation window leaked",
						c, resp.Generation, last)
					return
				}
				last = resp.Generation
			}
			errc <- nil
		}(c)
	}
	clientsWG.Wait()
	close(done)
	wg.Wait()
	for i := 0; i < clients+1; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// The promotions actually happened (the invariant is vacuous on a
	// fleet that never moved).
	if gen := ct.Servers[0].Registry().List()[0].Generation; gen < 2 {
		t.Fatal("promotion writer never advanced the fleet; monotonicity coverage lost")
	}
}

// TestClusterRoutingAffinityUnderJoin checks the stable-routing
// property at the system level: with hedging off and a healthy fleet,
// each scenario is always served by its ring owner; joining a fourth
// replica moves only the scenarios the newcomer takes over, and every
// other scenario keeps its backend (caches stay warm through scale-out).
func TestClusterRoutingAffinityUnderJoin(t *testing.T) {
	ct := newClusterTarget(t, 3, cluster.Config{Replicas: 2, HedgeAfter: -1})
	space := soakSpace(t, ct.Servers[0])
	h := ct.Router.Handler()

	serving := func() map[int]string {
		owners := make(map[int]string, space.Size())
		for i := 0; i < space.Size(); i++ {
			sc := space.Scenario(i)
			co := ""
			if len(sc.CoApps) > 0 {
				co = `"co_apps":["` + strings.Join(sc.CoApps, `","`) + `"],`
			}
			body := fmt.Sprintf(`{"target":%q,%s"pstate":%d}`, sc.Target, co, sc.PState)
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("predict %d returned %d: %s", i, rec.Code, rec.Body.String())
			}
			owners[i] = rec.Header().Get("X-Backend")
		}
		return owners
	}

	before := serving()
	// Second pass without membership change: placement is sticky.
	for i, owner := range serving() {
		if before[i] != owner {
			t.Fatalf("scenario %d moved %s -> %s with no membership change", i, before[i], owner)
		}
	}

	// Join a fourth replica and probe it in.
	extra := newSoakServer(t)
	ts := httptest.NewServer(extra.Handler())
	t.Cleanup(ts.Close)
	if err := ct.Router.Pool().Add("b3", ts.URL); err != nil {
		t.Fatal(err)
	}
	ct.Router.Pool().ProbeAll(context.Background())

	after := serving()
	moved := 0
	for i, owner := range after {
		if owner != before[i] {
			moved++
			if owner != "b3" {
				t.Fatalf("scenario %d moved %s -> %s on join of b3: only the newcomer's ranges may move",
					i, before[i], owner)
			}
		}
	}
	if moved == 0 {
		t.Skip("no scenario hashed to the new replica (tiny space); ring-level join coverage lives in internal/cluster")
	}
	if frac := float64(moved) / float64(len(after)); frac > 0.60 {
		t.Fatalf("join moved %.0f%% of scenarios, want a bounded share", frac*100)
	}
}
