package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"colocmodel/internal/feedback"
)

// Metrics is the serving tier's observability layer: request and error
// counters plus latency histograms per endpoint, and cache hit/miss and
// hot-swap counters. Everything is lock-free atomics on the hot path
// and renders in the Prometheus text exposition format, keeping the
// module stdlib-only.
type Metrics struct {
	mu        sync.Mutex // guards the endpoints map (writes only at registration)
	endpoints map[string]*endpointMetrics

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	swaps       atomic.Uint64
	inFlight    atomic.Int64
	dropped     atomic.Uint64 // observations for unregistered endpoints

	obsIngested atomic.Uint64
	obsRejected atomic.Uint64
	driftTrips  atomic.Uint64
}

// endpointMetrics aggregates one endpoint's counters and latency.
type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  histogram
}

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache hits (~µs) through batch fan-outs and schedule calls.
var latencyBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5,
}

const numLatencyBuckets = 12

// histogram is a fixed-bucket latency histogram. The sum is kept as
// float64 bits updated by CAS so Observe never takes a lock.
type histogram struct {
	counts  [numLatencyBuckets + 1]atomic.Uint64 // +1 for +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func (h *histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + seconds
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// NewMetrics returns a metrics layer with the given endpoints
// pre-registered (observations for unregistered endpoints are dropped).
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{endpoints: make(map[string]*endpointMetrics, len(endpoints))}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{}
	}
	return m
}

// ObserveRequest records one request against an endpoint: its latency
// and whether it failed. Observations for endpoints that were never
// registered are counted in coloserve_metrics_dropped_total rather than
// silently discarded.
func (m *Metrics) ObserveRequest(endpoint string, d time.Duration, failed bool) {
	em, ok := m.endpoints[endpoint]
	if !ok {
		m.dropped.Add(1)
		return
	}
	em.requests.Add(1)
	if failed {
		em.errors.Add(1)
	}
	em.latency.Observe(d.Seconds())
}

// CacheHit and CacheMiss record prediction-cache outcomes.
func (m *Metrics) CacheHit()  { m.cacheHits.Add(1) }
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// CacheHits returns the hit counter (used by tests and handlers).
func (m *Metrics) CacheHits() uint64 { return m.cacheHits.Load() }

// CacheMisses returns the miss counter.
func (m *Metrics) CacheMisses() uint64 { return m.cacheMisses.Load() }

// SwapRecorded counts one registry hot-swap.
func (m *Metrics) SwapRecorded() { m.swaps.Add(1) }

// SwapsRecorded counts n registry hot-swaps at once (a reload swaps
// every disk-backed entry). The swap counter is reachable only through
// these accessors so call sites cannot bypass the accounting.
func (m *Metrics) SwapsRecorded(n int) {
	if n > 0 {
		m.swaps.Add(uint64(n))
	}
}

// DroppedObservations returns the count of request observations made
// against endpoints that were never registered.
func (m *Metrics) DroppedObservations() uint64 { return m.dropped.Load() }

// ObservationIngested and ObservationRejected count observation-log
// ingest outcomes; DriftTripRecorded counts drift-detector trips.
func (m *Metrics) ObservationIngested() { m.obsIngested.Add(1) }
func (m *Metrics) ObservationRejected() { m.obsRejected.Add(1) }
func (m *Metrics) DriftTripRecorded()   { m.driftTrips.Add(1) }

// RequestStarted / RequestDone track in-flight requests (a gauge).
func (m *Metrics) RequestStarted() { m.inFlight.Add(1) }
func (m *Metrics) RequestDone()    { m.inFlight.Add(-1) }

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer, modelsLoaded int, cacheEntries int) {
	names := make([]string, 0, len(m.endpoints))
	for e := range m.endpoints {
		names = append(names, e)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP coloserve_requests_total Requests received per endpoint.")
	fmt.Fprintln(w, "# TYPE coloserve_requests_total counter")
	for _, e := range names {
		fmt.Fprintf(w, "coloserve_requests_total{endpoint=%q} %d\n", e, m.endpoints[e].requests.Load())
	}
	fmt.Fprintln(w, "# HELP coloserve_request_errors_total Failed requests per endpoint.")
	fmt.Fprintln(w, "# TYPE coloserve_request_errors_total counter")
	for _, e := range names {
		fmt.Fprintf(w, "coloserve_request_errors_total{endpoint=%q} %d\n", e, m.endpoints[e].errors.Load())
	}
	fmt.Fprintln(w, "# HELP coloserve_request_duration_seconds Request latency per endpoint.")
	fmt.Fprintln(w, "# TYPE coloserve_request_duration_seconds histogram")
	for _, e := range names {
		h := &m.endpoints[e].latency
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "coloserve_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", e, formatBound(ub), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "coloserve_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, cum)
		fmt.Fprintf(w, "coloserve_request_duration_seconds_sum{endpoint=%q} %g\n", e, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "coloserve_request_duration_seconds_count{endpoint=%q} %d\n", e, h.count.Load())
	}
	fmt.Fprintln(w, "# HELP coloserve_cache_hits_total Prediction-cache hits.")
	fmt.Fprintln(w, "# TYPE coloserve_cache_hits_total counter")
	fmt.Fprintf(w, "coloserve_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(w, "# HELP coloserve_cache_misses_total Prediction-cache misses.")
	fmt.Fprintln(w, "# TYPE coloserve_cache_misses_total counter")
	fmt.Fprintf(w, "coloserve_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(w, "# HELP coloserve_cache_entries Current prediction-cache size.")
	fmt.Fprintln(w, "# TYPE coloserve_cache_entries gauge")
	fmt.Fprintf(w, "coloserve_cache_entries %d\n", cacheEntries)
	fmt.Fprintln(w, "# HELP coloserve_model_swaps_total Registry hot-swaps performed.")
	fmt.Fprintln(w, "# TYPE coloserve_model_swaps_total counter")
	fmt.Fprintf(w, "coloserve_model_swaps_total %d\n", m.swaps.Load())
	fmt.Fprintln(w, "# HELP coloserve_models_loaded Models currently in the registry.")
	fmt.Fprintln(w, "# TYPE coloserve_models_loaded gauge")
	fmt.Fprintf(w, "coloserve_models_loaded %d\n", modelsLoaded)
	fmt.Fprintln(w, "# HELP coloserve_metrics_dropped_total Request observations dropped for unregistered endpoints.")
	fmt.Fprintln(w, "# TYPE coloserve_metrics_dropped_total counter")
	fmt.Fprintf(w, "coloserve_metrics_dropped_total %d\n", m.dropped.Load())
	fmt.Fprintln(w, "# HELP coloserve_in_flight_requests Requests currently being served.")
	fmt.Fprintln(w, "# TYPE coloserve_in_flight_requests gauge")
	fmt.Fprintf(w, "coloserve_in_flight_requests %d\n", m.inFlight.Load())
	fmt.Fprintln(w, "# HELP coloserve_observations_ingested_total Observations accepted into the feedback log.")
	fmt.Fprintln(w, "# TYPE coloserve_observations_ingested_total counter")
	fmt.Fprintf(w, "coloserve_observations_ingested_total %d\n", m.obsIngested.Load())
	fmt.Fprintln(w, "# HELP coloserve_observations_rejected_total Observations rejected at ingest.")
	fmt.Fprintln(w, "# TYPE coloserve_observations_rejected_total counter")
	fmt.Fprintf(w, "coloserve_observations_rejected_total %d\n", m.obsRejected.Load())
	fmt.Fprintln(w, "# HELP coloserve_drift_trips_total Drift-detector trips observed at ingest.")
	fmt.Fprintln(w, "# TYPE coloserve_drift_trips_total counter")
	fmt.Fprintf(w, "coloserve_drift_trips_total %d\n", m.driftTrips.Load())
}

// writeGauge renders one unlabelled gauge with help and type lines.
func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}

// writeCounter renders one unlabelled counter with help and type lines.
func writeCounter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

// writeHistSnapshot renders a feedback-log histogram snapshot in the
// Prometheus histogram exposition format.
func writeHistSnapshot(w io.Writer, name, help string, h feedback.HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, ub := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(ub), cum)
	}
	if len(h.Counts) > len(h.Bounds) {
		cum += h.Counts[len(h.Bounds)]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// formatBound renders a bucket bound the way Prometheus expects
// (shortest float form).
func formatBound(v float64) string { return fmt.Sprintf("%g", v) }
