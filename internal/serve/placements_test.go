package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colocmodel/internal/sched"
	"colocmodel/internal/simproc"
)

// placementsBody builds the canonical test request: a 4-machine fleet
// with 12 pending apps and a seeded local search.
func placementsBody() PlacementsRequest {
	return PlacementsRequest{
		Machines:    []PlacementMachineRequest{{Count: 4}},
		Apps:        []string{"cg", "canneal", "ep", "cg", "canneal", "ep", "cg", "canneal", "ep", "cg", "canneal", "ep"},
		MaxSlowdown: 2.5,
		Seed:        11,
		Beam:        12,
	}
}

func TestPlacementsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/v1/placements", placementsBody())
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[PlacementsResponse](t, w)
	if resp.Model != "primary" || resp.Objective != "slowdown" {
		t.Fatalf("identity fields wrong: %+v", resp)
	}
	if resp.Plan == nil || len(resp.Plan.Apps) != 12 {
		t.Fatalf("plan does not cover the 12 apps: %+v", resp.Plan)
	}
	if len(resp.Plan.Assignments) != 4 || len(resp.Plan.PStates) != 4 {
		t.Fatalf("plan does not describe the 4-machine fleet: %+v", resp.Plan)
	}
	if resp.Search.Scenarios == 0 {
		t.Fatal("search predicted no scenarios")
	}
	if got := w.Header().Get("X-Request-ID"); got == "" {
		t.Fatal("missing X-Request-ID")
	}
}

func TestPlacementsDeterministicAcrossRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	var first []byte
	for i := 0; i < 3; i++ {
		w := postJSON(t, s.Handler(), "/v1/placements", placementsBody())
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
		if i == 0 {
			first = append([]byte(nil), w.Body.Bytes()...)
			continue
		}
		if !bytes.Equal(w.Body.Bytes(), first) {
			t.Fatalf("request %d diverged:\n%s\nwant:\n%s", i, w.Body.Bytes(), first)
		}
	}
}

func TestPlacementsStreamingMonotone(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	body := placementsBody()
	body.Machines = []PlacementMachineRequest{{Count: 8}}
	body.Apps = append(body.Apps, body.Apps...) // 24 apps: room to improve
	body.Stream = true
	w := postJSON(t, s.Handler(), "/v1/placements", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	// The acceptance bar: at least two monotonically improving
	// incremental plans before the final line (greedy plan + >=1
	// improvement + final, and improvements are strictly ordered).
	if len(lines) < 3 {
		t.Fatalf("got %d NDJSON lines, want >= 3:\n%s", len(lines), w.Body.String())
	}
	events := make([]PlacementsStreamEvent, len(lines))
	for i, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &events[i]); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
	}
	last := events[len(lines)-1]
	if !last.Final || last.Plan == nil || last.Search == nil {
		t.Fatalf("terminal line is not a final result: %+v", last)
	}
	incr := events[:len(lines)-1]
	for i, ev := range incr {
		if ev.Final || ev.Plan == nil {
			t.Fatalf("incremental line %d malformed: %+v", i, ev)
		}
		if i > 0 && !ev.Plan.Better(incr[i-1].Plan) {
			t.Fatalf("incremental plan %d (obj %.6f) does not improve on %d (obj %.6f)",
				i, ev.Plan.Objective, i-1, incr[i-1].Plan.Objective)
		}
	}
	// The final plan is the last incremental one.
	if last.Plan.Objective != incr[len(incr)-1].Plan.Objective {
		t.Fatalf("final objective %.6f != last incremental %.6f",
			last.Plan.Objective, incr[len(incr)-1].Plan.Objective)
	}
	if last.Search.Improvements < 2 {
		t.Fatalf("want >= 2 improvements streamed, got %d", last.Search.Improvements)
	}
}

func TestPlacementsValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxPlacementApps: 8, MaxPlacementMachines: 4, MaxPlacementBeam: 16})
	cases := []struct {
		name     string
		mutate   func(*PlacementsRequest)
		wantCode string
	}{
		{"no apps", func(r *PlacementsRequest) { r.Apps = nil }, CodeBadRequest},
		{"too many apps", func(r *PlacementsRequest) { r.Apps = make([]string, 9) }, CodeBadRequest},
		{"unknown app", func(r *PlacementsRequest) { r.Apps = []string{"nosuch"} }, CodeUnknownApp},
		{"no machines", func(r *PlacementsRequest) { r.Machines = nil }, CodeBadRequest},
		{"fleet too big", func(r *PlacementsRequest) { r.Machines[0].Count = 5 }, CodeBadRequest},
		{"negative count", func(r *PlacementsRequest) { r.Machines[0].Count = -1 }, CodeBadRequest},
		{"unknown machine", func(r *PlacementsRequest) { r.Machines[0].Machine = "nosuch" }, CodeBadRequest},
		{"zero cores", func(r *PlacementsRequest) { r.Machines[0].Cores = -2 }, CodeBadRequest},
		{"conflicting pstates", func(r *PlacementsRequest) { r.Machines[0].PStates = []int{0, 9} }, CodeBadPState},
		{"duplicate pstates", func(r *PlacementsRequest) { r.Machines[0].PStates = []int{0, 0} }, CodeBadRequest},
		{"bad objective", func(r *PlacementsRequest) { r.Objective = "latency" }, CodeBadRequest},
		{"bad qos", func(r *PlacementsRequest) { r.MaxSlowdown = 0.5 }, CodeBadRequest},
		{"beam too big", func(r *PlacementsRequest) { r.Beam = 99 }, CodeBadRequest},
		{"overfull fleet", func(r *PlacementsRequest) {
			r.Machines = []PlacementMachineRequest{{Cores: 1}}
			r.Apps = []string{"cg", "cg", "cg", "cg", "cg", "cg", "cg"}
		}, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := placementsBody()
			body.Machines = []PlacementMachineRequest{{Count: 2}}
			body.Apps = body.Apps[:6]
			tc.mutate(&body)
			w := postJSON(t, s.Handler(), "/v1/placements", body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", w.Code, w.Body.String())
			}
			if got := errCode(t, w); got != tc.wantCode {
				t.Fatalf("code %q, want %q: %s", got, tc.wantCode, w.Body.String())
			}
		})
	}
}

func TestPlacementsTimeoutBeforePlanIs503(t *testing.T) {
	s, _ := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	w := postJSON(t, s.Handler(), "/v1/placements", placementsBody())
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	if got := errCode(t, w); got != CodeTimeout {
		t.Fatalf("code %q, want %q", got, CodeTimeout)
	}
}

func TestPlacementsDrainingSheds(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	s.StartDrain()
	w := postJSON(t, s.Handler(), "/v1/placements", placementsBody())
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if got := errCode(t, w); got != CodeDraining {
		t.Fatalf("code %q, want %q", got, CodeDraining)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
}

// TestScheduleCompatShape pins POST /v1/schedule's behaviour now that it
// routes through the placement engine: the response shape is unchanged
// field for field, and the assignment still matches sched.GreedyAware.
func TestScheduleCompatShape(t *testing.T) {
	s, m := newTestServer(t, Config{})
	jobs := []string{"cg", "cg", "ep", "canneal", "cg", "ep"}
	w := postJSON(t, s.Handler(), "/v1/schedule", ScheduleRequest{
		Jobs: jobs, MaxSlowdown: 1.5,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	// Exactly the pre-placement-engine keys, no more, no fewer.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"model", "spec", "machine", "assignment", "machines_used", "jobs"} {
		if _, ok := raw[k]; !ok {
			t.Fatalf("response lost key %q: %s", k, w.Body.String())
		}
	}
	if len(raw) != 6 {
		t.Fatalf("response grew to %d keys: %s", len(raw), w.Body.String())
	}
	resp := decodeBody[ScheduleResponse](t, w)
	want, err := sched.GreedyAware(m, simproc.XeonE5649(), jobs, sched.AwareConfig{MaxSlowdown: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Assignment) != len(want) {
		t.Fatalf("assignment %v != sched.GreedyAware %v", resp.Assignment, want)
	}
	for i := range want {
		if strings.Join(resp.Assignment[i], ",") != strings.Join(want[i], ",") {
			t.Fatalf("machine %d: %v != %v", i, resp.Assignment[i], want[i])
		}
	}
	if resp.Machine != "Xeon E5649" || resp.Jobs != len(jobs) {
		t.Fatalf("identity fields wrong: %+v", resp)
	}
}

func TestPlacementsEnergyObjective(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	body := placementsBody()
	body.Objective = "energy"
	w := postJSON(t, s.Handler(), "/v1/placements", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[PlacementsResponse](t, w)
	if resp.Objective != "energy" {
		t.Fatalf("objective %q", resp.Objective)
	}
	if resp.Plan.Objective != resp.Plan.TotalEnergyJ {
		t.Fatalf("objective %.3f != total energy %.3f", resp.Plan.Objective, resp.Plan.TotalEnergyJ)
	}
}

// FuzzPlacements feeds hostile bodies to the placements decoder: the
// contract is a typed 4xx (or a valid 200) — never a panic, never a 5xx.
func FuzzPlacements(f *testing.F) {
	valid, err := json.Marshal(placementsBody())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"apps":["cg"],"machines":[{"cores":0}]}`))
	f.Add([]byte(`{"apps":["nosuch"],"machines":[{}]}`))
	f.Add([]byte(`{"apps":["cg"],"machines":[{"pstates":[0,0]}]}`))
	f.Add([]byte(`{"apps":["cg"],"machines":[{"pstates":[-1,99]}]}`))
	f.Add([]byte(`{"apps":["cg"],"machines":[{"count":-5}]}`))
	f.Add([]byte(`{"apps":["cg"],"machines":[{"machine":"13core"}]}`))
	f.Add([]byte(`{"stream":true,"apps":["cg","ep"],"machines":[{"count":2}],"beam":2}`))
	s, _ := newTestServer(f, Config{
		MaxPlacementApps:     16,
		MaxPlacementMachines: 8,
		MaxPlacementBeam:     8,
		RequestTimeout:       2 * time.Second,
	})
	h := s.Handler()
	f.Fuzz(func(t *testing.T, data []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/placements", bytes.NewReader(data))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code >= 500 {
			t.Fatalf("5xx on client input: %d %s (body %q)", w.Code, w.Body.String(), data)
		}
		if w.Code != http.StatusOK {
			// Typed error contract: a JSON envelope with a stable code.
			var eb errorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error.Code == "" {
				t.Fatalf("untyped %d error body %q for input %q", w.Code, w.Body.String(), data)
			}
		}
	})
}
