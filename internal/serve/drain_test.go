package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"colocmodel/internal/features"
)

// TestDrainSheds503 pins the typed drain shed the cluster router keys
// off: once a server starts draining, every endpoint answers 503 with
// the stable code "draining" and a Retry-After header, so a gateway can
// tell "alive but refusing" (re-route, don't eject) from "dead".
func TestDrainSheds503(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg"}, PState: 0}
	body := PredictRequest{ScenarioRequest: ScenarioRequest{Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState}}

	if w := postJSON(t, h, "/v1/predict", body); w.Code != http.StatusOK {
		t.Fatalf("predict before drain returned %d", w.Code)
	}
	if s.Draining() {
		t.Fatal("server reports draining before StartDrain")
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("server does not report draining after StartDrain")
	}
	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodPost, "/v1/predict"},
		{http.MethodGet, "/healthz"}, // the cluster probe path
	} {
		var w *httptest.ResponseRecorder
		if probe.method == http.MethodPost {
			w = postJSON(t, h, probe.path, body)
		} else {
			w = get(t, h, probe.path)
		}
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during drain returned %d, want 503", probe.method, probe.path, w.Code)
		}
		if got := w.Header().Get("Retry-After"); got == "" {
			t.Fatalf("%s during drain missing Retry-After header", probe.path)
		}
		if got := errCode(t, w); got != CodeDraining {
			t.Fatalf("%s during drain answered code %q, want %q", probe.path, got, CodeDraining)
		}
		if got := w.Header().Get("X-Request-ID"); got == "" {
			t.Fatalf("%s during drain lost the request-ID contract", probe.path)
		}
	}
	// /v1/version still reports state: Draining is how peers see a
	// backend winding down without racing its socket close.
	w := get(t, h, "/v1/version")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("version during drain returned %d, want the shed too", w.Code)
	}
}
