package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/obs"
	"colocmodel/internal/testeq"
)

// TestReplicaSetAcquireRelease pins the slot lifecycle: a slot compiles
// once, keeps its instance across acquire/release cycles, and recompiles
// only when the model pointer changes (a hot-swap).
func TestReplicaSetAcquireRelease(t *testing.T) {
	gen := testeq.New(21, testeq.GenConfig{})
	m1, err := gen.Model()
	if err != nil {
		t.Fatal(err)
	}
	rs := newReplicaSet(1)

	c1, slot := rs.acquire(m1)
	if c1 == nil {
		t.Fatal("acquire returned no replica for a compiled model")
	}
	slot.release()
	c2, slot := rs.acquire(m1)
	if c2 != c1 {
		t.Fatal("slot recompiled for an unchanged model")
	}
	slot.release()

	m2, err := gen.Model()
	if err != nil {
		t.Fatal(err)
	}
	c3, slot := rs.acquire(m2)
	if c3 == nil {
		t.Fatal("acquire returned no replica after swap")
	}
	if c3 == c1 {
		t.Fatal("slot served the old model's replica for a new model")
	}
	if got := c3.Spec().String(); got != m2.Spec.String() {
		t.Fatalf("replica compiled for %s, want %s", got, m2.Spec)
	}
	slot.release()
}

// TestReplicaSetAllBusy pins the overload valve: with every slot held,
// acquire yields nothing and the eval helpers fall back to the model's
// own path — same answer, no queueing.
func TestReplicaSetAllBusy(t *testing.T) {
	gen := testeq.New(22, testeq.GenConfig{})
	m, err := gen.Model()
	if err != nil {
		t.Fatal(err)
	}
	rs := newReplicaSet(1)
	c, slot := rs.acquire(m)
	if c == nil {
		t.Fatal("first acquire failed")
	}
	defer slot.release()
	if c2, _ := rs.acquire(m); c2 != nil {
		t.Fatal("acquire succeeded with every slot busy")
	}
	sc := gen.Scenarios(m, 1)[0]
	want, err := m.PredictInterpreted(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evalScalar(rs, m, sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("busy fallback predicted %v, want %v", got, want)
	}
}

// TestReplicaEvalBitIdentical pins the serving tier's use of the
// compiled path to the testeq equivalence contract: evalScalar and
// evalBatch reproduce the interpreted reference bit for bit.
func TestReplicaEvalBitIdentical(t *testing.T) {
	gen := testeq.New(23, testeq.GenConfig{})
	for i := 0; i < 10; i++ {
		m, err := gen.Model()
		if err != nil {
			t.Fatal(err)
		}
		rs := newReplicaSet(2)
		scs := gen.Scenarios(m, 16)
		wantBatch, err := m.PredictScenariosInterpreted(scs)
		if err != nil {
			t.Fatal(err)
		}
		gotBatch, err := evalBatch(rs, m, scs)
		if err != nil {
			t.Fatal(err)
		}
		for j, sc := range scs {
			got, err := evalScalar(rs, m, sc)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(wantBatch[j]) {
				t.Fatalf("model %d scalar slot %d: %v != %v", i, j, got, wantBatch[j])
			}
			if math.Float64bits(gotBatch[j]) != math.Float64bits(wantBatch[j]) {
				t.Fatalf("model %d batch slot %d: %v != %v", i, j, gotBatch[j], wantBatch[j])
			}
		}
	}
}

// TestReplicasRaceHotSwap is the replica-path counterpart of the cache
// swap soak: with the cache disabled, every predict is a miss and flows
// through a per-P-core replica while the registry hot-swaps through a
// sequence of distinct models. Invariants, under -race:
//
//   - a response's value always belongs to a model at least as new as
//     the generation it reports (replicas lag a swap by at most one
//     acquisition, never backwards);
//   - generations observed by one reader never decrease.
func TestReplicasRaceHotSwap(t *testing.T) {
	ds := testDataset(t)
	const numModels = 4
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	models := make([]*core.Model, numModels)
	for i := range models {
		var records []harness.Record
		for j, r := range ds.Records {
			if (j+i)%3 != 0 {
				records = append(records, r)
			}
		}
		m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: uint64(i + 1)}, ds, records)
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsCompiled() {
			t.Fatalf("trained model %d is not compiled", i)
		}
		models[i] = m
	}

	scenarios := []features.Scenario{
		{Target: "canneal", CoApps: []string{"cg", "cg", "cg"}, PState: 0},
		{Target: "cg", CoApps: []string{"ep"}, PState: 1},
		{Target: "ep", CoApps: []string{"cg", "ep", "cg"}, PState: 0},
		{Target: "canneal", CoApps: []string{"ep"}, PState: 1},
	}
	want := make([]map[float64]int, len(scenarios)) // value -> model index
	for si, sc := range scenarios {
		want[si] = make(map[float64]int, numModels)
		for mi, m := range models {
			v, err := m.Predict(sc)
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := want[si][v]; dup && prev != mi {
				t.Skipf("models %d and %d agree exactly on scenario %d; cannot attribute values", prev, mi, si)
			}
			want[si][v] = mi
		}
	}

	reg := NewRegistry()
	if err := reg.Add("primary", "", models[0]); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{CacheSize: -1}) // no cache: every predict is a replica-path miss

	var stop atomic.Bool
	var swapErr error
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		defer stop.Store(true)
		for i := 1; i < numModels; i++ {
			for k := 0; k < 500; k++ {
				if _, _, err := reg.Get("primary"); err != nil {
					swapErr = err
					return
				}
			}
			if err := reg.Swap("primary", models[i]); err != nil {
				swapErr = err
				return
			}
		}
	}()

	const readers = 8
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			var lastGen uint64
			for i := 0; ; i++ {
				if stop.Load() && i%len(scenarios) == 0 {
					errs <- nil
					return
				}
				sc := scenarios[(i+r)%len(scenarios)]
				name, m, gen, reps, e := s.resolveModel("")
				if e != nil {
					errs <- fmt.Errorf("resolveModel: %s", e.Message)
					return
				}
				if gen < lastGen {
					errs <- fmt.Errorf("generation went backwards: %d after %d", gen, lastGen)
					return
				}
				lastGen = gen
				resp, e := s.predictOne(obs.Span{}, name, m, gen, reps, sc)
				if e != nil {
					errs <- fmt.Errorf("predictOne: %s", e.Message)
					return
				}
				if resp.Cached {
					errs <- fmt.Errorf("cache disabled but response claims a hit")
					return
				}
				mi, known := want[(i+r)%len(scenarios)][resp.PredictedSeconds]
				if !known {
					errs <- fmt.Errorf("generation %d returned a value belonging to no model: %v", resp.Generation, resp.PredictedSeconds)
					return
				}
				if uint64(mi) < resp.Generation-1 {
					errs <- fmt.Errorf("STALE: generation %d served model %d's value %v", resp.Generation, mi, resp.PredictedSeconds)
					return
				}
			}
		}(r)
	}
	for r := 0; r < readers; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	swapWG.Wait()
	if swapErr != nil {
		t.Fatal(swapErr)
	}
	// Settled state: the last model serves, and a fresh acquisition pins
	// a replica of it.
	e, err2 := reg.lookup("primary")
	if err2 != nil {
		t.Fatal(err2)
	}
	m, _ := e.snapshot()
	if m != models[numModels-1] {
		t.Fatal("final model not in service after swaps")
	}
	c, slot := e.reps.acquire(m)
	if c == nil {
		t.Fatal("no replica available after the soak settled")
	}
	slot.release()
}
