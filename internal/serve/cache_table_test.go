package serve

import (
	"fmt"
	"testing"

	"colocmodel/internal/features"
)

// TestScenarioKeyCanonicalisation is the table-driven contract of the
// cache key: co-runner order never matters (model features are sums),
// duplicates are preserved (two copies of cg load the machine more than
// one), and every other scenario dimension — model, generation, target,
// P-state, multiplicity — must separate keys.
func TestScenarioKeyCanonicalisation(t *testing.T) {
	type entry struct {
		model string
		gen   uint64
		sc    features.Scenario
	}
	cases := []struct {
		name string
		a, b entry
		same bool
	}{
		{
			name: "co-runner order is canonicalised",
			a:    entry{"m", 1, features.Scenario{Target: "canneal", CoApps: []string{"cg", "ep"}, PState: 0}},
			b:    entry{"m", 1, features.Scenario{Target: "canneal", CoApps: []string{"ep", "cg"}, PState: 0}},
			same: true,
		},
		{
			name: "order invariance holds for longer sets",
			a:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep", "cg", "ep"}, PState: 1}},
			b:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep", "ep", "cg"}, PState: 1}},
			same: true,
		},
		{
			name: "duplicate co-runners are not collapsed",
			a:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep", "ep"}, PState: 0}},
			b:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			same: false,
		},
		{
			name: "solo differs from any co-location",
			a:    entry{"m", 1, features.Scenario{Target: "cg", PState: 0}},
			b:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"cg"}, PState: 0}},
			same: false,
		},
		{
			name: "model name separates keys",
			a:    entry{"m1", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			b:    entry{"m2", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			same: false,
		},
		{
			name: "generation separates keys (hot swap invalidates)",
			a:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			b:    entry{"m", 2, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			same: false,
		},
		{
			name: "target separates keys",
			a:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			b:    entry{"m", 1, features.Scenario{Target: "ep", CoApps: []string{"ep"}, PState: 0}},
			same: false,
		},
		{
			name: "P-state separates keys",
			a:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			b:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 1}},
			same: false,
		},
		{
			name: "target/co-app confusion is impossible",
			a:    entry{"m", 1, features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}},
			b:    entry{"m", 1, features.Scenario{Target: "ep", CoApps: []string{"cg"}, PState: 0}},
			same: false,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ka := ScenarioKey(c.a.model, c.a.gen, c.a.sc)
			kb := ScenarioKey(c.b.model, c.b.gen, c.b.sc)
			if (ka == kb) != c.same {
				t.Fatalf("ScenarioKey equality = %v, want %v\n  a: %q\n  b: %q",
					ka == kb, c.same, ka, kb)
			}
		})
	}
}

// TestScenarioKeyDoesNotMutateScenario guards the canonicalisation
// implementation detail that matters to callers: sorting happens on a
// copy, never on the caller's co-app slice.
func TestScenarioKeyDoesNotMutateScenario(t *testing.T) {
	co := []string{"ep", "cg", "canneal"}
	ScenarioKey("m", 1, features.Scenario{Target: "cg", CoApps: co})
	if co[0] != "ep" || co[1] != "cg" || co[2] != "canneal" {
		t.Fatalf("ScenarioKey reordered the caller's co-apps: %v", co)
	}
}

// shardKeys returns n distinct keys that all hash into the same shard
// as probe, so eviction tests can fill exactly one lock domain.
func shardKeys(t *testing.T, c *Cache, probe string, n int) []string {
	t.Helper()
	target := c.shard(probe)
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("m@1|app%d|0", i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
		if i > 1<<20 {
			t.Fatal("could not find enough keys for one shard")
		}
	}
	return keys
}

// TestCacheEvictsFIFOAtShardCapacity pins the eviction contract:
// NewCache(16) leaves one slot per shard, so a second distinct key in
// the same shard must evict the first, and re-putting an existing key
// updates in place without consuming a ring slot.
func TestCacheEvictsFIFOAtShardCapacity(t *testing.T) {
	c := NewCache(16) // one entry per shard
	keys := shardKeys(t, c, "probe", 3)
	k1, k2, k3 := keys[0], keys[1], keys[2]

	c.Put(k1, prediction{Seconds: 1})
	if p, ok := c.Get(k1); !ok || p.Seconds != 1 {
		t.Fatalf("k1 missing right after Put: %v %v", p, ok)
	}

	// Updating the resident key must not evict it.
	c.Put(k1, prediction{Seconds: 10})
	if p, ok := c.Get(k1); !ok || p.Seconds != 10 {
		t.Fatalf("update lost: %v %v", p, ok)
	}

	// A second key in the same one-slot shard evicts the first.
	c.Put(k2, prediction{Seconds: 2})
	if _, ok := c.Get(k1); ok {
		t.Fatal("k1 survived past shard capacity")
	}
	if p, ok := c.Get(k2); !ok || p.Seconds != 2 {
		t.Fatalf("k2 missing after eviction: %v %v", p, ok)
	}

	// FIFO continues: k3 evicts k2.
	c.Put(k3, prediction{Seconds: 3})
	if _, ok := c.Get(k2); ok {
		t.Fatal("k2 survived past shard capacity")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("k3 missing")
	}
}

// TestCacheCapacityBound fills the cache far past its configured
// capacity and checks the bound holds while keys in other shards stay
// unaffected by one shard's evictions.
func TestCacheCapacityBound(t *testing.T) {
	const capacity = 64 // 4 per shard
	c := NewCache(capacity)
	for i := 0; i < capacity*10; i++ {
		c.Put(fmt.Sprintf("m@1|t%d|0", i), prediction{Seconds: float64(i)})
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	if n := c.Len(); n < capacity/2 {
		t.Fatalf("cache holds only %d entries after %d puts; shards underfilled", n, capacity*10)
	}
}

// TestCacheTinyCapacityRoundsUp guards the documented floor: capacities
// below the shard count still give every shard one usable slot.
func TestCacheTinyCapacityRoundsUp(t *testing.T) {
	c := NewCache(1)
	c.Put("a", prediction{Seconds: 1})
	if _, ok := c.Get("a"); !ok {
		t.Fatal("single-slot shard cannot hold an entry")
	}
}
