package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/obs"
	"colocmodel/internal/placement"
)

// ---- placements ----

// PlacementMachineRequest describes one fleet machine (or, with Count,
// a group of identical machines) in a placement request.
type PlacementMachineRequest struct {
	// Name labels the machine in plans; defaults to its fleet index.
	Name string `json:"name,omitempty"`
	// Machine selects the processor model ("6core", "12core" or a spec
	// name); empty infers the model's training machine.
	Machine string `json:"machine,omitempty"`
	// Cores bounds how many cores the optimizer may use (0 = all).
	Cores int `json:"cores,omitempty"`
	// PStates are the allowed P-state indices (empty = all the model
	// and machine both support).
	PStates []int `json:"pstates,omitempty"`
	// Count replicates this machine description (0 and 1 mean one).
	Count int `json:"count,omitempty"`
}

// PlacementsRequest asks the optimizer for a fleet placement.
type PlacementsRequest struct {
	// Model names the registry entry; empty selects the default.
	Model string `json:"model,omitempty"`
	// Machines describes the fleet.
	Machines []PlacementMachineRequest `json:"machines"`
	// Apps are the pending applications, one entry per copy.
	Apps []string `json:"apps"`
	// Objective is "slowdown" (default) or "energy".
	Objective string `json:"objective,omitempty"`
	// MaxSlowdown is the per-app QoS bound on predicted interference
	// slowdown (0 disables, otherwise must exceed 1).
	MaxSlowdown float64 `json:"max_slowdown,omitempty"`
	// Seed drives local-search sampling (reproducible plans).
	Seed uint64 `json:"seed,omitempty"`
	// Beam is the number of candidate moves sampled per local-search
	// round; 0 disables local search (greedy construction only).
	Beam int `json:"beam,omitempty"`
	// MaxRounds caps local-search rounds (0 = default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Stream switches the response to NDJSON: one line per improving
	// plan as the search finds them, then a final line with the result.
	Stream bool `json:"stream,omitempty"`
}

// PlacementsResponse is the sync placement result.
type PlacementsResponse struct {
	Model     string                `json:"model"`
	Objective string                `json:"objective"`
	Plan      *placement.Plan       `json:"plan"`
	Search    placement.SearchStats `json:"search"`
}

// PlacementsStreamEvent is one NDJSON line of a streaming placement
// response: intermediate lines carry an improving plan (final=false),
// the last line carries the final plan plus search stats (final=true).
type PlacementsStreamEvent struct {
	Final  bool                   `json:"final"`
	Plan   *placement.Plan        `json:"plan,omitempty"`
	Search *placement.SearchStats `json:"search,omitempty"`
	Error  *errorDetail           `json:"error,omitempty"`
}

// rawHandlerFunc is a handler that writes its own response (the
// streaming endpoint) and returns the status it committed, for logging
// and metrics.
type rawHandlerFunc func(w http.ResponseWriter, r *http.Request) int

// wrapRaw applies wrap's cross-cutting layers (drain shed, request ID,
// timeout context, tracing, logging, metrics) to a handler that writes
// its own body — required for NDJSON streaming, where bytes must reach
// the client before the handler returns. Server-Timing is omitted:
// trailers would be the only correct vehicle once the body has begun.
func (s *Server) wrapRaw(endpoint string, h rawHandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.RequestStarted()
		defer s.metrics.RequestDone()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		if s.draining.Load() {
			w.Header().Set("Retry-After", "1")
			status, body := errBody(&Error{Status: http.StatusServiceUnavailable,
				Code: CodeDraining, Message: "server is draining for shutdown"})
			writeJSON(w, status, body)
			d := time.Since(start)
			s.logRequest(r, endpoint, reqID, status, d)
			s.metrics.ObserveRequest(endpoint, d, true)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		tr := s.tracer.StartAt("http", endpoint, reqID, start)
		// Adopt the caller's trace context for the backend's own ring;
		// X-Trace-Spans is omitted along with Server-Timing, since the
		// streamed body begins before the span tree is complete.
		if tc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			tr.AdoptContext(tc)
		}
		ctx = obs.NewContext(ctx, reqID, tr)
		status := h(w, r.WithContext(ctx))
		d := time.Since(start)
		tr.Finish(status, status >= 400)
		s.logRequest(r, endpoint, reqID, status, d)
		s.metrics.ObserveRequest(endpoint, d, status >= 400)
	}
}

// decodePlacements validates a placement request against the model and
// expands it into an optimizer problem.
func (s *Server) decodePlacements(req PlacementsRequest, m *core.Model) (placement.Problem, *Error) {
	var prob placement.Problem
	if len(req.Apps) == 0 {
		return prob, badRequest(CodeBadRequest, "apps must not be empty")
	}
	if len(req.Apps) > s.cfg.MaxPlacementApps {
		return prob, badRequest(CodeBadRequest, "%d apps exceed limit %d", len(req.Apps), s.cfg.MaxPlacementApps)
	}
	for _, a := range req.Apps {
		if !m.HasApp(a) {
			return prob, badRequest(CodeUnknownApp, "unknown app %q (known: %s)", a, strings.Join(m.Apps(), ", "))
		}
	}
	if len(req.Machines) == 0 {
		return prob, badRequest(CodeBadRequest, "machines must not be empty")
	}
	obj, err := placement.ObjectiveByName(req.Objective)
	if err != nil {
		return prob, badRequest(CodeBadRequest, "%v", err)
	}
	if req.Beam < 0 || req.Beam > s.cfg.MaxPlacementBeam {
		return prob, badRequest(CodeBadRequest, "beam %d out of [0,%d]", req.Beam, s.cfg.MaxPlacementBeam)
	}
	var machines []placement.Machine
	for i, mr := range req.Machines {
		count := mr.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return prob, badRequest(CodeBadRequest, "machine %d: negative count %d", i, count)
		}
		if len(machines)+count > s.cfg.MaxPlacementMachines {
			return prob, badRequest(CodeBadRequest, "fleet exceeds limit of %d machines", s.cfg.MaxPlacementMachines)
		}
		spec, e := resolveMachine(mr.Machine, m)
		if e != nil {
			return prob, e
		}
		if mr.Cores < 0 || mr.Cores > spec.Cores {
			return prob, badRequest(CodeBadRequest, "machine %d: %d cores out of [0,%d]", i, mr.Cores, spec.Cores)
		}
		maxPS := m.PStates()
		if n := spec.PStates.Len(); n < maxPS {
			maxPS = n
		}
		for _, ps := range mr.PStates {
			if ps < 0 || ps >= maxPS {
				return prob, badRequest(CodeBadPState,
					"machine %d: P-state %d conflicts with the model/machine tables (range [0,%d))", i, ps, maxPS)
			}
		}
		for c := 0; c < count; c++ {
			pm := placement.Machine{Name: mr.Name, Spec: spec, Cores: mr.Cores,
				PStates: append([]int(nil), mr.PStates...)}
			if pm.Name != "" && count > 1 {
				pm.Name = pm.Name + "-" + strconv.Itoa(c)
			}
			machines = append(machines, pm)
		}
	}
	return placement.Problem{
		Model:     m,
		Machines:  machines,
		Apps:      req.Apps,
		Objective: obj,
		QoSBound:  req.MaxSlowdown,
		Seed:      req.Seed,
		Beam:      req.Beam,
		MaxRounds: req.MaxRounds,
	}, nil
}

// placementError maps optimizer failures: malformed problems that
// slipped past request validation are still client mistakes (400), a
// context expiring before any plan exists is a timeout, anything else
// is a fault.
func placementError(ctx context.Context, err error) *Error {
	if placement.IsInvalid(err) {
		return badRequest(CodeBadRequest, "%v", err)
	}
	if ctx.Err() != nil {
		return &Error{Status: http.StatusServiceUnavailable, Code: CodeTimeout,
			Message: "request timed out before a plan was constructed"}
	}
	return asError(err)
}

// handlePlacements serves POST /v1/placements in both modes. The sync
// path buffers the final result like every other endpoint; the
// streaming path commits an NDJSON response and flushes one line per
// improving plan as local search finds them, so a scheduling client can
// act on a good-enough plan before convergence. The search runs under
// the request context: timeout or disconnect mid-search yields the best
// plan found so far (stats flag it), matching the optimizer's contract.
func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) int {
	ctx := r.Context()
	tr := obs.TraceFrom(ctx)
	sp := tr.StartSpan("decode")
	var req PlacementsRequest
	e := decodeJSON(r, &req)
	sp.End()
	var m *core.Model
	var name string
	if e == nil {
		name, m, _, _, e = s.resolveModel(req.Model)
	}
	var prob placement.Problem
	if e == nil {
		prob, e = s.decodePlacements(req, m)
	}
	if e != nil {
		status, body := errBody(e)
		writeJSON(w, status, body)
		return status
	}

	// Search-stage spans: construct runs until the first incremental
	// plan exists, local_search until the optimizer returns, and the
	// terminal span records how the search ended.
	csp := tr.StartSpan("construct")
	var lsp obs.Span
	var enc *json.Encoder
	var flusher http.Flusher
	streamed := 0
	onImprove := func(p *placement.Plan) {
		if streamed == 0 {
			csp.End()
			lsp = tr.StartSpan("local_search")
		}
		streamed++
		if enc == nil {
			return
		}
		_ = enc.Encode(PlacementsStreamEvent{Plan: p})
		if flusher != nil {
			flusher.Flush()
		}
	}
	if req.Stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc = json.NewEncoder(w)
		flusher, _ = w.(http.Flusher)
	}

	res, err := placement.Optimize(ctx, prob, onImprove)
	if streamed == 0 {
		csp.End()
	} else {
		lsp.End()
	}
	if err != nil {
		e := placementError(ctx, err)
		if req.Stream {
			// The status line is already committed; surface the failure
			// as a terminal NDJSON line instead.
			_ = enc.Encode(PlacementsStreamEvent{Final: true,
				Error: &errorDetail{Code: e.Code, Message: e.Message}})
			return http.StatusOK
		}
		status, body := errBody(e)
		writeJSON(w, status, body)
		return status
	}
	end := "converged"
	switch {
	case res.Stats.TimedOut:
		end = "timed_out"
	case !res.Stats.Converged:
		end = "round_capped"
	}
	esp := tr.StartSpan(end)
	esp.Annotate("rounds", strconv.Itoa(res.Stats.Rounds))
	esp.Annotate("improvements", strconv.Itoa(res.Stats.Improvements))
	esp.Annotate("scenarios", strconv.Itoa(res.Stats.Scenarios))
	esp.End()

	if req.Stream {
		_ = enc.Encode(PlacementsStreamEvent{Final: true, Plan: res.Plan, Search: &res.Stats})
		if flusher != nil {
			flusher.Flush()
		}
		return http.StatusOK
	}
	if st := tr.ServerTiming(); st != "" {
		w.Header().Set("Server-Timing", st)
	}
	writeJSON(w, http.StatusOK, PlacementsResponse{
		Model:     name,
		Objective: prob.Objective.String(),
		Plan:      res.Plan,
		Search:    res.Stats,
	})
	return http.StatusOK
}
