package serve

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
)

// Per-P-core model replicas. A core.Compiled instance is the model's
// fused, allocation-free fast path, but it owns private scratch and is
// not goroutine-safe; Model.Predict stays safe by checking instances in
// and out of a sync.Pool, which costs a Get/Put round-trip per predict
// and loses its instances to every GC cycle. The serving tier keeps its
// own replica set instead: one padded slot per P-core, each holding a
// long-lived Compiled pinned to whatever model the slot last served.
// A request CASes a slot busy, predicts through its replica, and
// releases it — no pool traffic, no GC churn, no sharing. When the
// registry hot-swaps a model the slots notice lazily (the slot's model
// pointer no longer matches the entry's) and recompile on next
// acquisition, so a swap never blocks the prediction path.

// replicaSlot is one P-core's replica. The trailing padding keeps slots
// on separate cache lines so the busy flags don't false-share.
type replicaSlot struct {
	busy  atomic.Int32
	_     [4]byte
	model *core.Model    // model c was compiled from; only touched while busy
	c     *core.Compiled // lazily (re)built; only touched while busy
	_     [104]byte      // pad the 24 header bytes out to two cache lines
}

// release returns the slot to the free state. The atomic store pairs
// with the next acquirer's CAS, publishing the slot's model and compiled
// fields to it.
func (s *replicaSlot) release() { s.busy.Store(0) }

// replicaSet is the per-entry collection of replica slots.
type replicaSet struct {
	slots []replicaSlot
}

// newReplicaSet builds n slots; n <= 0 selects one per P-core
// (GOMAXPROCS).
func newReplicaSet(n int) *replicaSet {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &replicaSet{slots: make([]replicaSlot, n)}
}

// acquire checks out a compiled replica of m, compiling into the slot if
// it is empty or pinned to a previous model generation. It returns nil
// when the model has no compiled program or every slot is busy — callers
// fall back to the model's own (pooled, still allocation-light) path
// rather than queueing. The probe starts at a random slot so concurrent
// requests spread across cores instead of convoying on slot zero.
func (rs *replicaSet) acquire(m *core.Model) (*core.Compiled, *replicaSlot) {
	if rs == nil || m == nil || !m.IsCompiled() {
		return nil, nil
	}
	n := len(rs.slots)
	start := int(rand.Uint32N(uint32(n)))
	for i := 0; i < n; i++ {
		s := &rs.slots[(start+i)%n]
		if !s.busy.CompareAndSwap(0, 1) {
			continue
		}
		if s.model != m {
			c, err := m.Compile()
			if err != nil {
				s.release()
				return nil, nil
			}
			s.model, s.c = m, c
		}
		return s.c, s
	}
	return nil, nil
}

// evalScalar predicts one scenario through a per-P-core replica when one
// is free, falling back to the model's internal pooled path otherwise.
// Results are bit-identical either way (the testeq harness proves it),
// so the fallback is purely a throughput valve.
func evalScalar(reps *replicaSet, m *core.Model, sc features.Scenario) (float64, error) {
	if c, slot := reps.acquire(m); c != nil {
		v, err := c.Predict(sc)
		slot.release()
		return v, err
	}
	return m.Predict(sc)
}

// evalBatch is evalScalar's batched counterpart: one blocked-kernel pass
// over all scenarios through a replica, with the same fallback.
func evalBatch(reps *replicaSet, m *core.Model, scs []features.Scenario) ([]float64, error) {
	if c, slot := reps.acquire(m); c != nil {
		out := make([]float64, len(scs))
		err := c.PredictScenarios(scs, out)
		slot.release()
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return m.PredictScenarios(scs)
}
