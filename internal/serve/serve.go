// Package serve is the online inference tier: an HTTP JSON server that
// turns trained co-location models into a queryable service. The paper
// frames a trained model as a deployable artefact a resource manager
// consults at schedule time; this package is that consultation surface,
// built for heavy traffic from three reusable layers:
//
//   - Registry: named models with lock-free reads and atomic hot-swap,
//     so a re-trained model replaces its predecessor without dropping a
//     request.
//   - Cache: a sharded, size-bounded memo of canonicalised scenarios —
//     scheduling loops repeat scenarios heavily, so the neural forward
//     pass becomes a map hit.
//   - Metrics: request/error counters, per-endpoint latency histograms
//     and cache hit ratios in Prometheus text format, stdlib only.
//
// A fourth, optional layer closes the adaptation loop (EnableAdaptation):
// deployed schedulers report measured runtimes to POST /v1/observations,
// residual drift is watched per (model × target) stream, and a tripped
// detector can trigger gated background retraining with atomic promotion.
//
// Endpoints: POST /v1/predict, POST /v1/predict/batch, POST
// /v1/schedule, POST /v1/models/reload, GET /v1/models, POST
// /v1/observations, GET /v1/drift, POST /v1/retrain, GET
// /v1/retrain/status, GET /v1/version, GET /healthz,
// GET /metrics. Client mistakes (unknown app or model, out-of-range
// P-state, malformed JSON) return 400 with a typed error body; only
// genuine faults return 500. Every request runs under a context
// timeout.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/sched"
	"colocmodel/internal/simproc"
)

// Config tunes the server.
type Config struct {
	// RequestTimeout bounds each request's total processing time.
	// Default 10s.
	RequestTimeout time.Duration
	// BatchWorkers bounds the worker pool a batch request fans out
	// across. Default GOMAXPROCS.
	BatchWorkers int
	// CacheSize bounds the prediction cache (entries). 0 selects the
	// default (65536); negative disables caching.
	CacheSize int
	// MaxBatch caps scenarios per batch request. Default 4096.
	MaxBatch int
	// MaxScheduleJobs caps jobs per schedule request. Default 1024.
	MaxScheduleJobs int
}

func (c *Config) defaults() {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 65536
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4096
	}
	if c.MaxScheduleJobs == 0 {
		c.MaxScheduleJobs = 1024
	}
}

// Server serves predictions from a model registry.
type Server struct {
	cfg     Config
	reg     *Registry
	cache   *Cache // nil when disabled
	metrics *Metrics
	adapt   *Adaptation // nil when the adaptation loop is disabled

	muxOnce sync.Once
	mux     http.Handler
}

// New builds a server around a registry.
func New(reg *Registry, cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg: cfg,
		reg: reg,
		metrics: NewMetrics(
			"predict", "predict_batch", "schedule", "models", "reload", "healthz", "metrics",
			"observations", "drift", "retrain", "retrain_status", "version",
		),
	}
	if cfg.CacheSize > 0 {
		s.cache = NewCache(cfg.CacheSize)
	}
	return s
}

// Registry returns the server's model registry.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's metrics layer.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handler returns the server's HTTP routing table. The mux is built
// once and shared, so external drivers (tests, the loadgen harness)
// that call Handler per request hit the same routing table the network
// listener uses instead of rebuilding it each time.
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/predict", s.wrap("predict", s.handlePredict))
		mux.HandleFunc("POST /v1/predict/batch", s.wrap("predict_batch", s.handlePredictBatch))
		mux.HandleFunc("POST /v1/schedule", s.wrap("schedule", s.handleSchedule))
		mux.HandleFunc("GET /v1/models", s.wrap("models", s.handleModels))
		mux.HandleFunc("POST /v1/models/reload", s.wrap("reload", s.handleReload))
		mux.HandleFunc("POST /v1/observations", s.wrap("observations", s.handleObservations))
		mux.HandleFunc("GET /v1/drift", s.wrap("drift", s.handleDrift))
		mux.HandleFunc("POST /v1/retrain", s.wrap("retrain", s.handleRetrain))
		mux.HandleFunc("GET /v1/retrain/status", s.wrap("retrain_status", s.handleRetrainStatus))
		mux.HandleFunc("GET /v1/version", s.wrap("version", s.handleVersion))
		mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		s.mux = mux
	})
	return s.mux
}

// handlerFunc processes one decoded request and returns a status and a
// JSON-encodable body.
type handlerFunc func(r *http.Request) (int, any)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errBody(e *Error) (int, any) {
	return e.Status, errorBody{Error: errorDetail{Code: e.Code, Message: e.Message}}
}

// wrap applies the cross-cutting layers to a handler: in-flight and
// latency accounting, and the per-request timeout context.
func (s *Server) wrap(endpoint string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.RequestStarted()
		defer s.metrics.RequestDone()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		status, body := h(r.WithContext(ctx))
		writeJSON(w, status, body)
		s.metrics.ObserveRequest(endpoint, time.Since(start), status >= 400)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// decodeJSON strictly decodes a request body, mapping every decoding
// failure to a 400.
func decodeJSON(r *http.Request, into any) *Error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest(CodeBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// ---- predict ----

// ScenarioRequest is the wire form of a co-location scenario.
type ScenarioRequest struct {
	// Target is the target application name.
	Target string `json:"target"`
	// CoApps are the co-located application names (one per copy).
	CoApps []string `json:"co_apps"`
	// PState is the P-state index.
	PState int `json:"pstate"`
}

func (sr ScenarioRequest) scenario() features.Scenario {
	return features.Scenario{Target: sr.Target, CoApps: sr.CoApps, PState: sr.PState}
}

// PredictRequest asks for one scenario's prediction.
type PredictRequest struct {
	// Model names the registry entry; empty selects the default model.
	Model string `json:"model,omitempty"`
	ScenarioRequest
}

// PredictResponse is one scenario's prediction.
type PredictResponse struct {
	Model string `json:"model"`
	// Generation is the registry generation of the model that served
	// this prediction, so clients can attribute observations to the
	// exact model instance that produced them.
	Generation        uint64   `json:"generation"`
	Spec              string   `json:"spec"`
	Target            string   `json:"target"`
	CoApps            []string `json:"co_apps"`
	PState            int      `json:"pstate"`
	PredictedSeconds  float64  `json:"predicted_seconds"`
	PredictedSlowdown float64  `json:"predicted_slowdown"`
	BaselineSeconds   float64  `json:"baseline_seconds"`
	// Cached reports whether the prediction came from the cache.
	Cached bool `json:"cached"`
}

func (s *Server) handlePredict(r *http.Request) (int, any) {
	var req PredictRequest
	if e := decodeJSON(r, &req); e != nil {
		return errBody(e)
	}
	name, m, gen, e := s.resolveModel(req.Model)
	if e != nil {
		return errBody(e)
	}
	resp, e := s.predictOne(name, m, gen, req.scenario())
	if e != nil {
		return errBody(e)
	}
	return http.StatusOK, resp
}

// resolveModel maps a (possibly empty) request model name to a registry
// entry.
func (s *Server) resolveModel(name string) (string, *core.Model, uint64, *Error) {
	if name == "" {
		name = s.reg.DefaultName()
		if name == "" {
			return "", nil, 0, &Error{Status: http.StatusServiceUnavailable, Code: CodeUnknownModel, Message: "no models loaded"}
		}
	}
	m, gen, err := s.reg.Get(name)
	if err != nil {
		return "", nil, 0, asError(err)
	}
	return name, m, gen, nil
}

// validateScenario rejects requests the model cannot serve before any
// prediction work happens, so that client mistakes are 400s.
func validateScenario(m *core.Model, sc features.Scenario) *Error {
	if sc.Target == "" {
		return badRequest(CodeBadRequest, "target must be set")
	}
	if !m.HasApp(sc.Target) {
		return badRequest(CodeUnknownApp, "unknown target %q (known: %s)", sc.Target, strings.Join(m.Apps(), ", "))
	}
	for _, a := range sc.CoApps {
		if !m.HasApp(a) {
			return badRequest(CodeUnknownApp, "unknown co-app %q (known: %s)", a, strings.Join(m.Apps(), ", "))
		}
	}
	if sc.PState < 0 || sc.PState >= m.PStates() {
		return badRequest(CodeBadPState, "P-state %d out of range [0,%d)", sc.PState, m.PStates())
	}
	return nil
}

// predictOne serves one scenario through the cache.
func (s *Server) predictOne(name string, m *core.Model, gen uint64, sc features.Scenario) (*PredictResponse, *Error) {
	if e := validateScenario(m, sc); e != nil {
		return nil, e
	}
	base, err := m.BaselineSeconds(sc.Target, sc.PState)
	if err != nil {
		return nil, asError(err)
	}
	resp := &PredictResponse{
		Model: name, Generation: gen, Spec: m.Spec.String(),
		Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
		BaselineSeconds: base,
	}
	var key string
	if s.cache != nil {
		key = scenarioKey(name, gen, sc)
		if p, ok := s.cache.Get(key); ok {
			s.metrics.CacheHit()
			resp.PredictedSeconds, resp.PredictedSlowdown, resp.Cached = p.Seconds, p.Slowdown, true
			return resp, nil
		}
		s.metrics.CacheMiss()
	}
	seconds, err := m.Predict(sc)
	if err != nil {
		return nil, asError(err)
	}
	p := prediction{Seconds: seconds, Slowdown: seconds / base}
	if s.cache != nil {
		s.cache.Put(key, p)
	}
	resp.PredictedSeconds, resp.PredictedSlowdown = p.Seconds, p.Slowdown
	return resp, nil
}

// ---- predict/batch ----

// BatchRequest asks for many scenarios at once.
type BatchRequest struct {
	// Model names the registry entry for every scenario in the batch.
	Model string `json:"model,omitempty"`
	// Scenarios are predicted independently; one bad scenario fails
	// only its own slot.
	Scenarios []ScenarioRequest `json:"scenarios"`
}

// BatchItem is one slot of a batch response: a result or an error.
type BatchItem struct {
	Result *PredictResponse `json:"result,omitempty"`
	Error  *errorDetail     `json:"error,omitempty"`
}

// BatchResponse reports every scenario in request order.
type BatchResponse struct {
	Model   string      `json:"model"`
	Results []BatchItem `json:"results"`
	// Errors counts failed slots.
	Errors int `json:"errors"`
}

func (s *Server) handlePredictBatch(r *http.Request) (int, any) {
	var req BatchRequest
	if e := decodeJSON(r, &req); e != nil {
		return errBody(e)
	}
	if len(req.Scenarios) == 0 {
		return errBody(badRequest(CodeBadRequest, "scenarios must not be empty"))
	}
	if len(req.Scenarios) > s.cfg.MaxBatch {
		return errBody(badRequest(CodeBadRequest, "batch of %d exceeds limit %d", len(req.Scenarios), s.cfg.MaxBatch))
	}
	name, m, gen, e := s.resolveModel(req.Model)
	if e != nil {
		return errBody(e)
	}

	// Fan the scenarios out across a bounded worker pool; each slot
	// fails independently and a request-level timeout fails the
	// remaining slots rather than the whole response.
	ctx := r.Context()
	results := make([]BatchItem, len(req.Scenarios))
	indices := make(chan int)
	workers := s.cfg.BatchWorkers
	if workers > len(req.Scenarios) {
		workers = len(req.Scenarios)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if err := ctx.Err(); err != nil {
					results[i].Error = &errorDetail{Code: CodeTimeout, Message: "request timed out before this scenario was served"}
					continue
				}
				resp, e := s.predictOne(name, m, gen, req.Scenarios[i].scenario())
				if e != nil {
					results[i].Error = &errorDetail{Code: e.Code, Message: e.Message}
					continue
				}
				results[i].Result = resp
			}
		}()
	}
	for i := range req.Scenarios {
		indices <- i
	}
	close(indices)
	wg.Wait()

	out := BatchResponse{Model: name, Results: results}
	for _, it := range results {
		if it.Error != nil {
			out.Errors++
		}
	}
	return http.StatusOK, out
}

// ---- schedule ----

// ScheduleRequest asks for a placement of jobs onto machines using the
// interference-aware greedy packer.
type ScheduleRequest struct {
	// Model names the registry entry; empty selects the default.
	Model string `json:"model,omitempty"`
	// Machine selects the fleet's machine type ("6core" or "12core");
	// empty infers it from the model's training machine.
	Machine string `json:"machine,omitempty"`
	// Jobs are the application names to place (one entry per copy).
	Jobs []string `json:"jobs"`
	// MaxSlowdown is the QoS bound (must exceed 1).
	MaxSlowdown float64 `json:"max_slowdown"`
	// PState is the fleet's operating point.
	PState int `json:"pstate"`
	// MaxMachines optionally caps the fleet (0 = unlimited).
	MaxMachines int `json:"max_machines,omitempty"`
}

// ScheduleResponse reports the placement.
type ScheduleResponse struct {
	Model        string     `json:"model"`
	Spec         string     `json:"spec"`
	Machine      string     `json:"machine"`
	Assignment   [][]string `json:"assignment"`
	MachinesUsed int        `json:"machines_used"`
	Jobs         int        `json:"jobs"`
}

func (s *Server) handleSchedule(r *http.Request) (int, any) {
	var req ScheduleRequest
	if e := decodeJSON(r, &req); e != nil {
		return errBody(e)
	}
	name, m, _, e := s.resolveModel(req.Model)
	if e != nil {
		return errBody(e)
	}
	if len(req.Jobs) == 0 {
		return errBody(badRequest(CodeBadRequest, "jobs must not be empty"))
	}
	if len(req.Jobs) > s.cfg.MaxScheduleJobs {
		return errBody(badRequest(CodeBadRequest, "%d jobs exceed limit %d", len(req.Jobs), s.cfg.MaxScheduleJobs))
	}
	for _, j := range req.Jobs {
		if !m.HasApp(j) {
			return errBody(badRequest(CodeUnknownApp, "unknown job %q (known: %s)", j, strings.Join(m.Apps(), ", ")))
		}
	}
	if req.MaxSlowdown <= 1 {
		return errBody(badRequest(CodeBadRequest, "max_slowdown %v must exceed 1", req.MaxSlowdown))
	}
	if req.PState < 0 || req.PState >= m.PStates() {
		return errBody(badRequest(CodeBadPState, "P-state %d out of range [0,%d)", req.PState, m.PStates()))
	}
	spec, e := resolveMachine(req.Machine, m)
	if e != nil {
		return errBody(e)
	}
	if err := r.Context().Err(); err != nil {
		return errBody(&Error{Status: http.StatusServiceUnavailable, Code: CodeTimeout, Message: "request timed out"})
	}
	asg, err := sched.GreedyAware(m, spec, req.Jobs, sched.AwareConfig{
		MaxSlowdown: req.MaxSlowdown,
		PState:      req.PState,
		MaxMachines: req.MaxMachines,
	})
	if err != nil {
		return errBody(asError(err))
	}
	return http.StatusOK, ScheduleResponse{
		Model: name, Spec: m.Spec.String(), Machine: spec.Name,
		Assignment: asg, MachinesUsed: asg.MachinesUsed(), Jobs: asg.JobCount(),
	}
}

// resolveMachine maps a request machine name to a simulator spec,
// defaulting to the machine the model was trained on.
func resolveMachine(name string, m *core.Model) (simproc.Spec, *Error) {
	if name == "" {
		for _, spec := range simproc.Machines() {
			if spec.Name == m.Machine() {
				return spec, nil
			}
		}
		return simproc.Spec{}, badRequest(CodeBadRequest,
			"model machine %q is not a known fleet type; set \"machine\" explicitly", m.Machine())
	}
	switch name {
	case "6core", "e5649", "E5649":
		return simproc.XeonE5649(), nil
	case "12core", "e5-2697v2", "E5-2697v2":
		return simproc.XeonE52697v2(), nil
	}
	for _, spec := range simproc.Machines() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return simproc.Spec{}, badRequest(CodeBadRequest, "unknown machine %q (want 6core or 12core)", name)
}

// ---- models / reload / health / metrics ----

// ModelsResponse lists the registry.
type ModelsResponse struct {
	Default string      `json:"default"`
	Models  []ModelInfo `json:"models"`
}

func (s *Server) handleModels(r *http.Request) (int, any) {
	return http.StatusOK, ModelsResponse{Default: s.reg.DefaultName(), Models: s.reg.List()}
}

// ReloadResponse reports a registry reload.
type ReloadResponse struct {
	Reloaded []string `json:"reloaded"`
}

func (s *Server) handleReload(r *http.Request) (int, any) {
	reloaded, err := s.reg.Reload()
	if err != nil {
		s.metrics.swaps.Add(uint64(len(reloaded)))
		return errBody(internalError(err))
	}
	s.metrics.swaps.Add(uint64(len(reloaded)))
	if reloaded == nil {
		reloaded = []string{}
	}
	return http.StatusOK, ReloadResponse{Reloaded: reloaded}
}

// HealthResponse is the liveness body.
type HealthResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
}

func (s *Server) handleHealthz(r *http.Request) (int, any) {
	n := s.reg.Len()
	if n == 0 {
		return http.StatusServiceUnavailable, HealthResponse{Status: "no models loaded", Models: 0}
	}
	return http.StatusOK, HealthResponse{Status: "ok", Models: n}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	entries := 0
	if s.cache != nil {
		entries = s.cache.Len()
	}
	s.metrics.WritePrometheus(w, s.reg.Len(), entries)
	s.writeAdaptationMetrics(w)
	s.metrics.ObserveRequest("metrics", time.Since(start), false)
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// drains in-flight requests for up to drain before forcing connections
// closed. It is the graceful-shutdown harness cmd/coloserve uses.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, drain)
}

// Serve runs the server on an existing listener until ctx is cancelled,
// then drains in-flight requests for up to drain. Cancellation stops
// accepting new connections immediately; requests already being
// processed complete normally (http.Server.Shutdown semantics).
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: draining: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
