// Package serve is the online inference tier: an HTTP JSON server that
// turns trained co-location models into a queryable service. The paper
// frames a trained model as a deployable artefact a resource manager
// consults at schedule time; this package is that consultation surface,
// built for heavy traffic from three reusable layers:
//
//   - Registry: named models with lock-free reads and atomic hot-swap,
//     so a re-trained model replaces its predecessor without dropping a
//     request.
//   - Cache: a sharded, size-bounded memo of canonicalised scenarios —
//     scheduling loops repeat scenarios heavily, so the neural forward
//     pass becomes a map hit.
//   - Metrics: request/error counters, per-endpoint latency histograms
//     and cache hit ratios in Prometheus text format, stdlib only.
//
// A fourth, optional layer closes the adaptation loop (EnableAdaptation):
// deployed schedulers report measured runtimes to POST /v1/observations,
// residual drift is watched per (model × target) stream, and a tripped
// detector can trigger gated background retraining with atomic promotion.
//
// Endpoints: POST /v1/predict, POST /v1/predict/batch, POST
// /v1/schedule, POST /v1/models/reload, GET /v1/models, POST
// /v1/observations, GET /v1/drift, POST /v1/retrain, GET
// /v1/retrain/status, GET /v1/version, GET /healthz,
// GET /metrics. Client mistakes (unknown app or model, out-of-range
// P-state, malformed JSON) return 400 with a typed error body; only
// genuine faults return 500. Every request runs under a context
// timeout.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/obs"
	"colocmodel/internal/placement"
	"colocmodel/internal/sched"
	"colocmodel/internal/simproc"
)

// Config tunes the server.
type Config struct {
	// RequestTimeout bounds each request's total processing time.
	// Default 10s.
	RequestTimeout time.Duration
	// BatchWorkers formerly bounded the per-slot worker pool of the
	// batch endpoint. The batch path now serves cache hits inline and
	// evaluates all misses in one batched model call, so this knob no
	// longer affects request handling; it is accepted for configuration
	// compatibility. Default GOMAXPROCS.
	BatchWorkers int
	// CacheSize bounds the prediction cache (entries). 0 selects the
	// default (65536); negative disables caching.
	CacheSize int
	// MaxBatch caps scenarios per batch request. Default 4096.
	MaxBatch int
	// MaxScheduleJobs caps jobs per schedule request. Default 1024.
	MaxScheduleJobs int
	// MaxPlacementApps caps pending apps per placement request.
	// Default 256.
	MaxPlacementApps int
	// MaxPlacementMachines caps the fleet size per placement request.
	// Default 64.
	MaxPlacementMachines int
	// MaxPlacementBeam caps the local-search beam width per placement
	// request. Default 64.
	MaxPlacementBeam int
	// Logger receives one structured log line per request (request ID,
	// endpoint, status, latency). nil disables request logging.
	Logger *slog.Logger
	// SlowThreshold marks a request as slow: slow requests are logged at
	// Warn and their traces retained in the trace ring. 0 selects the
	// default (100ms); negative treats every request as slow (retain and
	// log everything — soaks and debugging).
	SlowThreshold time.Duration
	// TraceRing bounds the retained-trace ring (entries). 0 selects the
	// default (256); negative disables tracing entirely.
	TraceRing int
	// SLOObjective is the good-request fraction target for the predict
	// paths (GET /v1/slo, coloserve_slo_* gauges). 0 selects the default
	// (0.999); negative disables SLO tracking.
	SLOObjective float64
	// SLOLatencyTarget is the per-request latency bound counted toward
	// the objective: a predict request is good only if it succeeds
	// within the target. 0 selects the default (250ms); negative makes
	// errors alone burn budget.
	SLOLatencyTarget time.Duration
}

func (c *Config) defaults() {
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 65536
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 4096
	}
	if c.MaxScheduleJobs == 0 {
		c.MaxScheduleJobs = 1024
	}
	if c.MaxPlacementApps == 0 {
		c.MaxPlacementApps = 256
	}
	if c.MaxPlacementMachines == 0 {
		c.MaxPlacementMachines = 64
	}
	if c.MaxPlacementBeam == 0 {
		c.MaxPlacementBeam = 64
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0 // obs semantics: 0 = everything is slow
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.SLOObjective == 0 {
		c.SLOObjective = 0.999
	}
	if c.SLOLatencyTarget == 0 {
		c.SLOLatencyTarget = 250 * time.Millisecond
	}
	if c.SLOLatencyTarget < 0 {
		c.SLOLatencyTarget = 0 // obs semantics: 0 = errors only
	}
}

// Server serves predictions from a model registry.
type Server struct {
	cfg      Config
	reg      *Registry
	cache    *Cache // nil when disabled
	metrics  *Metrics
	adapt    *Adaptation     // nil when the adaptation loop is disabled
	logger   *slog.Logger    // nil when request logging is disabled
	tracer   *obs.Tracer     // nil when tracing is disabled
	slo      *obs.SLOTracker // nil when SLO tracking is disabled
	started  time.Time
	pprofOn  bool
	draining atomic.Bool

	muxOnce sync.Once
	mux     http.Handler
}

// New builds a server around a registry.
func New(reg *Registry, cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg: cfg,
		reg: reg,
		metrics: NewMetrics(
			"predict", "predict_batch", "schedule", "placements", "models", "reload", "healthz", "metrics",
			"observations", "drift", "retrain", "retrain_status", "version", "traces", "slo",
		),
		logger:  cfg.Logger,
		started: time.Now(),
	}
	if cfg.CacheSize > 0 {
		s.cache = NewCache(cfg.CacheSize)
	}
	if cfg.TraceRing > 0 {
		s.tracer = obs.NewTracer(obs.Config{Capacity: cfg.TraceRing, SlowThreshold: cfg.SlowThreshold})
	}
	if cfg.SLOObjective > 0 {
		s.slo = obs.NewSLOTracker(obs.SLOConfig{
			Objective:     cfg.SLOObjective,
			LatencyTarget: cfg.SLOLatencyTarget,
		})
	}
	return s
}

// Registry returns the server's model registry.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's metrics layer.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer returns the server's span tracer (nil when tracing is
// disabled via a negative Config.TraceRing).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SLO returns the server's SLO tracker (nil when disabled via a
// negative Config.SLOObjective).
func (s *Server) SLO() *obs.SLOTracker { return s.slo }

// EnablePprof registers the net/http/pprof handlers under /debug/pprof/
// on the server's mux. Opt-in (profiles expose internals and cost CPU
// while running) and must be called before Handler().
func (s *Server) EnablePprof() { s.pprofOn = true }

// Handler returns the server's HTTP routing table. The mux is built
// once and shared, so external drivers (tests, the loadgen harness)
// that call Handler per request hit the same routing table the network
// listener uses instead of rebuilding it each time.
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/predict", s.wrap("predict", s.handlePredict))
		mux.HandleFunc("POST /v1/predict/batch", s.wrap("predict_batch", s.handlePredictBatch))
		mux.HandleFunc("POST /v1/schedule", s.wrap("schedule", s.handleSchedule))
		mux.HandleFunc("POST /v1/placements", s.wrapRaw("placements", s.handlePlacements))
		mux.HandleFunc("GET /v1/models", s.wrap("models", s.handleModels))
		mux.HandleFunc("POST /v1/models/reload", s.wrap("reload", s.handleReload))
		mux.HandleFunc("POST /v1/observations", s.wrap("observations", s.handleObservations))
		mux.HandleFunc("GET /v1/drift", s.wrap("drift", s.handleDrift))
		mux.HandleFunc("POST /v1/retrain", s.wrap("retrain", s.handleRetrain))
		mux.HandleFunc("GET /v1/retrain/status", s.wrap("retrain_status", s.handleRetrainStatus))
		mux.HandleFunc("GET /v1/version", s.wrap("version", s.handleVersion))
		mux.HandleFunc("GET /v1/traces", s.wrap("traces", s.handleTraces))
		mux.HandleFunc("GET /v1/slo", s.wrap("slo", s.handleSLO))
		mux.HandleFunc("GET /healthz", s.wrap("healthz", s.handleHealthz))
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		if s.pprofOn {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		s.mux = mux
	})
	return s.mux
}

// handlerFunc processes one decoded request and returns a status and a
// JSON-encodable body.
type handlerFunc func(r *http.Request) (int, any)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func errBody(e *Error) (int, any) {
	return e.Status, errorBody{Error: errorDetail{Code: e.Code, Message: e.Message}}
}

// wrap applies the cross-cutting layers to a handler: in-flight and
// latency accounting, the per-request timeout context, and the
// observability envelope — a request ID minted at ingress (or adopted
// from the caller's X-Request-ID) and echoed on the response, a root
// span whose children time the pipeline stages, a Server-Timing header
// carrying the completed stage timings, and one structured log line
// per request (Warn above the slow threshold). An incoming traceparent
// header re-parents the handler span under the caller's trace, and a
// sampled trace context additionally ships the completed span tree back
// in X-Trace-Spans so the caller can stitch a cross-process tree.
func (s *Server) wrap(endpoint string, h handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.RequestStarted()
		defer s.metrics.RequestDone()
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		sloPath := endpoint == "predict" || endpoint == "predict_batch"
		if s.draining.Load() {
			// Shed load during shutdown with a typed, retryable 503: the
			// Retry-After header plus the stable "draining" code let a
			// routing tier distinguish a backend that is shedding (re-route,
			// come back) from one that is dead (eject).
			w.Header().Set("Retry-After", "1")
			status, body := errBody(&Error{Status: http.StatusServiceUnavailable,
				Code: CodeDraining, Message: "server is draining for shutdown"})
			writeJSON(w, status, body)
			d := time.Since(start)
			s.logRequest(r, endpoint, reqID, status, d)
			s.metrics.ObserveRequest(endpoint, d, true)
			if sloPath {
				s.slo.Observe(d, true)
			}
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		tr := s.tracer.StartAt("http", endpoint, reqID, start)
		tc, hasTC := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		if hasTC {
			tr.AdoptContext(tc)
		}
		ctx = obs.NewContext(ctx, reqID, tr)
		status, body := h(r.WithContext(ctx))
		if hasTC && tc.Sampled && tr != nil {
			// The span tree must ride response headers, so the body is
			// encoded into a pooled buffer first: the encode span (and its
			// Server-Timing entry) then land in the shipped tree instead of
			// being cut off at the header write.
			enc := tr.StartSpan("encode")
			buf := bodyBufPool.Get().(*bytes.Buffer)
			buf.Reset()
			encErr := json.NewEncoder(buf).Encode(body)
			enc.End()
			// Ship spans only for requests at or past the slow threshold —
			// the same bar both tiers retain traces at. Fast requests would
			// have their tree discarded by every ring anyway, so encoding
			// and shipping it would be pure hot-path overhead.
			if time.Since(start) >= s.cfg.SlowThreshold {
				if ws := tr.WireSpans(); ws != "" {
					w.Header().Set(obs.TraceSpansHeader, ws)
				}
			}
			if st := tr.ServerTiming(); st != "" {
				w.Header().Set("Server-Timing", st)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			if encErr == nil {
				w.Write(buf.Bytes())
			}
			if buf.Cap() <= maxPooledBodyBuf {
				bodyBufPool.Put(buf)
			}
		} else {
			if st := tr.ServerTiming(); st != "" {
				w.Header().Set("Server-Timing", st)
			}
			enc := tr.StartSpan("encode")
			writeJSON(w, status, body)
			enc.End()
		}
		d := time.Since(start)
		tr.Finish(status, status >= 400)
		s.logRequest(r, endpoint, reqID, status, d)
		s.metrics.ObserveRequest(endpoint, d, status >= 400)
		if sloPath {
			s.slo.Observe(d, status >= 500)
		}
	}
}

// bodyBufPool recycles response-body buffers for the traced path that
// must encode before writing headers; oversized buffers are dropped so
// one huge batch response does not pin memory.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBodyBuf = 1 << 20

// logRequest emits the request's structured log line: Info for ordinary
// requests, Warn for those at or above the slow threshold, Error for
// 5xx. No-op without a configured logger.
func (s *Server) logRequest(r *http.Request, endpoint, reqID string, status int, d time.Duration) {
	if s.logger == nil {
		return
	}
	lvl, msg := slog.LevelInfo, "request"
	if d >= s.cfg.SlowThreshold {
		lvl, msg = slog.LevelWarn, "slow request"
	}
	if status >= 500 {
		lvl, msg = slog.LevelError, "request failed"
	}
	s.logger.LogAttrs(context.Background(), lvl, msg,
		slog.String("request_id", reqID),
		slog.String("endpoint", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("dur_ms", float64(d)/1e6),
	)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// decodeJSON strictly decodes a request body, mapping every decoding
// failure to a 400.
func decodeJSON(r *http.Request, into any) *Error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest(CodeBadRequest, "decoding request body: %v", err)
	}
	return nil
}

// ---- predict ----

// ScenarioRequest is the wire form of a co-location scenario.
type ScenarioRequest struct {
	// Target is the target application name.
	Target string `json:"target"`
	// CoApps are the co-located application names (one per copy).
	CoApps []string `json:"co_apps"`
	// PState is the P-state index.
	PState int `json:"pstate"`
}

func (sr ScenarioRequest) scenario() features.Scenario {
	return features.Scenario{Target: sr.Target, CoApps: sr.CoApps, PState: sr.PState}
}

// PredictRequest asks for one scenario's prediction.
type PredictRequest struct {
	// Model names the registry entry; empty selects the default model.
	Model string `json:"model,omitempty"`
	ScenarioRequest
}

// PredictResponse is one scenario's prediction.
type PredictResponse struct {
	Model string `json:"model"`
	// Generation is the registry generation of the model that served
	// this prediction, so clients can attribute observations to the
	// exact model instance that produced them.
	Generation        uint64   `json:"generation"`
	Spec              string   `json:"spec"`
	Target            string   `json:"target"`
	CoApps            []string `json:"co_apps"`
	PState            int      `json:"pstate"`
	PredictedSeconds  float64  `json:"predicted_seconds"`
	PredictedSlowdown float64  `json:"predicted_slowdown"`
	BaselineSeconds   float64  `json:"baseline_seconds"`
	// Cached reports whether the prediction came from the cache.
	Cached bool `json:"cached"`
}

func (s *Server) handlePredict(r *http.Request) (int, any) {
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan("decode")
	var req PredictRequest
	e := decodeJSON(r, &req)
	sp.End()
	if e != nil {
		return errBody(e)
	}
	name, m, gen, reps, e := s.resolveModel(req.Model)
	if e != nil {
		return errBody(e)
	}
	resp, e := s.predictOne(tr.Root(), name, m, gen, reps, req.scenario())
	if e != nil {
		return errBody(e)
	}
	return http.StatusOK, resp
}

// resolveModel maps a (possibly empty) request model name to a registry
// entry: the model, its serving generation, and the entry's per-P-core
// replica set for the compiled fast path.
func (s *Server) resolveModel(name string) (string, *core.Model, uint64, *replicaSet, *Error) {
	if name == "" {
		name = s.reg.DefaultName()
		if name == "" {
			return "", nil, 0, nil, &Error{Status: http.StatusServiceUnavailable, Code: CodeUnknownModel, Message: "no models loaded"}
		}
	}
	e, err := s.reg.lookup(name)
	if err != nil {
		return "", nil, 0, nil, asError(err)
	}
	m, gen := e.snapshot()
	return name, m, gen, e.reps, nil
}

// validateScenario rejects requests the model cannot serve before any
// prediction work happens, so that client mistakes are 400s.
func validateScenario(m *core.Model, sc features.Scenario) *Error {
	if sc.Target == "" {
		return badRequest(CodeBadRequest, "target must be set")
	}
	if !m.HasApp(sc.Target) {
		return badRequest(CodeUnknownApp, "unknown target %q (known: %s)", sc.Target, strings.Join(m.Apps(), ", "))
	}
	for _, a := range sc.CoApps {
		if !m.HasApp(a) {
			return badRequest(CodeUnknownApp, "unknown co-app %q (known: %s)", a, strings.Join(m.Apps(), ", "))
		}
	}
	if sc.PState < 0 || sc.PState >= m.PStates() {
		return badRequest(CodeBadPState, "P-state %d out of range [0,%d)", sc.PState, m.PStates())
	}
	return nil
}

// newPredictResponse validates a scenario against the model and builds
// the response shell (identity fields plus the baseline) that both the
// single and batch predict paths fill in.
func (s *Server) newPredictResponse(name string, m *core.Model, gen uint64, sc features.Scenario) (*PredictResponse, *Error) {
	if e := validateScenario(m, sc); e != nil {
		return nil, e
	}
	base, err := m.BaselineSeconds(sc.Target, sc.PState)
	if err != nil {
		return nil, asError(err)
	}
	return &PredictResponse{
		Model: name, Generation: gen, Spec: m.Spec.String(),
		Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
		BaselineSeconds: base,
	}, nil
}

// predictOne serves one scenario through the cache, timing the cache
// lookup and (on a miss) the model evaluation as children of parent —
// the root span for single predicts. The cache key is built in pooled
// scratch and looked up by raw bytes, so a cache hit allocates nothing
// beyond the response body; a miss evaluates through one of the entry's
// per-P-core compiled replicas (replicas.go) when one is free.
func (s *Server) predictOne(parent obs.Span, name string, m *core.Model, gen uint64, reps *replicaSet, sc features.Scenario) (*PredictResponse, *Error) {
	resp, e := s.newPredictResponse(name, m, gen, sc)
	if e != nil {
		return nil, e
	}
	var ks *keyScratch
	if s.cache != nil {
		ks = keyPool.Get().(*keyScratch)
		ks.build(name, gen, sc)
		csp := parent.StartChild("cache")
		p, ok := s.cache.GetBytes(ks.buf)
		csp.End()
		if ok {
			keyPool.Put(ks)
			s.metrics.CacheHit()
			resp.PredictedSeconds, resp.PredictedSlowdown, resp.Cached = p.Seconds, p.Slowdown, true
			return resp, nil
		}
		s.metrics.CacheMiss()
	}
	esp := parent.StartChild("eval")
	seconds, err := evalScalar(reps, m, sc)
	esp.End()
	if err != nil {
		if ks != nil {
			keyPool.Put(ks)
		}
		return nil, asError(err)
	}
	p := prediction{Seconds: seconds, Slowdown: seconds / resp.BaselineSeconds}
	if ks != nil {
		s.cache.PutBytes(ks.buf, p)
		keyPool.Put(ks)
	}
	resp.PredictedSeconds, resp.PredictedSlowdown = p.Seconds, p.Slowdown
	return resp, nil
}

// ---- predict/batch ----

// BatchRequest asks for many scenarios at once.
type BatchRequest struct {
	// Model names the registry entry for every scenario in the batch.
	Model string `json:"model,omitempty"`
	// Scenarios are predicted independently; one bad scenario fails
	// only its own slot.
	Scenarios []ScenarioRequest `json:"scenarios"`
}

// BatchItem is one slot of a batch response: a result or an error.
type BatchItem struct {
	Result *PredictResponse `json:"result,omitempty"`
	Error  *errorDetail     `json:"error,omitempty"`
}

// BatchResponse reports every scenario in request order.
type BatchResponse struct {
	Model   string      `json:"model"`
	Results []BatchItem `json:"results"`
	// Errors counts failed slots.
	Errors int `json:"errors"`
}

func (s *Server) handlePredictBatch(r *http.Request) (int, any) {
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan("decode")
	var req BatchRequest
	e := decodeJSON(r, &req)
	sp.End()
	if e != nil {
		return errBody(e)
	}
	if len(req.Scenarios) == 0 {
		return errBody(badRequest(CodeBadRequest, "scenarios must not be empty"))
	}
	if len(req.Scenarios) > s.cfg.MaxBatch {
		return errBody(badRequest(CodeBadRequest, "batch of %d exceeds limit %d", len(req.Scenarios), s.cfg.MaxBatch))
	}
	name, m, gen, reps, e := s.resolveModel(req.Model)
	if e != nil {
		return errBody(e)
	}

	// Two phases under one fanout span. Phase one validates every slot
	// and probes the cache (hits are served immediately); phase two
	// evaluates all misses in one batched model call — a single GEMM per
	// network layer for the resolved model generation instead of one
	// forward pass per slot. Each slot still fails independently:
	// validation errors mark only their own slot, and a request-level
	// timeout fails the un-evaluated slots rather than the whole
	// response. Results are bit-identical to per-slot Predict.
	ctx := r.Context()
	n := len(req.Scenarios)
	results := make([]BatchItem, n)
	fsp := tr.StartSpan("fanout")
	fsp.Annotate("slots", strconv.Itoa(n))

	csp := fsp.StartChild("cache")
	missIdx := make([]int, 0, n)
	missScs := make([]features.Scenario, 0, n)
	var missKeys []string
	var ks *keyScratch
	if s.cache != nil {
		missKeys = make([]string, 0, n)
		ks = keyPool.Get().(*keyScratch)
		defer keyPool.Put(ks)
	}
	for i, sr := range req.Scenarios {
		sc := sr.scenario()
		resp, e := s.newPredictResponse(name, m, gen, sc)
		if e != nil {
			results[i].Error = &errorDetail{Code: e.Code, Message: e.Message}
			continue
		}
		if s.cache != nil {
			ks.build(name, gen, sc)
			if p, ok := s.cache.GetBytes(ks.buf); ok {
				s.metrics.CacheHit()
				resp.PredictedSeconds, resp.PredictedSlowdown, resp.Cached = p.Seconds, p.Slowdown, true
				results[i].Result = resp
				continue
			}
			s.metrics.CacheMiss()
			missKeys = append(missKeys, string(ks.buf))
		}
		results[i].Result = resp
		missIdx = append(missIdx, i)
		missScs = append(missScs, sc)
	}
	csp.End()

	if len(missScs) > 0 {
		esp := fsp.StartChild("eval")
		esp.Annotate("scenarios", strconv.Itoa(len(missScs)))
		var preds []float64
		var err error
		if ctxErr := ctx.Err(); ctxErr != nil {
			err = ctxErr
		} else {
			preds, err = evalBatch(reps, m, missScs)
		}
		esp.End()
		if err != nil {
			ed := errorDetail{Code: CodeTimeout, Message: "request timed out before this scenario was served"}
			if ctx.Err() == nil {
				e := asError(err)
				ed = errorDetail{Code: e.Code, Message: e.Message}
			}
			for _, i := range missIdx {
				results[i].Result = nil
				results[i].Error = &ed
			}
		} else {
			for j, i := range missIdx {
				resp := results[i].Result
				p := prediction{Seconds: preds[j], Slowdown: preds[j] / resp.BaselineSeconds}
				if s.cache != nil {
					s.cache.Put(missKeys[j], p)
				}
				resp.PredictedSeconds, resp.PredictedSlowdown = p.Seconds, p.Slowdown
			}
		}
	}
	fsp.End()

	out := BatchResponse{Model: name, Results: results}
	for _, it := range results {
		if it.Error != nil {
			out.Errors++
		}
	}
	return http.StatusOK, out
}

// ---- schedule ----

// ScheduleRequest asks for a placement of jobs onto machines using the
// interference-aware greedy packer.
type ScheduleRequest struct {
	// Model names the registry entry; empty selects the default.
	Model string `json:"model,omitempty"`
	// Machine selects the fleet's machine type ("6core" or "12core");
	// empty infers it from the model's training machine.
	Machine string `json:"machine,omitempty"`
	// Jobs are the application names to place (one entry per copy).
	Jobs []string `json:"jobs"`
	// MaxSlowdown is the QoS bound (must exceed 1).
	MaxSlowdown float64 `json:"max_slowdown"`
	// PState is the fleet's operating point.
	PState int `json:"pstate"`
	// MaxMachines optionally caps the fleet (0 = unlimited).
	MaxMachines int `json:"max_machines,omitempty"`
}

// ScheduleResponse reports the placement.
type ScheduleResponse struct {
	Model        string     `json:"model"`
	Spec         string     `json:"spec"`
	Machine      string     `json:"machine"`
	Assignment   [][]string `json:"assignment"`
	MachinesUsed int        `json:"machines_used"`
	Jobs         int        `json:"jobs"`
}

func (s *Server) handleSchedule(r *http.Request) (int, any) {
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan("decode")
	var req ScheduleRequest
	e := decodeJSON(r, &req)
	sp.End()
	if e != nil {
		return errBody(e)
	}
	name, m, _, _, e := s.resolveModel(req.Model)
	if e != nil {
		return errBody(e)
	}
	if len(req.Jobs) == 0 {
		return errBody(badRequest(CodeBadRequest, "jobs must not be empty"))
	}
	if len(req.Jobs) > s.cfg.MaxScheduleJobs {
		return errBody(badRequest(CodeBadRequest, "%d jobs exceed limit %d", len(req.Jobs), s.cfg.MaxScheduleJobs))
	}
	for _, j := range req.Jobs {
		if !m.HasApp(j) {
			return errBody(badRequest(CodeUnknownApp, "unknown job %q (known: %s)", j, strings.Join(m.Apps(), ", ")))
		}
	}
	if req.MaxSlowdown <= 1 {
		return errBody(badRequest(CodeBadRequest, "max_slowdown %v must exceed 1", req.MaxSlowdown))
	}
	if req.PState < 0 || req.PState >= m.PStates() {
		return errBody(badRequest(CodeBadPState, "P-state %d out of range [0,%d)", req.PState, m.PStates()))
	}
	spec, e := resolveMachine(req.Machine, m)
	if e != nil {
		return errBody(e)
	}
	if err := r.Context().Err(); err != nil {
		return errBody(&Error{Status: http.StatusServiceUnavailable, Code: CodeTimeout, Message: "request timed out"})
	}
	// One scoring path for the whole scheduling surface: the placement
	// engine's open-fleet greedy packer, which batches each decision's
	// candidate scoring and reproduces sched.GreedyAware exactly.
	asg, err := placement.GreedyPack(r.Context(), m, spec, req.Jobs, placement.PackConfig{
		MaxSlowdown: req.MaxSlowdown,
		PState:      req.PState,
		MaxMachines: req.MaxMachines,
	})
	if err != nil {
		if placement.IsInvalid(err) {
			return errBody(badRequest(CodeBadRequest, "%v", err))
		}
		return errBody(asError(err))
	}
	a := sched.Assignment(asg)
	return http.StatusOK, ScheduleResponse{
		Model: name, Spec: m.Spec.String(), Machine: spec.Name,
		Assignment: a, MachinesUsed: a.MachinesUsed(), Jobs: a.JobCount(),
	}
}

// resolveMachine maps a request machine name to a simulator spec,
// defaulting to the machine the model was trained on.
func resolveMachine(name string, m *core.Model) (simproc.Spec, *Error) {
	if name == "" {
		for _, spec := range simproc.Machines() {
			if spec.Name == m.Machine() {
				return spec, nil
			}
		}
		return simproc.Spec{}, badRequest(CodeBadRequest,
			"model machine %q is not a known fleet type; set \"machine\" explicitly", m.Machine())
	}
	switch name {
	case "6core", "e5649", "E5649":
		return simproc.XeonE5649(), nil
	case "12core", "e5-2697v2", "E5-2697v2":
		return simproc.XeonE52697v2(), nil
	}
	for _, spec := range simproc.Machines() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return simproc.Spec{}, badRequest(CodeBadRequest, "unknown machine %q (want 6core or 12core)", name)
}

// ---- models / reload / health / metrics ----

// ModelsResponse lists the registry.
type ModelsResponse struct {
	Default string      `json:"default"`
	Models  []ModelInfo `json:"models"`
}

func (s *Server) handleModels(r *http.Request) (int, any) {
	return http.StatusOK, ModelsResponse{Default: s.reg.DefaultName(), Models: s.reg.List()}
}

// ReloadResponse reports a registry reload.
type ReloadResponse struct {
	Reloaded []string `json:"reloaded"`
}

func (s *Server) handleReload(r *http.Request) (int, any) {
	reloaded, err := s.reg.Reload()
	if err != nil {
		s.metrics.SwapsRecorded(len(reloaded))
		return errBody(internalError(err))
	}
	s.metrics.SwapsRecorded(len(reloaded))
	if reloaded == nil {
		reloaded = []string{}
	}
	return http.StatusOK, ReloadResponse{Reloaded: reloaded}
}

// HealthResponse is the liveness body. The base contract is unchanged
// ({"status":"ok","models":N}); ?verbose=1 adds uptime, the serving
// generation per model, and build info.
type HealthResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
	// Verbose fields (GET /healthz?verbose=1).
	UptimeSeconds float64           `json:"uptime_seconds,omitempty"`
	Generations   map[string]uint64 `json:"generations,omitempty"`
	GoVersion     string            `json:"go_version,omitempty"`
	Revision      string            `json:"vcs_revision,omitempty"`
	Adaptation    bool              `json:"adaptation,omitempty"`
	Tracing       bool              `json:"tracing,omitempty"`
}

func (s *Server) handleHealthz(r *http.Request) (int, any) {
	n := s.reg.Len()
	resp := HealthResponse{Status: "ok", Models: n}
	status := http.StatusOK
	if n == 0 {
		resp.Status = "no models loaded"
		status = http.StatusServiceUnavailable
	}
	if v := r.URL.Query().Get("verbose"); v != "" && v != "0" && v != "false" {
		resp.UptimeSeconds = time.Since(s.started).Seconds()
		resp.Generations = make(map[string]uint64, n)
		for _, info := range s.reg.List() {
			resp.Generations[info.Name] = info.Generation
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			resp.GoVersion = bi.GoVersion
			for _, kv := range bi.Settings {
				if kv.Key == "vcs.revision" {
					resp.Revision = kv.Value
				}
			}
		}
		resp.Adaptation = s.adapt != nil
		resp.Tracing = s.tracer != nil
	}
	return status, resp
}

// ---- traces ----

// TracesResponse is the body of GET /v1/traces: the retained slow and
// failed traces, newest first, plus the tracer's retention counters.
type TracesResponse struct {
	Stats  obs.Stats        `json:"stats"`
	Count  int              `json:"count"`
	Traces []*obs.TraceData `json:"traces"`
}

// handleTraces serves the trace ring. Query parameters: endpoint
// (exact match on the traced endpoint), kind ("http" or "retrain"),
// min_ms (minimum duration in milliseconds), limit (newest-first cap).
func (s *Server) handleTraces(r *http.Request) (int, any) {
	if s.tracer == nil {
		return errBody(&Error{Status: http.StatusServiceUnavailable, Code: CodeTracingDisabled,
			Message: "this server is running without the trace ring (negative TraceRing)"})
	}
	q := r.URL.Query()
	f := obs.Filter{Name: q.Get("endpoint"), Kind: q.Get("kind")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return errBody(badRequest(CodeBadRequest, "bad min_ms %q", v))
		}
		f.MinDuration = time.Duration(ms * 1e6)
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return errBody(badRequest(CodeBadRequest, "bad limit %q", v))
		}
		f.Limit = n
	}
	traces := s.tracer.Snapshot(f)
	return http.StatusOK, TracesResponse{Stats: s.tracer.Stats(), Count: len(traces), Traces: traces}
}

// handleSLO serves the predict-path SLO verdict: per-window good/bad
// counts, burn rates, and an ok|warn|page state.
func (s *Server) handleSLO(r *http.Request) (int, any) {
	if s.slo == nil {
		return errBody(&Error{Status: http.StatusServiceUnavailable, Code: CodeSLODisabled,
			Message: "this server is running without SLO tracking (negative SLOObjective)"})
	}
	return http.StatusOK, s.slo.Status()
}

// handleMetrics is registered outside wrap (the scrape body is plain
// text, not JSON) but keeps the request-ID and logging contract: every
// response carries X-Request-ID and produces one structured log line.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	entries := 0
	if s.cache != nil {
		entries = s.cache.Len()
	}
	s.metrics.WritePrometheus(w, s.reg.Len(), entries)
	s.writeAdaptationMetrics(w)
	s.slo.WriteSLOMetrics(w, "coloserve")
	d := time.Since(start)
	s.logRequest(r, "metrics", reqID, http.StatusOK, d)
	s.metrics.ObserveRequest("metrics", d, false)
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// drains in-flight requests for up to drain before forcing connections
// closed. It is the graceful-shutdown harness cmd/coloserve uses.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, drain)
}

// StartDrain flips the server into drain mode: every subsequent request
// on a wrapped endpoint is shed with a typed 503 ("draining") carrying a
// Retry-After header, while requests already past admission complete
// normally. Serve calls it on shutdown; it is idempotent and exported so
// operators (and tests) can shed ahead of a planned stop.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether the server is shedding for shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve runs the server on an existing listener until ctx is cancelled,
// then drains in-flight requests for up to drain. Cancellation stops
// accepting new connections immediately and sheds requests arriving on
// kept-alive connections with a typed 503 (StartDrain); requests already
// being processed complete normally (http.Server.Shutdown semantics).
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: draining: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
