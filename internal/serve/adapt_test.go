package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/drift"
	"colocmodel/internal/features"
	"colocmodel/internal/feedback"
	"colocmodel/internal/harness"
	"colocmodel/internal/retrain"
)

// splitByCoCount partitions the offline sweep: the incumbent trains
// only on solo co-location, so the heavier records play the part of a
// workload shift at deployment time.
func splitByCoCount(ds *harness.Dataset) (solo, heavy []harness.Record) {
	for _, r := range ds.Records {
		if r.NumCoLoc <= 1 {
			solo = append(solo, r)
		} else {
			heavy = append(heavy, r)
		}
	}
	return
}

// newAdaptiveServer builds a server whose "primary" model saw only
// solo co-location, with the full adaptation loop attached.
func newAdaptiveServer(t testing.TB, driftCfg drift.Config, retrainCfg retrain.Config) (*Server, []harness.Record, []harness.Record) {
	t.Helper()
	ds := testDataset(t)
	solo, heavy := splitByCoCount(ds)
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	incumbent, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: 1}, ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("primary", "", incumbent); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})

	log, err := feedback.Open(feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if retrainCfg.Model == "" {
		retrainCfg.Model = "primary"
	}
	soloDS := *ds
	soloDS.Records = solo
	ctrl, err := retrain.New(retrainCfg, reg, &soloDS, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableAdaptation(Adaptation{
		Log: log, Monitor: drift.NewMonitor(driftCfg), Controller: ctrl, AutoRetrain: true,
	}); err != nil {
		t.Fatal(err)
	}
	return s, solo, heavy
}

// obsReq converts a harness record into the wire form of an
// observation (the server computes the prediction itself).
func obsReq(r harness.Record) ObservationRequest {
	sc := features.ScenarioFromRecord(r)
	return ObservationRequest{
		Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
		MeasuredSeconds: r.Seconds,
	}
}

// replay repeats a record stream n times: a scheduling loop observes
// the same scenarios over and over, and the drift detector needs a
// sustained stream, not a single pass over a small sweep.
func replay(records []harness.Record, n int) []harness.Record {
	out := make([]harness.Record, 0, n*len(records))
	for i := 0; i < n; i++ {
		out = append(out, records...)
	}
	return out
}

// TestClosedLoopAdaptation is the subsystem's end-to-end property: the
// workload mix shifts mid-stream, the drift detector fires, a
// candidate is retrained on the logged observations, beats the
// incumbent on the holdout and is promoted — the generation advances
// and the new model serves. Fully deterministic: simulator records,
// seeded split, linear training.
func TestClosedLoopAdaptation(t *testing.T) {
	s, solo, heavy := newAdaptiveServer(t,
		drift.Config{Delta: 2, Lambda: 30, MinSamples: 10},
		retrain.Config{Seed: 42, MinObservations: 10, MarginPct: 0.01})
	h := s.Handler()

	// Phase 1: deployment matches training — solo-co-location
	// observations, residuals small, no drift.
	for _, r := range replay(solo, 5) {
		w := postJSON(t, h, "/v1/observations", obsReq(r))
		if w.Code != http.StatusOK {
			t.Fatalf("observation rejected: %d %s", w.Code, w.Body.String())
		}
		if decodeBody[ObservationsResponse](t, w).DriftTripped {
			t.Fatal("drift tripped on in-distribution observations")
		}
	}

	// Phase 2: the mix shifts to heavy co-location. The incumbent has
	// never seen it; the detector must trip within the stream.
	tripped := false
	for _, r := range replay(heavy, 10) {
		w := postJSON(t, h, "/v1/observations", obsReq(r))
		if w.Code != http.StatusOK {
			t.Fatalf("observation rejected: %d %s", w.Code, w.Body.String())
		}
		if decodeBody[ObservationsResponse](t, w).DriftTripped {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("workload shift never tripped the drift detector")
	}
	dr := decodeBody[drift.Report](t, get(t, h, "/v1/drift"))
	if !dr.Tripped || len(dr.Streams) == 0 {
		t.Fatalf("drift report does not show the trip: %+v", dr)
	}

	// Phase 3: synchronous retrain. The candidate sees the logged
	// heavy observations and must beat the solo-only incumbent.
	w := postJSON(t, h, "/v1/retrain", RetrainRequest{Wait: true, Reason: "test"})
	if w.Code != http.StatusOK {
		t.Fatalf("retrain failed: %d %s", w.Code, w.Body.String())
	}
	res := decodeBody[retrain.Result](t, w)
	if !res.Promoted {
		t.Fatalf("candidate not promoted: %+v", res)
	}
	if res.CandidateMPE >= res.IncumbentMPE {
		t.Fatalf("promotion with candidate MPE %v >= incumbent %v", res.CandidateMPE, res.IncumbentMPE)
	}

	// Phase 4: the promotion is visible end to end — generation 2
	// serves predictions, the drift streams were reset, status records
	// the attempt.
	pw := postJSON(t, h, "/v1/predict", PredictRequest{
		ScenarioRequest: ScenarioRequest{Target: "canneal", CoApps: []string{"cg", "cg", "cg"}, PState: 0},
	})
	if pr := decodeBody[PredictResponse](t, pw); pr.Generation != 2 {
		t.Fatalf("serving generation %d after promotion, want 2", pr.Generation)
	}
	dr = decodeBody[drift.Report](t, get(t, h, "/v1/drift"))
	if dr.Tripped || len(dr.Streams) != 0 {
		t.Fatalf("drift streams not reset after promotion: %+v", dr)
	}
	st := decodeBody[retrain.Status](t, get(t, h, "/v1/retrain/status"))
	if st.Promoted != 1 || st.Attempts < 1 {
		t.Fatalf("status wrong after promotion: %+v", st)
	}
}

// TestFailingCandidateKeepsIncumbent: with an impossible margin the
// attempt is recorded as rejected and generation 1 keeps serving.
func TestFailingCandidateKeepsIncumbent(t *testing.T) {
	s, _, heavy := newAdaptiveServer(t,
		drift.Config{MinSamples: 10},
		retrain.Config{Seed: 42, MinObservations: 10, MarginPct: 1e9})
	h := s.Handler()
	for _, r := range heavy {
		postJSON(t, h, "/v1/observations", obsReq(r))
	}
	w := postJSON(t, h, "/v1/retrain", RetrainRequest{Wait: true})
	if w.Code != http.StatusOK {
		t.Fatalf("retrain call failed: %d %s", w.Code, w.Body.String())
	}
	res := decodeBody[retrain.Result](t, w)
	if res.Promoted || res.Rejection == "" {
		t.Fatalf("expected rejection, got %+v", res)
	}
	pw := postJSON(t, h, "/v1/predict", PredictRequest{
		ScenarioRequest: ScenarioRequest{Target: "cg", PState: 0},
	})
	if pr := decodeBody[PredictResponse](t, pw); pr.Generation != 1 {
		t.Fatalf("generation %d after rejected attempt, want 1", pr.Generation)
	}
	st := decodeBody[retrain.Status](t, get(t, h, "/v1/retrain/status"))
	if st.Rejected != 1 || st.Promoted != 0 {
		t.Fatalf("status wrong: %+v", st)
	}
}

// TestAutoRetrainInBackground: with the controller's loop running, a
// drift trip alone — no manual retrain call — promotes a new model.
func TestAutoRetrainInBackground(t *testing.T) {
	s, solo, heavy := newAdaptiveServer(t,
		drift.Config{Delta: 2, Lambda: 30, MinSamples: 10},
		retrain.Config{Seed: 42, MinObservations: 10, MarginPct: 0.01})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Adaptation().Controller.Start(ctx)
	h := s.Handler()

	// Healthy prefix, then the shift: Page–Hinkley detects the
	// change-point relative to each stream's own history.
	for _, r := range replay(solo, 5) {
		postJSON(t, h, "/v1/observations", obsReq(r))
	}
	triggered := false
	for _, r := range replay(heavy, 10) {
		w := postJSON(t, h, "/v1/observations", obsReq(r))
		if decodeBody[ObservationsResponse](t, w).RetrainTriggered {
			triggered = true
		}
	}
	if !triggered {
		t.Fatal("drift trip did not trigger auto-retrain")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := decodeBody[retrain.Status](t, get(t, h, "/v1/retrain/status")); st.Promoted >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("background retrain never promoted; status %+v",
		decodeBody[retrain.Status](t, get(t, h, "/v1/retrain/status")))
}

func TestObservationsBatchPartialFailure(t *testing.T) {
	s, solo, _ := newAdaptiveServer(t, drift.Config{}, retrain.Config{})
	h := s.Handler()
	req := ObservationsRequest{Observations: []ObservationRequest{
		obsReq(solo[0]),
		{Target: "no-such-app", MeasuredSeconds: 5},
		{Target: "cg", MeasuredSeconds: -1},
		obsReq(solo[1]),
	}}
	w := postJSON(t, h, "/v1/observations", req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch failed outright: %d %s", w.Code, w.Body.String())
	}
	resp := decodeBody[ObservationsResponse](t, w)
	if resp.Accepted != 2 || resp.Rejected != 2 {
		t.Fatalf("accepted/rejected = %d/%d, want 2/2", resp.Accepted, resp.Rejected)
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeUnknownApp {
		t.Fatalf("slot 1 error wrong: %+v", resp.Results[1])
	}
	if resp.Results[2].Error == nil || resp.Results[2].Error.Code != CodeBadRequest {
		t.Fatalf("slot 2 error wrong: %+v", resp.Results[2])
	}
	if resp.Results[0].Error != nil || resp.Results[3].Error != nil {
		t.Fatal("good slots reported errors")
	}
	if s.Adaptation().Log.Len() != 2 {
		t.Fatalf("log holds %d observations, want 2", s.Adaptation().Log.Len())
	}
	// Mixing the single fields with a batch is a client error.
	mixed := postJSON(t, h, "/v1/observations", ObservationsRequest{
		ObservationRequest: obsReq(solo[0]),
		Observations:       []ObservationRequest{obsReq(solo[1])},
	})
	if mixed.Code != http.StatusBadRequest {
		t.Fatalf("mixed single+batch accepted: %d", mixed.Code)
	}
}

func TestSingleBadObservationIsPlain400(t *testing.T) {
	s, _, _ := newAdaptiveServer(t, drift.Config{}, retrain.Config{})
	w := postJSON(t, s.Handler(), "/v1/observations", ObservationRequest{Target: "ghost", MeasuredSeconds: 1})
	if w.Code != http.StatusBadRequest || errCode(t, w) != CodeUnknownApp {
		t.Fatalf("got %d %s", w.Code, w.Body.String())
	}
}

// TestAdaptationEndpointsDisabled: a server without the loop answers
// the adaptation endpoints with a typed 503, and /v1/version reports
// adaptation off.
func TestAdaptationEndpointsDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	for _, probe := range []func() int{
		func() int {
			return postJSON(t, h, "/v1/observations", ObservationRequest{Target: "cg", MeasuredSeconds: 1}).Code
		},
		func() int { return get(t, h, "/v1/drift").Code },
		func() int { return postJSON(t, h, "/v1/retrain", RetrainRequest{}).Code },
		func() int { return get(t, h, "/v1/retrain/status").Code },
	} {
		if code := probe(); code != http.StatusServiceUnavailable {
			t.Fatalf("adaptation endpoint returned %d without the loop, want 503", code)
		}
	}
	v := decodeBody[VersionResponse](t, get(t, h, "/v1/version"))
	if v.Adaptation {
		t.Fatal("version reports adaptation on a plain server")
	}
	if v.Service != "coloserve" || v.APIVersion != "v1" || v.ModelFormat != core.ModelFormat() {
		t.Fatalf("version body wrong: %+v", v)
	}
	if v.GoVersion == "" {
		t.Fatal("version missing go_version")
	}
}

// TestAdaptationMetricsExposed: the scrape carries the new counters
// and live gauges.
func TestAdaptationMetricsExposed(t *testing.T) {
	s, solo, heavy := newAdaptiveServer(t,
		drift.Config{Delta: 2, Lambda: 30, MinSamples: 10},
		retrain.Config{Seed: 42, MinObservations: 10, MarginPct: 0.01})
	h := s.Handler()
	stream := append(replay(solo, 3), replay(heavy, 10)...)
	for _, r := range stream {
		postJSON(t, h, "/v1/observations", obsReq(r))
	}
	postJSON(t, h, "/v1/observations", ObservationRequest{Target: "ghost", MeasuredSeconds: 1})
	postJSON(t, h, "/v1/retrain", RetrainRequest{Wait: true})

	body := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		"coloserve_drift_score ",
		"coloserve_drift_tripped ",
		"coloserve_observations_logged ",
		"coloserve_retrain_candidate_mpe ",
		"coloserve_retrain_incumbent_mpe ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, body)
		}
	}
	for name, want := range map[string]float64{
		"coloserve_observations_ingested_total": float64(len(stream)),
		"coloserve_observations_rejected_total": 1,
		"coloserve_retrains_attempted_total":    1,
		"coloserve_retrains_promoted_total":     1,
		"coloserve_retrains_rejected_total":     0,
	} {
		if got := metricValue(t, body, name); got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
	if got := metricValue(t, body, "coloserve_drift_trips_total"); got < 1 {
		t.Fatalf("coloserve_drift_trips_total = %v, want >= 1", got)
	}
}

// metricValue extracts an unlabelled sample's value from a scrape.
func metricValue(t testing.TB, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		var v float64
		if n, _ := fmt.Sscanf(line, name+" %g", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape:\n%s", name, body)
	return 0
}

// TestObservationsPersistAcrossRestart: with a disk-backed log, a new
// server process sees the previous process's observations.
func TestObservationsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	build := func() *Server {
		s, _ := newTestServer(t, Config{})
		log, err := feedback.Open(feedback.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { log.Close() })
		if err := s.EnableAdaptation(Adaptation{Log: log, Monitor: drift.NewMonitor(drift.Config{})}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := build()
	solo, _ := splitByCoCount(testDataset(t))
	for _, r := range solo[:5] {
		if w := postJSON(t, s1.Handler(), "/v1/observations", obsReq(r)); w.Code != http.StatusOK {
			t.Fatalf("observation rejected: %s", w.Body.String())
		}
	}
	if err := s1.Adaptation().Log.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := build()
	if n := s2.Adaptation().Log.Len(); n != 5 {
		t.Fatalf("restarted log holds %d observations, want 5", n)
	}
}
