package serve

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"colocmodel/internal/core"
)

// Registry holds named trained models and supports atomic hot-swap: a
// model can be re-trained and reloaded while requests are in flight,
// without a lock on the prediction path and without any request
// observing a half-replaced model. Each swap bumps the entry's
// generation, which the prediction cache folds into its keys so stale
// entries are never served.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
	first   string // name of the first-added model, the default
}

type registryEntry struct {
	name  string
	path  string // source artefact, "" if the model was added in-process
	gen   atomic.Uint64
	model atomic.Pointer[core.Model]
	// reps holds the entry's per-P-core compiled replicas (replicas.go).
	// Slots pin themselves to whatever model pointer they last compiled,
	// so a Swap needs no replica bookkeeping: each slot notices the new
	// pointer on its next acquisition and recompiles then.
	reps *replicaSet
}

// snapshot reads the entry's serving state. Generation is read before
// the pointer: if a swap lands between the two loads the prediction is
// computed with the *newer* model under the older generation, which only
// wastes a cache slot — it never serves a stale model.
func (e *registryEntry) snapshot() (*core.Model, uint64) {
	gen := e.gen.Load()
	return e.model.Load(), gen
}

// ModelInfo describes one registry entry for the listing endpoint.
type ModelInfo struct {
	// Name is the registry key.
	Name string `json:"name"`
	// Default marks the model used when requests name none.
	Default bool `json:"default"`
	// Spec is the model identity, e.g. "neural-net-F".
	Spec string `json:"spec"`
	// Machine is the machine the model was trained for.
	Machine string `json:"machine"`
	// Apps are the applications the model can predict.
	Apps []string `json:"apps"`
	// PStates is the number of P-states the model covers.
	PStates int `json:"pstates"`
	// Generation counts hot-swaps of this entry (1 = never swapped).
	Generation uint64 `json:"generation"`
	// Path is the source artefact, if loaded from disk.
	Path string `json:"path,omitempty"`
}

// NewRegistry returns an empty model registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

// Add registers a model under a name. The first model added becomes the
// default for requests that do not name one. path records where the
// artefact came from so Reload can re-read it; it may be empty.
func (r *Registry) Add(name string, path string, m *core.Model) error {
	if name == "" {
		return fmt.Errorf("serve: model name must not be empty")
	}
	if m == nil {
		return fmt.Errorf("serve: nil model for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	e := &registryEntry{name: name, path: path, reps: newReplicaSet(0)}
	e.model.Store(m)
	e.gen.Store(1)
	r.entries[name] = e
	if r.first == "" {
		r.first = name
	}
	return nil
}

// Swap atomically replaces a registered model. Requests already holding
// the old pointer finish against it; new requests see the new model.
func (r *Registry) Swap(name string, m *core.Model) error {
	if m == nil {
		return fmt.Errorf("serve: nil model for %q", name)
	}
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("serve: model %q not registered", name)
	}
	e.model.Store(m)
	e.gen.Add(1)
	return nil
}

// Get resolves a model by name (empty name selects the default) and
// returns it together with the entry's current generation.
func (r *Registry) Get(name string) (*core.Model, uint64, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, 0, err
	}
	m, gen := e.snapshot()
	return m, gen, nil
}

// lookup resolves a registry entry by name (empty selects the default).
func (r *Registry) lookup(name string) (*registryEntry, error) {
	r.mu.RLock()
	if name == "" {
		name = r.first
	}
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, badRequest(CodeUnknownModel, "unknown model %q (see GET /v1/models)", name)
	}
	return e, nil
}

// DefaultName returns the default model's name ("" when empty).
func (r *Registry) DefaultName() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.first
}

// Len returns the number of registered models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// List describes every registered model, sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	infos := make([]ModelInfo, 0, len(r.entries))
	first := r.first
	for _, e := range r.entries {
		m := e.model.Load()
		infos = append(infos, ModelInfo{
			Name:       e.name,
			Default:    e.name == first,
			Spec:       m.Spec.String(),
			Machine:    m.Machine(),
			Apps:       m.Apps(),
			PStates:    m.PStates(),
			Generation: e.gen.Load(),
			Path:       e.path,
		})
	}
	r.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Reload re-reads every disk-backed entry's artefact and hot-swaps it
// in. Entries added in-process (no path) are skipped. On a read or
// parse failure the old model stays in service and the error is
// reported; models already reloaded keep their new version.
func (r *Registry) Reload() (reloaded []string, err error) {
	r.mu.RLock()
	entries := make([]*registryEntry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.path != "" {
			entries = append(entries, e)
		}
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	for _, e := range entries {
		m, lerr := loadModelFile(e.path)
		if lerr != nil {
			return reloaded, fmt.Errorf("serve: reloading %q: %w", e.name, lerr)
		}
		e.model.Store(m)
		e.gen.Add(1)
		reloaded = append(reloaded, e.name)
	}
	return reloaded, nil
}

// loadModelFile reads one model artefact from disk.
func loadModelFile(path string) (*core.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.LoadModel(f)
}
