package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// testDataset collects one reduced 6-core dataset per process.
var (
	dsOnce sync.Once
	dsVal  *harness.Dataset
	dsErr  error
)

func testDataset(t testing.TB) *harness.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		ep, _ := workload.ByName("ep")
		canneal, _ := workload.ByName("canneal")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, canneal, ep},
			CoApps:     []workload.App{cg, ep},
			CoCounts:   []int{1, 3},
			PStates:    []int{0, 1},
			NoiseSigma: 0.01,
			Seed:       7,
		}
		dsVal, dsErr = harness.Collect(plan)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

// testModel trains a linear-F model (fast and deterministic).
func testModel(t testing.TB, seed uint64) *core.Model {
	t.Helper()
	ds := testDataset(t)
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: seed}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTestServer builds a server with one model named "primary".
func newTestServer(t testing.TB, cfg Config) (*Server, *core.Model) {
	t.Helper()
	m := testModel(t, 1)
	reg := NewRegistry()
	if err := reg.Add("primary", "", m); err != nil {
		t.Fatal(err)
	}
	return New(reg, cfg), m
}

func postJSON(t testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func decodeBody[T any](t testing.TB, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
	return v
}

// errCode extracts the typed error code of a failure response.
func errCode(t testing.TB, w *httptest.ResponseRecorder) string {
	t.Helper()
	return decodeBody[errorBody](t, w).Error.Code
}

func TestPredictMatchesModel(t *testing.T) {
	s, m := newTestServer(t, Config{})
	h := s.Handler()
	sc := features.Scenario{Target: "canneal", CoApps: []string{"cg", "cg"}, PState: 1}
	w := postJSON(t, h, "/v1/predict", PredictRequest{
		ScenarioRequest: ScenarioRequest{Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[PredictResponse](t, w)
	wantSec, err := m.Predict(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantSd, err := m.PredictedSlowdown(sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.PredictedSeconds-wantSec) > 1e-9 {
		t.Fatalf("predicted_seconds %v, model says %v", resp.PredictedSeconds, wantSec)
	}
	if math.Abs(resp.PredictedSlowdown-wantSd) > 1e-9 {
		t.Fatalf("predicted_slowdown %v, model says %v", resp.PredictedSlowdown, wantSd)
	}
	if resp.Cached {
		t.Fatal("first request reported cached")
	}
	if resp.Model != "primary" || resp.Spec != "linear-F" {
		t.Fatalf("identity wrong: %+v", resp)
	}
}

func TestPredictCacheHit(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	req := PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", CoApps: []string{"ep"}, PState: 0}}
	first := decodeBody[PredictResponse](t, postJSON(t, h, "/v1/predict", req))
	if first.Cached {
		t.Fatal("cold request served from cache")
	}
	// The same scenario with co-apps reordered must also hit: the key is
	// canonicalised. (Single co-app here; use a two-co-app scenario.)
	req2 := PredictRequest{ScenarioRequest: ScenarioRequest{Target: "canneal", CoApps: []string{"cg", "ep"}, PState: 0}}
	_ = postJSON(t, h, "/v1/predict", req2)
	req3 := PredictRequest{ScenarioRequest: ScenarioRequest{Target: "canneal", CoApps: []string{"ep", "cg"}, PState: 0}}
	third := decodeBody[PredictResponse](t, postJSON(t, h, "/v1/predict", req3))
	if !third.Cached {
		t.Fatal("reordered co-apps missed the cache")
	}
	second := decodeBody[PredictResponse](t, postJSON(t, h, "/v1/predict", req))
	if !second.Cached {
		t.Fatal("repeated request missed the cache")
	}
	if second.PredictedSeconds != first.PredictedSeconds || second.PredictedSlowdown != first.PredictedSlowdown {
		t.Fatal("cached prediction differs from cold prediction")
	}
	if hits := s.Metrics().CacheHits(); hits != 2 {
		t.Fatalf("cache hits = %d, want 2", hits)
	}
	// The hit is visible through /metrics.
	body := get(t, h, "/metrics").Body.String()
	if !strings.Contains(body, "coloserve_cache_hits_total 2") {
		t.Fatalf("metrics missing hit counter:\n%s", body)
	}
}

func TestPredictCacheDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{CacheSize: -1})
	h := s.Handler()
	req := PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", CoApps: []string{"ep"}, PState: 0}}
	_ = postJSON(t, h, "/v1/predict", req)
	second := decodeBody[PredictResponse](t, postJSON(t, h, "/v1/predict", req))
	if second.Cached {
		t.Fatal("cache disabled but request served from cache")
	}
}

func TestPredictValidation(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name string
		req  PredictRequest
		code string
	}{
		{"unknown target", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "ghost", PState: 0}}, CodeUnknownApp},
		{"unknown co-app", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", CoApps: []string{"ghost"}, PState: 0}}, CodeUnknownApp},
		{"bad pstate", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", PState: 99}}, CodeBadPState},
		{"negative pstate", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", PState: -1}}, CodeBadPState},
		{"empty target", PredictRequest{}, CodeBadRequest},
		{"unknown model", PredictRequest{Model: "ghost", ScenarioRequest: ScenarioRequest{Target: "cg"}}, CodeUnknownModel},
	}
	for _, tc := range cases {
		w := postJSON(t, h, "/v1/predict", tc.req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if c := errCode(t, w); c != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, c, tc.code)
		}
	}
	// Malformed JSON and unknown fields are client errors too.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader("{not json"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", w.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(`{"target":"cg","bogus":1}`))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", w.Code)
	}
	// Wrong method.
	if w := get(t, h, "/v1/predict"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: status %d, want 405", w.Code)
	}
}

func TestPredictBatch(t *testing.T) {
	s, m := newTestServer(t, Config{BatchWorkers: 4})
	h := s.Handler()
	req := BatchRequest{Scenarios: []ScenarioRequest{
		{Target: "canneal", CoApps: []string{"cg"}, PState: 0},
		{Target: "ghost", PState: 0},
		{Target: "ep", CoApps: []string{"cg", "cg", "cg"}, PState: 1},
		{Target: "cg", PState: 99},
	}}
	w := postJSON(t, h, "/v1/predict/batch", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[BatchResponse](t, w)
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Errors != 2 {
		t.Fatalf("errors = %d, want 2", resp.Errors)
	}
	if resp.Results[0].Result == nil || resp.Results[2].Result == nil {
		t.Fatal("valid slots failed")
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeUnknownApp {
		t.Fatalf("slot 1 error = %+v", resp.Results[1].Error)
	}
	if resp.Results[3].Error == nil || resp.Results[3].Error.Code != CodeBadPState {
		t.Fatalf("slot 3 error = %+v", resp.Results[3].Error)
	}
	// Slot order is preserved: slot 2 matches a direct prediction.
	want, err := m.Predict(features.Scenario{Target: "ep", CoApps: []string{"cg", "cg", "cg"}, PState: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Results[2].Result.PredictedSeconds; math.Abs(got-want) > 1e-9 {
		t.Fatalf("slot 2 prediction %v, want %v", got, want)
	}
}

func TestPredictBatchLimits(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxBatch: 2})
	h := s.Handler()
	if w := postJSON(t, h, "/v1/predict/batch", BatchRequest{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", w.Code)
	}
	big := BatchRequest{Scenarios: make([]ScenarioRequest, 3)}
	if w := postJSON(t, h, "/v1/predict/batch", big); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", w.Code)
	}
}

func TestSchedule(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	req := ScheduleRequest{
		Jobs:        []string{"canneal", "cg", "cg", "ep", "ep", "ep"},
		MaxSlowdown: 1.25,
		PState:      0,
	}
	w := postJSON(t, h, "/v1/schedule", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[ScheduleResponse](t, w)
	if resp.Jobs != 6 {
		t.Fatalf("placed %d jobs, want 6", resp.Jobs)
	}
	if resp.MachinesUsed < 1 || resp.MachinesUsed > 6 {
		t.Fatalf("machines used = %d", resp.MachinesUsed)
	}
	if resp.Machine != "Xeon E5649" {
		t.Fatalf("machine inferred as %q", resp.Machine)
	}

	for name, bad := range map[string]ScheduleRequest{
		"empty jobs":     {MaxSlowdown: 1.2},
		"unknown job":    {Jobs: []string{"ghost"}, MaxSlowdown: 1.2},
		"bad bound":      {Jobs: []string{"cg"}, MaxSlowdown: 1.0},
		"bad pstate":     {Jobs: []string{"cg"}, MaxSlowdown: 1.2, PState: 99},
		"unknown fleet":  {Jobs: []string{"cg"}, MaxSlowdown: 1.2, Machine: "pentium"},
		"unknown model2": {Model: "ghost", Jobs: []string{"cg"}, MaxSlowdown: 1.2},
	} {
		if w := postJSON(t, h, "/v1/schedule", bad); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
	}
}

func TestModelsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if err := s.Registry().Add("alt", "", testModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	w := get(t, s.Handler(), "/v1/models")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	resp := decodeBody[ModelsResponse](t, w)
	if resp.Default != "primary" || len(resp.Models) != 2 {
		t.Fatalf("listing wrong: %+v", resp)
	}
	// Sorted by name; default flagged; introspection filled in.
	if resp.Models[0].Name != "alt" || resp.Models[1].Name != "primary" {
		t.Fatalf("order wrong: %+v", resp.Models)
	}
	if !resp.Models[1].Default || resp.Models[0].Default {
		t.Fatal("default flag wrong")
	}
	if resp.Models[1].Machine != "Xeon E5649" || resp.Models[1].PStates != 6 || len(resp.Models[1].Apps) != 3 {
		t.Fatalf("introspection wrong: %+v", resp.Models[1])
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if w := get(t, s.Handler(), "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	empty := New(NewRegistry(), Config{})
	if w := get(t, empty.Handler(), "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty registry health = %d, want 503", w.Code)
	}
	// Predict against an empty registry is a 503, not a panic.
	if w := postJSON(t, empty.Handler(), "/v1/predict", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg"}}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty registry predict = %d, want 503", w.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	_ = postJSON(t, h, "/v1/predict", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", PState: 0}})
	_ = postJSON(t, h, "/v1/predict", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "ghost", PState: 0}})
	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		`coloserve_requests_total{endpoint="predict"} 2`,
		`coloserve_request_errors_total{endpoint="predict"} 1`,
		`coloserve_request_duration_seconds_bucket{endpoint="predict",le="+Inf"} 2`,
		`coloserve_models_loaded 1`,
		`coloserve_cache_misses_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestReloadEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	m := testModel(t, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("disk", path, m); err != nil {
		t.Fatal(err)
	}
	s := New(reg, Config{})
	h := s.Handler()

	w := postJSON(t, h, "/v1/models/reload", struct{}{})
	if w.Code != http.StatusOK {
		t.Fatalf("reload status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[ReloadResponse](t, w)
	if len(resp.Reloaded) != 1 || resp.Reloaded[0] != "disk" {
		t.Fatalf("reloaded = %v", resp.Reloaded)
	}
	infos := reg.List()
	if infos[0].Generation != 2 {
		t.Fatalf("generation = %d, want 2 after reload", infos[0].Generation)
	}

	// Corrupt artefact: reload fails, the old model keeps serving.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, h, "/v1/models/reload", struct{}{}); w.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d, want 500", w.Code)
	}
	pw := postJSON(t, h, "/v1/predict", PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", PState: 0}})
	if pw.Code != http.StatusOK {
		t.Fatalf("predict after failed reload: %d", pw.Code)
	}
}

// TestConcurrentPredictAndHotSwap hammers the predict path from many
// goroutines while models are hot-swapped underneath — the scenario the
// registry's atomic design exists for. Run under -race.
func TestConcurrentPredictAndHotSwap(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	replacement := testModel(t, 99)

	const clients = 8
	const perClient = 40
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			targets := []string{"cg", "ep", "canneal"}
			for i := 0; i < perClient; i++ {
				req := PredictRequest{ScenarioRequest: ScenarioRequest{
					Target: targets[(c+i)%len(targets)],
					CoApps: []string{targets[i%len(targets)]},
					PState: i % 2,
				}}
				raw, _ := json.Marshal(req)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(raw)))
				if w.Code != http.StatusOK {
					errs <- fmt.Sprintf("client %d req %d: status %d body %s", c, i, w.Code, w.Body.String())
					return
				}
			}
		}(c)
	}
	// Swap the model continuously while clients are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := s.Registry().Swap("primary", replacement); err != nil {
				errs <- err.Error()
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Generations moved: the cache cannot have served a stale model.
	if gen := s.Registry().List()[0].Generation; gen != 51 {
		t.Fatalf("generation = %d, want 51", gen)
	}
}

// TestServeGracefulDrain verifies Serve stops accepting on cancellation
// and completes in-flight work (the SIGTERM path of cmd/coloserve).
func TestServeGracefulDrain(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	ln, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	// Wait for the listener to answer.
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}

	// Fire a request concurrently with cancellation; Shutdown's drain
	// must let it complete.
	reqDone := make(chan error, 1)
	go func() {
		raw, _ := json.Marshal(PredictRequest{ScenarioRequest: ScenarioRequest{Target: "cg", PState: 0}})
		resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(raw))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			reqDone <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		reqDone <- nil
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	// The listener is closed: new connections fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}

func netListen(t testing.TB) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}
