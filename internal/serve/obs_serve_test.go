package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"colocmodel/internal/obs"
)

// obsTestServer builds a server that retains every trace (negative
// SlowThreshold) and logs JSON into the returned buffer.
func obsTestServer(t testing.TB) (*Server, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{SlowThreshold: -1, TraceRing: 32, Logger: logger})
	return s, &buf
}

func predictBody() []byte {
	return []byte(`{"target":"canneal","co_apps":["cg","cg"],"pstate":1}`)
}

func TestRequestIDEchoed(t *testing.T) {
	s, logBuf := obsTestServer(t)
	h := s.Handler()

	// No client ID: the server mints one.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	minted := w.Header().Get("X-Request-ID")
	if minted == "" {
		t.Fatal("response missing X-Request-ID")
	}

	// Client-supplied ID: adopted verbatim.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	req.Header.Set("X-Request-ID", "client-abc")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-ID"); got != "client-abc" {
		t.Fatalf("X-Request-ID = %q, want client-abc", got)
	}

	// Both requests produced structured log lines carrying their IDs.
	ids := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec struct {
			Msg       string  `json:"msg"`
			RequestID string  `json:"request_id"`
			Endpoint  string  `json:"endpoint"`
			Status    int     `json:"status"`
			DurMS     float64 `json:"dur_ms"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
		if rec.Endpoint != "predict" || rec.Status != 200 || rec.DurMS < 0 {
			t.Fatalf("log line fields wrong: %q", line)
		}
		ids[rec.RequestID] = true
	}
	if !ids[minted] || !ids["client-abc"] {
		t.Fatalf("log lines missing request IDs: have %v, want %q and client-abc", ids, minted)
	}
}

func TestRequestIDOnMetricsAndErrors(t *testing.T) {
	s, _ := obsTestServer(t)
	h := s.Handler()
	for _, path := range []string{"/metrics", "/healthz", "/v1/models"} {
		w := get(t, h, path)
		if w.Header().Get("X-Request-ID") == "" {
			t.Fatalf("%s: missing X-Request-ID", path)
		}
	}
	// Error responses carry the ID too.
	w := postJSON(t, h, "/v1/predict", map[string]any{"target": "nosuch"})
	if w.Code != http.StatusBadRequest || w.Header().Get("X-Request-ID") == "" {
		t.Fatalf("error response: status %d, id %q", w.Code, w.Header().Get("X-Request-ID"))
	}
}

func TestServerTimingHeader(t *testing.T) {
	s, _ := obsTestServer(t)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	st := w.Header().Get("Server-Timing")
	stages := obs.ParseServerTiming(st)
	// Cold request: decode, cache (miss lookup), eval all present.
	for _, want := range []string{"decode", "cache", "eval"} {
		if _, ok := stages[want]; !ok {
			t.Fatalf("Server-Timing %q missing stage %s", st, want)
		}
	}
	// Second identical request hits the cache: no eval stage.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	stages = obs.ParseServerTiming(w.Header().Get("Server-Timing"))
	if _, ok := stages["eval"]; ok {
		t.Fatalf("cache hit still reports eval: %v", stages)
	}
	if _, ok := stages["cache"]; !ok {
		t.Fatalf("cache hit missing cache stage: %v", stages)
	}
}

// TestTraceEndpointSpanTree is the acceptance check: a served predict
// request leaves a retained trace in /v1/traces whose span tree covers
// decode → cache → eval → encode with monotone timings contained in
// their parents' extents.
func TestTraceEndpointSpanTree(t *testing.T) {
	s, _ := obsTestServer(t)
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	req.Header.Set("X-Request-ID", "trace-me")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("predict: %d", w.Code)
	}

	tw := get(t, h, "/v1/traces?endpoint=predict")
	if tw.Code != http.StatusOK {
		t.Fatalf("traces: %d: %s", tw.Code, tw.Body.String())
	}
	tr := decodeBody[TracesResponse](t, tw)
	if tr.Count == 0 || len(tr.Traces) == 0 {
		t.Fatal("no retained traces")
	}
	var td *obs.TraceData
	for _, cand := range tr.Traces {
		if cand.ID == "trace-me" {
			td = cand
		}
	}
	if td == nil {
		t.Fatalf("trace for request trace-me not retained (have %d traces)", len(tr.Traces))
	}
	if td.Kind != "http" || td.Name != "predict" || td.Status != 200 || td.Error {
		t.Fatalf("trace metadata: %+v", td)
	}
	if td.Spans[0].Parent != -1 {
		t.Fatalf("root span parent = %d", td.Spans[0].Parent)
	}
	seen := map[string]bool{}
	for i, sp := range td.Spans {
		seen[sp.Name] = true
		if sp.EndNS < sp.StartNS {
			t.Fatalf("span %s not monotone: %+v", sp.Name, sp)
		}
		if sp.Parent >= 0 {
			p := td.Spans[sp.Parent]
			if sp.StartNS < p.StartNS || (p.EndNS > 0 && sp.EndNS > p.EndNS) {
				t.Fatalf("span %d (%s) [%d,%d] escapes parent %s [%d,%d]",
					i, sp.Name, sp.StartNS, sp.EndNS, p.Name, p.StartNS, p.EndNS)
			}
		}
	}
	for _, want := range []string{"decode", "cache", "eval", "encode"} {
		if !seen[want] {
			t.Fatalf("span tree missing %s: have %v", want, seen)
		}
	}
	// Pipeline stages are sequential: decode ends before cache starts,
	// cache before eval, eval before encode.
	byName := map[string]obs.SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	order := []string{"decode", "cache", "eval", "encode"}
	for i := 1; i < len(order); i++ {
		prev, cur := byName[order[i-1]], byName[order[i]]
		if cur.StartNS < prev.EndNS {
			t.Fatalf("stage %s starts (%dns) before %s ends (%dns)",
				order[i], cur.StartNS, order[i-1], prev.EndNS)
		}
	}
}

func TestTracesFiltering(t *testing.T) {
	s, _ := obsTestServer(t)
	h := s.Handler()
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
	}
	get(t, h, "/healthz")

	all := decodeBody[TracesResponse](t, get(t, h, "/v1/traces"))
	if all.Count < 4 {
		t.Fatalf("retained %d traces, want >= 4", all.Count)
	}
	onlyPredict := decodeBody[TracesResponse](t, get(t, h, "/v1/traces?endpoint=predict"))
	for _, td := range onlyPredict.Traces {
		if td.Name != "predict" {
			t.Fatalf("endpoint filter leaked %s", td.Name)
		}
	}
	if onlyPredict.Count != 3 {
		t.Fatalf("predict traces = %d, want 3", onlyPredict.Count)
	}
	limited := decodeBody[TracesResponse](t, get(t, h, "/v1/traces?limit=2"))
	if limited.Count != 2 {
		t.Fatalf("limit=2 returned %d", limited.Count)
	}
	slow := decodeBody[TracesResponse](t, get(t, h, "/v1/traces?min_ms=3600000"))
	if slow.Count != 0 {
		t.Fatalf("min_ms filter returned %d", slow.Count)
	}
	if none := decodeBody[TracesResponse](t, get(t, h, "/v1/traces?kind=retrain")); none.Count != 0 {
		t.Fatalf("kind filter returned %d", none.Count)
	}
	if st := all.Stats; st.Capacity != 32 || st.Retained < 4 {
		t.Fatalf("stats: %+v", st)
	}

	for _, bad := range []string{"min_ms=abc", "min_ms=-1", "limit=x", "limit=-2"} {
		if w := get(t, h, "/v1/traces?"+bad); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, w.Code)
		}
	}
}

func TestTracesDisabled(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceRing: -1})
	h := s.Handler()
	if s.Tracer() != nil {
		t.Fatal("negative TraceRing should disable the tracer")
	}
	// Requests still work, just without Server-Timing.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("predict without tracing: %d", w.Code)
	}
	if st := w.Header().Get("Server-Timing"); st != "" {
		t.Fatalf("Server-Timing present with tracing disabled: %q", st)
	}
	if w.Header().Get("X-Request-ID") == "" {
		t.Fatal("X-Request-ID must not depend on tracing")
	}
	tw := get(t, h, "/v1/traces")
	if tw.Code != http.StatusServiceUnavailable || errCode(t, tw) != CodeTracingDisabled {
		t.Fatalf("traces with tracing disabled: %d %s", tw.Code, tw.Body.String())
	}
}

// TestSpanShippingGatedBySlowThreshold: a sampled caller gets the span
// tree back only when the request crossed the backend's slow threshold
// — the bar every trace ring retains at. Fast requests carry just the
// trace ID, keeping the encode cost off the hot path.
func TestSpanShippingGatedBySlowThreshold(t *testing.T) {
	tp := obs.NewTraceContext().Header()
	for _, tc := range []struct {
		name      string
		threshold time.Duration
		want      bool
	}{
		{"retain-all ships", -1, true},
		{"fast request skips", time.Hour, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newTestServer(t, Config{SlowThreshold: tc.threshold, TraceRing: 8})
			req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
			req.Header.Set(obs.TraceparentHeader, tp)
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				t.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
			got := w.Header().Get(obs.TraceSpansHeader) != ""
			if got != tc.want {
				t.Fatalf("X-Trace-Spans shipped = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSlowRetentionThreshold(t *testing.T) {
	// With a huge slow threshold, clean fast requests are not retained —
	// but failed ones are.
	s, _ := newTestServer(t, Config{SlowThreshold: time.Hour, TraceRing: 8})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(predictBody()))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	postJSON(t, h, "/v1/predict", map[string]any{"target": "nosuch"})

	tr := decodeBody[TracesResponse](t, get(t, h, "/v1/traces"))
	if tr.Count != 1 || !tr.Traces[0].Error || tr.Traces[0].Status != http.StatusBadRequest {
		t.Fatalf("retained %d traces (%+v), want only the failed request", tr.Count, tr.Traces)
	}
	if tr.Stats.Seen < 2 {
		t.Fatalf("seen %d, want >= 2", tr.Stats.Seen)
	}
}

func TestSlowRequestLoggedAtWarn(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Negative threshold: everything counts as slow.
	s, _ := newTestServer(t, Config{SlowThreshold: -1, Logger: logger})
	h := s.Handler()
	get(t, h, "/healthz")
	var rec struct {
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log: %v (%q)", err, buf.String())
	}
	if rec.Level != "WARN" || rec.Msg != "slow request" {
		t.Fatalf("slow request logged as %s %q", rec.Level, rec.Msg)
	}
}

func TestServerErrorLoggedAtError(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "json", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry() // empty: healthz is 503
	s := New(reg, Config{Logger: logger})
	get(t, s.Handler(), "/healthz")
	var rec struct {
		Level  string `json:"level"`
		Msg    string `json:"msg"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log: %v (%q)", err, buf.String())
	}
	if rec.Level != "ERROR" || rec.Msg != "request failed" || rec.Status != 503 {
		t.Fatalf("5xx logged as %s %q status %d", rec.Level, rec.Msg, rec.Status)
	}
}

func TestHealthzVerbose(t *testing.T) {
	s, _ := obsTestServer(t)
	h := s.Handler()

	// Base contract unchanged.
	base := decodeBody[HealthResponse](t, get(t, h, "/healthz"))
	if base.Status != "ok" || base.Models != 1 {
		t.Fatalf("base healthz: %+v", base)
	}
	if base.UptimeSeconds != 0 || base.Generations != nil || base.GoVersion != "" {
		t.Fatalf("base healthz leaked verbose fields: %+v", base)
	}

	v := decodeBody[HealthResponse](t, get(t, h, "/healthz?verbose=1"))
	if v.UptimeSeconds <= 0 {
		t.Fatalf("verbose uptime = %v", v.UptimeSeconds)
	}
	if len(v.Generations) != 1 {
		t.Fatalf("verbose generations = %v", v.Generations)
	}
	if _, ok := v.Generations["primary"]; !ok {
		t.Fatalf("generations missing primary: %v", v.Generations)
	}
	if v.GoVersion == "" {
		t.Fatal("verbose build info missing go version")
	}
	if !v.Tracing {
		t.Fatal("verbose should report tracing on")
	}
	if v.Adaptation {
		t.Fatal("adaptation not enabled, should be false")
	}
	// verbose=0 / false behave as base.
	for _, q := range []string{"?verbose=0", "?verbose=false"} {
		b := decodeBody[HealthResponse](t, get(t, h, "/healthz"+q))
		if b.UptimeSeconds != 0 {
			t.Fatalf("%s treated as verbose", q)
		}
	}
}

func TestPprofOptIn(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if w := get(t, s.Handler(), "/debug/pprof/cmdline"); w.Code != http.StatusNotFound {
		t.Fatalf("pprof exposed without opt-in: %d", w.Code)
	}

	s2, _ := newTestServer(t, Config{})
	s2.EnablePprof()
	h := s2.Handler()
	if w := get(t, h, "/debug/pprof/cmdline"); w.Code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", w.Code)
	}
	w := get(t, h, "/debug/pprof/")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d", w.Code)
	}
}

func TestBatchFanoutSpans(t *testing.T) {
	s, _ := obsTestServer(t)
	h := s.Handler()
	body := map[string]any{
		"scenarios": []map[string]any{
			{"target": "canneal", "co_apps": []string{"cg"}, "pstate": 0},
			{"target": "cg", "co_apps": []string{"ep"}, "pstate": 1},
			{"target": "ep", "co_apps": []string{"cg", "cg"}, "pstate": 0},
		},
	}
	if w := postJSON(t, h, "/v1/predict/batch", body); w.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", w.Code, w.Body.String())
	}
	tr := decodeBody[TracesResponse](t, get(t, h, "/v1/traces?endpoint=predict_batch"))
	if tr.Count != 1 {
		t.Fatalf("batch traces = %d", tr.Count)
	}
	td := tr.Traces[0]
	var fanIdx int = -1
	evals := 0
	var evalScenarios string
	for i, sp := range td.Spans {
		if sp.Name == "fanout" {
			fanIdx = i
		}
	}
	if fanIdx < 0 {
		t.Fatal("no fanout span")
	}
	for _, sp := range td.Spans {
		if sp.Name == "eval" {
			evals++
			if sp.Parent == 0 {
				t.Fatal("batch eval span should not parent to the root")
			}
			for _, a := range sp.Attrs {
				if a.Key == "scenarios" {
					evalScenarios = a.Value
				}
			}
		}
	}
	// The batch path evaluates all cache misses in ONE batched model
	// call, so a cold-cache batch of three scenarios produces a single
	// eval span covering all three slots.
	if evals != 1 {
		t.Fatalf("eval spans = %d, want 1 (one batched call)", evals)
	}
	if evalScenarios != "3" {
		t.Fatalf("eval scenarios attr = %q, want 3", evalScenarios)
	}
	var slots string
	for _, a := range td.Spans[fanIdx].Attrs {
		if a.Key == "slots" {
			slots = a.Value
		}
	}
	if slots != "3" {
		t.Fatalf("fanout slots attr = %q", slots)
	}
}

// TestLogFormatsEndToEnd drives a text-format logger through the server
// to cover the -log-format text path.
func TestLogFormatsEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{Logger: logger})
	get(t, s.Handler(), "/healthz")
	if !strings.Contains(buf.String(), "endpoint=healthz") {
		t.Fatalf("text log: %q", buf.String())
	}
}
