package serve

import (
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"colocmodel/internal/features"
)

// Cache is a sharded, size-bounded prediction cache. Scheduling loops
// query the same co-location scenarios over and over (a greedy packer
// re-evaluates every machine for every job), so memoising the model's
// forward pass turns the common case into a map hit. Sharding keeps
// lock contention negligible under concurrent traffic; each shard
// evicts in FIFO order once full, which is close enough to LRU for the
// highly repetitive key distribution scheduling produces.
type Cache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one lock domain. Entries are bounded by a fixed-size
// ring of keys: when the ring wraps, the key it overwrites is evicted.
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]prediction
	ring    []string
	next    int
}

// prediction is a memoised model output.
type prediction struct {
	// Seconds is the predicted co-located execution time.
	Seconds float64
	// Slowdown is Seconds over the target's baseline.
	Slowdown float64
}

const cacheShardCount = 16 // power of two

// NewCache returns a cache bounded to roughly capacity entries spread
// over a fixed number of shards. Capacity below the shard count is
// raised to one entry per shard.
func NewCache(capacity int) *Cache {
	perShard := capacity / cacheShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]cacheShard, cacheShardCount), mask: cacheShardCount - 1}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]prediction, perShard)
		c.shards[i].ring = make([]string, perShard)
	}
	return c
}

// CanonicalScenario renders a scenario in the canonical form shared by
// the prediction cache and the cluster routing tier:
// "target|pstate|co1|co2|..." with the co-apps sorted. Co-runner order
// is irrelevant to the model's features (they are sums), so "canneal
// with [cg ep]" and "canneal with [ep cg]" canonicalise identically.
// The format is pinned by a cross-package test; changing it silently
// desynchronises the router's shard placement from the cache.
func CanonicalScenario(sc features.Scenario) string {
	co := make([]string, len(sc.CoApps))
	copy(co, sc.CoApps)
	sort.Strings(co)
	var b strings.Builder
	b.Grow(len(sc.Target) + 4 + 8*len(co))
	b.WriteString(sc.Target)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(sc.PState))
	for _, a := range co {
		b.WriteByte('|')
		b.WriteString(a)
	}
	return b.String()
}

// ScenarioKey canonicalises a scenario into a cache key:
// "model@generation|<CanonicalScenario>". The model name and registry
// generation prefix the key so a hot-swapped model never serves stale
// predictions. Exported so the cluster router shards and coalesces on
// byte-identical keys — router and cache cannot drift on the format.
func ScenarioKey(model string, gen uint64, sc features.Scenario) string {
	var b strings.Builder
	canon := CanonicalScenario(sc)
	b.Grow(len(model) + 22 + len(canon))
	b.WriteString(model)
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(canon)
	return b.String()
}

// keyScratch builds scenario keys into a reusable byte buffer so the
// cache-hit path allocates nothing: the sorted co-app scratch and the key
// bytes are pooled, and the shard lookup reads the bytes directly via the
// compiler's no-copy map[string(bytes)] access. A scratch produces the
// exact byte sequence ScenarioKey returns.
type keyScratch struct {
	buf []byte
	co  []string
}

// keyPool recycles key scratches across requests.
var keyPool = sync.Pool{New: func() any { return new(keyScratch) }}

// build canonicalises the scenario into k.buf (same form as ScenarioKey).
func (k *keyScratch) build(model string, gen uint64, sc features.Scenario) {
	k.co = append(k.co[:0], sc.CoApps...)
	slices.Sort(k.co)
	b := append(k.buf[:0], model...)
	b = append(b, '@')
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, '|')
	b = append(b, sc.Target...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(sc.PState), 10)
	for _, a := range k.co {
		b = append(b, '|')
		b = append(b, a...)
	}
	k.buf = b
}

// fnv1a hashes a key for shard selection.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// fnv1aBytes is fnv1a over raw key bytes (identical digest for identical
// bytes, so string and byte keyed access hit the same shard).
func fnv1aBytes(s []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the memoised prediction for key, if present.
func (c *Cache) Get(key string) (prediction, bool) {
	s := c.shard(key)
	s.mu.Lock()
	p, ok := s.entries[key]
	s.mu.Unlock()
	return p, ok
}

// GetBytes is Get keyed by raw bytes (a keyScratch buffer). The map
// access compiles to a no-allocation lookup, which keeps the cache-hit
// predict path free of per-request garbage.
func (c *Cache) GetBytes(key []byte) (prediction, bool) {
	s := &c.shards[fnv1aBytes(key)&c.mask]
	s.mu.Lock()
	p, ok := s.entries[string(key)]
	s.mu.Unlock()
	return p, ok
}

// Put memoises a prediction, evicting the oldest entry in the shard if
// it is full.
func (c *Cache) Put(key string, p prediction) {
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.entries[key]; !exists {
		if old := s.ring[s.next]; old != "" {
			delete(s.entries, old)
		}
		s.ring[s.next] = key
		s.next = (s.next + 1) % len(s.ring)
	}
	s.entries[key] = p
	s.mu.Unlock()
}

// PutBytes is Put keyed by raw bytes; the string key is materialised only
// here, on the miss path, where the model evaluation dominates anyway.
func (c *Cache) PutBytes(key []byte, p prediction) {
	c.Put(string(key), p)
}

// Len returns the current number of memoised predictions.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
