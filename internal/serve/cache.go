package serve

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"colocmodel/internal/features"
)

// Cache is a sharded, size-bounded prediction cache. Scheduling loops
// query the same co-location scenarios over and over (a greedy packer
// re-evaluates every machine for every job), so memoising the model's
// forward pass turns the common case into a map hit. Sharding keeps
// lock contention negligible under concurrent traffic; each shard
// evicts in FIFO order once full, which is close enough to LRU for the
// highly repetitive key distribution scheduling produces.
type Cache struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one lock domain. Entries are bounded by a fixed-size
// ring of keys: when the ring wraps, the key it overwrites is evicted.
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]prediction
	ring    []string
	next    int
}

// prediction is a memoised model output.
type prediction struct {
	// Seconds is the predicted co-located execution time.
	Seconds float64
	// Slowdown is Seconds over the target's baseline.
	Slowdown float64
}

const cacheShardCount = 16 // power of two

// NewCache returns a cache bounded to roughly capacity entries spread
// over a fixed number of shards. Capacity below the shard count is
// raised to one entry per shard.
func NewCache(capacity int) *Cache {
	perShard := capacity / cacheShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]cacheShard, cacheShardCount), mask: cacheShardCount - 1}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]prediction, perShard)
		c.shards[i].ring = make([]string, perShard)
	}
	return c
}

// scenarioKey canonicalises a scenario into a cache key. Co-runner
// order is irrelevant to the model's features (they are sums), so the
// co-apps are sorted: "canneal with [cg ep]" and "canneal with [ep cg]"
// share an entry. The model name and registry generation prefix the key
// so a hot-swapped model never serves stale predictions.
func scenarioKey(model string, gen uint64, sc features.Scenario) string {
	co := make([]string, len(sc.CoApps))
	copy(co, sc.CoApps)
	sort.Strings(co)
	var b strings.Builder
	b.Grow(len(model) + 32 + len(sc.Target) + 8*len(co))
	b.WriteString(model)
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(gen, 10))
	b.WriteByte('|')
	b.WriteString(sc.Target)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(sc.PState))
	for _, a := range co {
		b.WriteByte('|')
		b.WriteString(a)
	}
	return b.String()
}

// fnv1a hashes a key for shard selection.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the memoised prediction for key, if present.
func (c *Cache) Get(key string) (prediction, bool) {
	s := c.shard(key)
	s.mu.Lock()
	p, ok := s.entries[key]
	s.mu.Unlock()
	return p, ok
}

// Put memoises a prediction, evicting the oldest entry in the shard if
// it is full.
func (c *Cache) Put(key string, p prediction) {
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.entries[key]; !exists {
		if old := s.ring[s.next]; old != "" {
			delete(s.entries, old)
		}
		s.ring[s.next] = key
		s.next = (s.next + 1) % len(s.ring)
	}
	s.entries[key] = p
	s.mu.Unlock()
}

// Len returns the current number of memoised predictions.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}
