package serve

import (
	"net/http"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/mlp"
)

// neuralTestServer builds a server around a neural model, the technique
// whose batch path actually exercises the batched GEMM kernels.
func neuralTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	ds := testDataset(t)
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Train(core.Spec{
		Technique: core.NeuralNet, FeatureSet: set, Seed: 11,
		SCG: mlp.SCGConfig{MaxIter: 60},
	}, ds, ds.Records)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("nn", "", m); err != nil {
		t.Fatal(err)
	}
	return New(reg, cfg)
}

var batchScenarios = []map[string]any{
	{"target": "canneal", "co_apps": []string{"cg"}, "pstate": 0},
	{"target": "cg", "co_apps": []string{"ep", "ep", "ep"}, "pstate": 1},
	{"target": "ep", "co_apps": []string{"cg"}, "pstate": 0},
	{"target": "canneal", "co_apps": []string{"ep", "ep", "ep"}, "pstate": 1},
	{"target": "cg", "co_apps": []string{"cg"}, "pstate": 0},
}

// The batched batch endpoint must return bit-identical predictions to the
// single-predict endpoint, with and without the cache in the loop.
func TestBatchMatchesSinglePredict(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"cache_disabled", Config{CacheSize: -1}},
		{"cache_enabled", Config{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := neuralTestServer(t, tc.cfg)
			h := s.Handler()

			var singles []PredictResponse
			for _, sc := range batchScenarios {
				w := postJSON(t, h, "/v1/predict", sc)
				if w.Code != http.StatusOK {
					t.Fatalf("predict: %d: %s", w.Code, w.Body.String())
				}
				singles = append(singles, decodeBody[PredictResponse](t, w))
			}

			w := postJSON(t, h, "/v1/predict/batch", map[string]any{"scenarios": batchScenarios})
			if w.Code != http.StatusOK {
				t.Fatalf("batch: %d: %s", w.Code, w.Body.String())
			}
			batch := decodeBody[BatchResponse](t, w)
			if batch.Errors != 0 || len(batch.Results) != len(batchScenarios) {
				t.Fatalf("batch errors=%d results=%d", batch.Errors, len(batch.Results))
			}
			for i, it := range batch.Results {
				if it.Result == nil {
					t.Fatalf("slot %d: no result: %+v", i, it.Error)
				}
				if it.Result.PredictedSeconds != singles[i].PredictedSeconds {
					t.Fatalf("slot %d: batch %v != single %v", i, it.Result.PredictedSeconds, singles[i].PredictedSeconds)
				}
				if it.Result.PredictedSlowdown != singles[i].PredictedSlowdown {
					t.Fatalf("slot %d: slowdown %v != %v", i, it.Result.PredictedSlowdown, singles[i].PredictedSlowdown)
				}
				if tc.cfg.CacheSize >= 0 && !it.Result.Cached {
					t.Fatalf("slot %d: expected a cache hit after single predicts warmed the cache", i)
				}
			}

			// A second batch must serve every slot from the cache (or, with
			// the cache disabled, recompute identically).
			w = postJSON(t, h, "/v1/predict/batch", map[string]any{"scenarios": batchScenarios})
			again := decodeBody[BatchResponse](t, w)
			for i, it := range again.Results {
				if it.Result.PredictedSeconds != singles[i].PredictedSeconds {
					t.Fatalf("slot %d: repeat batch diverged", i)
				}
			}
		})
	}
}

// One bad slot fails alone; the rest of the batch is still evaluated in
// the batched call.
func TestBatchMixedValidAndInvalidSlots(t *testing.T) {
	s := neuralTestServer(t, Config{})
	h := s.Handler()
	w := postJSON(t, h, "/v1/predict/batch", map[string]any{"scenarios": []map[string]any{
		{"target": "canneal", "co_apps": []string{"cg"}, "pstate": 0},
		{"target": "nosuchapp", "co_apps": []string{"cg"}, "pstate": 0},
		{"target": "ep", "co_apps": []string{"cg"}, "pstate": 99},
		{"target": "cg", "co_apps": []string{"ep"}, "pstate": 1},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[BatchResponse](t, w)
	if resp.Errors != 2 {
		t.Fatalf("errors = %d, want 2", resp.Errors)
	}
	if resp.Results[0].Result == nil || resp.Results[3].Result == nil {
		t.Fatal("valid slots missing results")
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeUnknownApp {
		t.Fatalf("slot 1 error = %+v", resp.Results[1].Error)
	}
	if resp.Results[2].Error == nil || resp.Results[2].Error.Code != CodeBadPState {
		t.Fatalf("slot 2 error = %+v", resp.Results[2].Error)
	}
}

// keyScratch must produce byte-for-byte the key ScenarioKey returns, for
// any co-app ordering, so byte-keyed and string-keyed access always agree.
func TestKeyScratchMatchesScenarioKey(t *testing.T) {
	scs := []features.Scenario{
		{Target: "cg", CoApps: []string{"ep", "cg", "canneal"}, PState: 2},
		{Target: "canneal", CoApps: nil, PState: 0},
		{Target: "ep", CoApps: []string{"x"}, PState: 11},
		{Target: "cg", CoApps: []string{"b", "a", "b", "a"}, PState: 1},
	}
	var ks keyScratch
	for _, sc := range scs {
		want := ScenarioKey("model-1", 42, sc)
		ks.build("model-1", 42, sc)
		if string(ks.buf) != want {
			t.Fatalf("keyScratch %q != ScenarioKey %q", ks.buf, want)
		}
	}
}

// The warmed cache-hit lookup path — key build into pooled scratch plus a
// byte-keyed shard probe — must not allocate.
func TestCacheHitLookupZeroAllocs(t *testing.T) {
	c := NewCache(1024)
	sc := features.Scenario{Target: "canneal", CoApps: []string{"ep", "cg"}, PState: 1}
	ks := keyPool.Get().(*keyScratch)
	defer keyPool.Put(ks)
	ks.build("primary", 7, sc)
	c.PutBytes(ks.buf, prediction{Seconds: 3.5, Slowdown: 1.2})

	hits := 0
	allocs := testing.AllocsPerRun(200, func() {
		ks.build("primary", 7, sc)
		if _, ok := c.GetBytes(ks.buf); ok {
			hits++
		}
	})
	if hits == 0 {
		t.Fatal("lookup never hit")
	}
	if allocs != 0 {
		t.Fatalf("cache-hit lookup allocates %v per run, want 0", allocs)
	}
}
