package serve

import (
	"errors"
	"fmt"
	"net/http"
)

// Error is a typed API error: every failure a handler can produce
// carries an HTTP status and a stable machine-readable code, so that
// client mistakes (unknown app, unknown model, out-of-range P-state,
// malformed JSON) surface as 4xx responses and only genuine server
// faults surface as 5xx.
type Error struct {
	// Status is the HTTP status code to respond with.
	Status int
	// Code is a stable machine-readable identifier, e.g. "unknown_app".
	Code string
	// Message is the human-readable explanation.
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Stable error codes returned in response bodies.
const (
	CodeBadRequest   = "bad_request"
	CodeUnknownModel = "unknown_model"
	CodeUnknownApp   = "unknown_app"
	CodeBadPState    = "bad_pstate"
	CodeTimeout      = "timeout"
	CodeInternal     = "internal"
	// CodeAdaptationDisabled marks calls to the adaptation endpoints on
	// a server started without the adaptation loop.
	CodeAdaptationDisabled = "adaptation_disabled"
	// CodeTracingDisabled marks calls to /v1/traces on a server started
	// with the trace ring disabled.
	CodeTracingDisabled = "tracing_disabled"
	// CodeSLODisabled marks calls to /v1/slo on a server started with
	// SLO tracking disabled.
	CodeSLODisabled = "slo_disabled"
	// CodeDraining marks requests shed because the server is draining
	// for shutdown. The response carries a Retry-After header so a
	// routing tier can distinguish "shedding, come back" from "dead,
	// eject" and re-route without ejecting the backend.
	CodeDraining = "draining"
)

func badRequest(code, format string, args ...any) *Error {
	return &Error{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

func internalError(err error) *Error {
	return &Error{Status: http.StatusInternalServerError, Code: CodeInternal, Message: err.Error()}
}

// asError coerces any error to an *Error, defaulting to a 500 so that
// unexpected failures are never misreported as client mistakes.
func asError(err error) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	return internalError(err)
}
