package serve

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket an observation lands in
// at and around every boundary: Prometheus buckets are cumulative with
// le (less-or-equal) semantics, so a value exactly on a bound belongs
// in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		seconds float64
		bucket  int // index into counts, len(latencyBuckets) = +Inf
	}{
		{0, 0},
		{9.9e-6, 0},
		{1e-5, 0},         // exactly on the first bound → first bucket
		{1.0000001e-5, 1}, // just past it → next bucket
		{5e-5, 1},         // on the second bound
		{1e-4, 2},
		{5e-4, 3},
		{1e-3, 4},
		{5e-3, 5},
		{1e-2, 6},
		{5e-2, 7},
		{0.1, 8},
		{0.5, 9},
		{1, 10},
		{5, 11},        // last finite bound
		{5.000001, 12}, // past every bound → +Inf bucket
		{3600, 12},
	}
	for _, tc := range cases {
		var h histogram
		h.Observe(tc.seconds)
		for i := range h.counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Fatalf("Observe(%g): bucket %d = %d, want bucket %d hit", tc.seconds, i, got, tc.bucket)
			}
		}
		if h.count.Load() != 1 {
			t.Fatalf("Observe(%g): count = %d", tc.seconds, h.count.Load())
		}
	}
	if len(latencyBuckets) != numLatencyBuckets {
		t.Fatalf("latencyBuckets has %d bounds, const says %d", len(latencyBuckets), numLatencyBuckets)
	}
}

// TestHistogramConcurrentObserve hammers Observe and WritePrometheus
// concurrently (run with -race); afterwards the totals must be exact —
// the CAS loop on the sum must not lose updates.
func TestHistogramConcurrentObserve(t *testing.T) {
	m := NewMetrics("predict")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.ObserveRequest("predict", time.Millisecond, i%7 == 0)
			}
		}(w)
	}
	// Concurrent scrapes while observations land.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			m.WritePrometheus(&buf, 1, 0)
		}
	}()
	wg.Wait()

	em := m.endpoints["predict"]
	const total = workers * per
	if got := em.requests.Load(); got != total {
		t.Fatalf("requests = %d, want %d", got, total)
	}
	if got := em.latency.count.Load(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	wantSum := float64(total) * 1e-3
	gotSum := scrapeSum(t, m, "predict")
	if diff := gotSum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("sum = %g, want %g (CAS lost updates?)", gotSum, wantSum)
	}
}

// scrapeSum reads an endpoint's latency sum through the exposition
// path, the same way a Prometheus scrape would.
func scrapeSum(t *testing.T, m *Metrics, endpoint string) float64 {
	t.Helper()
	var buf bytes.Buffer
	m.WritePrometheus(&buf, 0, 0)
	prefix := fmt.Sprintf("coloserve_request_duration_seconds_sum{endpoint=%q}", endpoint)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			f, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil {
				t.Fatalf("unparseable sum line %q: %v", line, err)
			}
			return f
		}
	}
	t.Fatalf("sum line for %s not found", endpoint)
	return 0
}

// TestMetricsDroppedCounter covers satellite: observations against
// unregistered endpoints are counted, not silently discarded.
func TestMetricsDroppedCounter(t *testing.T) {
	m := NewMetrics("predict")
	m.ObserveRequest("predict", time.Millisecond, false)
	m.ObserveRequest("nosuch", time.Millisecond, false)
	m.ObserveRequest("nosuch", time.Millisecond, true)
	if got := m.DroppedObservations(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	var buf bytes.Buffer
	m.WritePrometheus(&buf, 1, 0)
	if !strings.Contains(buf.String(), "coloserve_metrics_dropped_total 2") {
		t.Fatalf("dropped counter missing from scrape:\n%s", buf.String())
	}
}

func TestSwapsRecorded(t *testing.T) {
	m := NewMetrics()
	m.SwapRecorded()
	m.SwapsRecorded(3)
	m.SwapsRecorded(0)
	m.SwapsRecorded(-5)
	var buf bytes.Buffer
	m.WritePrometheus(&buf, 0, 0)
	if !strings.Contains(buf.String(), "coloserve_model_swaps_total 4") {
		t.Fatalf("swaps counter wrong:\n%s", buf.String())
	}
}

// TestPrometheusScrapeFormat sanity-checks the exposition text: every
// sample's metric family is declared by a preceding # TYPE line, HELP
// precedes TYPE, and histogram bucket counts are monotone in le with
// the +Inf bucket equal to _count.
func TestPrometheusScrapeFormat(t *testing.T) {
	m := NewMetrics("predict", "schedule")
	for i := 0; i < 100; i++ {
		m.ObserveRequest("predict", time.Duration(i)*100*time.Microsecond, i%9 == 0)
	}
	m.ObserveRequest("schedule", 2*time.Second, false)
	m.CacheHit()
	m.CacheMiss()
	m.SwapsRecorded(2)
	m.ObserveRequest("ghost", time.Millisecond, false)

	var buf bytes.Buffer
	m.WritePrometheus(&buf, 2, 17)

	typed := map[string]string{} // family → type
	helped := map[string]bool{}
	buckets := map[string][]uint64{} // endpoint → cumulative bucket counts
	infCount := map[string]uint64{}
	sampleCount := map[string]uint64{}

	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if !helped[f[0]] {
				t.Fatalf("TYPE before HELP for %s", f[0])
			}
			typed[f[0]] = f[1]
			continue
		}
		// Sample line: name{labels} value or name value.
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE", line)
		}
		fields := strings.Fields(line)
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		if typed[family] == "counter" && val < 0 {
			t.Fatalf("negative counter %q", line)
		}
		if strings.HasSuffix(name, "_bucket") {
			ep := labelValue(t, line, "endpoint")
			buckets[ep] = append(buckets[ep], uint64(val))
			if labelValue(t, line, "le") == "+Inf" {
				infCount[ep] = uint64(val)
			}
		}
		if name == "coloserve_request_duration_seconds_count" {
			sampleCount[labelValue(t, line, "endpoint")] = uint64(val)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("bucket series for %d endpoints, want 2", len(buckets))
	}
	for ep, bs := range buckets {
		if len(bs) != numLatencyBuckets+1 {
			t.Fatalf("%s: %d bucket lines, want %d", ep, len(bs), numLatencyBuckets+1)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Fatalf("%s: bucket counts not monotone: %v", ep, bs)
			}
		}
		if infCount[ep] != sampleCount[ep] {
			t.Fatalf("%s: +Inf bucket %d != _count %d", ep, infCount[ep], sampleCount[ep])
		}
	}
	if sampleCount["predict"] != 100 || sampleCount["schedule"] != 1 {
		t.Fatalf("sample counts: %v", sampleCount)
	}
	if !strings.Contains(buf.String(), "coloserve_metrics_dropped_total 1") {
		t.Fatal("ghost observation not counted as dropped")
	}
}

func labelValue(t *testing.T, line, key string) string {
	t.Helper()
	needle := key + `="`
	i := strings.Index(line, needle)
	if i < 0 {
		t.Fatalf("label %s missing in %q", key, line)
	}
	rest := line[i+len(needle):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		t.Fatalf("unterminated label in %q", line)
	}
	return rest[:j]
}

// TestHistogramSumFidelity checks the float64-bits CAS representation
// round-trips oddly-sized values exactly.
func TestHistogramSumFidelity(t *testing.T) {
	vals := []float64{1e-7, 0.125, 3.5, 1e-3}
	want := 0.0
	m := NewMetrics("e")
	for _, v := range vals {
		m.ObserveRequest("e", time.Duration(v*float64(time.Second)), false)
		want += v
	}
	got := scrapeSum(t, m, "e")
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}
