package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/obs"
)

// TestCacheNeverServesStaleGenerationDuringSwaps hammers the sharded
// prediction cache with concurrent reads while the registry hot-swaps
// through a sequence of distinct models. The invariant under test: a
// response carrying generation g never holds a value computed by a
// model *older* than generation g. (The registry documents the benign
// inverse race — a newer model under an older generation when a swap
// lands between the generation load and the pointer load — so newer
// is allowed; stale is the bug.) Cache keys embed the generation, so
// every swap implicitly invalidates; a hit on a stale key would
// surface here as a generation/value mismatch. Run under -race.
func TestCacheNeverServesStaleGenerationDuringSwaps(t *testing.T) {
	ds := testDataset(t)

	// K distinct models: each trains on a rotated two-thirds of the
	// records, so their linear fits — and predictions — differ.
	const numModels = 4
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	models := make([]*core.Model, numModels)
	for i := range models {
		var records []harness.Record
		for j, r := range ds.Records {
			if (j+i)%3 != 0 {
				records = append(records, r)
			}
		}
		m, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: set, Seed: uint64(i + 1)}, ds, records)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}

	// The probe scenarios, and each model's exact prediction for them.
	// predictOne must return one of these values bit-for-bit (the cache
	// stores exact float64s), so the value identifies the model.
	scenarios := []features.Scenario{
		{Target: "canneal", CoApps: []string{"cg", "cg", "cg"}, PState: 0},
		{Target: "cg", CoApps: []string{"ep"}, PState: 1},
		{Target: "ep", CoApps: []string{"cg", "ep", "cg"}, PState: 0},
		{Target: "canneal", CoApps: []string{"ep"}, PState: 1},
	}
	want := make([]map[float64]int, len(scenarios)) // value -> model index
	for si, sc := range scenarios {
		want[si] = make(map[float64]int, numModels)
		for mi, m := range models {
			v, err := m.Predict(sc)
			if err != nil {
				t.Fatal(err)
			}
			if prev, dup := want[si][v]; dup && prev != mi {
				t.Skipf("models %d and %d agree exactly on scenario %d; cannot attribute values", prev, mi, si)
			}
			want[si][v] = mi
		}
	}

	reg := NewRegistry()
	if err := reg.Add("primary", "", models[0]); err != nil { // generation 1
		t.Fatal(err)
	}
	s := New(reg, Config{CacheSize: 1 << 12})

	// Swapper: one-directional walk through the remaining models.
	// Generation after swapping in models[i] is i+1, so model index ==
	// generation-1 and "stale" means valueIndex < gen-1.
	var stop atomic.Bool
	var swapErr error
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		defer stop.Store(true)
		for i := 1; i < numModels; i++ {
			for k := 0; k < 500; k++ { // let readers hammer each generation
				if _, _, err := reg.Get("primary"); err != nil {
					swapErr = err
					return
				}
			}
			if err := reg.Swap("primary", models[i]); err != nil {
				swapErr = err
				return
			}
		}
	}()

	const readers = 8
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func(r int) {
			for i := 0; ; i++ {
				if stop.Load() && i%len(scenarios) == 0 {
					errs <- nil
					return
				}
				sc := scenarios[(i+r)%len(scenarios)]
				m, gen, err := reg.Get("primary")
				if err != nil {
					errs <- err
					return
				}
				reps := reg.entries["primary"].reps
				resp, e := s.predictOne(obs.Span{}, "primary", m, gen, reps, sc)
				if e != nil {
					errs <- fmt.Errorf("predictOne: %s", e.Message)
					return
				}
				mi, known := want[(i+r)%len(scenarios)][resp.PredictedSeconds]
				if !known {
					errs <- fmt.Errorf("generation %d returned a value belonging to no model: %v", resp.Generation, resp.PredictedSeconds)
					return
				}
				if uint64(mi) < resp.Generation-1 {
					errs <- fmt.Errorf("STALE: generation %d served model %d's value %v", resp.Generation, mi, resp.PredictedSeconds)
					return
				}
			}
		}(r)
	}
	for r := 0; r < readers; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	swapWG.Wait()
	if swapErr != nil {
		t.Fatal(swapErr)
	}
	// The walk finished: the final generation serves the final model.
	m, gen, err := reg.Get("primary")
	if err != nil {
		t.Fatal(err)
	}
	if gen != numModels || m != models[numModels-1] {
		t.Fatalf("after %d swaps: generation %d, model index wrong", numModels-1, gen)
	}
}
