package serve

// The adaptation surface: the serving tier's half of the online
// adaptation loop. Deployed schedulers report measured execution times
// back through POST /v1/observations; each report is durably appended
// to the feedback log and folded into the drift monitor, and when a
// residual stream trips the Page–Hinkley detector the retraining
// controller is (optionally) triggered in the background. GET
// /v1/drift exposes the monitor, POST /v1/retrain and GET
// /v1/retrain/status drive and observe the controller.

import (
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"colocmodel/internal/core"
	"colocmodel/internal/drift"
	"colocmodel/internal/feedback"
	"colocmodel/internal/obs"
	"colocmodel/internal/retrain"
)

// Adaptation bundles the three adaptation-loop components the server
// wires together.
type Adaptation struct {
	// Log is the durable observation store (file-backed group-commit
	// log, memory ring, or any other feedback.Store).
	Log feedback.Store
	// Monitor is the residual drift monitor.
	Monitor *drift.Monitor
	// Controller is the gated retraining controller. Optional: without
	// it observations are logged and monitored but never acted on.
	Controller *retrain.Controller
	// AutoRetrain triggers the controller when a drift detector trips.
	// It requires Controller (and the controller's Start loop running).
	AutoRetrain bool
}

// EnableAdaptation attaches the adaptation loop to the server. It must
// be called before Handler(). Promotions reset the promoted model's
// drift streams and count as hot-swaps in the metrics.
func (s *Server) EnableAdaptation(a Adaptation) error {
	if a.Log == nil || a.Monitor == nil {
		return &Error{Status: http.StatusInternalServerError, Code: CodeInternal,
			Message: "adaptation needs a feedback log and a drift monitor"}
	}
	if a.AutoRetrain && a.Controller == nil {
		return &Error{Status: http.StatusInternalServerError, Code: CodeInternal,
			Message: "auto-retrain needs a controller"}
	}
	if a.Controller != nil {
		a.Controller.OnPromote(func(model string) {
			a.Monitor.Reset(model)
			s.metrics.SwapRecorded()
		})
		// Retrain attempts trace their stage lifecycle (dataset assembly,
		// train, holdout eval, promote) into the same ring the request
		// traces land in.
		a.Controller.SetTracer(s.tracer)
	}
	s.adapt = &a
	return nil
}

// Adaptation returns the attached adaptation loop (nil when disabled).
func (s *Server) Adaptation() *Adaptation { return s.adapt }

// adaptationDisabled is the response for adaptation endpoints on a
// server running without the loop.
func adaptationDisabled() (int, any) {
	return errBody(&Error{Status: http.StatusServiceUnavailable, Code: CodeAdaptationDisabled,
		Message: "this server is running without the adaptation loop"})
}

// ---- observations ----

// ObservationRequest is the wire form of one deployment observation:
// a scenario the scheduler actually ran, with its measured runtime.
type ObservationRequest struct {
	// Model names the registry entry the prediction came from; empty
	// selects the default model.
	Model string `json:"model,omitempty"`
	// Target, CoApps and PState identify the scenario.
	Target string   `json:"target"`
	CoApps []string `json:"co_apps,omitempty"`
	PState int      `json:"pstate,omitempty"`
	// PredictedSeconds is the runtime the model predicted. Zero asks
	// the server to compute it (through the cache) so callers that only
	// measure can still feed the loop.
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	// MeasuredSeconds is the observed runtime (must be positive).
	MeasuredSeconds float64 `json:"measured_seconds"`
}

// ObservationsRequest accepts a single observation (the embedded
// fields) or a batch (the observations array). When the array is
// non-empty the embedded single fields must be unset.
type ObservationsRequest struct {
	ObservationRequest
	Observations []ObservationRequest `json:"observations,omitempty"`
}

// ObservationItem is one slot of an observations response.
type ObservationItem struct {
	// PercentError is the signed percent error folded into the drift
	// monitor (set on accepted slots).
	PercentError float64      `json:"percent_error"`
	Error        *errorDetail `json:"error,omitempty"`
}

// ObservationsResponse reports an ingest.
type ObservationsResponse struct {
	Accepted int               `json:"accepted"`
	Rejected int               `json:"rejected"`
	Results  []ObservationItem `json:"results"`
	// DriftTripped reports whether any detector tripped during this
	// ingest; RetrainTriggered whether that queued a retraining attempt.
	DriftTripped     bool `json:"drift_tripped"`
	RetrainTriggered bool `json:"retrain_triggered,omitempty"`
}

func (s *Server) handleObservations(r *http.Request) (int, any) {
	if s.adapt == nil {
		return adaptationDisabled()
	}
	tr := obs.TraceFrom(r.Context())
	sp := tr.StartSpan("decode")
	var req ObservationsRequest
	e := decodeJSON(r, &req)
	sp.End()
	if e != nil {
		return errBody(e)
	}
	batch := req.Observations
	single := len(batch) == 0
	if single {
		batch = []ObservationRequest{req.ObservationRequest}
	} else if req.Target != "" || req.MeasuredSeconds != 0 {
		return errBody(badRequest(CodeBadRequest, "set either the single observation fields or \"observations\", not both"))
	}
	if len(batch) > s.cfg.MaxBatch {
		return errBody(badRequest(CodeBadRequest, "batch of %d exceeds limit %d", len(batch), s.cfg.MaxBatch))
	}

	// Validate and resolve every slot first, then funnel all the valid
	// observations into ONE durable append: a batch request costs one
	// group commit (and, under load, even that commit is shared with
	// concurrent requests coalescing in the log's commit queue).
	resp := ObservationsResponse{Results: make([]ObservationItem, len(batch))}
	pending := make([]int, 0, len(batch))
	obsBatch := make([]feedback.Observation, 0, len(batch))
	names := make([]string, 0, len(batch))
	for i, or := range batch {
		ob, name, e := s.buildObservation(tr, or)
		if e != nil {
			resp.Results[i].Error = &errorDetail{Code: e.Code, Message: e.Message}
			resp.Rejected++
			s.metrics.ObservationRejected()
			continue
		}
		pending = append(pending, i)
		obsBatch = append(obsBatch, ob)
		names = append(names, name)
	}
	if len(obsBatch) > 0 {
		isp := tr.StartSpan("ingest")
		isp.Annotate("records", strconv.Itoa(len(obsBatch)))
		commit, err := s.adapt.Log.AppendBatch(obsBatch)
		if err != nil {
			isp.Fail(err.Error())
		} else {
			isp.Annotate("group_records", strconv.Itoa(commit.Batch))
			recordCommitSpans(isp, commit)
		}
		isp.End()
		if err != nil {
			e := asError(err)
			for _, i := range pending {
				resp.Results[i].Error = &errorDetail{Code: e.Code, Message: e.Message}
				resp.Rejected++
				s.metrics.ObservationRejected()
			}
			pending = pending[:0]
		}
	}
	if len(pending) > 0 {
		dsp := tr.StartSpan("drift_check")
		for k, i := range pending {
			ob := obsBatch[k]
			pct := ob.PercentError()
			resp.Results[i].PercentError = pct
			resp.Accepted++
			s.metrics.ObservationIngested()
			if s.adapt.Monitor.Observe(names[k], ob.Target, pct) {
				resp.DriftTripped = true
				s.metrics.DriftTripRecorded()
				if s.adapt.AutoRetrain && s.adapt.Controller.Trigger("drift") {
					resp.RetrainTriggered = true
				}
			}
		}
		dsp.End()
	}
	if single && resp.Rejected == 1 {
		// A lone bad observation is a plain client error, not a
		// partial-success envelope.
		d := resp.Results[0].Error
		return errBody(&Error{Status: http.StatusBadRequest, Code: d.Code, Message: d.Message})
	}
	return http.StatusOK, resp
}

// recordCommitSpans attributes the group-commit pipeline stages
// (enqueue wait → coalesced write → fsync) into the ingest span after
// the fact, from the Commit's stage timestamps.
func recordCommitSpans(sp obs.Span, c feedback.Commit) {
	sp.Record("enqueue", c.Queued, c.WriteStart)
	sp.Record("commit", c.WriteStart, c.SyncStart)
	if c.Done.After(c.SyncStart) {
		sp.Record("fsync", c.SyncStart, c.Done)
	}
}

// buildObservation validates one observation request and turns it into
// a log record, filling in the model's prediction when the caller
// omitted it. It does not touch the log or the drift monitor.
func (s *Server) buildObservation(tr *obs.Trace, or ObservationRequest) (feedback.Observation, string, *Error) {
	name, m, gen, reps, e := s.resolveModel(or.Model)
	if e != nil {
		return feedback.Observation{}, "", e
	}
	sc := ScenarioRequest{Target: or.Target, CoApps: or.CoApps, PState: or.PState}.scenario()
	if e := validateScenario(m, sc); e != nil {
		return feedback.Observation{}, "", e
	}
	if or.MeasuredSeconds <= 0 {
		return feedback.Observation{}, "", badRequest(CodeBadRequest, "measured_seconds %v must be positive", or.MeasuredSeconds)
	}
	pred := or.PredictedSeconds
	if pred == 0 {
		pr, e := s.predictOne(tr.Root(), name, m, gen, reps, sc)
		if e != nil {
			return feedback.Observation{}, "", e
		}
		pred = pr.PredictedSeconds
	}
	return feedback.Observation{
		Model: name, Generation: gen,
		Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
		PredictedSeconds: pred, MeasuredSeconds: or.MeasuredSeconds,
		UnixNanos: time.Now().UnixNano(),
	}, name, nil
}

// ---- drift ----

func (s *Server) handleDrift(r *http.Request) (int, any) {
	if s.adapt == nil {
		return adaptationDisabled()
	}
	return http.StatusOK, s.adapt.Monitor.Report()
}

// ---- retrain ----

// RetrainRequest drives a manual retraining attempt. The body is
// optional; an empty body is an asynchronous trigger.
type RetrainRequest struct {
	// Wait makes the attempt synchronous: the response carries the
	// completed result instead of 202.
	Wait bool `json:"wait,omitempty"`
	// Reason is recorded in the attempt history; default "manual".
	Reason string `json:"reason,omitempty"`
}

// RetrainTriggerResponse is the asynchronous (202) response.
type RetrainTriggerResponse struct {
	// Triggered reports whether the attempt was queued; false means the
	// queue already holds pending attempts, which will see the same
	// observations.
	Triggered bool           `json:"triggered"`
	Status    retrain.Status `json:"status"`
}

func (s *Server) handleRetrain(r *http.Request) (int, any) {
	if s.adapt == nil || s.adapt.Controller == nil {
		return adaptationDisabled()
	}
	var req RetrainRequest
	if r.ContentLength != 0 {
		if e := decodeJSON(r, &req); e != nil {
			return errBody(e)
		}
	}
	if req.Reason == "" {
		req.Reason = "manual"
	}
	if req.Wait {
		res, err := s.adapt.Controller.RunOnce(req.Reason)
		if err != nil {
			return errBody(asError(err))
		}
		return http.StatusOK, res
	}
	triggered := s.adapt.Controller.Trigger(req.Reason)
	return http.StatusAccepted, RetrainTriggerResponse{
		Triggered: triggered,
		Status:    s.adapt.Controller.Status(),
	}
}

func (s *Server) handleRetrainStatus(r *http.Request) (int, any) {
	if s.adapt == nil || s.adapt.Controller == nil {
		return adaptationDisabled()
	}
	return http.StatusOK, s.adapt.Controller.Status()
}

// ---- version ----

// VersionResponse is the build-info body of GET /v1/version. It doubles
// as the cluster router's generation probe: DefaultModel and Generations
// report the registry's serving generations so a routing tier can track
// each backend's promotion state without a second endpoint.
type VersionResponse struct {
	Service    string `json:"service"`
	APIVersion string `json:"api_version"`
	// ModelFormat is the artefact format version this build reads.
	ModelFormat int    `json:"model_format"`
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Revision    string `json:"vcs_revision,omitempty"`
	// Adaptation reports whether the adaptation loop is enabled.
	Adaptation bool `json:"adaptation"`
	// DefaultModel is the registry's default entry ("" when empty).
	DefaultModel string `json:"default_model,omitempty"`
	// Generations maps every registered model to its serving generation.
	Generations map[string]uint64 `json:"generations,omitempty"`
	// Draining reports whether the server is shedding for shutdown.
	Draining bool `json:"draining,omitempty"`
}

func (s *Server) handleVersion(r *http.Request) (int, any) {
	resp := VersionResponse{
		Service:      "coloserve",
		APIVersion:   "v1",
		ModelFormat:  core.ModelFormat(),
		Adaptation:   s.adapt != nil,
		DefaultModel: s.reg.DefaultName(),
		Draining:     s.draining.Load(),
	}
	if infos := s.reg.List(); len(infos) > 0 {
		resp.Generations = make(map[string]uint64, len(infos))
		for _, info := range infos {
			resp.Generations[info.Name] = info.Generation
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.GoVersion = bi.GoVersion
		resp.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	return http.StatusOK, resp
}

// writeAdaptationMetrics appends the adaptation gauges to a metrics
// scrape: values read live from the monitor and controller rather than
// mirrored into counters.
func (s *Server) writeAdaptationMetrics(w io.Writer) {
	if s.adapt == nil {
		return
	}
	writeGauge(w, "coloserve_drift_score", "Largest Page–Hinkley score across residual streams.", s.adapt.Monitor.MaxScore())
	writeGauge(w, "coloserve_drift_tripped", "1 when any drift detector has fired.", boolGauge(s.adapt.Monitor.Tripped()))
	writeGauge(w, "coloserve_observations_logged", "Observations in the feedback log.", float64(s.adapt.Log.Len()))
	ist := s.adapt.Log.Stats()
	writeCounter(w, "coloserve_obs_group_commits_total", "Group commits written by the observation log.", ist.Batches)
	writeCounter(w, "coloserve_obs_fsyncs_total", "fsync calls issued by the observation log.", ist.Fsyncs)
	writeGauge(w, "coloserve_obs_queue_depth", "Append batches waiting on the observation log committer.", float64(ist.QueueDepth))
	writeGauge(w, "coloserve_obs_max_batch_records", "Largest group commit seen.", float64(ist.MaxBatch))
	writeHistSnapshot(w, "coloserve_obs_commit_batch_records", "Records per observation group commit.", ist.BatchRecords)
	writeHistSnapshot(w, "coloserve_obs_commit_duration_seconds", "Observation group-commit latency (write start to release).", ist.CommitSeconds)
	writeHistSnapshot(w, "coloserve_obs_fsync_duration_seconds", "Observation log fsync latency.", ist.FsyncSeconds)
	writeCounter(w, "coloserve_obs_compaction_runs_total", "Observation segment compaction passes.", ist.CompactionRuns)
	writeCounter(w, "coloserve_obs_compacted_records_total", "Observations folded into compacted segments.", ist.CompactedRecords)
	writeCounter(w, "coloserve_obs_reclaimed_bytes_total", "Bytes reclaimed by the observation retention policy.", ist.ReclaimedBytes)
	writeCounter(w, "coloserve_obs_retention_dropped_records_total", "Observations dropped by the retention policy.", ist.RetentionDroppedRecords)
	if s.adapt.Controller == nil {
		return
	}
	st := s.adapt.Controller.Status()
	writeGauge(w, "coloserve_retrains_attempted_total", "Retraining attempts completed.", float64(st.Attempts))
	writeGauge(w, "coloserve_retrains_promoted_total", "Retraining attempts that promoted a candidate.", float64(st.Promoted))
	writeGauge(w, "coloserve_retrains_rejected_total", "Retraining attempts that kept the incumbent.", float64(st.Rejected))
	if st.Last != nil {
		writeGauge(w, "coloserve_retrain_candidate_mpe", "Holdout MPE of the last retraining candidate.", st.Last.CandidateMPE)
		writeGauge(w, "coloserve_retrain_incumbent_mpe", "Holdout MPE of the incumbent at the last attempt.", st.Last.IncumbentMPE)
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
