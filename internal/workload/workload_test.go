package workload

import (
	"math"
	"testing"

	"colocmodel/internal/cache"
)

const testLLC = 12 * 1024 * 1024 // the 6-core machine's LLC

func TestAllElevenAppsValid(t *testing.T) {
	as := All()
	if len(as) != 11 {
		t.Fatalf("got %d applications, want 11 (Table III)", len(as))
	}
	for _, a := range as {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestSuiteSplit(t *testing.T) {
	// Table III draws from both PARSEC (P) and NAS (N).
	counts := map[Suite]int{}
	for _, a := range All() {
		counts[a.Suite]++
	}
	if counts[PARSEC] == 0 || counts[NAS] == 0 {
		t.Fatalf("suite split %v, want both suites represented", counts)
	}
}

func TestAllSortedByClassThenName(t *testing.T) {
	as := All()
	for i := 1; i < len(as); i++ {
		if as[i].Class < as[i-1].Class {
			t.Fatal("not sorted by class")
		}
		if as[i].Class == as[i-1].Class && as[i].Name < as[i-1].Name {
			t.Fatal("not sorted by name within class")
		}
	}
}

func TestEveryClassPopulated(t *testing.T) {
	for c := ClassI; c <= ClassIV; c++ {
		if len(ByClass(c)) == 0 {
			t.Fatalf("%v has no applications", c)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassI.String() != "Class I" || ClassIV.String() != "Class IV" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class empty string")
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("cg")
	if err != nil || a.Name != "cg" || a.Suite != NAS {
		t.Fatalf("ByName(cg) = %+v, %v", a, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestTrainingCoAppsOnePerClass(t *testing.T) {
	co := TrainingCoApps()
	if len(co) != 4 {
		t.Fatalf("got %d training co-apps, want 4", len(co))
	}
	seen := map[Class]bool{}
	for _, a := range co {
		if seen[a.Class] {
			t.Fatalf("class %v represented twice", a.Class)
		}
		seen[a.Class] = true
	}
	// The paper names them explicitly (Section IV-B3).
	want := map[string]bool{"cg": true, "sp": true, "fluidanimate": true, "ep": true}
	for _, a := range co {
		if !want[a.Name] {
			t.Fatalf("unexpected training co-app %s", a.Name)
		}
	}
}

// TestClassIntensityOrdering verifies the central Table III property: the
// four classes are separated in baseline memory intensity, with classes
// differing by roughly orders of magnitude.
func TestClassIntensityOrdering(t *testing.T) {
	minByClass := map[Class]float64{}
	maxByClass := map[Class]float64{}
	for _, a := range All() {
		mi := a.BaselineMemoryIntensity(testLLC)
		if cur, ok := minByClass[a.Class]; !ok || mi < cur {
			minByClass[a.Class] = mi
		}
		if cur, ok := maxByClass[a.Class]; !ok || mi > cur {
			maxByClass[a.Class] = mi
		}
	}
	for c := ClassI; c < ClassIV; c++ {
		lo := minByClass[c]
		hiNext := maxByClass[c+1]
		if lo <= hiNext*3 {
			t.Errorf("%v min intensity %.3e not well separated from %v max %.3e",
				c, lo, c+1, hiNext)
		}
	}
	// Order-of-magnitude span between Class I and Class IV.
	if minByClass[ClassI] < 1000*maxByClass[ClassIV] {
		t.Errorf("Class I (%.3e) and Class IV (%.3e) differ by less than 3 orders of magnitude",
			minByClass[ClassI], maxByClass[ClassIV])
	}
}

func TestIntensityStableAcrossMachines(t *testing.T) {
	// The paper notes memory intensity values "do not vary widely
	// between the machines we tested": class membership must be the same
	// at the 12-core machine's 30 MB LLC.
	const llc12 = 30 * 1024 * 1024
	for _, a := range All() {
		mi6 := a.BaselineMemoryIntensity(testLLC)
		mi12 := a.BaselineMemoryIntensity(llc12)
		if mi12 > mi6*1.01 {
			t.Errorf("%s: intensity grows with larger cache (%.3e -> %.3e)", a.Name, mi6, mi12)
		}
	}
}

func TestValidateCatchesBadApps(t *testing.T) {
	good, _ := ByName("cg")
	mut := []func(*App){
		func(a *App) { a.Name = "" },
		func(a *App) { a.Suite = "SPEC" },
		func(a *App) { a.Class = 0 },
		func(a *App) { a.Instructions = 0 },
		func(a *App) { a.BaseCPI = -1 },
		func(a *App) { a.LLCAccessRate = 2 },
		func(a *App) { a.MRC.Alpha = 0 },
		func(a *App) { a.MissExposeFrac = 0 },
		func(a *App) { a.HitExposeFrac = 2 },
		func(a *App) { a.PhaseAmplitude = 0.9 },
	}
	for i, m := range mut {
		a := good
		m(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBaselineMissRatioMonotoneInCapacity(t *testing.T) {
	for _, a := range All() {
		small := a.BaselineMissRatio(1 << 20)
		large := a.BaselineMissRatio(1 << 30)
		if large > small {
			t.Errorf("%s: miss ratio grows with capacity", a.Name)
		}
	}
}

func TestTraceGeneratorsConstructible(t *testing.T) {
	for _, a := range All() {
		g, err := a.TraceGenerator(0, 1)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for i := 0; i < 100; i++ {
			g.Next()
		}
	}
}

func TestTraceGeneratorMatchesClass(t *testing.T) {
	// A Class I generator must miss far more than a Class IV generator
	// in the same cache.
	cg, _ := ByName("cg")
	ep, _ := ByName("ep")
	mr := func(a App) float64 {
		g, err := a.TraceGenerator(0, 7)
		if err != nil {
			t.Fatal(err)
		}
		c, err := cache.New(cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: cache.LRU})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300000; i++ {
			c.Access(0, g.Next())
		}
		return c.GlobalMissRatio()
	}
	if mrCg, mrEp := mr(cg), mr(ep); mrCg < 2*mrEp {
		t.Fatalf("trace miss ratios do not reflect classes: cg %v, ep %v", mrCg, mrEp)
	}
}

func TestNames(t *testing.T) {
	ns := Names(TrainingCoApps())
	if len(ns) != 4 || ns[0] != "cg" {
		t.Fatalf("Names = %v", ns)
	}
}

func TestMicrobenchmarksValid(t *testing.T) {
	ms := Microbenchmarks()
	if len(ms) != 4 {
		t.Fatalf("got %d microbenchmarks, want 4", len(ms))
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// Microbenchmarks are not part of the Table III registry.
	for _, m := range ms {
		if _, err := ByName(m.Name); err == nil {
			t.Errorf("%s leaked into the Table III registry", m.Name)
		}
	}
	if _, ok := MicrobenchmarkByName("stream"); !ok {
		t.Fatal("stream lookup failed")
	}
	if _, ok := MicrobenchmarkByName("doom"); ok {
		t.Fatal("unknown microbenchmark found")
	}
}

func TestMicrobenchmarkExtremes(t *testing.T) {
	stream, _ := MicrobenchmarkByName("stream")
	dgemm, _ := MicrobenchmarkByName("dgemm")
	pchase, _ := MicrobenchmarkByName("pchase")
	// stream: maximal bandwidth demand (intensity above every Table III app).
	for _, a := range All() {
		if a.BaselineMemoryIntensity(testLLC) >= stream.BaselineMemoryIntensity(testLLC) {
			t.Errorf("%s intensity exceeds stream's", a.Name)
		}
	}
	// dgemm: CPU-bound.
	if dgemm.BaselineMemoryIntensity(testLLC) > 1e-4 {
		t.Error("dgemm not CPU-bound")
	}
	// pchase: fully serialised misses.
	if pchase.MissExposeFrac != 1.0 {
		t.Error("pchase misses not fully exposed")
	}
}

func TestScaled(t *testing.T) {
	cg, _ := ByName("cg")
	big, err := cg.Scaled(".C", 4)
	if err != nil {
		t.Fatal(err)
	}
	if big.Name != "cg.C" {
		t.Fatalf("name = %q", big.Name)
	}
	if big.Instructions != 4*cg.Instructions {
		t.Fatal("instructions not scaled linearly")
	}
	wantWS := cg.MRC.WorkingSetBytes * math.Pow(4, 2.0/3.0)
	if math.Abs(big.MRC.WorkingSetBytes-wantWS) > 1 {
		t.Fatalf("working set %v, want %v", big.MRC.WorkingSetBytes, wantWS)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	// Larger problems are at least as memory intensive at fixed cache.
	if big.BaselineMemoryIntensity(testLLC) < cg.BaselineMemoryIntensity(testLLC) {
		t.Fatal("scaling reduced memory intensity")
	}
	if _, err := cg.Scaled(".X", 0); err == nil {
		t.Fatal("zero factor accepted")
	}
}
