package workload

import "colocmodel/internal/cache"

// Microbenchmarks returns four constructed kernels in the style of the
// [ChD14] "energy roofline" study the related-work section contrasts
// against: synthetic probes that each stress one corner of the
// memory/compute space, rather than the mixed behaviour of real
// scientific applications.
//
// They are *not* part of the Table III registry (All does not return
// them); the microbenchmark-transfer experiment uses them to test whether
// models trained on scientific workloads extend to application behaviour
// outside both benchmark suites.
//
//	pchase  — dependent pointer chasing: every LLC miss is serialised
//	          (no memory-level parallelism), latency-bound.
//	stream  — pure streaming over a huge footprint: maximal bandwidth
//	          demand, high MLP.
//	dgemm   — blocked dense compute: tiny working set, CPU-bound.
//	ministencil — a small-footprint stencil: moderate reuse, sensitive
//	          to losing its modest cache share.
func Microbenchmarks() []App {
	return []App{
		{
			Name: "pchase", Suite: NAS /* hosted kernel */, Class: ClassII,
			Instructions: 1.8e11, BaseCPI: 0.90, LLCAccessRate: 0.0150,
			MRC:            cache.PowerLawMRC{WorkingSetBytes: 64 * mib, Knee: 0.95, Floor: 0.05, Alpha: 0.60},
			MissExposeFrac: 1.00, HitExposeFrac: 0.60, PhaseAmplitude: 0,
		},
		{
			Name: "stream", Suite: PARSEC /* hosted kernel */, Class: ClassI,
			Instructions: 3.0e11, BaseCPI: 0.60, LLCAccessRate: 0.0700,
			MRC:            cache.PowerLawMRC{WorkingSetBytes: 512 * mib, Knee: 0.98, Floor: 0.90, Alpha: 0.50},
			MissExposeFrac: 0.10, HitExposeFrac: 0.15, PhaseAmplitude: 0,
		},
		{
			Name: "dgemm", Suite: NAS /* hosted kernel */, Class: ClassIV,
			Instructions: 1.1e12, BaseCPI: 0.95, LLCAccessRate: 0.0008,
			MRC:            cache.PowerLawMRC{WorkingSetBytes: 2 * mib, Knee: 0.30, Floor: 0.0005, Alpha: 1.00},
			MissExposeFrac: 0.30, HitExposeFrac: 0.25, PhaseAmplitude: 0,
		},
		{
			Name: "ministencil", Suite: PARSEC /* hosted kernel */, Class: ClassIII,
			Instructions: 6.0e11, BaseCPI: 0.85, LLCAccessRate: 0.0100,
			MRC:            cache.PowerLawMRC{WorkingSetBytes: 10 * mib, Knee: 0.60, Floor: 0.004, Alpha: 1.10},
			MissExposeFrac: 0.45, HitExposeFrac: 0.30, PhaseAmplitude: 0,
		},
	}
}

// MicrobenchmarkByName returns the named microbenchmark.
func MicrobenchmarkByName(name string) (App, bool) {
	for _, a := range Microbenchmarks() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
