// Package workload defines the application models standing in for the
// eleven PARSEC and NAS benchmark applications of Table III. Each
// application is characterised by the quantities that determine its memory
// behaviour on a multicore processor: instruction count, base (all-hit)
// CPI, last-level cache access rate, a miss-ratio curve describing how its
// miss ratio responds to the LLC capacity it effectively receives, and a
// memory-level-parallelism factor describing how much of each miss's
// latency stalls the core.
//
// The paper groups applications into four memory-intensity classes whose
// baseline memory intensities (LLC misses per instruction) differ by
// orders of magnitude; the parameters here are calibrated to reproduce
// that structure (verified by tests and reported by Table III of
// cmd/coloexp).
package workload

import (
	"fmt"
	"math"
	"sort"

	"colocmodel/internal/cache"
	"colocmodel/internal/trace"
)

// Suite identifies the benchmark suite an application is drawn from.
type Suite string

const (
	// PARSEC marks applications from the PARSEC suite, "(P)" in Table III.
	PARSEC Suite = "PARSEC"
	// NAS marks applications from the NAS parallel benchmarks, "(N)".
	NAS Suite = "NAS"
)

// Class is a memory-intensity class from Table III. ClassI applications
// are the most memory intensive (most memory bound); ClassIV the least.
type Class int

const (
	// ClassI is the most memory-intensive class.
	ClassI Class = iota + 1
	// ClassII is moderately memory intensive.
	ClassII
	// ClassIII is mildly memory intensive.
	ClassIII
	// ClassIV is CPU bound.
	ClassIV
)

// String renders the class in the paper's Roman-numeral notation.
func (c Class) String() string {
	switch c {
	case ClassI:
		return "Class I"
	case ClassII:
		return "Class II"
	case ClassIII:
		return "Class III"
	case ClassIV:
		return "Class IV"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// App is a synthetic application model.
type App struct {
	// Name is the benchmark name, e.g. "cg" or "canneal".
	Name string
	// Suite is the benchmark suite of origin.
	Suite Suite
	// Class is the memory-intensity class of Table III.
	Class Class

	// Instructions is the total dynamic instruction count of one run.
	Instructions float64
	// BaseCPI is the cycles-per-instruction with an ideal memory system
	// (every LLC access a hit with no exposed latency).
	BaseCPI float64
	// LLCAccessRate is LLC accesses per instruction (the baseline
	// targetCA/INS of Table I): the rate at which references miss the
	// private levels and reach the shared LLC.
	LLCAccessRate float64
	// MRC maps an effective LLC allocation to this application's miss
	// ratio there.
	MRC cache.PowerLawMRC
	// MissExposeFrac is the fraction of each LLC-miss latency that
	// stalls the pipeline (1/MLP): lower values model better
	// memory-level parallelism / prefetching.
	MissExposeFrac float64
	// HitExposeFrac is the fraction of the LLC hit latency exposed.
	HitExposeFrac float64
	// PhaseAmplitude scales a slow sinusoidal modulation of the access
	// rate across execution, modelling the phase behaviour of [SaS13].
	// 0 disables phases; 0.2 means ±20 %.
	PhaseAmplitude float64
}

// Validate checks the model parameters.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("workload: app with empty name")
	}
	if a.Suite != PARSEC && a.Suite != NAS {
		return fmt.Errorf("workload: %s has unknown suite %q", a.Name, a.Suite)
	}
	if a.Class < ClassI || a.Class > ClassIV {
		return fmt.Errorf("workload: %s has invalid class %d", a.Name, a.Class)
	}
	if a.Instructions <= 0 {
		return fmt.Errorf("workload: %s instructions must be positive", a.Name)
	}
	if a.BaseCPI <= 0 {
		return fmt.Errorf("workload: %s base CPI must be positive", a.Name)
	}
	if a.LLCAccessRate < 0 || a.LLCAccessRate > 1 {
		return fmt.Errorf("workload: %s LLC access rate %v out of [0,1]", a.Name, a.LLCAccessRate)
	}
	if err := a.MRC.Validate(); err != nil {
		return fmt.Errorf("workload: %s: %w", a.Name, err)
	}
	if a.MissExposeFrac <= 0 || a.MissExposeFrac > 1 {
		return fmt.Errorf("workload: %s miss expose fraction %v out of (0,1]", a.Name, a.MissExposeFrac)
	}
	if a.HitExposeFrac < 0 || a.HitExposeFrac > 1 {
		return fmt.Errorf("workload: %s hit expose fraction %v out of [0,1]", a.Name, a.HitExposeFrac)
	}
	if a.PhaseAmplitude < 0 || a.PhaseAmplitude > 0.5 {
		return fmt.Errorf("workload: %s phase amplitude %v out of [0,0.5]", a.Name, a.PhaseAmplitude)
	}
	return nil
}

// BaselineMissRatio returns the miss ratio when the application owns the
// entire LLC of the given capacity.
func (a App) BaselineMissRatio(llcBytes float64) float64 {
	return a.MRC.Ratio(llcBytes)
}

// BaselineMemoryIntensity returns LLC misses per instruction when running
// alone with the full LLC: the Table III "baseline memory intensity".
func (a App) BaselineMemoryIntensity(llcBytes float64) float64 {
	return a.LLCAccessRate * a.BaselineMissRatio(llcBytes)
}

// Scaled returns a copy of the application with a larger (or smaller)
// problem size, in the spirit of the NAS benchmark classes (A -> B -> C
// scale both work and data). Instructions scale linearly with factor and
// the working set with factor^(2/3) — the surface-to-volume relation of
// the 3-D grid codes that dominate the suite. The name gains a suffix so
// baselines of different sizes coexist in one dataset.
func (a App) Scaled(suffix string, factor float64) (App, error) {
	if factor <= 0 {
		return App{}, fmt.Errorf("workload: scale factor must be positive, got %v", factor)
	}
	out := a
	out.Name = a.Name + suffix
	out.Instructions = a.Instructions * factor
	out.MRC.WorkingSetBytes = a.MRC.WorkingSetBytes * math.Pow(factor, 2.0/3.0)
	return out, nil
}

// TraceGenerator returns a synthetic reference generator matched to the
// application's locality class, for the trace-driven validation path. base
// offsets the address space; seed controls the stream.
func (a App) TraceGenerator(base, seed uint64) (trace.Generator, error) {
	hotLines := int(a.MRC.WorkingSetBytes / trace.LineBytes)
	if hotLines < 8 {
		hotLines = 8
	}
	// The trace path is used for qualitative validation at LLC scale;
	// working sets far beyond any LLC are capped so the hot set warms up
	// within a reasonable trace length (the excess footprint is carried
	// by the cold/streaming component instead).
	const maxHotLines = 1 << 18 // 16 MiB of 64 B lines
	if hotLines > maxHotLines {
		hotLines = maxHotLines
	}
	// Streaming-dominant applications (high floor relative to knee) are
	// modelled with a stride generator mixed over a reuse core; others
	// with a hot-set generator whose cold probability matches the
	// compulsory floor.
	sd, err := trace.NewHotSet(trace.HotSetConfig{
		HotLines: hotLines,
		ZipfS:    0.6 + 0.6/float64(a.Class), // tighter locality for lower classes
		ColdProb: a.MRC.Floor,
		Base:     base,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}
	if a.MRC.Floor > 0.15 {
		st, err := trace.NewStride(hotLines*4, 1, base+1<<44)
		if err != nil {
			return nil, err
		}
		return trace.NewMix(sd, st, 0.6, seed+1)
	}
	return sd, nil
}

const (
	kib = 1024.0
	mib = 1024 * kib
)

// apps is the registry of the eleven Table III applications. Instruction
// counts are scaled so baseline execution times on the simulated Xeons
// land in the paper's reported 150–1000 s span.
var apps = []App{
	// ---- Class I: most memory intensive (~1e-2 misses/instruction) ----
	{
		Name: "cg", Suite: NAS, Class: ClassI,
		Instructions: 3.2e11, BaseCPI: 0.70, LLCAccessRate: 0.065,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 256 * mib, Knee: 0.85, Floor: 0.30, Alpha: 0.50},
		MissExposeFrac: 0.18, HitExposeFrac: 0.20, PhaseAmplitude: 0.05,
	},
	{
		Name: "streamcluster", Suite: PARSEC, Class: ClassI,
		Instructions: 4.2e11, BaseCPI: 0.65, LLCAccessRate: 0.052,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 192 * mib, Knee: 0.90, Floor: 0.40, Alpha: 0.45},
		MissExposeFrac: 0.15, HitExposeFrac: 0.20, PhaseAmplitude: 0.04,
	},
	{
		Name: "mg", Suite: NAS, Class: ClassI,
		Instructions: 2.8e11, BaseCPI: 0.75, LLCAccessRate: 0.045,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 320 * mib, Knee: 0.80, Floor: 0.35, Alpha: 0.55},
		MissExposeFrac: 0.18, HitExposeFrac: 0.20, PhaseAmplitude: 0.08,
	},

	// ---- Class II: moderately memory intensive (~1e-3) ----
	{
		Name: "sp", Suite: NAS, Class: ClassII,
		Instructions: 5.5e11, BaseCPI: 0.80, LLCAccessRate: 0.0080,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 16 * mib, Knee: 0.50, Floor: 0.020, Alpha: 1.00},
		MissExposeFrac: 0.45, HitExposeFrac: 0.25, PhaseAmplitude: 0.06,
	},
	{
		Name: "canneal", Suite: PARSEC, Class: ClassII,
		Instructions: 5.0e11, BaseCPI: 0.85, LLCAccessRate: 0.0110,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 24 * mib, Knee: 0.45, Floor: 0.025, Alpha: 0.85},
		MissExposeFrac: 0.42, HitExposeFrac: 0.25, PhaseAmplitude: 0.03,
	},
	{
		Name: "ft", Suite: NAS, Class: ClassII,
		Instructions: 4.6e11, BaseCPI: 0.78, LLCAccessRate: 0.0065,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 20 * mib, Knee: 0.45, Floor: 0.030, Alpha: 0.90},
		MissExposeFrac: 0.40, HitExposeFrac: 0.25, PhaseAmplitude: 0.10,
	},

	// ---- Class III: mildly memory intensive (~1e-4) ----
	{
		Name: "fluidanimate", Suite: PARSEC, Class: ClassIII,
		Instructions: 6.5e11, BaseCPI: 0.90, LLCAccessRate: 0.0080,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 6 * mib, Knee: 0.45, Floor: 0.0035, Alpha: 1.10},
		MissExposeFrac: 0.50, HitExposeFrac: 0.30, PhaseAmplitude: 0.05,
	},
	{
		Name: "lu", Suite: NAS, Class: ClassIII,
		Instructions: 7.0e11, BaseCPI: 0.85, LLCAccessRate: 0.0060,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 8 * mib, Knee: 0.40, Floor: 0.0045, Alpha: 1.00},
		MissExposeFrac: 0.45, HitExposeFrac: 0.30, PhaseAmplitude: 0.07,
	},
	{
		Name: "bodytrack", Suite: PARSEC, Class: ClassIII,
		Instructions: 5.8e11, BaseCPI: 0.95, LLCAccessRate: 0.0045,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 5 * mib, Knee: 0.35, Floor: 0.0030, Alpha: 1.20},
		MissExposeFrac: 0.40, HitExposeFrac: 0.30, PhaseAmplitude: 0.04,
	},

	// ---- Class IV: CPU bound (~1e-5 and below) ----
	{
		Name: "ep", Suite: NAS, Class: ClassIV,
		Instructions: 9.0e11, BaseCPI: 1.05, LLCAccessRate: 0.0020,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 1 * mib, Knee: 0.50, Floor: 0.0010, Alpha: 1.00},
		MissExposeFrac: 0.35, HitExposeFrac: 0.30, PhaseAmplitude: 0.02,
	},
	{
		Name: "blackscholes", Suite: PARSEC, Class: ClassIV,
		Instructions: 8.0e11, BaseCPI: 1.00, LLCAccessRate: 0.0012,
		MRC:            cache.PowerLawMRC{WorkingSetBytes: 1.5 * mib, Knee: 0.40, Floor: 0.0008, Alpha: 1.10},
		MissExposeFrac: 0.35, HitExposeFrac: 0.30, PhaseAmplitude: 0.02,
	},
}

// All returns the eleven applications of Table III, ordered by class then
// name.
func All() []App {
	out := append([]App(nil), apps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName returns the named application.
func ByName(name string) (App, error) {
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown application %q", name)
}

// ByClass returns all applications in class c.
func ByClass(c Class) []App {
	var out []App
	for _, a := range All() {
		if a.Class == c {
			out = append(out, a)
		}
	}
	return out
}

// TrainingCoApps returns the four co-location applications used to collect
// training data (Section IV-B3): cg, sp, fluidanimate and ep, one
// representative per memory-intensity class.
func TrainingCoApps() []App {
	names := []string{"cg", "sp", "fluidanimate", "ep"}
	out := make([]App, len(names))
	for i, n := range names {
		a, err := ByName(n)
		if err != nil {
			panic(err) // registry and list are both package-internal
		}
		out[i] = a
	}
	return out
}

// Names returns the names of the given applications, in order.
func Names(as []App) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
