package trace

import (
	"testing"
	"testing/quick"

	"colocmodel/internal/cache"
)

func TestHotSetConfigValidation(t *testing.T) {
	bad := []HotSetConfig{
		{HotLines: 0, ZipfS: 1, ColdProb: 0.1},
		{HotLines: 10, ZipfS: -1, ColdProb: 0.1},
		{HotLines: 10, ZipfS: 1, ColdProb: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewHotSet(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewHotSet(HotSetConfig{HotLines: 10, ZipfS: 1, ColdProb: 0.1}); err != nil {
		t.Fatal(err)
	}
}

func TestHotSetDeterministic(t *testing.T) {
	cfg := HotSetConfig{HotLines: 64, ZipfS: 0.9, ColdProb: 0.05, Seed: 9}
	a, _ := NewHotSet(cfg)
	b, _ := NewHotSet(cfg)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestHotSetLocality(t *testing.T) {
	// With tight locality (high Zipf skew, low cold prob) a cache holding
	// the hot set should hit nearly always; a tiny cache should miss more.
	g, err := NewHotSet(HotSetConfig{HotLines: 128, ZipfS: 1.2, ColdProb: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big, _ := cache.New(cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: cache.LRU})
	for i := 0; i < 100000; i++ {
		big.Access(0, g.Next())
	}
	if mr := big.GlobalMissRatio(); mr > 0.05 {
		t.Fatalf("hot set in big cache missing too much: %v", mr)
	}

	g2, _ := NewHotSet(HotSetConfig{HotLines: 4096, ZipfS: 0.2, ColdProb: 0.05, Seed: 2})
	small, _ := cache.New(cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Policy: cache.LRU})
	for i := 0; i < 100000; i++ {
		small.Access(0, g2.Next())
	}
	if mr := small.GlobalMissRatio(); mr < 0.2 {
		t.Fatalf("loose locality in small cache hitting too much: %v", mr)
	}
}

func TestHotSetFootprintGrows(t *testing.T) {
	g, _ := NewHotSet(HotSetConfig{HotLines: 32, ZipfS: 1, ColdProb: 0.5, Seed: 3})
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	if g.Footprint() < 32 {
		t.Fatalf("footprint %d never filled hot set", g.Footprint())
	}
}

func TestHotSetBaseOffsets(t *testing.T) {
	a, _ := NewHotSet(HotSetConfig{HotLines: 16, ZipfS: 1, ColdProb: 0.1, Base: 0, Seed: 4})
	b, _ := NewHotSet(HotSetConfig{HotLines: 16, ZipfS: 1, ColdProb: 0.1, Base: 1 << 40, Seed: 4})
	for i := 0; i < 100; i++ {
		if a.Next() >= 1<<40 {
			t.Fatal("base-0 generator escaped its region")
		}
		if b.Next() < 1<<40 {
			t.Fatal("offset generator below its base")
		}
	}
}

func TestStrideGenWrapsAndStreams(t *testing.T) {
	g, err := NewStride(8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		seen[g.Next()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("stride footprint %d, want 8", len(seen))
	}
	if _, err := NewStride(0, 1, 0); err == nil {
		t.Fatal("zero footprint accepted")
	}
	if _, err := NewStride(4, 0, 0); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestStrideStreamingMissesInSmallCache(t *testing.T) {
	g, _ := NewStride(1024, 1, 0)
	c, _ := cache.New(cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4, Policy: cache.LRU})
	for i := 0; i < 100000; i++ {
		c.Access(0, g.Next())
	}
	if mr := c.GlobalMissRatio(); mr < 0.99 {
		t.Fatalf("streaming workload miss ratio %v, want ~1", mr)
	}
}

func TestUniformGen(t *testing.T) {
	g, err := NewUniform(100, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a := g.Next()
		if a >= 100*64 {
			t.Fatalf("uniform address %d out of footprint", a)
		}
		if a%64 != 0 {
			t.Fatalf("address %d not line aligned", a)
		}
	}
	if _, err := NewUniform(0, 0, 0); err == nil {
		t.Fatal("zero footprint accepted")
	}
}

func TestPhasedGenCycles(t *testing.T) {
	a, _ := NewStride(4, 1, 0)
	b, _ := NewStride(4, 1, 1<<30)
	g, err := NewPhased([]Phase{{Gen: a, Length: 3}, {Gen: b, Length: 2}})
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]int, 10)
	for i := range owners {
		owners[i] = g.CurrentPhase()
		g.Next()
	}
	want := []int{0, 0, 0, 1, 1, 0, 0, 0, 1, 1}
	for i := range want {
		if owners[i] != want[i] {
			t.Fatalf("phase sequence %v, want %v", owners, want)
		}
	}
}

func TestPhasedGenValidation(t *testing.T) {
	if _, err := NewPhased(nil); err == nil {
		t.Fatal("empty phases accepted")
	}
	a, _ := NewStride(4, 1, 0)
	if _, err := NewPhased([]Phase{{Gen: a, Length: 0}}); err == nil {
		t.Fatal("zero-length phase accepted")
	}
	if _, err := NewPhased([]Phase{{Gen: nil, Length: 5}}); err == nil {
		t.Fatal("nil generator accepted")
	}
}

func TestMixGen(t *testing.T) {
	a, _ := NewStride(4, 1, 0)
	b, _ := NewStride(4, 1, 1<<30)
	g, err := NewMix(a, b, 0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	fromA, fromB := 0, 0
	for i := 0; i < 10000; i++ {
		if g.Next() < 1<<30 {
			fromA++
		} else {
			fromB++
		}
	}
	if fromA < 4000 || fromA > 6000 {
		t.Fatalf("mix imbalance: %d from A of 10000", fromA)
	}
	_ = fromB
	if _, err := NewMix(nil, b, 0.5, 0); err == nil {
		t.Fatal("nil generator accepted")
	}
	if _, err := NewMix(a, b, 2, 0); err == nil {
		t.Fatal("bad prob accepted")
	}
}

func TestInterleaveWeights(t *testing.T) {
	a, _ := NewStride(4, 1, 0)
	b, _ := NewStride(4, 1, 1<<30)
	iv, err := NewInterleave([]Generator{a, b}, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for i := 0; i < 400; i++ {
		_, owner := iv.Next()
		counts[owner]++
	}
	if counts[0] != 300 || counts[1] != 100 {
		t.Fatalf("weighted interleave counts %v, want [300 100]", counts)
	}
}

func TestInterleaveValidation(t *testing.T) {
	a, _ := NewStride(4, 1, 0)
	if _, err := NewInterleave(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NewInterleave([]Generator{a}, []int{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewInterleave([]Generator{nil}, []int{1}); err == nil {
		t.Fatal("nil gen accepted")
	}
	if _, err := NewInterleave([]Generator{a}, []int{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

// Property: all generated addresses are line-aligned and within the
// generator's address region.
func TestGeneratorsAlignedProperty(t *testing.T) {
	f := func(seed uint16, hotRaw uint8) bool {
		hot := int(hotRaw%200) + 8
		g, err := NewHotSet(HotSetConfig{
			HotLines: hot, ZipfS: 0.8, ColdProb: 0.02,
			Base: 1 << 32, Seed: uint64(seed),
		})
		if err != nil {
			return false
		}
		for i := 0; i < 2000; i++ {
			a := g.Next()
			if a < 1<<32 || a%LineBytes != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher ColdProb yields a larger footprint for the same length.
func TestColdProbFootprintProperty(t *testing.T) {
	lo, _ := NewHotSet(HotSetConfig{HotLines: 64, ZipfS: 1, ColdProb: 0.01, Seed: 7})
	hi, _ := NewHotSet(HotSetConfig{HotLines: 64, ZipfS: 1, ColdProb: 0.5, Seed: 7})
	for i := 0; i < 20000; i++ {
		lo.Next()
		hi.Next()
	}
	if hi.Footprint() <= lo.Footprint() {
		t.Fatalf("footprints: cold=0.5 %d <= cold=0.01 %d", hi.Footprint(), lo.Footprint())
	}
}

func BenchmarkHotSetNext(b *testing.B) {
	g, _ := NewHotSet(HotSetConfig{HotLines: 4096, ZipfS: 0.9, ColdProb: 0.02, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func BenchmarkInterleavedSharedCache(b *testing.B) {
	g1, _ := NewHotSet(HotSetConfig{HotLines: 2048, ZipfS: 1, ColdProb: 0.02, Base: 0, Seed: 1})
	g2, _ := NewStride(8192, 1, 1<<40)
	iv, _ := NewInterleave([]Generator{g1, g2}, []int{1, 1})
	c, _ := cache.New(cache.Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: cache.LRU})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, owner := iv.Next()
		c.Access(owner, addr)
	}
}
