// Package trace generates synthetic memory reference streams with
// controllable locality. The streams stand in for the LLC access traces of
// the PARSEC and NAS benchmark applications used by the paper: what
// matters to the methodology is not the instructions an application
// executes but the cache/memory signature its references produce, so a
// generator with a calibrated reuse-distance profile exercises the shared
// LLC exactly as a real application of the same memory-intensity class
// would.
//
// Three base generators are provided — a Zipf-popularity hot-set generator
// (the workhorse: reference skew controls how much of the footprint is
// cache-resident at a given capacity), a strided streaming generator, and
// a uniform random generator — plus combinators for phase behaviour and
// mixing.
package trace

import (
	"fmt"

	"colocmodel/internal/xrand"
)

// Generator produces an infinite stream of byte addresses, one cache-line
// sized reference at a time.
type Generator interface {
	// Next returns the next referenced byte address.
	Next() uint64
}

// The line size assumed by the generators when laying out footprints.
const LineBytes = 64

// HotSetGen emulates a program with a skewed reference popularity profile
// (the independent reference model). It maintains a hot set of lines and
// on each step either references a brand-new line (with probability
// ColdProb, modelling compulsory/streaming references, which replaces a
// random hot-set resident) or re-references a hot line chosen by Zipf
// rank.
//
// Under LRU, a Zipf-popular hot set keeps its high-rank lines resident at
// small capacities and progressively caches the tail as capacity grows, so
// ZipfS directly shapes the generator's miss-ratio curve: high skew =
// tight locality, low skew = capacity-hungry. Every operation is
// O(log HotLines), so multi-million-line footprints are cheap.
type HotSetGen struct {
	hot      []uint64
	zipf     *xrand.Zipf
	src      *xrand.Source
	coldProb float64
	nextNew  uint64
	base     uint64
}

// HotSetConfig parameterises NewHotSet.
type HotSetConfig struct {
	// HotLines is the size (in lines) of the hot working set.
	HotLines int
	// ZipfS is the skew of the popularity distribution over the hot set;
	// larger means tighter locality.
	ZipfS float64
	// ColdProb is the probability a reference touches a never-seen line.
	ColdProb float64
	// Base offsets the generated addresses, giving co-located generators
	// disjoint address spaces.
	Base uint64
	// Seed seeds the generator's private random stream.
	Seed uint64
}

// NewHotSet constructs a hot-set generator.
func NewHotSet(cfg HotSetConfig) (*HotSetGen, error) {
	if cfg.HotLines <= 0 {
		return nil, fmt.Errorf("trace: HotLines must be positive, got %d", cfg.HotLines)
	}
	if cfg.ColdProb < 0 || cfg.ColdProb > 1 {
		return nil, fmt.Errorf("trace: ColdProb must be in [0,1], got %v", cfg.ColdProb)
	}
	if cfg.ZipfS < 0 {
		return nil, fmt.Errorf("trace: ZipfS must be non-negative, got %v", cfg.ZipfS)
	}
	src := xrand.New(cfg.Seed)
	g := &HotSetGen{
		hot:      make([]uint64, 0, cfg.HotLines),
		zipf:     xrand.NewZipf(src.Split(), cfg.ZipfS, cfg.HotLines),
		src:      src,
		coldProb: cfg.ColdProb,
		base:     cfg.Base,
	}
	return g, nil
}

// Next implements Generator.
func (g *HotSetGen) Next() uint64 {
	if len(g.hot) < cap(g.hot) || g.src.Bool(g.coldProb) {
		// Touch a brand-new line: compulsory reference.
		addr := g.base + g.nextNew*LineBytes
		g.nextNew++
		if len(g.hot) < cap(g.hot) {
			g.hot = append(g.hot, addr)
		} else {
			g.hot[g.src.Intn(len(g.hot))] = addr
		}
		return addr
	}
	return g.hot[g.zipf.Next()]
}

// Footprint returns the number of distinct lines referenced so far.
func (g *HotSetGen) Footprint() uint64 { return g.nextNew }

// StrideGen emulates a streaming application: it walks an array of
// FootprintLines lines with a fixed stride, wrapping around. Its miss
// ratio in any cache smaller than its footprint is ~1 (pure streaming).
type StrideGen struct {
	footprint uint64
	stride    uint64
	pos       uint64
	base      uint64
}

// NewStride constructs a strided generator with the given footprint (in
// lines) and stride (in lines).
func NewStride(footprintLines, strideLines int, base uint64) (*StrideGen, error) {
	if footprintLines <= 0 || strideLines <= 0 {
		return nil, fmt.Errorf("trace: footprint and stride must be positive, got %d, %d", footprintLines, strideLines)
	}
	return &StrideGen{
		footprint: uint64(footprintLines),
		stride:    uint64(strideLines),
		base:      base,
	}, nil
}

// Next implements Generator.
func (g *StrideGen) Next() uint64 {
	addr := g.base + (g.pos%g.footprint)*LineBytes
	g.pos += g.stride
	return addr
}

// UniformGen references lines uniformly at random over a footprint,
// modelling pointer-chasing applications with poor locality.
type UniformGen struct {
	footprint int
	src       *xrand.Source
	base      uint64
}

// NewUniform constructs a uniform random generator over footprintLines.
func NewUniform(footprintLines int, base, seed uint64) (*UniformGen, error) {
	if footprintLines <= 0 {
		return nil, fmt.Errorf("trace: footprint must be positive, got %d", footprintLines)
	}
	return &UniformGen{footprint: footprintLines, src: xrand.New(seed), base: base}, nil
}

// Next implements Generator.
func (g *UniformGen) Next() uint64 {
	return g.base + uint64(g.src.Intn(g.footprint))*LineBytes
}

// Phase pairs a generator with the number of references it should produce
// before the phased generator advances.
type Phase struct {
	Gen    Generator
	Length int
}

// PhasedGen cycles through phases, emulating the phase behaviour of real
// applications noted in the paper (Section I cites [SaS13] on execution
// phases; the methodology deliberately averages over them).
type PhasedGen struct {
	phases []Phase
	cur    int
	emit   int
}

// NewPhased constructs a phased generator. Phases repeat cyclically.
func NewPhased(phases []Phase) (*PhasedGen, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("trace: NewPhased requires at least one phase")
	}
	for i, p := range phases {
		if p.Gen == nil || p.Length <= 0 {
			return nil, fmt.Errorf("trace: phase %d invalid", i)
		}
	}
	return &PhasedGen{phases: phases}, nil
}

// Next implements Generator.
func (g *PhasedGen) Next() uint64 {
	p := &g.phases[g.cur]
	addr := p.Gen.Next()
	g.emit++
	if g.emit >= p.Length {
		g.emit = 0
		g.cur = (g.cur + 1) % len(g.phases)
	}
	return addr
}

// CurrentPhase returns the index of the phase the next reference will come
// from.
func (g *PhasedGen) CurrentPhase() int { return g.cur }

// MixGen draws each reference from one of two generators with a fixed
// probability, modelling an application with interleaved streaming and
// reuse-heavy components.
type MixGen struct {
	a, b  Generator
	probA float64
	src   *xrand.Source
}

// NewMix constructs a probabilistic mix: each reference comes from a with
// probability probA, else from b.
func NewMix(a, b Generator, probA float64, seed uint64) (*MixGen, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("trace: NewMix requires two generators")
	}
	if probA < 0 || probA > 1 {
		return nil, fmt.Errorf("trace: probA must be in [0,1], got %v", probA)
	}
	return &MixGen{a: a, b: b, probA: probA, src: xrand.New(seed)}, nil
}

// Next implements Generator.
func (g *MixGen) Next() uint64 {
	if g.src.Bool(g.probA) {
		return g.a.Next()
	}
	return g.b.Next()
}

// Interleave merges several generators into a single stream with the given
// integer weights (references per round), modelling the memory system's
// view of co-located applications. It returns both the merged stream and
// the owner of each reference.
type Interleave struct {
	gens    []Generator
	weights []int
	cur     int
	emitted int
}

// NewInterleave builds a weighted round-robin interleaver.
func NewInterleave(gens []Generator, weights []int) (*Interleave, error) {
	if len(gens) == 0 || len(gens) != len(weights) {
		return nil, fmt.Errorf("trace: NewInterleave needs matching non-empty gens and weights")
	}
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("trace: weight %d must be positive, got %d", i, w)
		}
		if gens[i] == nil {
			return nil, fmt.Errorf("trace: generator %d is nil", i)
		}
	}
	return &Interleave{gens: gens, weights: weights}, nil
}

// Next returns the next reference and the index of the generator that
// produced it.
func (iv *Interleave) Next() (addr uint64, owner int) {
	owner = iv.cur
	addr = iv.gens[owner].Next()
	iv.emitted++
	if iv.emitted >= iv.weights[iv.cur] {
		iv.emitted = 0
		iv.cur = (iv.cur + 1) % len(iv.gens)
	}
	return addr, owner
}
