package cache

import (
	"math"
	"testing"
	"testing/quick"

	"colocmodel/internal/xrand"
)

func mustNew(t testing.TB, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCfg(p Policy) Config {
	return Config{SizeBytes: 4096, LineBytes: 64, Ways: 4, Policy: p}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg(LRU)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 4096, LineBytes: 48, Ways: 4},      // line not power of two
		{SizeBytes: 4096, LineBytes: 64, Ways: 3},      // 64 lines not divisible by 3 ways
		{SizeBytes: 4096 + 64, LineBytes: 64, Ways: 4}, // 65 lines not divisible by 4 ways
		{SizeBytes: 4096, LineBytes: 64, Ways: -1},     // negative ways
		{SizeBytes: 100, LineBytes: 64, Ways: 1},       // size not multiple of line
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// Non-power-of-two set counts are valid (sliced LLCs): 48 lines, 4
	// ways -> 12 sets.
	if err := (Config{SizeBytes: 64 * 48, LineBytes: 64, Ways: 4}).Validate(); err != nil {
		t.Fatalf("12-set config rejected: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || TreePLRU.String() != "TreePLRU" || Random.String() != "Random" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy empty")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	if c.Access(0, 0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0, 0x1000) {
		t.Fatal("second access missed")
	}
	// Same line, different offset: still a hit.
	if !c.Access(0, 0x103f) {
		t.Fatal("same-line access missed")
	}
	st := c.Stats(0)
	if st.Accesses != 3 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 1 set, 2 ways: direct test of LRU.
	c := mustNew(t, Config{SizeBytes: 128, LineBytes: 64, Ways: 2, Policy: LRU})
	if c.NumSets() != 1 {
		t.Fatalf("want 1 set, got %d", c.NumSets())
	}
	c.Access(0, 0*64) // A
	c.Access(0, 1*64) // B
	c.Access(0, 0*64) // touch A -> B is LRU
	c.Access(0, 2*64) // C evicts B
	if !c.Access(0, 0*64) {
		t.Fatal("A was evicted, want B")
	}
	if c.Access(0, 1*64) {
		t.Fatal("B still resident, want evicted")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	// 32 lines touched repeatedly in a 64-line cache: after warmup, no
	// misses.
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 32; i++ {
			c.Access(0, i*64)
		}
	}
	st := c.Stats(0)
	if st.Misses != 32 {
		t.Fatalf("want 32 compulsory misses, got %d", st.Misses)
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// Sequential scan of 2x capacity with LRU always misses after warmup.
	c := mustNew(t, Config{SizeBytes: 64 * 8, LineBytes: 64, Ways: 8, Policy: LRU})
	for round := 0; round < 4; round++ {
		for i := uint64(0); i < 16; i++ {
			c.Access(0, i*64)
		}
	}
	if got := c.GlobalMissRatio(); got != 1 {
		t.Fatalf("thrash miss ratio = %v, want 1", got)
	}
}

func TestSharedOwnersContend(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	// Owner 0 alone: working set of 48 lines fits in 64.
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < 48; i++ {
			c.Access(0, i*64)
		}
	}
	soloMR := c.Stats(0).MissRatio()
	// Now share with owner 1 streaming over its own 48 lines.
	c2 := mustNew(t, smallCfg(LRU))
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < 48; i++ {
			c2.Access(0, i*64)
			c2.Access(1, (1<<30)+i*64)
		}
	}
	sharedMR := c2.Stats(0).MissRatio()
	if sharedMR <= soloMR {
		t.Fatalf("co-location did not raise miss ratio: solo %v shared %v", soloMR, sharedMR)
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnersAndOccupancy(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	c.Access(3, 0)
	c.Access(5, 1<<20)
	if len(c.Owners()) != 2 {
		t.Fatalf("owners = %v", c.Owners())
	}
	if c.OccupancyFraction(3) <= 0 {
		t.Fatal("owner 3 has no occupancy")
	}
	if c.OccupancyFraction(99) != 0 {
		t.Fatal("phantom owner has occupancy")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	c.Access(0, 0)
	c.Reset()
	if c.TotalAccesses() != 0 || c.TotalMisses() != 0 {
		t.Fatal("reset did not clear totals")
	}
	if c.Access(0, 0) {
		t.Fatal("hit after reset")
	}
}

func TestRandomPolicyBounded(t *testing.T) {
	c := mustNew(t, smallCfg(Random))
	src := xrand.New(1)
	for i := 0; i < 20000; i++ {
		c.Access(0, uint64(src.Intn(1<<16)))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.GlobalMissRatio() <= 0 || c.GlobalMissRatio() > 1 {
		t.Fatalf("miss ratio %v out of range", c.GlobalMissRatio())
	}
}

func TestTreePLRUBehavesLikeLRUOnSequential(t *testing.T) {
	// For a working set that fits, PLRU must also reach zero steady-state
	// misses.
	c := mustNew(t, smallCfg(TreePLRU))
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 32; i++ {
			c.Access(0, i*64)
		}
	}
	if c.Stats(0).Misses != 32 {
		t.Fatalf("PLRU misses = %d, want 32", c.Stats(0).Misses)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoliciesInvariantsProperty(t *testing.T) {
	f := func(seed uint16, polRaw uint8) bool {
		pol := Policy(int(polRaw) % 3)
		c, err := New(Config{SizeBytes: 2048, LineBytes: 64, Ways: 4, Policy: pol, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		src := xrand.New(uint64(seed))
		z := xrand.NewZipf(src, 0.9, 256)
		for i := 0; i < 5000; i++ {
			owner := src.Intn(3)
			c.Access(owner, uint64(z.Next())*64+uint64(owner)<<40)
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerLawMRCValidate(t *testing.T) {
	good := PowerLawMRC{WorkingSetBytes: 1 << 20, Knee: 0.8, Floor: 0.01, Alpha: 0.7}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PowerLawMRC{
		{WorkingSetBytes: 0, Knee: 0.5, Floor: 0.1, Alpha: 1},
		{WorkingSetBytes: 1, Knee: 1.5, Floor: 0.1, Alpha: 1},
		{WorkingSetBytes: 1, Knee: 0.2, Floor: 0.5, Alpha: 1},
		{WorkingSetBytes: 1, Knee: 0.5, Floor: 0.1, Alpha: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad MRC %d accepted", i)
		}
	}
}

func TestPowerLawMRCShape(t *testing.T) {
	m := PowerLawMRC{WorkingSetBytes: 8 << 20, Knee: 0.9, Floor: 0.02, Alpha: 0.8}
	// Monotone non-increasing.
	prev := m.Ratio(1)
	for c := 2.0; c < 1e9; c *= 1.5 {
		r := m.Ratio(c)
		if r > prev+1e-12 {
			t.Fatalf("MRC not monotone at %v: %v > %v", c, r, prev)
		}
		if r < 0 || r > 1 {
			t.Fatalf("MRC out of range at %v: %v", c, r)
		}
		prev = r
	}
	// Limits.
	if m.Ratio(0) != 0.9 {
		t.Fatalf("knee = %v", m.Ratio(0))
	}
	if got := m.Ratio(1e15); math.Abs(got-0.02) > 1e-3 {
		t.Fatalf("floor = %v", got)
	}
	// Continuity near the working-set point.
	a, b := m.Ratio(8<<20-1), m.Ratio(8<<20+1)
	if math.Abs(a-b) > 1e-6 {
		t.Fatalf("discontinuity at working set: %v vs %v", a, b)
	}
}

func TestEmpiricalMRCInterpolation(t *testing.T) {
	e := &EmpiricalMRC{SizesBytes: []float64{100, 200, 400}, Ratios: []float64{0.8, 0.4, 0.2}}
	if e.Ratio(50) != 0.8 || e.Ratio(1000) != 0.2 {
		t.Fatal("clamping wrong")
	}
	if got := e.Ratio(150); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("interpolation = %v, want 0.6", got)
	}
	if got := e.Ratio(300); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("interpolation = %v, want 0.3", got)
	}
	empty := &EmpiricalMRC{}
	if empty.Ratio(10) != 0 {
		t.Fatal("empty MRC nonzero")
	}
}

func TestMeasureMRCMonotone(t *testing.T) {
	// A Zipf reference stream: larger caches must not miss more.
	src := xrand.New(42)
	z := xrand.NewZipf(src, 0.8, 4096)
	next := func() uint64 { return uint64(z.Next()) * 64 }
	sizes := []int{8 << 10, 32 << 10, 128 << 10, 512 << 10}
	mrc, err := MeasureMRC(next, 200000, sizes, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(mrc.Ratios); i++ {
		if mrc.Ratios[i] > mrc.Ratios[i-1]+0.02 {
			t.Fatalf("MRC not (approximately) monotone: %v", mrc.Ratios)
		}
	}
	if mrc.Ratios[0] <= mrc.Ratios[len(mrc.Ratios)-1] {
		t.Fatalf("no capacity sensitivity: %v", mrc.Ratios)
	}
}

func TestMeasureMRCErrors(t *testing.T) {
	if _, err := MeasureMRC(func() uint64 { return 0 }, 0, []int{1024}, 64, 2); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := MeasureMRC(func() uint64 { return 0 }, 10, []int{100}, 64, 2); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func BenchmarkAccessLRU(b *testing.B) {
	c, _ := New(Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: LRU})
	src := xrand.New(1)
	z := xrand.NewZipf(src, 0.9, 1<<16)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = uint64(z.Next()) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, addrs[i&(1<<14-1)])
	}
}

func BenchmarkAccessPLRU(b *testing.B) {
	c, _ := New(Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: TreePLRU})
	src := xrand.New(1)
	z := xrand.NewZipf(src, 0.9, 1<<16)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = uint64(z.Next()) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, addrs[i&(1<<14-1)])
	}
}
