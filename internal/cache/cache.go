// Package cache implements a set-associative cache simulator used as the
// shared last-level cache (LLC) substrate of the multicore processor model.
//
// The paper attributes co-location slowdown primarily to contention in the
// shared LLC and main memory. The analytical engine in internal/simproc
// uses miss-ratio curves and an occupancy fixed point for speed; this
// package provides the ground-truth trace-driven cache on which that
// analytical model is validated, and from which miss-ratio curves are
// extracted.
//
// The cache tracks, per owner (co-located application), accesses, misses,
// and current line occupancy, mirroring what hardware performance counters
// (PAPI_L3_TCA / PAPI_L3_TCM) expose per core.
package cache

import (
	"fmt"

	"colocmodel/internal/xrand"
)

// Policy selects the replacement policy of a cache.
type Policy int

const (
	// LRU evicts the least recently used line of the set.
	LRU Policy = iota
	// TreePLRU evicts following a binary pseudo-LRU decision tree, the
	// policy most Intel LLCs approximate.
	TreePLRU
	// Random evicts a uniformly random line of the set.
	Random
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case TreePLRU:
		return "TreePLRU"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes a cache's geometry.
type Config struct {
	SizeBytes int    // total capacity
	LineBytes int    // line (block) size, power of two
	Ways      int    // associativity
	Policy    Policy // replacement policy
	Seed      uint64 // seed for the Random policy
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	return nil
}

// OwnerStats aggregates one owner's activity in a shared cache.
type OwnerStats struct {
	Accesses  uint64
	Misses    uint64
	Evictions uint64 // lines of this owner evicted (by anyone)
	Occupancy int    // lines currently resident

	// Prefetches counts lines installed by Prefetch (not demand misses).
	Prefetches uint64
	// PrefetchHits counts demand hits to lines a prefetch installed,
	// i.e. useful prefetches.
	PrefetchHits uint64
}

// MissRatio returns misses/accesses, or 0 for an idle owner.
func (s OwnerStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag        uint64
	owner      int
	valid      bool
	prefetched bool   // installed by Prefetch, not yet demanded
	lru        uint64 // last-touch stamp for LRU
}

type set struct {
	lines []line
	plru  uint64 // tree-PLRU state bits
}

// Cache is a set-associative cache shared by multiple owners.
type Cache struct {
	cfg        Config
	sets       []set
	lineShift  uint
	stamp      uint64
	rng        *xrand.Source
	owners     map[int]*OwnerStats
	totalAcc   uint64
	totalMiss  uint64
	numSets    uint64
	plruLevels int
}

// New constructs a cache from cfg. Non-power-of-two set counts (which real
// sliced LLCs like the Xeons' have) are indexed by modulo.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	c := &Cache{
		cfg:     cfg,
		sets:    make([]set, numSets),
		rng:     xrand.New(cfg.Seed),
		owners:  make(map[int]*OwnerStats),
		numSets: uint64(numSets),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]line, cfg.Ways)
	}
	for s := cfg.LineBytes; s > 1; s >>= 1 {
		c.lineShift++
	}
	for w := 1; w < cfg.Ways; w <<= 1 {
		c.plruLevels++
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return int(c.numSets) }

// ownerStats returns (allocating if needed) the stats record for owner.
func (c *Cache) ownerStats(owner int) *OwnerStats {
	st := c.owners[owner]
	if st == nil {
		st = &OwnerStats{}
		c.owners[owner] = st
	}
	return st
}

// Access simulates one access by owner to byte address addr. It returns
// true on a hit. On a miss the referenced line is installed, evicting per
// the replacement policy.
func (c *Cache) Access(owner int, addr uint64) bool {
	blk := addr >> c.lineShift
	si := blk % c.numSets
	tag := blk / c.numSets
	st := c.ownerStats(owner)
	st.Accesses++
	c.totalAcc++
	c.stamp++

	s := &c.sets[si]
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.valid && ln.tag == tag && ln.owner == owner {
			if ln.prefetched {
				ln.prefetched = false
				st.PrefetchHits++
			}
			ln.lru = c.stamp
			c.touchPLRU(s, i)
			return true
		}
	}
	// Miss: install.
	st.Misses++
	c.totalMiss++
	victim := c.pickVictim(s)
	v := &s.lines[victim]
	if v.valid {
		vst := c.ownerStats(v.owner)
		vst.Evictions++
		vst.Occupancy--
	}
	v.tag = tag
	v.owner = owner
	v.valid = true
	v.prefetched = false
	v.lru = c.stamp
	c.touchPLRU(s, victim)
	st.Occupancy++
	return false
}

// Prefetch installs the line holding addr for owner without counting a
// demand access. Already-resident lines are untouched (no recency
// update), matching hardware prefetchers that drop redundant requests.
func (c *Cache) Prefetch(owner int, addr uint64) {
	blk := addr >> c.lineShift
	si := blk % c.numSets
	tag := blk / c.numSets
	s := &c.sets[si]
	for i := range s.lines {
		ln := &s.lines[i]
		if ln.valid && ln.tag == tag && ln.owner == owner {
			return
		}
	}
	st := c.ownerStats(owner)
	st.Prefetches++
	c.stamp++
	victim := c.pickVictim(s)
	v := &s.lines[victim]
	if v.valid {
		vst := c.ownerStats(v.owner)
		vst.Evictions++
		vst.Occupancy--
	}
	v.tag = tag
	v.owner = owner
	v.valid = true
	v.prefetched = true
	v.lru = c.stamp
	c.touchPLRU(s, victim)
	st.Occupancy++
}

// pickVictim selects a line to evict (or an invalid line if one exists).
func (c *Cache) pickVictim(s *set) int {
	for i := range s.lines {
		if !s.lines[i].valid {
			return i
		}
	}
	switch c.cfg.Policy {
	case Random:
		return c.rng.Intn(len(s.lines))
	case TreePLRU:
		return c.plruVictim(s)
	default: // LRU
		victim, oldest := 0, s.lines[0].lru
		for i := 1; i < len(s.lines); i++ {
			if s.lines[i].lru < oldest {
				victim, oldest = i, s.lines[i].lru
			}
		}
		return victim
	}
}

// touchPLRU updates the pseudo-LRU tree bits to point away from way.
func (c *Cache) touchPLRU(s *set, way int) {
	if c.cfg.Policy != TreePLRU {
		return
	}
	node := 0
	for level := 0; level < c.plruLevels; level++ {
		bit := (way >> uint(c.plruLevels-1-level)) & 1
		if bit == 0 {
			s.plru |= 1 << uint(node) // point to right subtree
			node = 2*node + 1
		} else {
			s.plru &^= 1 << uint(node) // point to left subtree
			node = 2*node + 2
		}
	}
}

// plruVictim walks the pseudo-LRU tree to the indicated leaf.
func (c *Cache) plruVictim(s *set) int {
	node, way := 0, 0
	for level := 0; level < c.plruLevels; level++ {
		way <<= 1
		if s.plru&(1<<uint(node)) != 0 {
			way |= 1
			node = 2*node + 2
		} else {
			node = 2*node + 1
		}
	}
	if way >= len(s.lines) {
		way = len(s.lines) - 1
	}
	return way
}

// Stats returns a copy of the stats for owner.
func (c *Cache) Stats(owner int) OwnerStats {
	if st := c.owners[owner]; st != nil {
		return *st
	}
	return OwnerStats{}
}

// Owners returns the ids of all owners that have accessed the cache.
func (c *Cache) Owners() []int {
	out := make([]int, 0, len(c.owners))
	for id := range c.owners {
		out = append(out, id)
	}
	return out
}

// TotalAccesses returns the cache-wide access count.
func (c *Cache) TotalAccesses() uint64 { return c.totalAcc }

// TotalMisses returns the cache-wide miss count.
func (c *Cache) TotalMisses() uint64 { return c.totalMiss }

// GlobalMissRatio returns the cache-wide miss ratio.
func (c *Cache) GlobalMissRatio() float64 {
	if c.totalAcc == 0 {
		return 0
	}
	return float64(c.totalMiss) / float64(c.totalAcc)
}

// OccupancyFraction returns the fraction of valid lines owned by owner.
func (c *Cache) OccupancyFraction(owner int) float64 {
	total := int(c.numSets) * c.cfg.Ways
	st := c.owners[owner]
	if st == nil || total == 0 {
		return 0
	}
	return float64(st.Occupancy) / float64(total)
}

// Reset invalidates all lines and clears all statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i].lines {
			c.sets[i].lines[j] = line{}
		}
		c.sets[i].plru = 0
	}
	c.owners = make(map[int]*OwnerStats)
	c.totalAcc, c.totalMiss, c.stamp = 0, 0, 0
}

// CheckInvariants verifies internal consistency: per-owner occupancy sums
// to the number of valid lines, and misses never exceed accesses. It is
// used by property-based tests.
func (c *Cache) CheckInvariants() error {
	valid := 0
	occ := map[int]int{}
	for i := range c.sets {
		for j := range c.sets[i].lines {
			if c.sets[i].lines[j].valid {
				valid++
				occ[c.sets[i].lines[j].owner]++
			}
		}
	}
	sum := 0
	for id, st := range c.owners {
		if st.Misses > st.Accesses {
			return fmt.Errorf("cache: owner %d has misses %d > accesses %d", id, st.Misses, st.Accesses)
		}
		if st.Occupancy != occ[id] {
			return fmt.Errorf("cache: owner %d tracked occupancy %d != actual %d", id, st.Occupancy, occ[id])
		}
		sum += st.Occupancy
	}
	if sum != valid {
		return fmt.Errorf("cache: occupancy sum %d != valid lines %d", sum, valid)
	}
	if c.totalMiss > c.totalAcc {
		return fmt.Errorf("cache: total misses %d > accesses %d", c.totalMiss, c.totalAcc)
	}
	return nil
}
