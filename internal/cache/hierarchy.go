package cache

import "fmt"

// Hierarchy models a multicore cache hierarchy: private per-core L1 and
// L2 caches in front of one shared last-level cache. The paper's
// methodology observes applications only at the last level (hyperthreading
// is disabled so the private levels see no interference — Section II);
// the hierarchy exists so the trace-driven validation path can model the
// *filtering* effect of the private levels, which is what turns an
// application's raw reference stream into its LLC access rate
// (targetCA/INS).
type Hierarchy struct {
	l1     []*Cache // one per core
	l2     []*Cache // one per core
	shared *Cache
	cores  int
}

// HierarchyConfig describes the three levels. L1 and L2 are per-core
// private; LLC is shared.
type HierarchyConfig struct {
	Cores int
	L1    Config
	L2    Config
	LLC   Config
}

// NewHierarchy builds a hierarchy with private L1/L2 per core.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one core, got %d", cfg.Cores)
	}
	if cfg.L1.LineBytes != cfg.L2.LineBytes || cfg.L2.LineBytes != cfg.LLC.LineBytes {
		return nil, fmt.Errorf("cache: hierarchy levels must share a line size")
	}
	h := &Hierarchy{cores: cfg.Cores}
	for c := 0; c < cfg.Cores; c++ {
		l1cfg := cfg.L1
		l1cfg.Seed = cfg.L1.Seed + uint64(c)
		l1, err := New(l1cfg)
		if err != nil {
			return nil, fmt.Errorf("cache: L1: %w", err)
		}
		l2cfg := cfg.L2
		l2cfg.Seed = cfg.L2.Seed + uint64(c)
		l2, err := New(l2cfg)
		if err != nil {
			return nil, fmt.Errorf("cache: L2: %w", err)
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	llc, err := New(cfg.LLC)
	if err != nil {
		return nil, fmt.Errorf("cache: LLC: %w", err)
	}
	h.shared = llc
	return h, nil
}

// Level identifies where an access was satisfied.
type Level int

const (
	// HitL1 means the private L1 held the line.
	HitL1 Level = iota
	// HitL2 means the private L2 held the line.
	HitL2
	// HitLLC means the shared last-level cache held the line.
	HitLLC
	// MissMemory means the access went to DRAM.
	MissMemory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	case MissMemory:
		return "memory"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Access sends one reference from the given core down the hierarchy and
// reports where it was satisfied. Lower levels are only consulted (and
// filled) when upper levels miss, so the LLC observes exactly the filtered
// stream a real last-level cache would.
func (h *Hierarchy) Access(core int, addr uint64) (Level, error) {
	if core < 0 || core >= h.cores {
		return 0, fmt.Errorf("cache: core %d out of [0,%d)", core, h.cores)
	}
	if h.l1[core].Access(0, addr) {
		return HitL1, nil
	}
	if h.l2[core].Access(0, addr) {
		return HitL2, nil
	}
	if h.shared.Access(core, addr) {
		return HitLLC, nil
	}
	return MissMemory, nil
}

// Cores returns the core count.
func (h *Hierarchy) Cores() int { return h.cores }

// LLC exposes the shared cache, e.g. for occupancy inspection.
func (h *Hierarchy) LLC() *Cache { return h.shared }

// CoreStats aggregates one core's activity at every level.
type CoreStats struct {
	References  uint64 // total references issued by the core
	L1Misses    uint64 // references that reached L2
	L2Misses    uint64 // references that reached the LLC
	LLCMisses   uint64 // references that reached memory
	LLCAccesses uint64 // == L2Misses, the PAPI_L3_TCA view
}

// Stats returns the per-level counters for one core.
func (h *Hierarchy) Stats(core int) (CoreStats, error) {
	if core < 0 || core >= h.cores {
		return CoreStats{}, fmt.Errorf("cache: core %d out of [0,%d)", core, h.cores)
	}
	l1 := h.l1[core].Stats(0)
	llc := h.shared.Stats(core)
	return CoreStats{
		References:  l1.Accesses,
		L1Misses:    l1.Misses,
		L2Misses:    h.l2[core].Stats(0).Misses,
		LLCAccesses: llc.Accesses,
		LLCMisses:   llc.Misses,
	}, nil
}

// LLCAccessRate returns the fraction of the core's references that reach
// the shared LLC — the hierarchy-measured analogue of an application's
// LLCAccessRate parameter (per reference rather than per instruction).
func (s CoreStats) LLCAccessRate() float64 {
	if s.References == 0 {
		return 0
	}
	return float64(s.LLCAccesses) / float64(s.References)
}

// Reset clears every level.
func (h *Hierarchy) Reset() {
	for c := 0; c < h.cores; c++ {
		h.l1[c].Reset()
		h.l2[c].Reset()
	}
	h.shared.Reset()
}
