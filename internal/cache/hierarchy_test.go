package cache

import (
	"testing"

	"colocmodel/internal/xrand"
)

func testHierCfg() HierarchyConfig {
	return HierarchyConfig{
		Cores: 2,
		L1:    Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Policy: LRU},
		L2:    Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Policy: LRU},
		LLC:   Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16, Policy: LRU},
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	cfg := testHierCfg()
	cfg.Cores = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("zero cores accepted")
	}
	cfg = testHierCfg()
	cfg.L2.LineBytes = 128
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("mismatched line sizes accepted")
	}
	cfg = testHierCfg()
	cfg.L1.SizeBytes = 100 // invalid geometry
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("bad L1 geometry accepted")
	}
	cfg = testHierCfg()
	cfg.LLC.SizeBytes = 100
	if _, err := NewHierarchy(cfg); err == nil {
		t.Fatal("bad LLC geometry accepted")
	}
}

func TestLevelNames(t *testing.T) {
	if HitL1.String() != "L1" || HitL2.String() != "L2" || HitLLC.String() != "LLC" || MissMemory.String() != "memory" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level empty")
	}
}

func TestHierarchyLevelProgression(t *testing.T) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		t.Fatal(err)
	}
	// First touch goes all the way to memory.
	lvl, err := h.Access(0, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != MissMemory {
		t.Fatalf("cold access satisfied at %s", lvl)
	}
	// Second touch hits L1.
	lvl, _ = h.Access(0, 0x1000)
	if lvl != HitL1 {
		t.Fatalf("warm access satisfied at %s, want L1", lvl)
	}
}

func TestHierarchyL1Filtering(t *testing.T) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A tight loop over a small footprint: after warmup nearly all
	// references are L1 hits, so the LLC access rate is tiny — the
	// filtering that produces small targetCA/INS values.
	for round := 0; round < 100; round++ {
		for i := uint64(0); i < 32; i++ {
			if _, err := h.Access(0, i*64); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := h.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.References != 3200 {
		t.Fatalf("references = %d", st.References)
	}
	if rate := st.LLCAccessRate(); rate > 0.02 {
		t.Fatalf("LLC access rate %v, want ~0 for an L1-resident loop", rate)
	}
	if st.LLCMisses > st.LLCAccesses {
		t.Fatal("LLC misses exceed accesses")
	}
}

func TestHierarchyLargeFootprintReachesLLC(t *testing.T) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Footprint larger than L2 but within the LLC: a steady stream of L2
	// misses that mostly hit the LLC after warmup.
	lines := uint64((64 << 10) / 64) // 64 KiB footprint vs 32 KiB L2
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < lines; i++ {
			if _, err := h.Access(0, i*64); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := h.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.LLCAccesses == 0 {
		t.Fatal("no LLC accesses despite L2 overflow")
	}
	if float64(st.LLCMisses)/float64(st.LLCAccesses) > 0.2 {
		t.Fatalf("LLC miss ratio %v, want low for LLC-resident footprint",
			float64(st.LLCMisses)/float64(st.LLCAccesses))
	}
}

func TestHierarchyPrivateLevelsIsolated(t *testing.T) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 warms a line; core 1 touching the same address must still
	// miss its own private levels (they are per-core), then hit the
	// shared LLC only if the owner matches — here owners differ, so it
	// goes to memory (disjoint per-core ownership models disjoint
	// address spaces).
	h.Access(0, 0x40)
	lvl, err := h.Access(1, 0x40)
	if err != nil {
		t.Fatal(err)
	}
	if lvl == HitL1 || lvl == HitL2 {
		t.Fatalf("core 1 hit core 0's private cache: %s", lvl)
	}
}

func TestHierarchySharedLLCContention(t *testing.T) {
	cfg := testHierCfg()
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(1)
	// Both cores stream over footprints that together exceed the LLC.
	lines := uint64(cfg.LLC.SizeBytes/64) * 3 / 4
	for i := 0; i < 200000; i++ {
		core := src.Intn(2)
		addr := uint64(src.Intn(int(lines)))*64 + uint64(core)<<40
		if _, err := h.Access(core, addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.LLC().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s0, _ := h.Stats(0)
	s1, _ := h.Stats(1)
	if s0.LLCMisses == 0 || s1.LLCMisses == 0 {
		t.Fatal("no LLC contention misses despite oversubscription")
	}
}

func TestHierarchyAccessErrors(t *testing.T) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Access(-1, 0); err == nil {
		t.Fatal("negative core accepted")
	}
	if _, err := h.Access(2, 0); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if _, err := h.Stats(9); err == nil {
		t.Fatal("out-of-range stats accepted")
	}
}

func TestHierarchyReset(t *testing.T) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0)
	h.Reset()
	st, _ := h.Stats(0)
	if st.References != 0 || st.LLCAccesses != 0 {
		t.Fatal("reset did not clear stats")
	}
	if lvl, _ := h.Access(0, 0); lvl != MissMemory {
		t.Fatal("line survived reset")
	}
}

func TestCoreStatsZeroSafe(t *testing.T) {
	var s CoreStats
	if s.LLCAccessRate() != 0 {
		t.Fatal("zero stats produced nonzero rate")
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := NewHierarchy(testHierCfg())
	if err != nil {
		b.Fatal(err)
	}
	src := xrand.New(1)
	z := xrand.NewZipf(src, 0.9, 1<<14)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = uint64(z.Next()) * 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Access(0, addrs[i&(1<<12-1)]); err != nil {
			b.Fatal(err)
		}
	}
}
