package cache

import "fmt"

// NextLinePrefetcher wraps a cache with a sequential (next-N-line)
// hardware prefetcher: every demand miss triggers prefetches of the
// following Degree lines. Sequential prefetching is the mechanism that
// gives streaming applications their high memory-level parallelism — the
// workload models encode its *effect* as a low MissExposeFrac; this
// wrapper lets the trace-driven path reproduce the effect mechanically
// and quantify prefetch usefulness per access pattern.
type NextLinePrefetcher struct {
	cache  *Cache
	degree int
}

// NewNextLinePrefetcher wraps c with a prefetcher of the given degree
// (lines fetched ahead per demand miss, typically 1–4).
func NewNextLinePrefetcher(c *Cache, degree int) (*NextLinePrefetcher, error) {
	if c == nil {
		return nil, fmt.Errorf("cache: nil cache")
	}
	if degree < 1 || degree > 16 {
		return nil, fmt.Errorf("cache: prefetch degree %d out of [1,16]", degree)
	}
	return &NextLinePrefetcher{cache: c, degree: degree}, nil
}

// Access performs a demand access; on a miss the next Degree lines are
// prefetched. Returns true on a demand hit.
func (p *NextLinePrefetcher) Access(owner int, addr uint64) bool {
	if p.cache.Access(owner, addr) {
		return true
	}
	lb := uint64(p.cache.cfg.LineBytes)
	base := addr &^ (lb - 1)
	for i := 1; i <= p.degree; i++ {
		p.cache.Prefetch(owner, base+uint64(i)*lb)
	}
	return false
}

// Cache exposes the wrapped cache for statistics.
func (p *NextLinePrefetcher) Cache() *Cache { return p.cache }

// Accuracy returns the fraction of issued prefetches that served a later
// demand hit for the owner (0 if none were issued).
func (p *NextLinePrefetcher) Accuracy(owner int) float64 {
	st := p.cache.Stats(owner)
	if st.Prefetches == 0 {
		return 0
	}
	return float64(st.PrefetchHits) / float64(st.Prefetches)
}
