package cache

import (
	"testing"

	"colocmodel/internal/xrand"
)

func TestPrefetcherValidation(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	if _, err := NewNextLinePrefetcher(nil, 1); err == nil {
		t.Fatal("nil cache accepted")
	}
	if _, err := NewNextLinePrefetcher(c, 0); err == nil {
		t.Fatal("degree 0 accepted")
	}
	if _, err := NewNextLinePrefetcher(c, 17); err == nil {
		t.Fatal("degree 17 accepted")
	}
}

func TestPrefetchInstallsWithoutDemandCount(t *testing.T) {
	c := mustNew(t, smallCfg(LRU))
	c.Prefetch(0, 0x1000)
	st := c.Stats(0)
	if st.Accesses != 0 || st.Misses != 0 {
		t.Fatalf("prefetch counted as demand: %+v", st)
	}
	if st.Prefetches != 1 || st.Occupancy != 1 {
		t.Fatalf("prefetch not installed: %+v", st)
	}
	// Demand hit to the prefetched line counts as useful.
	if !c.Access(0, 0x1000) {
		t.Fatal("prefetched line missed")
	}
	st = c.Stats(0)
	if st.PrefetchHits != 1 {
		t.Fatalf("useful prefetch not counted: %+v", st)
	}
	// Second demand hit does not double-count usefulness.
	c.Access(0, 0x1000)
	if c.Stats(0).PrefetchHits != 1 {
		t.Fatal("prefetch hit double-counted")
	}
	// Redundant prefetch of a resident line is dropped.
	c.Prefetch(0, 0x1000)
	if c.Stats(0).Prefetches != 1 {
		t.Fatal("redundant prefetch issued")
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	// Sequential scan: with a next-line prefetcher, all but the first
	// access of each run of Degree+1 lines hit.
	plain := mustNew(t, smallCfg(LRU))
	pfCache := mustNew(t, smallCfg(LRU))
	pf, err := NewNextLinePrefetcher(pfCache, 2)
	if err != nil {
		t.Fatal(err)
	}
	misses := func(access func(int, uint64) bool) int {
		n := 0
		for i := uint64(0); i < 1024; i++ {
			if !access(0, i*64) {
				n++
			}
		}
		return n
	}
	plainMisses := misses(plain.Access)
	pfMisses := misses(pf.Access)
	if plainMisses != 1024 {
		t.Fatalf("plain sequential scan missed %d of 1024", plainMisses)
	}
	// With degree 2, roughly one demand miss per 3 lines.
	if pfMisses > 1024/2 {
		t.Fatalf("prefetcher barely helped: %d misses", pfMisses)
	}
	if acc := pf.Accuracy(0); acc < 0.9 {
		t.Fatalf("sequential prefetch accuracy %v, want ~1", acc)
	}
	if pf.Cache() != pfCache {
		t.Fatal("Cache accessor wrong")
	}
}

func TestPrefetcherUselessOnRandom(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, Policy: LRU})
	pf, err := NewNextLinePrefetcher(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := xrand.New(9)
	for i := 0; i < 50000; i++ {
		// Sparse random lines: the next line is almost never referenced.
		pf.Access(0, uint64(src.Intn(1<<22))*64*7)
	}
	if acc := pf.Accuracy(0); acc > 0.1 {
		t.Fatalf("random-access prefetch accuracy %v, want ~0", acc)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchInvariantsUnderMixedTraffic(t *testing.T) {
	c := mustNew(t, smallCfg(TreePLRU))
	pf, _ := NewNextLinePrefetcher(c, 3)
	src := xrand.New(10)
	for i := 0; i < 20000; i++ {
		owner := src.Intn(2)
		if src.Bool(0.5) {
			pf.Access(owner, uint64(src.Intn(4096))*64+uint64(owner)<<40)
		} else {
			pf.Access(owner, uint64(i%2048)*64+uint64(owner)<<40)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrefetcherAccess(b *testing.B) {
	c, _ := New(Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, Policy: LRU})
	pf, _ := NewNextLinePrefetcher(c, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf.Access(0, uint64(i%(1<<15))*64)
	}
}
