package cache

import (
	"fmt"
	"math"
	"sort"
)

// MissRatioCurve maps an effective cache allocation (in bytes) to the miss
// ratio an application would experience with that much LLC capacity. It is
// the per-application summary the analytical co-location engine consumes.
type MissRatioCurve interface {
	// Ratio returns the miss ratio in [0,1] for an allocation of the
	// given number of bytes.
	Ratio(bytes float64) float64
}

// PowerLawMRC is the classic power-law ("√2 rule" generalisation) miss
// ratio curve: for allocations below the working set the miss ratio decays
// as (WorkingSet/bytes)^Alpha toward the compulsory floor.
//
//	ratio(c) = Floor + (Knee − Floor) · min(1, (WorkingSet/c))^Alpha
//
// Knee is the miss ratio at a vanishing allocation (every capacity-bound
// access misses); Floor is the compulsory/streaming miss ratio that no
// amount of cache removes. Apps with large working sets and high Knee are
// the paper's "Class I" memory-intensive applications.
type PowerLawMRC struct {
	WorkingSetBytes float64 // capacity at which the curve reaches the floor
	Knee            float64 // miss ratio with ~no cache
	Floor           float64 // compulsory miss ratio with infinite cache
	Alpha           float64 // decay exponent, typically 0.4–1.2
}

// Validate checks curve parameters.
func (m PowerLawMRC) Validate() error {
	if m.WorkingSetBytes <= 0 {
		return fmt.Errorf("cache: MRC working set must be positive, got %v", m.WorkingSetBytes)
	}
	if m.Knee < 0 || m.Knee > 1 || m.Floor < 0 || m.Floor > 1 {
		return fmt.Errorf("cache: MRC ratios must be in [0,1], got knee=%v floor=%v", m.Knee, m.Floor)
	}
	if m.Floor > m.Knee {
		return fmt.Errorf("cache: MRC floor %v exceeds knee %v", m.Floor, m.Knee)
	}
	if m.Alpha <= 0 {
		return fmt.Errorf("cache: MRC alpha must be positive, got %v", m.Alpha)
	}
	return nil
}

// Ratio implements MissRatioCurve. The curve is continuous and monotone
// non-increasing in the allocation. With pressure p = WorkingSet/bytes:
// when the working set fits (p ≤ 1) only the compulsory floor plus a mild
// conflict-miss tail remains; when it does not (p > 1), capacity misses
// grow from that point toward the knee as 1 − p^(−Alpha).
func (m PowerLawMRC) Ratio(bytes float64) float64 {
	if bytes <= 0 {
		return m.Knee
	}
	p := m.WorkingSetBytes / bytes
	if p <= 1 {
		tail := 0.05 * (m.Knee - m.Floor) * math.Pow(p, m.Alpha)
		return m.Floor + tail
	}
	start := m.Floor + 0.05*(m.Knee-m.Floor)
	span := m.Knee - start
	grown := 1 - math.Pow(p, -m.Alpha) // 0 at p=1, →1 as p→∞
	return start + span*grown
}

// EmpiricalMRC is a piecewise-linear miss ratio curve measured by running
// a reference trace through caches of varying capacity.
type EmpiricalMRC struct {
	// SizesBytes are sample allocations in ascending order.
	SizesBytes []float64
	// Ratios are the measured miss ratios at each sample size.
	Ratios []float64
}

// Ratio implements MissRatioCurve by linear interpolation, clamping to the
// end points outside the sampled range.
func (e *EmpiricalMRC) Ratio(bytes float64) float64 {
	n := len(e.SizesBytes)
	if n == 0 {
		return 0
	}
	if bytes <= e.SizesBytes[0] {
		return e.Ratios[0]
	}
	if bytes >= e.SizesBytes[n-1] {
		return e.Ratios[n-1]
	}
	i := sort.SearchFloat64s(e.SizesBytes, bytes)
	// SizesBytes[i-1] < bytes <= SizesBytes[i]
	x0, x1 := e.SizesBytes[i-1], e.SizesBytes[i]
	y0, y1 := e.Ratios[i-1], e.Ratios[i]
	f := (bytes - x0) / (x1 - x0)
	return y0 + f*(y1-y0)
}

// MeasureMRC runs the addresses produced by next (which must return one
// address per call) through private caches of each size in sizesBytes and
// returns the resulting empirical miss ratio curve. lineBytes and ways fix
// the geometry; n is the trace length per size.
func MeasureMRC(next func() uint64, n int, sizesBytes []int, lineBytes, ways int) (*EmpiricalMRC, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cache: MeasureMRC needs a positive trace length")
	}
	// Capture the trace once so every size sees identical references.
	trace := make([]uint64, n)
	for i := range trace {
		trace[i] = next()
	}
	out := &EmpiricalMRC{}
	for _, sz := range sizesBytes {
		c, err := New(Config{SizeBytes: sz, LineBytes: lineBytes, Ways: ways, Policy: LRU})
		if err != nil {
			return nil, fmt.Errorf("cache: MeasureMRC size %d: %w", sz, err)
		}
		for _, a := range trace {
			c.Access(0, a)
		}
		out.SizesBytes = append(out.SizesBytes, float64(sz))
		out.Ratios = append(out.Ratios, c.GlobalMissRatio())
	}
	return out, nil
}
