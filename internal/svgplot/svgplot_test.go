package svgplot

import (
	"math"
	"strings"
	"testing"
)

func validLineChart() *LineChart {
	return &LineChart{
		Title:      "Figure 1",
		XLabel:     "feature set",
		YLabel:     "MPE (%)",
		Categories: []string{"A", "B", "C", "D", "E", "F"},
		Series: []Series{
			{Name: "linear test", Values: []float64{5, 4.8, 3.4, 3.4, 3.3, 2.9}},
			{Name: "NN test", Values: []float64{4.9, 4.7, 3.0, 2.5, 2.3, 1.4}},
			{Name: "NN train", Values: []float64{4.8, 4.6, 2.9, 2.4, 2.2, 1.2}, Dashed: true},
		},
	}
}

func TestLineChartRender(t *testing.T) {
	out, err := validLineChart().Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "polyline", "Figure 1", "linear test", "NN train", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// One polyline per series.
	if got := strings.Count(out, "<polyline"); got != 3 {
		t.Fatalf("got %d polylines, want 3", got)
	}
}

func TestLineChartValidation(t *testing.T) {
	c := validLineChart()
	c.Categories = nil
	if _, err := c.Render(); err == nil {
		t.Fatal("no categories accepted")
	}
	c = validLineChart()
	c.Series = nil
	if _, err := c.Render(); err == nil {
		t.Fatal("no series accepted")
	}
	c = validLineChart()
	c.Series[0].Values = []float64{1}
	if _, err := c.Render(); err == nil {
		t.Fatal("ragged series accepted")
	}
	c = validLineChart()
	for si := range c.Series {
		for i := range c.Series[si].Values {
			c.Series[si].Values[i] = math.NaN()
		}
	}
	if _, err := c.Render(); err == nil {
		t.Fatal("all-NaN chart accepted")
	}
}

func TestLineChartSkipsNaN(t *testing.T) {
	c := validLineChart()
	c.Series[0].Values[2] = math.NaN()
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestLineChartEscapesLabels(t *testing.T) {
	c := validLineChart()
	c.Title = `<script>"x"&y</script>`
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<script>") {
		t.Fatal("unescaped label")
	}
}

func validBoxPlot() *BoxPlot {
	return &BoxPlot{
		Title:  "Figure 5(b)",
		YLabel: "percent error",
		Boxes: []Box{
			{Label: "cg", Min: -4, Q1: -1, Median: 0.1, Q3: 1.2, Max: 4},
			{Label: "canneal", Min: -3, Q1: -0.8, Median: 0, Q3: 0.9, Max: 3.5},
		},
		ZeroLine: true,
	}
}

func TestBoxPlotRender(t *testing.T) {
	out, err := validBoxPlot().Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "rect", "canneal", "Figure 5(b)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Zero reference line present.
	if !strings.Contains(out, `stroke-dasharray="3,3"`) {
		t.Fatal("zero line missing")
	}
}

func TestBoxPlotValidation(t *testing.T) {
	p := &BoxPlot{}
	if _, err := p.Render(); err == nil {
		t.Fatal("empty plot accepted")
	}
	p = validBoxPlot()
	p.Boxes[0].Q3 = p.Boxes[0].Median - 1 // disorder
	if _, err := p.Render(); err == nil {
		t.Fatal("disordered box accepted")
	}
}

func TestBoxPlotDegenerateRange(t *testing.T) {
	p := &BoxPlot{
		Title: "flat",
		Boxes: []Box{{Label: "x", Min: 5, Q1: 5, Median: 5, Q3: 5, Max: 5}},
	}
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("render incomplete")
	}
}

func TestSingleCategoryLineChart(t *testing.T) {
	c := &LineChart{
		Title:      "one",
		Categories: []string{"A"},
		Series:     []Series{{Name: "s", Values: []float64{3}}},
	}
	out, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "circle") {
		t.Fatal("point missing")
	}
}
