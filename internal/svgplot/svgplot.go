// Package svgplot renders the repository's figures as standalone SVG
// documents using only the standard library. It provides the two chart
// forms the paper's evaluation needs: grouped line charts for the model
// accuracy figures (Figures 1–4) and box plots for the distribution
// figures (Figure 5a/5b).
//
// The output is deliberately spartan — axes, ticks, series and a legend —
// so the files diff cleanly and render anywhere.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Chart geometry shared by both chart kinds.
const (
	width     = 720
	height    = 420
	marginL   = 70
	marginR   = 160
	marginT   = 40
	marginB   = 70
	plotW     = width - marginL - marginR
	plotH     = height - marginT - marginB
	tickCount = 6
)

// seriesColors is a small colour-blind-safe cycle.
var seriesColors = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
}

// Series is one polyline of a line chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Values holds one y value per category (NaN skips a point).
	Values []float64
	// Dashed draws the series with a dash pattern (used for training
	// error vs. solid testing error).
	Dashed bool
}

// LineChart describes a categorical line chart: x positions are the
// category labels (the six feature sets), y is the error metric.
type LineChart struct {
	Title      string
	XLabel     string
	YLabel     string
	Categories []string
	Series     []Series
}

// Render produces the SVG document.
func (c *LineChart) Render() (string, error) {
	if len(c.Categories) == 0 {
		return "", fmt.Errorf("svgplot: line chart needs categories")
	}
	if len(c.Series) == 0 {
		return "", fmt.Errorf("svgplot: line chart needs at least one series")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return "", fmt.Errorf("svgplot: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(c.Categories))
		}
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return "", fmt.Errorf("svgplot: no finite values")
	}
	lo = math.Min(lo, 0) // error axes start at zero
	if hi == lo {
		hi = lo + 1
	}
	hi *= 1.08 // headroom

	var b strings.Builder
	header(&b, c.Title)
	axes(&b, c.XLabel, c.YLabel)
	yTicks(&b, lo, hi)

	// Category tick labels.
	for i, cat := range c.Categories {
		x := xForCategory(i, len(c.Categories))
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" class="lbl">%s</text>`+"\n",
			x, marginT+plotH+20, esc(cat))
	}

	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		var pts []string
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f",
				xForCategory(i, len(c.Categories)), yFor(v, lo, hi)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2"%s points="%s"/>`+"\n",
			color, dash, strings.Join(pts, " "))
		for i, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xForCategory(i, len(c.Categories)), yFor(v, lo, hi), color)
		}
		// Legend entry.
		ly := marginT + 16 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			width-marginR+12, ly, width-marginR+40, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="lbl">%s</text>`+"\n",
			width-marginR+46, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// Box is one category of a box plot.
type Box struct {
	// Label names the category (an application).
	Label string
	// Min, Q1, Median, Q3, Max are the five-number summary.
	Min, Q1, Median, Q3, Max float64
}

// BoxPlot describes a categorical box plot (Figure 5 style).
type BoxPlot struct {
	Title  string
	YLabel string
	Boxes  []Box
	// ZeroLine draws a reference line at y = 0 (for error plots).
	ZeroLine bool
}

// Render produces the SVG document.
func (p *BoxPlot) Render() (string, error) {
	if len(p.Boxes) == 0 {
		return "", fmt.Errorf("svgplot: box plot needs boxes")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, bx := range p.Boxes {
		if bx.Q1 < bx.Min || bx.Median < bx.Q1 || bx.Q3 < bx.Median || bx.Max < bx.Q3 {
			return "", fmt.Errorf("svgplot: box %q not ordered", bx.Label)
		}
		lo = math.Min(lo, bx.Min)
		hi = math.Max(hi, bx.Max)
	}
	if p.ZeroLine {
		lo = math.Min(lo, 0)
		hi = math.Max(hi, 0)
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	lo -= 0.05 * span
	hi += 0.05 * span

	var b strings.Builder
	header(&b, p.Title)
	axes(&b, "", p.YLabel)
	yTicks(&b, lo, hi)
	if p.ZeroLine {
		y := yFor(0, lo, hi)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#999" stroke-dasharray="3,3"/>`+"\n",
			marginL, y, marginL+plotW, y)
	}
	n := len(p.Boxes)
	slot := float64(plotW) / float64(n)
	bw := math.Min(slot*0.5, 40)
	for i, bx := range p.Boxes {
		cx := float64(marginL) + slot*(float64(i)+0.5)
		color := seriesColors[0]
		yMin, yQ1 := yFor(bx.Min, lo, hi), yFor(bx.Q1, lo, hi)
		yMed, yQ3 := yFor(bx.Median, lo, hi), yFor(bx.Q3, lo, hi)
		yMax := yFor(bx.Max, lo, hi)
		// Whiskers.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx, yMin, cx, yQ1, color)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx, yQ3, cx, yMax, color)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx-bw/4, yMin, cx+bw/4, yMin, color)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", cx-bw/4, yMax, cx+bw/4, yMax, color)
		// Box.
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#cfe3f2" stroke="%s"/>`+"\n",
			cx-bw/2, yQ3, bw, yQ1-yQ3, color)
		// Median (dashed per the paper's figure description).
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#D55E00" stroke-width="2" stroke-dasharray="5,3"/>`+"\n",
			cx-bw/2, yMed, cx+bw/2, yMed)
		// Category label, rotated for long application names.
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="end" class="lbl" transform="rotate(-40 %.1f %d)">%s</text>`+"\n",
			cx, marginT+plotH+16, cx, marginT+plotH+16, esc(bx.Label))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// header opens the document and draws the title and style.
func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<style>text{font-family:sans-serif;font-size:12px;fill:#222}.lbl{font-size:11px}.title{font-size:14px;font-weight:bold}</style>` + "\n")
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="22" text-anchor="middle" class="title">%s</text>`+"\n", width/2, esc(title))
}

// axes draws the plot frame and axis labels.
func axes(b *strings.Builder, xlabel, ylabel string) {
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444"/>`+"\n",
		marginL, marginT, plotW, plotH)
	if xlabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, height-18, esc(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(b, `<text x="20" y="%d" text-anchor="middle" transform="rotate(-90 20 %d)">%s</text>`+"\n",
			marginT+plotH/2, marginT+plotH/2, esc(ylabel))
	}
}

// yTicks draws horizontal gridlines and tick labels.
func yTicks(b *strings.Builder, lo, hi float64) {
	for t := 0; t <= tickCount; t++ {
		v := lo + (hi-lo)*float64(t)/tickCount
		y := yFor(v, lo, hi)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" class="lbl">%s</text>`+"\n",
			marginL-6, y+4, fmtTick(v))
	}
}

func fmtTick(v float64) string {
	if math.Abs(v) >= 100 || v == math.Trunc(v) {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// xForCategory returns the x pixel of category i of n.
func xForCategory(i, n int) float64 {
	if n == 1 {
		return marginL + plotW/2
	}
	return float64(marginL) + float64(plotW)*float64(i)/float64(n-1)
}

// yFor maps a value to a y pixel.
func yFor(v, lo, hi float64) float64 {
	frac := (v - lo) / (hi - lo)
	return float64(marginT) + float64(plotH)*(1-frac)
}

// esc escapes XML-special characters in labels.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
