package pca

import (
	"math"
	"testing"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(1, 3)); err == nil {
		t.Fatal("1 sample accepted")
	}
	if _, err := Fit(linalg.NewMatrix(5, 0)); err == nil {
		t.Fatal("0 features accepted")
	}
}

func TestExplainedRatiosSumToOne(t *testing.T) {
	src := xrand.New(1)
	x := linalg.NewMatrix(300, 5)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	r, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range r.ExplainedRatio {
		if v < 0 {
			t.Fatalf("negative explained ratio %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ratios sum to %v", sum)
	}
	// Sorted descending with the eigenvalues.
	for i := 1; i < len(r.Variances); i++ {
		if r.Variances[i] > r.Variances[i-1]+1e-12 {
			t.Fatal("variances not sorted")
		}
	}
}

func TestDominantDirectionFound(t *testing.T) {
	// Feature 0 has huge correlated variance with feature 1; feature 2 is
	// independent noise. The first component must load on 0 and 1.
	src := xrand.New(2)
	x := linalg.NewMatrix(500, 3)
	for i := 0; i < x.Rows; i++ {
		v := src.Normal(0, 3)
		x.Set(i, 0, v+src.Normal(0, 0.1))
		x.Set(i, 1, -v+src.Normal(0, 0.1))
		x.Set(i, 2, src.Normal(0, 1))
	}
	r, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	if r.ExplainedRatio[0] < 0.5 {
		t.Fatalf("first component explains only %v", r.ExplainedRatio[0])
	}
	l0 := math.Abs(r.Components.At(0, 0))
	l1 := math.Abs(r.Components.At(1, 0))
	l2 := math.Abs(r.Components.At(2, 0))
	if l0 < 0.5 || l1 < 0.5 || l2 > 0.2 {
		t.Fatalf("first component loadings (%v, %v, %v)", l0, l1, l2)
	}
}

func TestFeatureScoreSumsToOne(t *testing.T) {
	src := xrand.New(3)
	x := linalg.NewMatrix(200, 4)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 2)
	}
	r, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	scores := r.FeatureScore()
	sum := 0.0
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative score %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
	if len(r.Rank()) != 4 {
		t.Fatal("rank length wrong")
	}
}

func TestRankOrdersByScore(t *testing.T) {
	src := xrand.New(4)
	x := linalg.NewMatrix(400, 3)
	for i := 0; i < x.Rows; i++ {
		shared := src.Normal(0, 1)
		x.Set(i, 0, shared*5+src.Normal(0, 0.1)) // strong shared signal
		x.Set(i, 1, shared*5+src.Normal(0, 0.1))
		x.Set(i, 2, src.Normal(0, 1))
	}
	r, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	rank := r.Rank()
	scores := r.FeatureScore()
	for i := 1; i < len(rank); i++ {
		if scores[rank[i]] > scores[rank[i-1]]+1e-12 {
			t.Fatalf("rank not descending: %v with scores %v", rank, scores)
		}
	}
}

func TestConstantColumnHarmless(t *testing.T) {
	src := xrand.New(5)
	x := linalg.NewMatrix(100, 2)
	for i := 0; i < x.Rows; i++ {
		x.Set(i, 0, src.Normal(0, 1))
		x.Set(i, 1, 42)
	}
	r, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Variances {
		if math.IsNaN(v) {
			t.Fatal("NaN variance with constant column")
		}
	}
}

func TestProject(t *testing.T) {
	src := xrand.New(6)
	x := linalg.NewMatrix(100, 3)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	r, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Project([]float64{1, 2, 3}, 2)
	if err != nil || len(p) != 2 {
		t.Fatalf("Project = %v, %v", p, err)
	}
	if _, err := r.Project([]float64{1}, 2); err == nil {
		t.Fatal("short sample accepted")
	}
	if _, err := r.Project([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := r.Project([]float64{1, 2, 3}, 9); err == nil {
		t.Fatal("k too large accepted")
	}
	// Projecting the mean gives the origin.
	p0, err := r.Project(r.Mean, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p0 {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("mean does not project to origin: %v", p0)
		}
	}
}
