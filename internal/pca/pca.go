// Package pca implements principal component analysis, the feature-ranking
// step of Section III-B: "The eight features were chosen by performing a
// principal component analysis (PCA) on the data collected from multicore
// processors ... PCA allows all of the features that were gathered to be
// ranked according to variance of their output."
//
// Columns are standardised before the eigendecomposition (a correlation
// PCA) so that features with large raw magnitudes do not dominate.
package pca

import (
	"fmt"
	"math"
	"sort"

	"colocmodel/internal/linalg"
)

// Result holds a fitted PCA.
type Result struct {
	// Components holds the principal directions, one per column, sorted
	// by descending explained variance.
	Components *linalg.Matrix
	// Variances are the eigenvalues (variance along each component).
	Variances []float64
	// ExplainedRatio is each component's share of total variance.
	ExplainedRatio []float64
	// Mean and Std are the standardisation parameters per input column.
	Mean []float64
	Std  []float64
}

// Fit runs correlation PCA on the rows of x (samples × features).
func Fit(x *linalg.Matrix) (*Result, error) {
	if x.Rows < 2 {
		return nil, fmt.Errorf("pca: need at least 2 samples, got %d", x.Rows)
	}
	if x.Cols < 1 {
		return nil, fmt.Errorf("pca: need at least 1 feature")
	}
	n, d := x.Rows, x.Cols
	mean := make([]float64, d)
	std := make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x.At(i, j)
		}
		mean[j] = s / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dv := x.At(i, j) - mean[j]
			ss += dv * dv
		}
		std[j] = math.Sqrt(ss / float64(n-1))
		if std[j] == 0 {
			std[j] = 1 // constant column contributes nothing
		}
	}
	// Correlation matrix C = Zᵀ Z / (n−1) with Z standardised.
	c := linalg.NewMatrix(d, d)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = (x.At(i, j) - mean[j]) / std[j]
		}
		for p := 0; p < d; p++ {
			for q := p; q < d; q++ {
				c.Data[p*d+q] += row[p] * row[q]
			}
		}
	}
	inv := 1 / float64(n-1)
	for p := 0; p < d; p++ {
		for q := p; q < d; q++ {
			v := c.Data[p*d+q] * inv
			c.Data[p*d+q] = v
			c.Data[q*d+p] = v
		}
	}
	eig, err := linalg.JacobiEigen(c)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	ratios := make([]float64, d)
	for i, v := range eig.Values {
		if total > 0 && v > 0 {
			ratios[i] = v / total
		}
	}
	return &Result{
		Components:     eig.Vectors,
		Variances:      eig.Values,
		ExplainedRatio: ratios,
		Mean:           mean,
		Std:            std,
	}, nil
}

// FeatureScore ranks input features by their variance-weighted squared
// loadings on the *leading* principal components — those that cumulatively
// explain 75 % of the variance (the dominant correlated groups).
// Restricting to the leading components is essential: summed over all components the weighted loadings reduce to
// the correlation matrix's diagonal (identically 1 for every feature), so
// the full sum carries no ranking information. Features that load heavily
// on the dominant directions score high; features whose variance lives in
// the discarded tail score low. Scores are normalised to sum to 1.
func (r *Result) FeatureScore() []float64 {
	const cumulativeCutoff = 0.75
	d := len(r.Mean)
	scores := make([]float64, d)
	cum := 0.0
	for j := 0; j < d; j++ { // component index, descending variance
		if cum >= cumulativeCutoff && j > 0 {
			break
		}
		w := r.ExplainedRatio[j]
		cum += w
		for i := 0; i < d; i++ { // feature index
			l := r.Components.At(i, j)
			scores[i] += w * l * l
		}
	}
	total := 0.0
	for _, s := range scores {
		total += s
	}
	if total > 0 {
		for i := range scores {
			scores[i] /= total
		}
	}
	return scores
}

// Rank returns feature indices sorted by descending FeatureScore.
func (r *Result) Rank() []int {
	scores := r.FeatureScore()
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}

// Project maps a raw sample onto the first k principal components.
func (r *Result) Project(sample []float64, k int) ([]float64, error) {
	d := len(r.Mean)
	if len(sample) != d {
		return nil, fmt.Errorf("pca: sample has %d features, want %d", len(sample), d)
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k=%d out of [1,%d]", k, d)
	}
	z := make([]float64, d)
	for j := range sample {
		z[j] = (sample[j] - r.Mean[j]) / r.Std[j]
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		s := 0.0
		for j := 0; j < d; j++ {
			s += z[j] * r.Components.At(j, c)
		}
		out[c] = s
	}
	return out, nil
}
