package simproc

import (
	"math"
	"testing"

	"colocmodel/internal/workload"
)

func proc6(t testing.TB) *Processor {
	t.Helper()
	p, err := New(XeonE5649())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func proc12(t testing.TB) *Processor {
	t.Helper()
	p, err := New(XeonE52697v2())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func app(t testing.TB, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSpecsValid(t *testing.T) {
	for _, s := range Machines() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if len(Machines()) != 2 {
		t.Fatal("want the two Table IV machines")
	}
}

func TestSpecValidateCatchesBadSpecs(t *testing.T) {
	mut := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Cores = 0 },
		func(s *Spec) { s.LLCBytes = 0 },
		func(s *Spec) { s.LLCWays = 0 },
		func(s *Spec) { s.LLCHitLatencyCycles = 0 },
		func(s *Spec) { s.PStates = nil },
		func(s *Spec) { s.Mem.BaseLatencyNs = 0 },
		func(s *Spec) { s.CoreCEffW = -1 },
	}
	for i, m := range mut {
		s := XeonE5649()
		m(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
		if _, err := New(s); err == nil {
			t.Errorf("New accepted mutation %d", i)
		}
	}
}

func TestTableIVSpecs(t *testing.T) {
	s6 := XeonE5649()
	if s6.Cores != 6 || s6.LLCBytes != 12*1024*1024 {
		t.Fatalf("E5649 spec wrong: %+v", s6)
	}
	if math.Abs(s6.PStates.MaxFreq()-2.53) > 1e-9 || math.Abs(s6.PStates.MinFreq()-1.60) > 1e-9 {
		t.Fatal("E5649 frequency range wrong")
	}
	if s6.PStates.Len() != 6 {
		t.Fatal("E5649 must expose six P-states (Table V)")
	}
	s12 := XeonE52697v2()
	if s12.Cores != 12 || s12.LLCBytes != 30*1024*1024 {
		t.Fatalf("E5-2697v2 spec wrong: %+v", s12)
	}
	if math.Abs(s12.PStates.MaxFreq()-2.70) > 1e-9 || math.Abs(s12.PStates.MinFreq()-1.20) > 1e-9 {
		t.Fatal("E5-2697v2 frequency range wrong")
	}
	if s12.PStates.Len() != 6 {
		t.Fatal("E5-2697v2 must expose six P-states (Table V)")
	}
}

func TestBaselineDeterministic(t *testing.T) {
	p := proc6(t)
	a := app(t, "cg")
	r1, err := p.RunBaseline(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.RunBaseline(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TargetSeconds != r2.TargetSeconds {
		t.Fatalf("baseline not deterministic: %v vs %v", r1.TargetSeconds, r2.TargetSeconds)
	}
}

func TestBaselineTimesInPaperRange(t *testing.T) {
	// Section III-E: actual values "range from as little as 150 seconds
	// to over 1000 seconds". Our baselines sit inside a slightly wider
	// guard band.
	for _, mk := range []func(testing.TB) *Processor{proc6, proc12} {
		p := mk(t)
		for _, a := range workload.All() {
			r, err := p.RunBaseline(a, 0)
			if err != nil {
				t.Fatal(err)
			}
			if r.TargetSeconds < 100 || r.TargetSeconds > 1200 {
				t.Errorf("%s on %s: baseline %v s outside [100,1200]", a.Name, p.Spec().Name, r.TargetSeconds)
			}
		}
	}
}

func TestBaselineCountersConsistent(t *testing.T) {
	p := proc6(t)
	a := app(t, "canneal")
	r, err := p.RunBaseline(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Target.Counts
	if c.LLCMisses > c.LLCAccesses {
		t.Fatal("misses exceed accesses")
	}
	if math.Abs(float64(c.Instructions)-a.Instructions)/a.Instructions > 0.01 {
		t.Fatalf("instructions %d, want ~%g", c.Instructions, a.Instructions)
	}
	// Cycles = time × frequency.
	wantCyc := r.TargetSeconds * r.FreqGHz * 1e9
	if math.Abs(float64(c.Cycles)-wantCyc)/wantCyc > 0.01 {
		t.Fatalf("cycles %d, want ~%g", c.Cycles, wantCyc)
	}
	// Access rate ≈ the app's configured rate (phases average out).
	if gotRate := c.CAPerIns(); math.Abs(gotRate-a.LLCAccessRate)/a.LLCAccessRate > 0.1 {
		t.Fatalf("CA/INS %v, want ~%v", gotRate, a.LLCAccessRate)
	}
}

func TestSlowdownMonotoneInCoRunnerCount(t *testing.T) {
	p := proc12(t)
	target := app(t, "canneal")
	cg := app(t, "cg")
	prev := 0.0
	for k := 0; k <= 11; k++ {
		co := make([]workload.App, k)
		for i := range co {
			co[i] = cg
		}
		r, err := p.RunColocation(target, co, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.TargetSeconds <= prev {
			t.Fatalf("k=%d: time %v not greater than k=%d's %v", k, r.TargetSeconds, k-1, prev)
		}
		prev = r.TargetSeconds
	}
}

func TestTableVIShape(t *testing.T) {
	// canneal + 11×cg on the 12-core machine degrades by tens of percent
	// (the paper reports up to 33 %).
	p := proc12(t)
	target := app(t, "canneal")
	cg := app(t, "cg")
	base, err := p.RunBaseline(target, 0)
	if err != nil {
		t.Fatal(err)
	}
	co := make([]workload.App, 11)
	for i := range co {
		co[i] = cg
	}
	r, err := p.RunColocation(target, co, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm := r.TargetSeconds / base.TargetSeconds
	if norm < 1.15 || norm > 1.8 {
		t.Fatalf("canneal + 11 cg normalised time %v, want within [1.15, 1.8]", norm)
	}
}

func TestInterferenceOrderedByCoRunnerClass(t *testing.T) {
	// A Class I co-runner must hurt more than Class II, ... than Class IV
	// (the premise of the coAppMem feature).
	p := proc6(t)
	target := app(t, "canneal")
	var times []float64
	for _, co := range workload.TrainingCoApps() { // cg, sp, fluidanimate, ep
		r, err := p.RunColocation(target, []workload.App{co, co, co}, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.TargetSeconds)
	}
	for i := 1; i < len(times); i++ {
		if times[i] >= times[i-1] {
			t.Fatalf("co-runner class %d hurt no less than class %d: %v", i+1, i, times)
		}
	}
}

func TestMemoryBoundAppsScaleSublinearlyWithFrequency(t *testing.T) {
	// Lowering frequency stretches a CPU-bound app proportionally but a
	// memory-bound app less (memory latency is wall-clock constant).
	p := proc6(t)
	low := p.Spec().PStates.Len() - 1
	ratio := func(name string) float64 {
		a := app(t, name)
		hi, err := p.RunBaseline(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := p.RunBaseline(a, low)
		if err != nil {
			t.Fatal(err)
		}
		return lo.TargetSeconds / hi.TargetSeconds
	}
	fRatio := p.Spec().PStates.MaxFreq() / p.Spec().PStates.MinFreq()
	epR := ratio("ep") // CPU bound: ≈ fRatio
	cgR := ratio("cg") // memory bound: < fRatio
	if math.Abs(epR-fRatio) > 0.05*fRatio {
		t.Fatalf("ep slowdown %v, want ~%v", epR, fRatio)
	}
	if cgR >= epR-0.02 {
		t.Fatalf("cg slowdown %v not sublinear vs ep %v", cgR, epR)
	}
}

func TestExecutionTimeIncreasesAtLowerPStates(t *testing.T) {
	p := proc12(t)
	a := app(t, "ft")
	prev := 0.0
	for ps := 0; ps < p.Spec().PStates.Len(); ps++ {
		r, err := p.RunBaseline(a, ps)
		if err != nil {
			t.Fatal(err)
		}
		if r.TargetSeconds <= prev {
			t.Fatalf("P%d not slower than P%d", ps, ps-1)
		}
		prev = r.TargetSeconds
	}
}

func TestCoRunnersRestart(t *testing.T) {
	// A short co-runner against a long target must complete several times.
	p := proc6(t)
	long := app(t, "ep") // ~380 s
	short := app(t, "ft")
	short.Instructions /= 4
	r, err := p.RunColocation(long, []workload.App{short}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.CoRunners[0].Completions < 2 {
		t.Fatalf("short co-runner completed %d times, want ≥ 2", r.CoRunners[0].Completions)
	}
	if r.Target.Completions != 1 {
		t.Fatalf("target completions = %d", r.Target.Completions)
	}
}

func TestRunErrors(t *testing.T) {
	p := proc6(t)
	a := app(t, "cg")
	// Too many co-runners for the core count.
	co := make([]workload.App, 6)
	for i := range co {
		co[i] = a
	}
	if _, err := p.RunColocation(a, co, 0, Options{}); err == nil {
		t.Fatal("6 co-runners on 6 cores accepted")
	}
	// Bad P-state.
	if _, err := p.RunBaseline(a, 99); err == nil {
		t.Fatal("bad P-state accepted")
	}
	// Invalid target.
	bad := a
	bad.Instructions = 0
	if _, err := p.RunBaseline(bad, 0); err == nil {
		t.Fatal("invalid target accepted")
	}
	// Invalid co-runner.
	if _, err := p.RunColocation(a, []workload.App{bad}, 0, Options{}); err == nil {
		t.Fatal("invalid co-runner accepted")
	}
}

func TestOccupancyConservation(t *testing.T) {
	// Time-averaged target occupancy must be within the LLC, and with no
	// co-runners it must be the whole LLC.
	p := proc6(t)
	a := app(t, "sp")
	r, err := p.RunBaseline(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TargetAvgOccupancyBytes-p.Spec().LLCBytes) > 0.02*p.Spec().LLCBytes {
		t.Fatalf("solo occupancy %v, want ~%v", r.TargetAvgOccupancyBytes, p.Spec().LLCBytes)
	}
	co := app(t, "cg")
	r2, err := p.RunColocation(a, []workload.App{co, co}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.TargetAvgOccupancyBytes >= r.TargetAvgOccupancyBytes {
		t.Fatal("co-location did not shrink target occupancy")
	}
	if r2.TargetAvgOccupancyBytes <= 0 {
		t.Fatal("target occupancy vanished")
	}
}

func TestDRAMUtilizationGrowsWithCoRunners(t *testing.T) {
	p := proc6(t)
	a := app(t, "cg")
	r1, err := p.RunBaseline(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	co := []workload.App{a, a, a, a, a}
	r2, err := p.RunColocation(a, co, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.AvgDRAMUtilization <= r1.AvgDRAMUtilization {
		t.Fatal("utilization did not grow")
	}
	if r2.AvgMemLatencyNs <= r1.AvgMemLatencyNs {
		t.Fatal("memory latency did not grow")
	}
}

func TestMoreEpochsConverges(t *testing.T) {
	// Increasing epoch resolution must not change results much: the
	// engine is near-stationary for homogeneous co-runners.
	p := proc12(t)
	target := app(t, "canneal")
	cg := app(t, "cg")
	co := []workload.App{cg, cg, cg}
	a, err := p.RunColocation(target, co, 0, Options{Epochs: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunColocation(target, co, 0, Options{Epochs: 256})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TargetSeconds-b.TargetSeconds)/b.TargetSeconds > 0.02 {
		t.Fatalf("epoch sensitivity: %v vs %v", a.TargetSeconds, b.TargetSeconds)
	}
}

func TestTraceOccupancyAgreesWithAnalytical(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven validation is slow")
	}
	// Two contenders with very different access rates: the trace-driven
	// shared cache and the analytical fixed point must agree on who holds
	// more of the LLC.
	p := proc6(t)
	heavy := app(t, "cg")
	light := app(t, "ep")
	stats, err := p.TraceOccupancy([]workload.App{heavy, light}, 3_000_000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Occupancy <= stats[1].Occupancy {
		t.Fatalf("trace occupancy: heavy %d ≤ light %d lines", stats[0].Occupancy, stats[1].Occupancy)
	}
	// Analytical side: run co-location and check the heavy app's average
	// share also dominates.
	r, err := p.RunColocation(heavy, []workload.App{light}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.TargetAvgOccupancyBytes < p.Spec().LLCBytes/2 {
		t.Fatalf("analytical: heavy app holds %v of %v", r.TargetAvgOccupancyBytes, p.Spec().LLCBytes)
	}
}

func TestTraceOccupancyErrors(t *testing.T) {
	p := proc6(t)
	if _, err := p.TraceOccupancy(nil, 100, 1); err == nil {
		t.Fatal("empty app list accepted")
	}
	if _, err := p.TraceOccupancy([]workload.App{app(t, "cg")}, 0, 1); err == nil {
		t.Fatal("zero refs accepted")
	}
}

func BenchmarkBaselineRun(b *testing.B) {
	p := proc6(b)
	a := app(b, "cg")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunBaseline(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColocationRun11(b *testing.B) {
	p := proc12(b)
	target := app(b, "canneal")
	cg := app(b, "cg")
	co := make([]workload.App, 11)
	for i := range co {
		co[i] = cg
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunColocation(target, co, 0, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunTraceDrivenValidatesAnalytical(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven run is slow")
	}
	p := proc6(t)
	target := app(t, "canneal")
	cg := app(t, "cg")

	// Analytical slowdown for canneal + 3 cg.
	base, err := p.RunBaseline(target, 0)
	if err != nil {
		t.Fatal(err)
	}
	an, err := p.RunColocation(target, []workload.App{cg, cg, cg}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	analytical := an.TargetSeconds / base.TargetSeconds

	// Trace-driven estimate of the same scenario vs. its own solo run.
	solo, err := p.RunTraceDriven(target, nil, 0, 1_500_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := p.RunTraceDriven(target, []workload.App{cg, cg, cg}, 0, 1_500_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	traced := shared.TargetSeconds / solo.TargetSeconds

	if traced <= 1.0 {
		t.Fatalf("trace-driven slowdown %v shows no interference", traced)
	}
	// The two paths share the timing model but obtain miss ratios very
	// differently (measured LRU contention vs. the MRC/occupancy fixed
	// point), and the synthetic trace generators are calibrated to the
	// application's class rather than its exact MRC. The validation
	// claim is therefore directional and order-of-magnitude: both paths
	// must see interference, within a factor of five on the slowdown
	// delta.
	ratio := (traced - 1) / (analytical - 1)
	if ratio < 0.2 || ratio > 5.0 {
		t.Fatalf("trace-driven slowdown %v disagrees with analytical %v (delta ratio %v)",
			traced, analytical, ratio)
	}
	// Target occupancy must shrink under contention.
	if shared.OccupancyFractions[0] >= solo.OccupancyFractions[0] {
		t.Fatalf("occupancy did not shrink: %v -> %v",
			solo.OccupancyFractions[0], shared.OccupancyFractions[0])
	}
	if len(shared.MissRatios) != 4 {
		t.Fatalf("miss ratios = %v", shared.MissRatios)
	}
}

func TestRunTraceDrivenErrors(t *testing.T) {
	p := proc6(t)
	a := app(t, "cg")
	if _, err := p.RunTraceDriven(a, nil, 0, 10, 1); err == nil {
		t.Fatal("tiny ref count accepted")
	}
	if _, err := p.RunTraceDriven(a, nil, 99, 10000, 1); err == nil {
		t.Fatal("bad pstate accepted")
	}
	bad := a
	bad.Instructions = 0
	if _, err := p.RunTraceDriven(bad, nil, 0, 10000, 1); err == nil {
		t.Fatal("invalid target accepted")
	}
	co := make([]workload.App, 6)
	for i := range co {
		co[i] = a
	}
	if _, err := p.RunTraceDriven(a, co, 0, 10000, 1); err == nil {
		t.Fatal("too many co-runners accepted")
	}
}

func TestPackageEnergyAccounting(t *testing.T) {
	p := proc6(t)
	a := app(t, "ft")
	solo, err := p.RunBaseline(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if solo.PackageEnergyJ <= 0 {
		t.Fatal("no package energy")
	}
	// Energy = power × time exactly, with one active core.
	st, _ := p.Spec().PStates.State(0)
	wantPower := p.Spec().UncorePowerW + st.DynamicPowerW(p.Spec().CoreCEffW)
	if math.Abs(solo.PackageEnergyJ-wantPower*solo.TargetSeconds) > 1e-6*solo.PackageEnergyJ {
		t.Fatalf("energy %v, want %v", solo.PackageEnergyJ, wantPower*solo.TargetSeconds)
	}
	// Co-location: more active cores -> more power; longer run -> more
	// energy than solo.
	co := app(t, "cg")
	shared, err := p.RunColocation(a, []workload.App{co, co}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if shared.PackageEnergyJ <= solo.PackageEnergyJ {
		t.Fatal("co-located package energy not larger")
	}
	// Lower P-state: less power, but longer time; energy stays positive
	// and finite.
	low, err := p.RunBaseline(a, p.Spec().PStates.Len()-1)
	if err != nil {
		t.Fatal(err)
	}
	if low.PackageEnergyJ <= 0 {
		t.Fatal("low P-state energy not positive")
	}
}

func TestTimelineRecording(t *testing.T) {
	p := proc6(t)
	target := app(t, "canneal")
	cg := app(t, "cg")
	r, err := p.RunColocation(target, []workload.App{cg, cg}, 0, Options{Epochs: 32, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != 32 {
		t.Fatalf("got %d samples, want 32", len(r.Timeline))
	}
	prev := 0.0
	for i, s := range r.Timeline {
		if s.ElapsedSeconds <= prev {
			t.Fatalf("sample %d time not increasing", i)
		}
		prev = s.ElapsedSeconds
		if s.TargetIPS <= 0 || s.TargetMissRatio <= 0 || s.TargetOccupancyBytes <= 0 {
			t.Fatalf("sample %d degenerate: %+v", i, s)
		}
		if s.MemLatencyNs < p.Spec().Mem.BaseLatencyNs {
			t.Fatalf("sample %d latency below base", i)
		}
	}
	// Final sample's elapsed time equals the run's total.
	last := r.Timeline[len(r.Timeline)-1]
	if math.Abs(last.ElapsedSeconds-r.TargetSeconds) > 1e-9*r.TargetSeconds {
		t.Fatalf("timeline end %v != run time %v", last.ElapsedSeconds, r.TargetSeconds)
	}
	// Timeline off by default.
	r2, err := p.RunBaseline(target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Timeline != nil {
		t.Fatal("timeline recorded without being requested")
	}
}
