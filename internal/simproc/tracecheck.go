package simproc

import (
	"fmt"

	"colocmodel/internal/cache"
	"colocmodel/internal/trace"
	"colocmodel/internal/workload"
)

// TraceOccupancy runs the trace-driven validation path: it builds
// synthetic reference streams for the given applications, interleaves them
// proportionally to their analytical LLC access rates, plays the merged
// stream through a real set-associative model of this processor's LLC, and
// returns each application's measured occupancy fraction and miss ratio.
//
// This is the ground truth against which the analytical occupancy fixed
// point of the epoch engine is validated (see the package tests and the
// ablation benchmark).
func (p *Processor) TraceOccupancy(apps []workload.App, refs int, seed uint64) ([]cache.OwnerStats, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("simproc: TraceOccupancy needs at least one app")
	}
	if refs <= 0 {
		return nil, fmt.Errorf("simproc: TraceOccupancy needs a positive reference count")
	}
	llc, err := cache.New(cache.Config{
		SizeBytes: int(p.spec.LLCBytes),
		LineBytes: p.spec.Mem.LineBytes,
		Ways:      p.spec.LLCWays,
		Policy:    cache.LRU,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	gens := make([]trace.Generator, len(apps))
	weights := make([]int, len(apps))
	// Interleave proportionally to each app's LLC access rate (per unit
	// of instruction progress): the memory system's view of concurrent
	// execution.
	minRate := apps[0].LLCAccessRate
	for _, a := range apps[1:] {
		if a.LLCAccessRate < minRate {
			minRate = a.LLCAccessRate
		}
	}
	if minRate <= 0 {
		minRate = 1e-4
	}
	for i, a := range apps {
		g, err := a.TraceGenerator(uint64(i)<<50, seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		gens[i] = g
		w := int(a.LLCAccessRate/minRate + 0.5)
		if w < 1 {
			w = 1
		}
		if w > 64 {
			w = 64
		}
		weights[i] = w
	}
	iv, err := trace.NewInterleave(gens, weights)
	if err != nil {
		return nil, err
	}
	for i := 0; i < refs; i++ {
		addr, owner := iv.Next()
		llc.Access(owner, addr)
	}
	if err := llc.CheckInvariants(); err != nil {
		return nil, err
	}
	out := make([]cache.OwnerStats, len(apps))
	for i := range apps {
		out[i] = llc.Stats(i)
	}
	return out, nil
}
