package simproc

import (
	"fmt"
	"math"

	"colocmodel/internal/dram"
	"colocmodel/internal/perfctr"
	"colocmodel/internal/workload"
)

// Processor simulates one multicore machine.
type Processor struct {
	spec Spec
	mem  *dram.Controller
}

// New constructs a Processor from a validated Spec.
func New(spec Spec) (*Processor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mem, err := dram.New(spec.Mem)
	if err != nil {
		return nil, err
	}
	return &Processor{spec: spec, mem: mem}, nil
}

// Spec returns the processor specification.
func (p *Processor) Spec() Spec { return p.spec }

// appCtx is the per-core execution context of one running application.
type appCtx struct {
	app      workload.App
	restart  bool // co-runners restart on completion until the target ends
	executed float64
	finished bool // only meaningful for the non-restarting target

	// Accumulated hardware counters.
	instructions float64
	cycles       float64
	llcAccesses  float64
	llcMisses    float64

	// Fixed-point state for the current epoch.
	occupancy  float64 // LLC bytes
	missRatio  float64
	accessRate float64 // effective LLC accesses/instruction this epoch
	cpi        float64
	ips        float64
}

// CounterValue implements perfctr.Backend over the context's accumulated
// totals.
func (c *appCtx) CounterValue(ev perfctr.Event) (uint64, error) {
	switch ev {
	case perfctr.TotIns:
		return uint64(c.instructions), nil
	case perfctr.TotCyc:
		return uint64(c.cycles), nil
	case perfctr.L3TCM:
		return uint64(c.llcMisses), nil
	case perfctr.L3TCA:
		return uint64(c.llcAccesses), nil
	default:
		return 0, fmt.Errorf("simproc: unsupported event %s", ev)
	}
}

// AppResult reports one application context's activity during a run.
type AppResult struct {
	// App is the application that ran in this context.
	App workload.App
	// Counts are the hardware counters accumulated over the run.
	Counts perfctr.Counts
	// Completions is how many full executions finished (restarting
	// co-runners may complete several; the target completes exactly one).
	Completions int
}

// Result reports a co-location run.
type Result struct {
	// Machine is the processor name.
	Machine string
	// PStateIndex and FreqGHz identify the operating point of the run.
	PStateIndex int
	FreqGHz     float64
	// TargetSeconds is the target application's execution time.
	TargetSeconds float64
	// Target is the measured target context.
	Target AppResult
	// CoRunners are the co-located contexts, in core order.
	CoRunners []AppResult
	// AvgMemLatencyNs is the time-averaged loaded memory latency.
	AvgMemLatencyNs float64
	// AvgDRAMUtilization is the time-averaged offered DRAM load.
	AvgDRAMUtilization float64
	// TargetAvgOccupancyBytes is the target's time-averaged LLC share.
	TargetAvgOccupancyBytes float64
	// PackageEnergyJ is the simulated package energy over the run
	// (uncore power plus per-active-core dynamic power, integrated over
	// the target's execution) — the simulator's RAPL-counter analogue.
	PackageEnergyJ float64
	// Timeline holds per-epoch samples when Options.Timeline was set.
	Timeline []TimelineSample
}

// Options tunes a run.
type Options struct {
	// Epochs is the number of target-progress epochs (default 64). More
	// epochs resolve phase behaviour more finely at linear cost.
	Epochs int
	// Timeline, when true, records a per-epoch sample of the run's
	// internal state in Result.Timeline for diagnostics.
	Timeline bool
}

// TimelineSample is one epoch's snapshot of the co-location state.
type TimelineSample struct {
	// ElapsedSeconds is the wall-clock time at the end of the epoch.
	ElapsedSeconds float64
	// TargetIPS is the target's instructions per second.
	TargetIPS float64
	// TargetMissRatio is the target's LLC miss ratio.
	TargetMissRatio float64
	// TargetOccupancyBytes is the target's LLC share.
	TargetOccupancyBytes float64
	// MemLatencyNs is the loaded memory latency.
	MemLatencyNs float64
	// DRAMUtilization is the offered DRAM load fraction.
	DRAMUtilization float64
}

// defaultEpochs balances phase resolution against cost.
const defaultEpochs = 64

// RunBaseline executes app alone on the processor at the given P-state.
func (p *Processor) RunBaseline(app workload.App, pstate int) (Result, error) {
	return p.RunColocation(app, nil, pstate, Options{})
}

// RunColocation executes target on one core and coApps on additional
// cores, at P-state index pstate, until the target completes. Co-runners
// restart when they finish, keeping interference pressure constant — the
// protocol of Section IV-B3. It returns the target's execution time and
// the hardware counters of every context.
func (p *Processor) RunColocation(target workload.App, coApps []workload.App, pstate int, opts Options) (Result, error) {
	if err := target.Validate(); err != nil {
		return Result{}, err
	}
	if len(coApps) > p.spec.Cores-1 {
		return Result{}, fmt.Errorf("simproc: %d co-located apps exceed %d available cores",
			len(coApps), p.spec.Cores-1)
	}
	for i, a := range coApps {
		if err := a.Validate(); err != nil {
			return Result{}, fmt.Errorf("simproc: co-app %d: %w", i, err)
		}
	}
	st, err := p.spec.PStates.State(pstate)
	if err != nil {
		return Result{}, err
	}
	epochs := opts.Epochs
	if epochs <= 0 {
		epochs = defaultEpochs
	}

	ctxs := make([]*appCtx, 0, len(coApps)+1)
	tgt := &appCtx{app: target}
	ctxs = append(ctxs, tgt)
	for _, a := range coApps {
		ctxs = append(ctxs, &appCtx{app: a, restart: true})
	}

	var (
		elapsed      float64
		latIntegral  float64
		utilIntegral float64
		occIntegral  float64
		timeline     []TimelineSample
	)
	packagePowerW := p.spec.UncorePowerW +
		float64(len(ctxs))*st.DynamicPowerW(p.spec.CoreCEffW)
	completions := make([]int, len(ctxs))

	counts, err := perfctr.Collect(tgt, func() error {
		instrPerEpoch := target.Instructions / float64(epochs)
		for e := 0; e < epochs; e++ {
			p.solveFixedPoint(ctxs, st.FreqGHz)
			if tgt.ips <= 0 {
				return fmt.Errorf("simproc: target instruction rate collapsed to zero")
			}
			dt := instrPerEpoch / tgt.ips
			totalMissRate := 0.0
			for i, c := range ctxs {
				instr := c.ips * dt
				c.executed += instr
				c.instructions += instr
				c.cycles += st.FreqGHz * 1e9 * dt
				acc := instr * c.accessRate
				c.llcAccesses += acc
				c.llcMisses += acc * c.missRatio
				totalMissRate += c.ips * c.accessRate * c.missRatio
				if c.restart {
					for c.executed >= c.app.Instructions {
						c.executed -= c.app.Instructions
						completions[i]++
					}
				}
			}
			completions[0] = 0 // the target completes exactly once, below
			elapsed += dt
			latIntegral += p.mem.Latency(totalMissRate) * dt
			utilIntegral += p.mem.Utilization(totalMissRate) * dt
			occIntegral += tgt.occupancy * dt
			if opts.Timeline {
				timeline = append(timeline, TimelineSample{
					ElapsedSeconds:       elapsed,
					TargetIPS:            tgt.ips,
					TargetMissRatio:      tgt.missRatio,
					TargetOccupancyBytes: tgt.occupancy,
					MemLatencyNs:         p.mem.Latency(totalMissRate),
					DRAMUtilization:      p.mem.Utilization(totalMissRate),
				})
			}
		}
		tgt.finished = true
		completions[0] = 1
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Machine:                 p.spec.Name,
		PStateIndex:             pstate,
		FreqGHz:                 st.FreqGHz,
		TargetSeconds:           elapsed,
		Target:                  AppResult{App: target, Counts: counts, Completions: 1},
		AvgMemLatencyNs:         latIntegral / elapsed,
		AvgDRAMUtilization:      utilIntegral / elapsed,
		TargetAvgOccupancyBytes: occIntegral / elapsed,
		PackageEnergyJ:          packagePowerW * elapsed,
		Timeline:                timeline,
	}
	for i, c := range ctxs[1:] {
		res.CoRunners = append(res.CoRunners, AppResult{
			App: c.app,
			Counts: perfctr.Counts{
				Instructions: uint64(c.instructions),
				Cycles:       uint64(c.cycles),
				LLCMisses:    uint64(c.llcMisses),
				LLCAccesses:  uint64(c.llcAccesses),
			},
			Completions: completions[i+1],
		})
	}
	return res, nil
}

// SteadyRates solves the co-location fixed point once for the given set
// of applications running together at a P-state and returns each
// application's steady-state instruction rate (instructions per second).
// Phase modulation is evaluated at the start of execution; the paper's
// applications have small amplitudes, so this is also the run average to
// within a few percent. The discrete-event batch scheduler uses this to
// advance arbitrary, churning co-location states without running each
// membership epoch through the full engine.
func (p *Processor) SteadyRates(apps []workload.App, pstate int) ([]float64, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("simproc: SteadyRates needs at least one app")
	}
	if len(apps) > p.spec.Cores {
		return nil, fmt.Errorf("simproc: %d apps exceed %d cores", len(apps), p.spec.Cores)
	}
	st, err := p.spec.PStates.State(pstate)
	if err != nil {
		return nil, err
	}
	ctxs := make([]*appCtx, len(apps))
	for i, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("simproc: app %d: %w", i, err)
		}
		ctxs[i] = &appCtx{app: a}
	}
	p.solveFixedPoint(ctxs, st.FreqGHz)
	out := make([]float64, len(ctxs))
	for i, c := range ctxs {
		out[i] = c.ips
	}
	return out, nil
}

// fixed-point iteration controls.
const (
	fpIterations = 80
	fpDamping    = 0.5
	fpTolerance  = 1e-9
)

// solveFixedPoint computes the epoch's steady state: per-context LLC
// occupancy, miss ratio, CPI and instruction rate, and the shared memory
// latency, mutually consistent at frequency freqGHz.
func (p *Processor) solveFixedPoint(ctxs []*appCtx, freqGHz float64) {
	n := len(ctxs)
	llc := p.spec.LLCBytes

	// Effective access rate this epoch: the application's base rate
	// modulated by its phase position (three full phase cycles per run).
	for _, c := range ctxs {
		progress := 0.0
		if c.app.Instructions > 0 {
			progress = math.Mod(c.executed/c.app.Instructions, 1)
		}
		mod := 1 + c.app.PhaseAmplitude*math.Sin(2*math.Pi*3*progress)
		c.accessRate = c.app.LLCAccessRate * mod
		// Initial guesses.
		if c.occupancy == 0 {
			c.occupancy = llc / float64(n)
		}
	}

	memLat := p.spec.Mem.BaseLatencyNs
	for iter := 0; iter < fpIterations; iter++ {
		// Miss ratios from current occupancies.
		for _, c := range ctxs {
			c.missRatio = c.app.MRC.Ratio(c.occupancy)
		}
		// CPI and instruction rate at the current memory latency.
		memLatCycles := memLat * freqGHz
		for _, c := range ctxs {
			hit := (1 - c.missRatio) * p.spec.LLCHitLatencyCycles * c.app.HitExposeFrac
			miss := c.missRatio * memLatCycles * c.app.MissExposeFrac
			c.cpi = c.app.BaseCPI + c.accessRate*(hit+miss)
			c.ips = freqGHz * 1e9 / c.cpi
		}
		// Aggregate miss bandwidth → new memory latency (damped).
		total := 0.0
		for _, c := range ctxs {
			total += c.ips * c.accessRate * c.missRatio
		}
		newLat := p.mem.Latency(total)
		// Occupancy proportional to LLC access rate: in a shared LRU
		// cache both insertions and hits refresh recency, so an
		// application's steady-state share tracks the rate at which it
		// touches the cache, not just the rate at which it misses. A
		// small floor keeps nearly-idle applications from vanishing.
		weightSum := 0.0
		weights := make([]float64, n)
		for i, c := range ctxs {
			w := c.ips*c.accessRate + 1e3
			weights[i] = w
			weightSum += w
		}
		maxDelta := math.Abs(newLat-memLat) / p.spec.Mem.BaseLatencyNs
		for i, c := range ctxs {
			targetOcc := llc * weights[i] / weightSum
			delta := fpDamping * (targetOcc - c.occupancy)
			c.occupancy += delta
			maxDelta = math.Max(maxDelta, math.Abs(delta)/llc)
		}
		memLat += fpDamping * (newLat - memLat)
		if maxDelta < fpTolerance {
			break
		}
	}
	// Final consistency pass with converged occupancies and latency.
	memLatCycles := memLat * freqGHz
	for _, c := range ctxs {
		c.missRatio = c.app.MRC.Ratio(c.occupancy)
		hit := (1 - c.missRatio) * p.spec.LLCHitLatencyCycles * c.app.HitExposeFrac
		miss := c.missRatio * memLatCycles * c.app.MissExposeFrac
		c.cpi = c.app.BaseCPI + c.accessRate*(hit+miss)
		c.ips = freqGHz * 1e9 / c.cpi
	}
}
