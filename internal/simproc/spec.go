// Package simproc simulates a multicore processor executing co-located
// applications: the substrate standing in for the two Intel Xeon machines
// of Table IV.
//
// The simulator reproduces the two interference mechanisms the paper
// attributes co-location slowdown to — contention for shared last-level
// cache capacity and for DRAM bandwidth — using an epoch-driven analytical
// engine. In each epoch the engine solves a coupled fixed point over the
// co-running applications:
//
//   - LLC occupancy: each application's share of the shared cache is
//     proportional to the rate at which it inserts lines (its miss
//     bandwidth), the steady-state behaviour of a shared LRU cache.
//   - Miss ratios: each application's miss ratio follows its miss-ratio
//     curve evaluated at its current occupancy.
//   - Memory latency: the DRAM controller's loaded latency is a queueing
//     function of the aggregate miss bandwidth.
//   - CPI and instruction rate: each application's cycles-per-instruction
//     combines its base CPI with the exposed fractions of LLC hit and
//     memory latencies at the current P-state frequency.
//
// All four couple to each other; the engine iterates with damping until
// convergence. The result is an execution time whose dependence on the
// co-runners is smoothly nonlinear in exactly the features of Table I —
// the property the paper's models must learn.
//
// Hardware performance counters (instructions, cycles, LLC accesses, LLC
// misses) are accumulated per application context and exposed through the
// internal/perfctr PAPI-like backend.
package simproc

import (
	"fmt"

	"colocmodel/internal/dram"
	"colocmodel/internal/dvfs"
)

// Spec describes a multicore processor (one row of Table IV).
type Spec struct {
	// Name identifies the processor, e.g. "Xeon E5649".
	Name string
	// Cores is the number of physical cores. Hyperthreading is off
	// throughout, as in the paper (Section II).
	Cores int
	// LLCBytes is the shared last-level cache capacity.
	LLCBytes float64
	// LLCWays is the LLC associativity (used by the trace-driven path).
	LLCWays int
	// LLCHitLatencyCycles is the load-to-use latency of an LLC hit.
	LLCHitLatencyCycles float64
	// PStates is the DVFS operating-point table.
	PStates *dvfs.Table
	// Mem is the memory controller configuration.
	Mem dram.Config
	// CoreCEffW is the effective switched capacitance per core for the
	// dynamic power model (W per V²·GHz).
	CoreCEffW float64
	// UncorePowerW is the frequency-independent package power.
	UncorePowerW float64
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("simproc: spec with empty name")
	}
	if s.Cores <= 0 {
		return fmt.Errorf("simproc: %s has %d cores", s.Name, s.Cores)
	}
	if s.LLCBytes <= 0 {
		return fmt.Errorf("simproc: %s LLC size must be positive", s.Name)
	}
	if s.LLCWays <= 0 {
		return fmt.Errorf("simproc: %s LLC ways must be positive", s.Name)
	}
	if s.LLCHitLatencyCycles <= 0 {
		return fmt.Errorf("simproc: %s LLC hit latency must be positive", s.Name)
	}
	if s.PStates == nil || s.PStates.Len() == 0 {
		return fmt.Errorf("simproc: %s has no P-states", s.Name)
	}
	if err := s.Mem.Validate(); err != nil {
		return fmt.Errorf("simproc: %s: %w", s.Name, err)
	}
	if s.CoreCEffW < 0 || s.UncorePowerW < 0 {
		return fmt.Errorf("simproc: %s power parameters must be non-negative", s.Name)
	}
	return nil
}

const mib = 1024.0 * 1024.0

// XeonE5649 returns the 6-core Westmere-EP machine of Table IV:
// 6 cores, 12 MB L3, 1.60–2.53 GHz, triple-channel DDR3-1333.
func XeonE5649() Spec {
	ps, err := dvfs.NewTable([]float64{2.53, 2.26, 2.13, 1.86, 1.73, 1.60}, 0.85, 1.20)
	if err != nil {
		panic(err) // static table
	}
	return Spec{
		Name:                "Xeon E5649",
		Cores:               6,
		LLCBytes:            12 * mib,
		LLCWays:             16,
		LLCHitLatencyCycles: 42,
		PStates:             ps,
		Mem: dram.Config{
			BaseLatencyNs:    65,
			PeakBandwidthGBs: 19, // sustained, not theoretical peak

			Channels:        3,
			BanksPerChannel: 8,
			LineBytes:       64,
		},
		CoreCEffW:    1.9,
		UncorePowerW: 22,
	}
}

// XeonE52697v2 returns the 12-core Ivy Bridge-EP machine of Table IV:
// 12 cores, 30 MB L3, 1.20–2.70 GHz, quad-channel DDR3-1866.
func XeonE52697v2() Spec {
	ps, err := dvfs.NewTable([]float64{2.70, 2.40, 2.10, 1.80, 1.50, 1.20}, 0.80, 1.15)
	if err != nil {
		panic(err) // static table
	}
	return Spec{
		Name:                "Xeon E5-2697v2",
		Cores:               12,
		LLCBytes:            30 * mib,
		LLCWays:             20,
		LLCHitLatencyCycles: 45,
		PStates:             ps,
		Mem: dram.Config{
			BaseLatencyNs:    70,
			PeakBandwidthGBs: 42, // sustained, not theoretical peak

			Channels:        4,
			BanksPerChannel: 8,
			LineBytes:       64,
		},
		CoreCEffW:    1.5,
		UncorePowerW: 30,
	}
}

// Machines returns both Table IV processors, 6-core first.
func Machines() []Spec {
	return []Spec{XeonE5649(), XeonE52697v2()}
}
