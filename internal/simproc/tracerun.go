package simproc

import (
	"fmt"

	"colocmodel/internal/cache"
	"colocmodel/internal/trace"
	"colocmodel/internal/workload"
)

// TraceRunResult reports a trace-driven co-location estimate.
type TraceRunResult struct {
	// TargetSeconds is the estimated target execution time.
	TargetSeconds float64
	// MissRatios holds the measured shared-LLC miss ratio per context
	// (target first).
	MissRatios []float64
	// OccupancyFractions holds each context's measured LLC share.
	OccupancyFractions []float64
	// References is the number of trace references replayed.
	References int
}

// RunTraceDriven estimates a co-location's effect by measurement instead
// of the analytical occupancy fixed point: it replays interleaved
// synthetic reference streams through a real set-associative model of the
// shared LLC, measures each application's miss ratio and occupancy under
// contention, and feeds the *measured* miss ratios through the same
// CPI/DRAM timing model the analytical engine uses.
//
// The interleaving is iterated: reference streams are merged in proportion
// to each application's current instructions-per-second estimate times its
// LLC access rate, and the IPS estimates are refined from the measured
// miss ratios until the mix stabilises. This is the ground-truth path the
// analytical engine is validated against (slower, but free of the
// occupancy-model approximation).
func (p *Processor) RunTraceDriven(target workload.App, coApps []workload.App, pstate int, refs int, seed uint64) (*TraceRunResult, error) {
	if err := target.Validate(); err != nil {
		return nil, err
	}
	if len(coApps) > p.spec.Cores-1 {
		return nil, fmt.Errorf("simproc: %d co-located apps exceed %d available cores",
			len(coApps), p.spec.Cores-1)
	}
	if refs < 1000 {
		return nil, fmt.Errorf("simproc: need at least 1000 references, got %d", refs)
	}
	st, err := p.spec.PStates.State(pstate)
	if err != nil {
		return nil, err
	}
	apps := append([]workload.App{target}, coApps...)
	for i, a := range apps[1:] {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("simproc: co-app %d: %w", i, err)
		}
	}

	// Initial IPS guesses from solo CPI at the unloaded memory latency.
	ips := make([]float64, len(apps))
	missRatio := make([]float64, len(apps))
	for i, a := range apps {
		missRatio[i] = a.MRC.Ratio(p.spec.LLCBytes / float64(len(apps)))
		ips[i] = st.FreqGHz * 1e9 / cpiOf(a, missRatio[i], p.spec, st.FreqGHz, p.spec.Mem.BaseLatencyNs)
	}

	const passes = 3
	var llc *cache.Cache
	for pass := 0; pass < passes; pass++ {
		llc, err = cache.New(cache.Config{
			SizeBytes: int(p.spec.LLCBytes),
			LineBytes: p.spec.Mem.LineBytes,
			Ways:      p.spec.LLCWays,
			Policy:    cache.LRU,
			Seed:      seed + uint64(pass),
		})
		if err != nil {
			return nil, err
		}
		gens := make([]trace.Generator, len(apps))
		weights := make([]int, len(apps))
		// Weight each stream by its LLC access bandwidth (IPS × access
		// rate), normalised to small integers.
		minRate := 0.0
		for i, a := range apps {
			r := ips[i] * a.LLCAccessRate
			if minRate == 0 || (r > 0 && r < minRate) {
				minRate = r
			}
		}
		if minRate <= 0 {
			minRate = 1
		}
		for i, a := range apps {
			g, err := a.TraceGenerator(uint64(i)<<50, seed+uint64(i)*104729)
			if err != nil {
				return nil, err
			}
			gens[i] = g
			w := int(ips[i]*a.LLCAccessRate/minRate + 0.5)
			if w < 1 {
				w = 1
			}
			if w > 128 {
				w = 128
			}
			weights[i] = w
		}
		iv, err := trace.NewInterleave(gens, weights)
		if err != nil {
			return nil, err
		}
		for r := 0; r < refs; r++ {
			addr, owner := iv.Next()
			llc.Access(owner, addr)
		}
		// Refine miss ratios and IPS from measurement; discard the first
		// half of accesses' cold effects by keeping ratios as measured
		// (adequate for validation purposes).
		totalMissRate := 0.0
		for i, a := range apps {
			stc := llc.Stats(i)
			if stc.Accesses > 0 {
				missRatio[i] = stc.MissRatio()
			}
			totalMissRate += ips[i] * a.LLCAccessRate * missRatio[i]
		}
		lat := p.mem.Latency(totalMissRate)
		for i, a := range apps {
			ips[i] = st.FreqGHz * 1e9 / cpiOf(a, missRatio[i], p.spec, st.FreqGHz, lat)
		}
	}

	res := &TraceRunResult{
		TargetSeconds: target.Instructions / ips[0],
		References:    refs,
	}
	for i := range apps {
		res.MissRatios = append(res.MissRatios, missRatio[i])
		res.OccupancyFractions = append(res.OccupancyFractions, llc.OccupancyFraction(i))
	}
	return res, nil
}

// cpiOf evaluates the shared CPI model for one application at a given
// miss ratio and memory latency.
func cpiOf(a workload.App, missRatio float64, spec Spec, freqGHz, memLatNs float64) float64 {
	hit := (1 - missRatio) * spec.LLCHitLatencyCycles * a.HitExposeFrac
	miss := missRatio * memLatNs * freqGHz * a.MissExposeFrac
	return a.BaseCPI + a.LLCAccessRate*(hit+miss)
}
