package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"colocmodel/internal/features"
	"colocmodel/internal/fleetobs"
	"colocmodel/internal/obs"
	"colocmodel/internal/serve"
)

// Config tunes the router.
type Config struct {
	// Replicas is the replica-set size R: each scenario key maps to R
	// distinct backends on the ring (owner first). Default 2.
	Replicas int
	// VirtualNodes per backend on the hash ring. Default 64.
	VirtualNodes int
	// ProbeInterval paces the health/generation probe loop. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip. Default 2s.
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive probe failures before a backend is
	// ejected from routing. Default 3.
	EjectAfter int
	// ReadmitBackoff is the first re-admission probe delay after an
	// ejection; it doubles per failed re-probe up to ReadmitBackoffMax.
	// Defaults 1s and 30s.
	ReadmitBackoff    time.Duration
	ReadmitBackoffMax time.Duration
	// HedgeAfter fixes the hedge delay: a predict call still unanswered
	// after this long launches a second attempt on the next replica. 0
	// derives the delay from the observed backend p95 (floored at
	// HedgeMin); negative disables hedging.
	HedgeAfter time.Duration
	// HedgeMin floors the derived hedge delay. Default 1ms.
	HedgeMin time.Duration
	// RequestTimeout bounds one inbound request end to end. Default 10s.
	RequestTimeout time.Duration
	// Client reaches the backends; nil selects a pooled transport.
	Client *http.Client
	// Logger receives one structured line per request; nil disables.
	Logger *slog.Logger
	// TraceRing bounds the retained-trace ring (entries). 0 selects the
	// default (256); negative disables tracing entirely.
	TraceRing int
	// SlowThreshold is the trace-retention bar: traces at least this
	// slow are kept for GET /v1/traces. 0 selects 100ms; negative
	// retains every trace (soaks and debugging).
	SlowThreshold time.Duration
	// SLOObjective is the predict-path availability objective (e.g.
	// 0.999). 0 selects the default 0.999; negative disables SLO
	// tracking.
	SLOObjective float64
	// SLOLatencyTarget marks a successful predict as SLO-bad when it
	// exceeds this duration. 0 selects 250ms; negative counts errors
	// only.
	SLOLatencyTarget time.Duration
	// FleetScrapeTimeout bounds one backend /metrics scrape in the
	// fleet-aggregation endpoint. Default 2s.
	FleetScrapeTimeout time.Duration
}

func (c *Config) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = defaultVirtualNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitBackoff <= 0 {
		c.ReadmitBackoff = time.Second
	}
	if c.ReadmitBackoffMax <= 0 {
		c.ReadmitBackoffMax = 30 * time.Second
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Client == nil {
		tr := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 128}
		c.Client = &http.Client{Transport: tr}
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.SlowThreshold < 0 {
		c.SlowThreshold = 0 // obs semantics: 0 = everything is slow
	}
	if c.SLOObjective == 0 {
		c.SLOObjective = 0.999
	}
	if c.SLOLatencyTarget == 0 {
		c.SLOLatencyTarget = 250 * time.Millisecond
	}
	if c.SLOLatencyTarget < 0 {
		c.SLOLatencyTarget = 0
	}
	if c.FleetScrapeTimeout <= 0 {
		c.FleetScrapeTimeout = 2 * time.Second
	}
}

// Router is the scale-out gateway: it consistent-hashes canonicalised
// scenario keys across a replicated coloserve fleet, coalesces identical
// in-flight predictions, hedges slow calls, and coordinates rolling
// model promotions with per-client generation monotonicity.
type Router struct {
	cfg     Config
	pool    *Pool
	metrics *Metrics
	flights flightGroup
	floors  floorTable
	backLat latencyHist // completed predict proxy latencies → p95 hedge delay
	logger  *slog.Logger
	tracer  *obs.Tracer     // nil when tracing is disabled
	slo     *obs.SLOTracker // nil when SLO tracking is disabled
	fleet   *fleetobs.Aggregator
	started time.Time

	promoteMu sync.Mutex // serializes rolling promotions

	muxOnce sync.Once
	mux     http.Handler
}

// New builds a router. Join backends with Pool().Add, then (optionally)
// Start the probe loop.
func New(cfg Config) *Router {
	cfg.defaults()
	m := NewMetrics("predict", "predict_batch", "placements", "observations", "reload",
		"models", "healthz", "cluster", "metrics", "traces", "slo", "fleet_metrics")
	rt := &Router{
		cfg:     cfg,
		pool:    newPool(cfg, m),
		metrics: m,
		logger:  cfg.Logger,
		fleet:   &fleetobs.Aggregator{Client: cfg.Client, Timeout: cfg.FleetScrapeTimeout},
		started: time.Now(),
	}
	if cfg.TraceRing > 0 {
		rt.tracer = obs.NewTracer(obs.Config{Capacity: cfg.TraceRing, SlowThreshold: cfg.SlowThreshold})
	}
	if cfg.SLOObjective > 0 {
		rt.slo = obs.NewSLOTracker(obs.SLOConfig{Objective: cfg.SLOObjective, LatencyTarget: cfg.SLOLatencyTarget})
	}
	return rt
}

// Pool returns the router's backend pool.
func (rt *Router) Pool() *Pool { return rt.pool }

// Metrics returns the router's metrics layer.
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// Tracer returns the router's span tracer (nil when tracing is
// disabled via a negative Config.TraceRing).
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// SLO returns the router's predict-path SLO tracker (nil when SLO
// tracking is disabled via a negative Config.SLOObjective).
func (rt *Router) SLO() *obs.SLOTracker { return rt.slo }

// Start probes every backend once (so routing starts with fresh health
// and generation data) and launches the periodic probe loop.
func (rt *Router) Start(ctx context.Context) {
	rt.pool.ProbeAll(ctx)
	rt.pool.Start(ctx, rt.cfg.ProbeInterval)
}

// floorTable tracks, per (client, model), the highest serving
// generation the client has observed. Routing never sends a client to a
// backend below its floor, so a rolling promotion exposes no
// mixed-generation window to any single client. Clients identify
// themselves with the X-Client-ID header; anonymous requests share one
// conservative floor.
type floorTable struct {
	mu sync.Mutex
	m  map[string]uint64
}

func floorKey(client, model string) string { return client + "\x00" + model }

func (f *floorTable) get(client, model string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m[floorKey(client, model)]
}

func (f *floorTable) raise(client, model string, gen uint64) {
	if gen == 0 {
		return
	}
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]uint64)
	}
	k := floorKey(client, model)
	if gen > f.m[k] {
		f.m[k] = gen
	}
	f.mu.Unlock()
}

// ---- HTTP plumbing ----

type handlerFunc func(r *http.Request) (int, any)

type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable router error codes (the serve tier's codes pass through
// verbatim on proxied responses).
const (
	CodeBadRequest = "bad_request"
	// CodeNoBackend marks requests that found no admissible backend
	// (none healthy, or none at the client's generation floor).
	CodeNoBackend = "no_backend"
	// CodeBackendUnavailable marks requests whose every candidate
	// backend failed.
	CodeBackendUnavailable = "backend_unavailable"
	// CodeTracingDisabled marks calls to /v1/traces on a router started
	// with the trace ring disabled.
	CodeTracingDisabled = "tracing_disabled"
	// CodeSLODisabled marks calls to /v1/slo on a router started with
	// SLO tracking disabled.
	CodeSLODisabled = "slo_disabled"
)

func errJSON(status int, code, format string, args ...any) (int, any) {
	return status, errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}}
}

// retryableUnavailable is the router's own typed 503: transient (a
// drain in progress, or a promotion window where no backend satisfies
// the caller's generation floor yet), so it carries Retry-After — the
// same contract the serve tier's drain shed gives the router.
func (rt *Router) retryableUnavailable(r *http.Request, format string, args ...any) (int, any) {
	if h := responseHeaderOf(r); h != nil {
		h.Set("Retry-After", "1")
	}
	return errJSON(http.StatusServiceUnavailable, CodeNoBackend, format, args...)
}

// Handler returns the router's routing table (built once).
func (rt *Router) Handler() http.Handler {
	rt.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("POST /v1/predict", rt.wrap("predict", rt.handlePredict))
		mux.HandleFunc("POST /v1/predict/batch", rt.wrap("predict_batch", rt.handlePredictBatch))
		mux.HandleFunc("POST /v1/placements", rt.handlePlacements)
		mux.HandleFunc("POST /v1/observations", rt.wrap("observations", rt.handleObservations))
		mux.HandleFunc("POST /v1/models/reload", rt.wrap("reload", rt.handleReload))
		mux.HandleFunc("GET /v1/models", rt.wrap("models", rt.handleModels))
		mux.HandleFunc("GET /v1/cluster", rt.wrap("cluster", rt.handleCluster))
		mux.HandleFunc("GET /v1/traces", rt.wrap("traces", rt.handleTraces))
		mux.HandleFunc("GET /v1/slo", rt.wrap("slo", rt.handleSLO))
		mux.HandleFunc("GET /v1/fleet/metrics", rt.handleFleetMetrics)
		mux.HandleFunc("GET /healthz", rt.wrap("healthz", rt.handleHealthz))
		mux.HandleFunc("GET /metrics", rt.handleMetrics)
		rt.mux = mux
	})
	return rt.mux
}

// ingress applies the edge identity contract shared by every router
// handler: adopt or mint the request ID, echo it, open the root span at
// the request's arrival time, and adopt the caller's W3C trace context
// (Traceparent) as the parent of the router's trace when one is
// present.
func (rt *Router) ingress(w http.ResponseWriter, r *http.Request, endpoint string, start time.Time) (string, *obs.Trace) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	tr := rt.tracer.StartAt("http", endpoint, reqID, start)
	if tc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		tr.AdoptContext(tc)
	}
	return reqID, tr
}

// wrap applies the cross-cutting layers: in-flight accounting, the
// request timeout, the request-ID and trace-context contract (adopt or
// mint, echo, and — in the proxy path — forward), metrics, SLO
// accounting on the predict paths, and one structured log line.
func (rt *Router) wrap(endpoint string, h handlerFunc) http.HandlerFunc {
	sloPath := endpoint == "predict" || endpoint == "predict_batch"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rt.metrics.RequestStarted()
		defer rt.metrics.RequestDone()
		reqID, tr := rt.ingress(w, r, endpoint, start)
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
		defer cancel()
		// Handlers return (status, body) without seeing the writer;
		// proxy handlers stitch Server-Timing/X-Backend through here.
		ctx = context.WithValue(ctx, respHeaderKey{}, w.Header())
		ctx = obs.NewContext(ctx, reqID, tr)
		status, body := h(r.WithContext(ctx))
		writeJSON(w, status, body)
		d := time.Since(start)
		tr.Finish(status, status >= 500)
		rt.logRequest(r, endpoint, reqID, status, d)
		rt.metrics.ObserveRequest(endpoint, d, status >= 500)
		if sloPath {
			rt.slo.Observe(d, status >= 500)
		}
	}
}

func (rt *Router) logRequest(r *http.Request, endpoint, reqID string, status int, d time.Duration) {
	if rt.logger == nil {
		return
	}
	lvl, msg := slog.LevelInfo, "request"
	if status >= 500 {
		lvl, msg = slog.LevelError, "request failed"
	}
	rt.logger.LogAttrs(context.Background(), lvl, msg,
		slog.String("request_id", reqID),
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Float64("dur_ms", float64(d)/1e6),
	)
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// passthrough is a proxied response replayed to the client verbatim:
// wrap encodes json.RawMessage without re-marshalling.
type passthrough = json.RawMessage

// clientID identifies the requester for generation-floor tracking.
func clientID(r *http.Request) string { return r.Header.Get("X-Client-ID") }

// ---- proxying ----

// proxyResult is one backend call's outcome.
type proxyResult struct {
	backend      string
	status       int
	body         []byte
	serverTiming string
	traceSpans   string // backend's X-Trace-Spans payload, verbatim
	shed         bool   // typed 503 "draining": alive, re-route, don't eject
	err          error
	hedge        bool
	elapsed      time.Duration
	hedgeWait    time.Duration // delay waited before a hedge fired (0: none fired)
}

// ok reports whether the result can be returned to a client: any
// definitive response that is not a drain shed. 4xx is definitive (all
// replicas would reject identically); 5xx and transport errors are not.
func (pr *proxyResult) ok() bool {
	return pr.err == nil && !pr.shed && pr.status < 500
}

// outboundTraceparent renders the W3C trace context to inject into one
// proxied call: a fresh child of the request's router trace. Empty when
// tracing is disabled or the request carries no trace. Callers that
// outlive the request (abandoned hedge losers) must capture this string
// before the handler returns rather than hold the trace itself.
func outboundTraceparent(ctx context.Context) string {
	if tc, ok := obs.TraceFrom(ctx).OutboundContext(); ok {
		return tc.Header()
	}
	return ""
}

// proxy performs one backend call, forwarding the request ID and trace
// context and recording per-backend metrics. A typed drain shed (503 +
// Retry-After) marks the backend shedding in the pool rather than
// failed. tp is the pre-rendered Traceparent value ("" injects none):
// a string rather than the live trace, so calls that outlive the
// request never touch a recycled trace.
func (rt *Router) proxy(ctx context.Context, b *Backend, method, path string, body []byte, reqID, tp string) *proxyResult {
	start := time.Now()
	b.acquire()
	defer b.release()
	pr := &proxyResult{backend: b.Name}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.Base+path, rd)
	if err != nil {
		pr.err = err
		rt.metrics.BackendRequest(b.Name, true)
		return pr
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	if tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		pr.err = err
		pr.elapsed = time.Since(start)
		rt.metrics.BackendRequest(b.Name, true)
		return pr
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	pr.elapsed = time.Since(start)
	if err != nil {
		pr.err = err
		rt.metrics.BackendRequest(b.Name, true)
		return pr
	}
	pr.status = resp.StatusCode
	pr.body = raw
	pr.serverTiming = resp.Header.Get("Server-Timing")
	pr.traceSpans = resp.Header.Get(obs.TraceSpansHeader)
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
		// The serve tier's drain shed: alive but refusing. Re-route
		// without ejecting; the probe loop re-admits when the drain ends.
		pr.shed = true
		secs := 1
		if n, perr := fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &secs); n != 1 || perr != nil || secs < 1 {
			secs = 1
		}
		b.markShedding(time.Duration(secs) * time.Second)
		rt.metrics.ShedRecorded(b.Name)
		rt.metrics.BackendRequest(b.Name, false)
		return pr
	}
	rt.metrics.BackendRequest(b.Name, resp.StatusCode >= 500)
	return pr
}

// hedgeDelay is the time to wait before launching a second attempt on
// the next replica: the configured HedgeAfter, or the observed backend
// p95 floored at HedgeMin. Negative HedgeAfter disables hedging.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	if rt.cfg.HedgeAfter < 0 {
		return -1
	}
	if d := rt.backLat.quantile(0.95); d > rt.cfg.HedgeMin {
		return d
	}
	return rt.cfg.HedgeMin
}

// hedgedCall runs a backend call against the candidate list with
// tail-latency hedging: the primary is launched immediately; if it has
// not answered within the hedge delay, the next candidate is launched
// in parallel and the first usable reply wins. Failures and drain sheds
// fail over to the next candidate immediately. The losing reply is
// discarded; only the winning call's latency feeds the p95 estimator,
// so hedges never double-count.
//
// Every span lives on this goroutine: launch opens a "proxy" or
// "hedge" span before the backend goroutine starts, and the select
// loop ends it when the reply (or the winner) arrives. Abandoned
// losers are ended and annotated at winner time — their goroutines may
// outlive the request, so they only ever see pre-rendered strings,
// never the trace.
func (rt *Router) hedgedCall(ctx context.Context, cands []*Backend, method, path string, body []byte, reqID string) *proxyResult {
	tr := obs.TraceFrom(ctx)
	callStart := time.Now()
	resc := make(chan *proxyResult, len(cands))
	spans := make(map[string]obs.Span, len(cands))
	tp := outboundTraceparent(ctx)
	launch := func(b *Backend, hedge bool) {
		name := "proxy"
		if hedge {
			name = "hedge"
		}
		sp := tr.StartSpan(name)
		sp.Annotate("backend", b.Name)
		spans[b.Name] = sp
		go func() {
			pr := rt.proxy(ctx, b, method, path, body, reqID, tp)
			pr.hedge = hedge
			resc <- pr
		}()
	}
	finishSpan := func(pr *proxyResult, won bool) {
		sp, ok := spans[pr.backend]
		if !ok {
			return
		}
		delete(spans, pr.backend)
		switch {
		case won:
			sp.AttachRemote(pr.backend, pr.traceSpans)
		case pr.err != nil:
			sp.Fail(pr.err.Error())
		case pr.shed:
			sp.Annotate("outcome", "shed")
		default:
			sp.Annotate("outcome", fmt.Sprintf("status %d", pr.status))
		}
		sp.End()
	}
	abandonRest := func() {
		for name, sp := range spans {
			sp.Annotate("outcome", "abandoned")
			sp.End()
			delete(spans, name)
		}
	}
	launch(cands[0], false)
	next, outstanding := 1, 1

	delay := rt.hedgeDelay()
	var hedgeC <-chan time.Time
	if delay > 0 && len(cands) > 1 {
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	var hedgeWait time.Duration
	var lastFailure *proxyResult
	for {
		select {
		case pr := <-resc:
			outstanding--
			if pr.ok() {
				if pr.hedge {
					rt.metrics.HedgeWon()
				}
				rt.backLat.observe(pr.elapsed)
				finishSpan(pr, true)
				abandonRest()
				pr.hedgeWait = hedgeWait
				return pr
			}
			finishSpan(pr, false)
			lastFailure = pr
			// Immediate failover: a failed or shedding candidate never
			// waits out the hedge timer.
			if next < len(cands) {
				launch(cands[next], false)
				next++
				outstanding++
			} else if outstanding == 0 {
				lastFailure.hedgeWait = hedgeWait
				return lastFailure
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				rt.metrics.HedgeFired()
				hedgeWait = time.Since(callStart)
				launch(cands[next], true)
				next++
				outstanding++
			}
		case <-ctx.Done():
			abandonRest()
			if lastFailure != nil {
				return lastFailure
			}
			return &proxyResult{err: ctx.Err()}
		}
	}
}

// candidates resolves the admissible backends for a key: the replica
// set in ring order filtered to available backends at or above the
// client's generation floor; if the whole set is inadmissible, any
// available backend meeting the floor (highest generation first) keeps
// the request servable at the cost of affinity.
func (rt *Router) candidates(key, model string, floor uint64) []*Backend {
	set := rt.pool.Replicas(key, rt.cfg.Replicas)
	cands := make([]*Backend, 0, len(set))
	for _, b := range set {
		if b.Available() && b.Gen(model) >= floor {
			cands = append(cands, b)
		}
	}
	if len(cands) > 0 {
		return cands
	}
	fallback := rt.pool.Available()
	sort.SliceStable(fallback, func(i, j int) bool { return fallback[i].Gen(model) > fallback[j].Gen(model) })
	for _, b := range fallback {
		if b.Gen(model) >= floor {
			cands = append(cands, b)
		}
	}
	return cands
}

// routeKey is the consistent-hash key of a scenario: the requested
// model plus the serve tier's canonical scenario form — byte-identical
// canonicalisation to the backend cache key (minus the generation,
// which must not move keys across the ring on every promotion).
func routeKey(model string, sc features.Scenario) string {
	return model + "|" + serve.CanonicalScenario(sc)
}

// ---- predict ----

// predictIdentity is the slice of a predict response the router needs:
// the resolved model and the serving generation.
type predictIdentity struct {
	Model      string `json:"model"`
	Generation uint64 `json:"generation"`
}

func (rt *Router) handlePredict(r *http.Request) (int, any) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "reading request body: %v", err)
	}
	var req serve.PredictRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "decoding request body: %v", err)
	}
	sc := features.Scenario{Target: req.Target, CoApps: req.CoApps, PState: req.PState}
	key := routeKey(req.Model, sc)
	client := clientID(r)
	floor := rt.floors.get(client, req.Model)
	reqID := r.Header.Get("X-Request-ID")
	tr := obs.TraceFrom(r.Context())

	routeStart := time.Now()
	rsp := tr.StartSpan("route")
	cands := rt.candidates(key, req.Model, floor)
	rsp.End()
	routeDur := time.Since(routeStart)
	if len(cands) == 0 {
		rt.metrics.NoBackendRecorded()
		return rt.retryableUnavailable(r, "no admissible backend (healthy at generation >= %d)", floor)
	}

	// Coalesce identical in-flight scenarios at the same floor: a
	// thundering herd of one cache-miss scenario costs one backend call.
	flightKey := fmt.Sprintf("%d|%s", floor, key)
	flightStart := time.Now()
	pr, _, shared := rt.flights.do(flightKey, tr, func() (*proxyResult, error) {
		return rt.hedgedCall(r.Context(), cands, http.MethodPost, "/v1/predict", raw, reqID), nil
	})
	stages := hopStages{route: routeDur, hedgeWait: pr.hedgeWait}
	if shared {
		rt.metrics.CoalesceRecorded()
		stages.coalesce = time.Since(flightStart)
	}
	if pr.err != nil {
		return errJSON(http.StatusBadGateway, CodeBackendUnavailable, "all candidates failed: %v", pr.err)
	}
	if pr.shed {
		return rt.retryableUnavailable(r, "all admissible candidates are draining")
	}
	if pr.status < 300 {
		var id predictIdentity
		if json.Unmarshal(pr.body, &id) == nil && id.Generation > 0 {
			// Note the backend's generation BEFORE raising the shared
			// floor: a concurrent request that reads the raised floor
			// must already find at least one backend admissible at it,
			// or it answers a spurious retryable no_backend.
			if b := rt.pool.Get(pr.backend); b != nil {
				b.NoteGeneration(id.Model, id.Generation)
				rt.metrics.GenerationObserved(b.Name, b.Gen(""))
			}
			rt.floors.raise(client, req.Model, id.Generation)
		}
	}
	return rt.replay(r, pr, stages)
}

// hopStages are the router-local durations of one proxied request,
// merged into the response's Server-Timing in front of the backend's
// own stage breakdown. Zero-valued optional stages are omitted.
type hopStages struct {
	route     time.Duration // candidate resolution
	hedgeWait time.Duration // time before the hedge fired (0: none fired)
	coalesce  time.Duration // time spent sharing another request's flight
}

// replay converts a proxied result into a handler response, stitching
// the hop's Server-Timing (route, optional coalesce and hedge_wait,
// backend) in front of the backend's own stage breakdown. The
// http.ResponseWriter is not available here, so headers ride on the
// request's response-header staging area.
func (rt *Router) replay(r *http.Request, pr *proxyResult, st hopStages) (int, any) {
	if w := responseHeaderOf(r); w != nil {
		parts := make([]string, 0, 5)
		parts = append(parts, obs.ServerTimingEntry("route", st.route.Seconds()))
		if st.coalesce > 0 {
			parts = append(parts, obs.ServerTimingEntry("coalesce", st.coalesce.Seconds()))
		}
		if st.hedgeWait > 0 {
			parts = append(parts, obs.ServerTimingEntry("hedge_wait", st.hedgeWait.Seconds()))
		}
		parts = append(parts, obs.ServerTimingEntry("backend", pr.elapsed.Seconds()), pr.serverTiming)
		w.Set("Server-Timing", obs.JoinServerTiming(parts...))
		w.Set("X-Backend", pr.backend)
	}
	return pr.status, passthrough(pr.body)
}

// responseHeaderOf retrieves the response headers staged for the
// request (planted by wrap before the handler runs).
func responseHeaderOf(r *http.Request) http.Header {
	if v, ok := r.Context().Value(respHeaderKey{}).(http.Header); ok {
		return v
	}
	return nil
}

type respHeaderKey struct{}

// ---- batch predict ----

// batchItem / batchResponse mirror the serve tier's batch wire shape
// (serve keeps its error detail type unexported) so scatter-gather can
// splice per-backend sub-batches back into request order without
// re-marshalling successful slots.
type batchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *errorDetail    `json:"error,omitempty"`
}

type batchResponse struct {
	Model   string      `json:"model"`
	Results []batchItem `json:"results"`
	Errors  int         `json:"errors"`
}

func (rt *Router) handlePredictBatch(r *http.Request) (int, any) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "reading request body: %v", err)
	}
	var req serve.BatchRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "decoding request body: %v", err)
	}
	if len(req.Scenarios) == 0 {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "scenarios must not be empty")
	}
	client := clientID(r)
	floor := rt.floors.get(client, req.Model)
	reqID := r.Header.Get("X-Request-ID")
	tr := obs.TraceFrom(r.Context())
	ssp := tr.StartSpan("scatter")

	// Scatter: group slots by the owning backend of each scenario key.
	type group struct {
		backend *Backend
		idx     []int
		scs     []serve.ScenarioRequest
	}
	groups := make(map[string]*group)
	order := make([]string, 0, 4)
	results := make([]batchItem, len(req.Scenarios))
	unroutable := errorDetail{Code: CodeNoBackend, Message: "no admissible backend for this scenario"}
	for i, sr := range req.Scenarios {
		sc := features.Scenario{Target: sr.Target, CoApps: sr.CoApps, PState: sr.PState}
		cands := rt.candidates(routeKey(req.Model, sc), req.Model, floor)
		if len(cands) == 0 {
			rt.metrics.NoBackendRecorded()
			results[i].Error = &unroutable
			continue
		}
		b := cands[0]
		g := groups[b.Name]
		if g == nil {
			g = &group{backend: b}
			groups[b.Name] = g
			order = append(order, b.Name)
		}
		g.idx = append(g.idx, i)
		g.scs = append(g.scs, sr)
	}
	ssp.End()

	// Gather: one sub-batch per owner, proxied concurrently. A failed
	// group retries once on any other available backend at the floor
	// before its slots are marked unavailable. Gather workers are joined
	// before the handler returns, so span work inside them is safe
	// (StartSpan/AttachRemote reserve slots atomically).
	var wg sync.WaitGroup
	var mu sync.Mutex
	modelName := req.Model
	maxGen := uint64(0)
	for _, name := range order {
		g := groups[name]
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			gsp := tr.StartSpan("gather")
			gsp.Annotate("backend", g.backend.Name)
			defer gsp.End()
			sub, _ := json.Marshal(serve.BatchRequest{Model: req.Model, Scenarios: g.scs})
			pr := rt.proxy(r.Context(), g.backend, http.MethodPost, "/v1/predict/batch", sub, reqID, outboundTraceparent(r.Context()))
			if !pr.ok() {
				for _, alt := range rt.pool.Available() {
					if alt.Name != g.backend.Name && alt.Gen(req.Model) >= floor {
						rsp := gsp.StartChild("retry")
						rsp.Annotate("backend", alt.Name)
						pr = rt.proxy(r.Context(), alt, http.MethodPost, "/v1/predict/batch", sub, reqID, outboundTraceparent(r.Context()))
						rsp.End()
						break
					}
				}
			}
			gsp.AttachRemote(pr.backend, pr.traceSpans)
			var sub2 batchResponse
			if !pr.ok() || pr.status != http.StatusOK || json.Unmarshal(pr.body, &sub2) != nil ||
				len(sub2.Results) != len(g.idx) {
				ed := errorDetail{Code: CodeBackendUnavailable, Message: "backend call failed for this scenario's shard"}
				mu.Lock()
				for _, i := range g.idx {
					results[i].Error = &ed
				}
				mu.Unlock()
				return
			}
			subMax := uint64(0)
			mu.Lock()
			for j, i := range g.idx {
				results[i] = sub2.Results[j]
				if raw := sub2.Results[j].Result; raw != nil {
					var id predictIdentity
					if json.Unmarshal(raw, &id) == nil {
						if id.Generation > maxGen {
							maxGen = id.Generation
						}
						if id.Generation > subMax {
							subMax = id.Generation
						}
					}
					if modelName == "" {
						modelName = sub2.Model
					}
				}
			}
			mu.Unlock()
			// Record the serving backend's generation in the pool before
			// the shared floor rises past it (same ordering as predict).
			if subMax > 0 {
				if b := rt.pool.Get(pr.backend); b != nil {
					b.NoteGeneration(sub2.Model, subMax)
				}
			}
		}(g)
	}
	wg.Wait()
	rt.floors.raise(client, req.Model, maxGen)

	out := batchResponse{Model: modelName, Results: results}
	for i := range results {
		if results[i].Error != nil {
			out.Errors++
		}
	}
	return http.StatusOK, out
}

// ---- observations ----

// obsItem / obsResponse mirror serve's observation wire types so
// shard responses merge without depending on serve's unexported error
// detail type.
type obsItem struct {
	PercentError float64      `json:"percent_error"`
	Error        *errorDetail `json:"error,omitempty"`
}

type obsResponse struct {
	Accepted         int       `json:"accepted"`
	Rejected         int       `json:"rejected"`
	Results          []obsItem `json:"results"`
	DriftTripped     bool      `json:"drift_tripped"`
	RetrainTriggered bool      `json:"retrain_triggered,omitempty"`
}

func (rt *Router) handleObservations(r *http.Request) (int, any) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "reading request body: %v", err)
	}
	var req serve.ObservationsRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return errJSON(http.StatusBadRequest, CodeBadRequest, "decoding request body: %v", err)
	}
	if len(req.Observations) > 1 {
		return rt.scatterObservations(r, req)
	}
	one := req.ObservationRequest
	if len(req.Observations) > 0 {
		one = req.Observations[0]
	}
	sc := features.Scenario{Target: one.Target, CoApps: one.CoApps, PState: one.PState}
	cands := rt.candidates(routeKey(one.Model, sc), one.Model, 0)
	if len(cands) == 0 {
		rt.metrics.NoBackendRecorded()
		return rt.retryableUnavailable(r, "no admissible backend")
	}
	reqID := r.Header.Get("X-Request-ID")
	tr := obs.TraceFrom(r.Context())
	routeStart := time.Now()
	// Ingest is an append, not an idempotent read: never hedge it, and
	// fail over only on a drain shed (definitely not processed).
	var pr *proxyResult
	for i, b := range cands {
		name := "proxy"
		if i > 0 {
			name = "retry"
		}
		sp := tr.StartSpan(name)
		sp.Annotate("backend", b.Name)
		pr = rt.proxy(r.Context(), b, http.MethodPost, "/v1/observations", raw, reqID, outboundTraceparent(r.Context()))
		sp.AttachRemote(pr.backend, pr.traceSpans)
		sp.End()
		if !pr.shed {
			break
		}
	}
	if pr.err != nil {
		return errJSON(http.StatusBadGateway, CodeBackendUnavailable, "observation ingest failed: %v", pr.err)
	}
	if pr.shed {
		return rt.retryableUnavailable(r, "all admissible candidates are draining")
	}
	return rt.replay(r, pr, hopStages{route: time.Since(routeStart) - pr.elapsed})
}

// scatterObservations routes each observation of a batch to the
// backend that owns its scenario key — the same consistent-hash
// routing predict uses, so a scenario's observations land beside its
// cached predictions and drift streams instead of all funnelling into
// the first observation's owner. One sub-batch per owner is proxied
// concurrently (each backend folds its shard into a single group
// commit), and the shard responses merge back in request order.
// Ingest sub-requests are never hedged; a shard fails over only on a
// drain shed (definitely not processed).
func (rt *Router) scatterObservations(r *http.Request, req serve.ObservationsRequest) (int, any) {
	reqID := r.Header.Get("X-Request-ID")
	tr := obs.TraceFrom(r.Context())
	ssp := tr.StartSpan("scatter")
	type group struct {
		backend *Backend
		idx     []int
		obsr    []serve.ObservationRequest
	}
	groups := make(map[string]*group)
	order := make([]string, 0, 4)
	out := obsResponse{Results: make([]obsItem, len(req.Observations))}
	unroutable := errorDetail{Code: CodeNoBackend, Message: "no admissible backend for this scenario"}
	for i, or := range req.Observations {
		sc := features.Scenario{Target: or.Target, CoApps: or.CoApps, PState: or.PState}
		cands := rt.candidates(routeKey(or.Model, sc), or.Model, 0)
		if len(cands) == 0 {
			rt.metrics.NoBackendRecorded()
			out.Results[i].Error = &unroutable
			out.Rejected++
			continue
		}
		b := cands[0]
		g := groups[b.Name]
		if g == nil {
			g = &group{backend: b}
			groups[b.Name] = g
			order = append(order, b.Name)
		}
		g.idx = append(g.idx, i)
		g.obsr = append(g.obsr, or)
	}
	ssp.End()

	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range order {
		g := groups[name]
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			gsp := tr.StartSpan("gather")
			gsp.Annotate("backend", g.backend.Name)
			defer gsp.End()
			sub, _ := json.Marshal(serve.ObservationsRequest{Observations: g.obsr})
			pr := rt.proxy(r.Context(), g.backend, http.MethodPost, "/v1/observations", sub, reqID, outboundTraceparent(r.Context()))
			if pr.shed {
				for _, alt := range rt.pool.Available() {
					if alt.Name != g.backend.Name {
						rsp := gsp.StartChild("retry")
						rsp.Annotate("backend", alt.Name)
						pr = rt.proxy(r.Context(), alt, http.MethodPost, "/v1/observations", sub, reqID, outboundTraceparent(r.Context()))
						rsp.End()
						break
					}
				}
			}
			gsp.AttachRemote(pr.backend, pr.traceSpans)
			var shard obsResponse
			if !pr.ok() || pr.status != http.StatusOK || json.Unmarshal(pr.body, &shard) != nil ||
				len(shard.Results) != len(g.idx) {
				ed := errorDetail{Code: CodeBackendUnavailable, Message: "backend call failed for this observation's shard"}
				mu.Lock()
				for _, i := range g.idx {
					out.Results[i].Error = &ed
					out.Rejected++
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			out.Accepted += shard.Accepted
			out.Rejected += shard.Rejected
			out.DriftTripped = out.DriftTripped || shard.DriftTripped
			out.RetrainTriggered = out.RetrainTriggered || shard.RetrainTriggered
			for j, i := range g.idx {
				out.Results[i] = shard.Results[j]
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	return http.StatusOK, out
}

// ---- rolling promotion ----

// RolloutBackend reports one backend's slice of a rolling promotion.
type RolloutBackend struct {
	Backend  string   `json:"backend"`
	Reloaded []string `json:"reloaded,omitempty"`
	// Generation is the backend's default-model serving generation
	// after its reload.
	Generation uint64 `json:"generation"`
	Error      string `json:"error,omitempty"`
}

// RolloutResponse reports a coordinated rolling promotion.
type RolloutResponse struct {
	// Completed is true when every admissible backend reloaded.
	Completed bool             `json:"completed"`
	Backends  []RolloutBackend `json:"backends"`
}

// handleReload rolls a model promotion across the fleet one backend at
// a time: POST /v1/models/reload on each, then refresh its generation
// record before moving on. Mid-rollout the fleet serves mixed
// generations, but the per-client floor keeps every individual client
// on a monotone generation sequence; after the last backend reloads the
// fleet converges. Ejected backends are skipped (the probe loop
// refreshes their generation on re-admission).
//
// Backend generations are per-process swap counters, so a replica that
// restarted since the last rollout sits below the rest of the fleet and
// a single reload each leaves it permanently one behind — floor-holding
// clients would never be routed to it again. After the rolling pass the
// handler therefore issues catch-up reloads to any backend still below
// the fleet maximum until the counters align (each extra reload re-reads
// the same artefacts, so catch-ups are harmless no-op swaps).
func (rt *Router) handleReload(r *http.Request) (int, any) {
	rt.promoteMu.Lock()
	defer rt.promoteMu.Unlock()
	reqID := r.Header.Get("X-Request-ID")
	resp := RolloutResponse{Completed: true}
	reload := func(b *Backend, rb *RolloutBackend) bool {
		pr := rt.proxy(r.Context(), b, http.MethodPost, "/v1/models/reload", nil, reqID, outboundTraceparent(r.Context()))
		switch {
		case pr.err != nil:
			rb.Error = pr.err.Error()
			return false
		case pr.status != http.StatusOK:
			rb.Error = fmt.Sprintf("reload returned %d: %s", pr.status, truncate(pr.body, 200))
			return false
		default:
			var rr serve.ReloadResponse
			if json.Unmarshal(pr.body, &rr) == nil && rb.Reloaded == nil {
				rb.Reloaded = rr.Reloaded
			}
			rt.pool.RefreshGeneration(r.Context(), b)
			return true
		}
	}

	rolled := make(map[string]*RolloutBackend)
	var order []*Backend
	for _, b := range rt.pool.Backends() {
		if b.State() == StateEjected {
			continue
		}
		rb := &RolloutBackend{Backend: b.Name}
		if !reload(b, rb) {
			resp.Completed = false
		}
		rolled[b.Name] = rb
		order = append(order, b)
	}

	// Catch-up: align stragglers (restarted replicas) with the fleet's
	// highest counter. Bounded per backend so a backend that stops
	// advancing (reload succeeds but the counter stays put) cannot spin
	// the rollout forever.
	const maxCatchUp = 64
	var target uint64
	for _, b := range order {
		if g := b.Gen(""); g > target {
			target = g
		}
	}
	for _, b := range order {
		rb := rolled[b.Name]
		if rb.Error != "" {
			continue
		}
		for i := 0; i < maxCatchUp && b.Gen("") < target; i++ {
			prev := b.Gen("")
			if !reload(b, rb) {
				resp.Completed = false
				break
			}
			if b.Gen("") <= prev {
				rb.Error = fmt.Sprintf("catch-up reload did not advance the generation past %d", prev)
				resp.Completed = false
				break
			}
		}
		if rb.Error == "" && b.Gen("") < target {
			rb.Error = fmt.Sprintf("still at generation %d after %d catch-up reloads (fleet at %d)", b.Gen(""), maxCatchUp, target)
			resp.Completed = false
		}
	}

	for _, b := range order {
		rb := rolled[b.Name]
		rb.Generation = b.Gen("")
		resp.Backends = append(resp.Backends, *rb)
	}
	if resp.Completed {
		rt.metrics.PromotionRecorded()
	}
	return http.StatusOK, resp
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// ---- models / cluster / health / metrics ----

// handleModels proxies the registry listing from the most-promoted
// available backend, so discovery (coloload, clients) sees the newest
// generation the fleet serves.
func (rt *Router) handleModels(r *http.Request) (int, any) {
	avail := rt.pool.Available()
	if len(avail) == 0 {
		rt.metrics.NoBackendRecorded()
		return errJSON(http.StatusServiceUnavailable, CodeNoBackend, "no healthy backend")
	}
	sort.SliceStable(avail, func(i, j int) bool { return avail[i].Gen("") > avail[j].Gen("") })
	reqID := r.Header.Get("X-Request-ID")
	start := time.Now()
	pr := rt.proxy(r.Context(), avail[0], http.MethodGet, "/v1/models", nil, reqID, outboundTraceparent(r.Context()))
	if pr.err != nil || pr.shed {
		return errJSON(http.StatusBadGateway, CodeBackendUnavailable, "listing models failed")
	}
	return rt.replay(r, pr, hopStages{route: time.Since(start) - pr.elapsed})
}

// BackendInfo describes one pool entry for GET /v1/cluster.
type BackendInfo struct {
	Name        string            `json:"name"`
	Base        string            `json:"base"`
	State       string            `json:"state"`
	Inflight    int64             `json:"inflight"`
	Generations map[string]uint64 `json:"generations,omitempty"`
}

// ClusterResponse is the body of GET /v1/cluster: membership, health
// and promotion state of the fleet.
type ClusterResponse struct {
	Replicas int           `json:"replicas"`
	Members  []string      `json:"members"`
	Backends []BackendInfo `json:"backends"`
}

func (rt *Router) handleCluster(r *http.Request) (int, any) {
	resp := ClusterResponse{Replicas: rt.cfg.Replicas, Members: rt.pool.Members()}
	for _, b := range rt.pool.Backends() {
		resp.Backends = append(resp.Backends, BackendInfo{
			Name: b.Name, Base: b.Base, State: b.State().String(),
			Inflight: b.Inflight(), Generations: b.Generations(),
		})
	}
	return http.StatusOK, resp
}

// HealthResponse is the router's liveness body.
type HealthResponse struct {
	Status        string  `json:"status"`
	Backends      int     `json:"backends"`
	Healthy       int     `json:"healthy"`
	Shedding      int     `json:"shedding"`
	Ejected       int     `json:"ejected"`
	Replicas      int     `json:"replicas"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (rt *Router) handleHealthz(r *http.Request) (int, any) {
	resp := HealthResponse{Status: "ok", Replicas: rt.cfg.Replicas, UptimeSeconds: time.Since(rt.started).Seconds()}
	for _, b := range rt.pool.Backends() {
		resp.Backends++
		switch b.State() {
		case StateHealthy:
			resp.Healthy++
		case StateShedding:
			resp.Shedding++
		case StateEjected:
			resp.Ejected++
		}
	}
	if resp.Healthy == 0 {
		resp.Status = "no healthy backends"
		return http.StatusServiceUnavailable, resp
	}
	return http.StatusOK, resp
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID, tr := rt.ingress(w, r, "metrics", start)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.WritePrometheus(w, len(rt.pool.Available()), len(rt.pool.Members()))
	rt.slo.WriteSLOMetrics(w, "colorouter")
	d := time.Since(start)
	tr.Finish(http.StatusOK, false)
	rt.logRequest(r, "metrics", reqID, http.StatusOK, d)
	rt.metrics.ObserveRequest("metrics", d, false)
}

// ---- traces / SLO / fleet metrics ----

// handleTraces serves the router's trace ring: stitched cross-process
// trees whose proxy spans carry the winning backend's own span tree
// (decode → cache → eval → encode) under the router's trace ID. Query
// parameters match the serve tier: endpoint, kind, min_ms, limit.
func (rt *Router) handleTraces(r *http.Request) (int, any) {
	if rt.tracer == nil {
		return errJSON(http.StatusServiceUnavailable, CodeTracingDisabled,
			"this router is running without the trace ring (negative TraceRing)")
	}
	q := r.URL.Query()
	f := obs.Filter{Name: q.Get("endpoint"), Kind: q.Get("kind")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return errJSON(http.StatusBadRequest, CodeBadRequest, "bad min_ms %q", v)
		}
		f.MinDuration = time.Duration(ms * 1e6)
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return errJSON(http.StatusBadRequest, CodeBadRequest, "bad limit %q", v)
		}
		f.Limit = n
	}
	traces := rt.tracer.Snapshot(f)
	return http.StatusOK, serve.TracesResponse{Stats: rt.tracer.Stats(), Count: len(traces), Traces: traces}
}

// handleSLO serves the router's predict-path SLO verdict.
func (rt *Router) handleSLO(r *http.Request) (int, any) {
	if rt.slo == nil {
		return errJSON(http.StatusServiceUnavailable, CodeSLODisabled,
			"this router is running without SLO tracking (negative SLOObjective)")
	}
	return http.StatusOK, rt.slo.Status()
}

// handleFleetMetrics serves one Prometheus text document describing the
// whole fleet: every non-ejected backend's /metrics scrape merged
// (counters and histograms summed, gauges re-labelled per backend),
// per-backend liveness/generation/inflight/error-rate gauges, and the
// router's own metrics and SLO gauges. Registered outside wrap because
// the output is text, not JSON.
func (rt *Router) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID, tr := rt.ingress(w, r, "fleet_metrics", start)
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()

	backends := rt.pool.Backends()
	targets := make([]fleetobs.Target, 0, len(backends))
	byName := make(map[string]*Backend, len(backends))
	for _, b := range backends {
		byName[b.Name] = b
		if b.State() == StateEjected {
			continue
		}
		targets = append(targets, fleetobs.Target{Name: b.Name, MetricsURL: b.Base + "/metrics"})
	}
	ssp := tr.StartSpan("scrape")
	fs := rt.fleet.Scrape(ctx, targets)
	ssp.End()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if fs.Merged != nil {
		fs.Merged.Write(w)
	}
	for _, row := range []struct {
		name, typ, help string
		val             func(bs *fleetobs.BackendScrape) float64
	}{
		{"colorouter_fleet_backend_up", "gauge", "Whether the last fleet scrape of this backend succeeded.",
			func(bs *fleetobs.BackendScrape) float64 {
				if bs.Err == nil {
					return 1
				}
				return 0
			}},
		{"colorouter_fleet_backend_generation", "gauge", "Default-model serving generation per backend.",
			func(bs *fleetobs.BackendScrape) float64 { return float64(byName[bs.Name].Gen("")) }},
		{"colorouter_fleet_backend_inflight", "gauge", "Outstanding proxied calls per backend.",
			func(bs *fleetobs.BackendScrape) float64 { return float64(byName[bs.Name].Inflight()) }},
		{"colorouter_fleet_backend_error_rate", "gauge", "Error fraction of each backend's requests since the previous fleet scrape.",
			func(bs *fleetobs.BackendScrape) float64 { return bs.ErrorRate }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", row.name, row.help, row.name, row.typ)
		for i := range fs.Backends {
			bs := &fs.Backends[i]
			fmt.Fprintf(w, "%s{backend=%q} %g\n", row.name, bs.Name, row.val(bs))
		}
	}
	rt.metrics.WritePrometheus(w, len(rt.pool.Available()), len(rt.pool.Members()))
	rt.slo.WriteSLOMetrics(w, "colorouter")
	d := time.Since(start)
	tr.Finish(http.StatusOK, false)
	rt.logRequest(r, "fleet_metrics", reqID, http.StatusOK, d)
	rt.metrics.ObserveRequest("fleet_metrics", d, false)
}

// ListenAndServe runs the router on addr until ctx is cancelled, then
// drains in-flight requests for up to drain.
func (rt *Router) ListenAndServe(ctx context.Context, addr string, drain time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return rt.ServeListener(ctx, ln, drain)
}

// ServeListener runs the router on an existing listener until ctx is
// cancelled, then drains in-flight requests for up to drain.
func (rt *Router) ServeListener(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("cluster: draining: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
