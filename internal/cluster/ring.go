package cluster

import (
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend names. Each backend owns
// a fixed number of virtual nodes, so keys spread evenly and a join or
// leave moves only the key ranges adjacent to the changed backend's
// virtual nodes — every other key keeps its owner, which keeps the
// fleet's prediction caches warm across membership churn.
//
// A ring is immutable once built; membership changes build a new ring
// and swap the pointer, so lookups never take a lock.
type ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct member names, sorted
}

// ringPoint is one virtual node: a position on the ring and the backend
// that owns the arc ending there.
type ringPoint struct {
	hash uint64
	name string
}

// defaultVirtualNodes balances placement smoothness against rebuild
// cost; 64 vnodes keeps the per-backend load imbalance under ~15% for
// small fleets.
const defaultVirtualNodes = 64

// buildRing constructs a ring over the given backend names with vnodes
// virtual nodes each. Duplicate names are collapsed.
func buildRing(names []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	seen := make(map[string]bool, len(names))
	r := &ring{}
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.names = append(r.names, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashKey(n + "#" + strconv.Itoa(v)),
				name: n,
			})
		}
	}
	sort.Strings(r.names)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// pick returns the replica set for a key: the first n distinct backends
// clockwise from the key's position. n is clamped to the member count.
func (r *ring) pick(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.names) {
		n = len(r.names)
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		p := r.points[i]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
			if len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// members returns the sorted member names.
func (r *ring) members() []string {
	if r == nil {
		return nil
	}
	return r.names
}

// hashKey is FNV-1a over the key bytes, finished with a 64-bit
// avalanche mixer. Plain FNV clusters badly on a ring (virtual-node
// names differ in a trailing digit, and similar inputs land in similar
// arcs — measured ownership skew exceeded 7x without the finisher);
// the mixer spreads the points uniformly. Deterministic across
// processes (no per-process seed), which the stable-routing tests and
// multi-router deployments rely on.
func hashKey(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
