package cluster

import (
	"net/http"
	"strings"
	"testing"
)

const placementsBody = `{"machines":[{"count":2}],"apps":["cg","ep"],"seed":3,"beam":4}`

func TestPlacementsRoutesLeastLoaded(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)

	// Equal load: the name tiebreak routes to "a".
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "a" {
		t.Fatalf("routed to %q, want a", got)
	}

	// Load "a" with two outstanding calls: the next request must go to
	// the less-loaded "b".
	ba := rt.Pool().Get("a")
	ba.acquire()
	ba.acquire()
	defer ba.release()
	defer ba.release()
	rec = doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "b" {
		t.Fatalf("routed to %q under load, want b", got)
	}
	if a.placements.Load() != 1 || b.placements.Load() != 1 {
		t.Fatalf("backend calls a=%d b=%d, want 1/1", a.placements.Load(), b.placements.Load())
	}
}

func TestPlacementsStreamsThrough(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{}, a)
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q not passed through", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d NDJSON lines, want 2: %q", len(lines), rec.Body.String())
	}
	if !strings.Contains(lines[1], `"final":true`) {
		t.Fatalf("terminal line not final: %q", lines[1])
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID")
	}
}

func TestPlacementsFailsOverOnDrain(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{}, a, b)
	a.drain.Store(true)

	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "b" {
		t.Fatalf("routed to %q, want failover to b", got)
	}
	// The drain shed marked "a" shedding in the pool.
	if st := rt.Pool().Get("a").State(); st != StateShedding {
		t.Fatalf("backend a state %v, want shedding", st)
	}
}

func TestPlacementsNoBackendIs503(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{}, a)
	a.drain.Store(true)

	// First request discovers the drain (failover exhausts the fleet).
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After on retryable 503")
	}
	// Once marked shedding, the route has no admissible candidates.
	rec = doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

func TestInflightGaugeReturnsToZero(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{}, a)
	for i := 0; i < 3; i++ {
		doReq(t, rt.Handler(), http.MethodPost, "/v1/placements", placementsBody, nil)
		doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(scenarioOwnedBy(t, rt, "a")), nil)
	}
	if got := rt.Pool().Get("a").Inflight(); got != 0 {
		t.Fatalf("inflight gauge %d after requests completed, want 0", got)
	}
}
