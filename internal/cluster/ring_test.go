package cluster

import (
	"fmt"
	"testing"
)

// testKeys generates a deterministic spread of scenario-shaped keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("demo|app%d|%d|co%d", i%37, i%3, i%11)
	}
	return keys
}

// TestRingStableUnderJoin pins the consistent-hashing contract: adding
// a backend moves ONLY the key ranges the new backend takes over —
// every key whose owner changes must now be owned by the newcomer, and
// no key moves between pre-existing backends.
func TestRingStableUnderJoin(t *testing.T) {
	keys := testKeys(2000)
	before := buildRing([]string{"a", "b", "c"}, 64)
	after := buildRing([]string{"a", "b", "c", "d"}, 64)

	moved := 0
	for _, k := range keys {
		was := before.pick(k, 1)[0]
		now := after.pick(k, 1)[0]
		if was != now {
			moved++
			if now != "d" {
				t.Fatalf("key %q moved %s -> %s on join of d: only ranges owned by the newcomer may move", k, was, now)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new backend: ring ignores joins")
	}
	// A 4th member should take roughly a quarter of the space; allow a
	// wide band because 2000 keys x 64 vnodes is still a small sample.
	if frac := float64(moved) / float64(len(keys)); frac > 0.45 {
		t.Fatalf("join of 1 backend (of 4) moved %.0f%% of keys, want ~25%%", frac*100)
	}
}

// TestRingStableUnderLeave is the inverse contract: removing a backend
// moves only the keys it owned, and a leave followed by a re-join
// restores the exact original placement (rings are pure functions of
// membership, with no history).
func TestRingStableUnderLeave(t *testing.T) {
	keys := testKeys(2000)
	full := buildRing([]string{"a", "b", "c", "d"}, 64)
	without := buildRing([]string{"a", "b", "c"}, 64)

	for _, k := range keys {
		was := full.pick(k, 1)[0]
		now := without.pick(k, 1)[0]
		if was != "d" && was != now {
			t.Fatalf("key %q moved %s -> %s on leave of d: only the leaver's keys may move", k, was, now)
		}
		if was == "d" && now == "d" {
			t.Fatalf("key %q still owned by removed backend d", k)
		}
	}
	rejoined := buildRing([]string{"d", "c", "b", "a"}, 64) // order must not matter
	for _, k := range keys {
		if full.pick(k, 1)[0] != rejoined.pick(k, 1)[0] {
			t.Fatalf("key %q owner differs after leave+rejoin: placement is not a pure function of membership", k)
		}
	}
}

// TestRingReplicaSets pins replica-set semantics: R distinct backends,
// owner first, clamped to the member count, deterministic across calls.
func TestRingReplicaSets(t *testing.T) {
	r := buildRing([]string{"a", "b", "c"}, 64)
	for _, k := range testKeys(200) {
		set := r.pick(k, 2)
		if len(set) != 2 {
			t.Fatalf("pick(%q, 2) returned %d backends", k, len(set))
		}
		if set[0] == set[1] {
			t.Fatalf("pick(%q, 2) repeated backend %s", k, set[0])
		}
		if owner := r.pick(k, 1); owner[0] != set[0] {
			t.Fatalf("pick(%q, 2)[0]=%s disagrees with owner %s", k, set[0], owner[0])
		}
	}
	if got := r.pick("k", 10); len(got) != 3 {
		t.Fatalf("pick with n=10 over 3 members returned %d, want clamp to 3", len(got))
	}
	if got := buildRing(nil, 64).pick("k", 2); got != nil {
		t.Fatalf("empty ring pick returned %v, want nil", got)
	}
}

// TestRingBalance guards the virtual-node count: with 64 vnodes per
// backend no member should own a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	r := buildRing([]string{"a", "b", "c", "d"}, 64)
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, k := range keys {
		counts[r.pick(k, 1)[0]]++
	}
	for name, n := range counts {
		frac := float64(n) / float64(len(keys))
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("backend %s owns %.1f%% of keys (counts %v): placement too skewed", name, frac*100, counts)
		}
	}
}
