package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the router's observability layer: per-endpoint request and
// error counters with latency histograms, per-backend proxy accounting
// (requests, errors, sheds, ejections, re-admissions, last observed
// generation), and the coalescing/hedging counters the tail-latency
// machinery is judged by. Rendered in the Prometheus text format with a
// colorouter_ prefix so a scrape of router and backends never collides.
type Metrics struct {
	mu        sync.Mutex // guards both maps (writes only at registration)
	endpoints map[string]*endpointMetrics
	backends  map[string]*backendMetrics

	inFlight   atomic.Int64
	coalesced  atomic.Uint64
	hedges     atomic.Uint64
	hedgeWins  atomic.Uint64
	promotions atomic.Uint64
	noBackend  atomic.Uint64
	dropped    atomic.Uint64 // observations against unregistered endpoints
}

type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	latency  latencyHist
}

type backendMetrics struct {
	requests     atomic.Uint64
	errors       atomic.Uint64
	sheds        atomic.Uint64
	ejections    atomic.Uint64
	readmissions atomic.Uint64
	generation   atomic.Uint64
}

// NewMetrics returns a metrics layer with the router's endpoints
// pre-registered.
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		backends:  make(map[string]*backendMetrics),
	}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{}
	}
	return m
}

func (m *Metrics) backend(name string) *backendMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	bm := m.backends[name]
	if bm == nil {
		bm = &backendMetrics{}
		m.backends[name] = bm
	}
	return bm
}

// ObserveRequest records one inbound router request. Observations
// against endpoints never registered with NewMetrics are counted as
// dropped rather than silently discarded, mirroring the serve tier's
// coloserve_metrics_dropped_total.
func (m *Metrics) ObserveRequest(endpoint string, d time.Duration, failed bool) {
	em, ok := m.endpoints[endpoint]
	if !ok {
		m.dropped.Add(1)
		return
	}
	em.requests.Add(1)
	if failed {
		em.errors.Add(1)
	}
	em.latency.observe(d)
}

// BackendRequest records one proxy attempt against a backend.
func (m *Metrics) BackendRequest(name string, failed bool) {
	bm := m.backend(name)
	bm.requests.Add(1)
	if failed {
		bm.errors.Add(1)
	}
}

// BackendRequests returns a backend's proxy-attempt count (tests).
func (m *Metrics) BackendRequests(name string) uint64 { return m.backend(name).requests.Load() }

// ShedRecorded counts one typed-drain shed answered by a backend.
func (m *Metrics) ShedRecorded(name string) { m.backend(name).sheds.Add(1) }

// Sheds returns a backend's shed count (tests).
func (m *Metrics) Sheds(name string) uint64 { return m.backend(name).sheds.Load() }

// EjectionRecorded / ReadmissionRecorded count pool admission flips.
func (m *Metrics) EjectionRecorded(name string)    { m.backend(name).ejections.Add(1) }
func (m *Metrics) ReadmissionRecorded(name string) { m.backend(name).readmissions.Add(1) }

// GenerationObserved records the latest serving generation seen on a
// backend (a gauge; monotone in practice).
func (m *Metrics) GenerationObserved(name string, gen uint64) {
	bm := m.backend(name)
	for {
		old := bm.generation.Load()
		if gen <= old || bm.generation.CompareAndSwap(old, gen) {
			return
		}
	}
}

// CoalesceRecorded counts one request served from another request's
// in-flight backend call (a singleflight follower).
func (m *Metrics) CoalesceRecorded() { m.coalesced.Add(1) }

// Coalesced returns the follower count (tests).
func (m *Metrics) Coalesced() uint64 { return m.coalesced.Load() }

// HedgeFired counts one hedge launch; HedgeWon counts a hedge whose
// reply arrived before the primary's.
func (m *Metrics) HedgeFired() { m.hedges.Add(1) }
func (m *Metrics) HedgeWon()   { m.hedgeWins.Add(1) }

// Hedges and HedgeWins return the hedging counters (tests).
func (m *Metrics) Hedges() uint64    { return m.hedges.Load() }
func (m *Metrics) HedgeWins() uint64 { return m.hedgeWins.Load() }

// PromotionRecorded counts one coordinated rolling promotion.
func (m *Metrics) PromotionRecorded() { m.promotions.Add(1) }

// NoBackendRecorded counts requests that found no admissible backend.
func (m *Metrics) NoBackendRecorded() { m.noBackend.Add(1) }

// DroppedObservations returns the count of observations against
// unregistered endpoints (tests).
func (m *Metrics) DroppedObservations() uint64 { return m.dropped.Load() }

// RequestStarted / RequestDone track in-flight requests.
func (m *Metrics) RequestStarted() { m.inFlight.Add(1) }
func (m *Metrics) RequestDone()    { m.inFlight.Add(-1) }

// WritePrometheus renders every router metric (text format 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer, healthy, members int) {
	m.mu.Lock()
	eps := make([]string, 0, len(m.endpoints))
	for e := range m.endpoints {
		eps = append(eps, e)
	}
	bes := make([]string, 0, len(m.backends))
	for b := range m.backends {
		bes = append(bes, b)
	}
	m.mu.Unlock()
	sort.Strings(eps)
	sort.Strings(bes)

	fmt.Fprintln(w, "# HELP colorouter_requests_total Requests received per endpoint.")
	fmt.Fprintln(w, "# TYPE colorouter_requests_total counter")
	for _, e := range eps {
		fmt.Fprintf(w, "colorouter_requests_total{endpoint=%q} %d\n", e, m.endpoints[e].requests.Load())
	}
	fmt.Fprintln(w, "# HELP colorouter_request_errors_total Failed requests per endpoint.")
	fmt.Fprintln(w, "# TYPE colorouter_request_errors_total counter")
	for _, e := range eps {
		fmt.Fprintf(w, "colorouter_request_errors_total{endpoint=%q} %d\n", e, m.endpoints[e].errors.Load())
	}
	fmt.Fprintln(w, "# HELP colorouter_request_duration_seconds Router request latency per endpoint.")
	fmt.Fprintln(w, "# TYPE colorouter_request_duration_seconds histogram")
	for _, e := range eps {
		h := &m.endpoints[e].latency
		cum := uint64(0)
		for i, ub := range hedgeBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "colorouter_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", e, fmt.Sprintf("%g", ub.Seconds()), cum)
		}
		cum += h.counts[len(hedgeBuckets)].Load()
		fmt.Fprintf(w, "colorouter_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", e, cum)
		fmt.Fprintf(w, "colorouter_request_duration_seconds_sum{endpoint=%q} %g\n", e, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "colorouter_request_duration_seconds_count{endpoint=%q} %d\n", e, h.count.Load())
	}
	for _, row := range []struct {
		name, help string
		val        func(*backendMetrics) uint64
	}{
		{"colorouter_backend_requests_total", "Proxy attempts per backend.", func(b *backendMetrics) uint64 { return b.requests.Load() }},
		{"colorouter_backend_errors_total", "Failed proxy attempts per backend.", func(b *backendMetrics) uint64 { return b.errors.Load() }},
		{"colorouter_backend_sheds_total", "Typed drain sheds answered per backend.", func(b *backendMetrics) uint64 { return b.sheds.Load() }},
		{"colorouter_backend_ejections_total", "Health ejections per backend.", func(b *backendMetrics) uint64 { return b.ejections.Load() }},
		{"colorouter_backend_readmissions_total", "Backoff re-admissions per backend.", func(b *backendMetrics) uint64 { return b.readmissions.Load() }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", row.name, row.help, row.name)
		for _, be := range bes {
			fmt.Fprintf(w, "%s{backend=%q} %d\n", row.name, be, row.val(m.backends[be]))
		}
	}
	fmt.Fprintln(w, "# HELP colorouter_backend_generation Last serving generation observed per backend.")
	fmt.Fprintln(w, "# TYPE colorouter_backend_generation gauge")
	for _, be := range bes {
		fmt.Fprintf(w, "colorouter_backend_generation{backend=%q} %d\n", be, m.backends[be].generation.Load())
	}
	scalar := func(name, typ, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	scalar("colorouter_coalesced_total", "counter", "Requests served from another request's in-flight backend call.", m.coalesced.Load())
	scalar("colorouter_hedges_total", "counter", "Hedged backend calls launched.", m.hedges.Load())
	scalar("colorouter_hedge_wins_total", "counter", "Hedged calls that answered before the primary.", m.hedgeWins.Load())
	scalar("colorouter_promotions_total", "counter", "Coordinated rolling promotions completed.", m.promotions.Load())
	scalar("colorouter_no_backend_total", "counter", "Requests that found no admissible backend.", m.noBackend.Load())
	scalar("colorouter_metrics_dropped_total", "counter", "Observations against unregistered endpoints.", m.dropped.Load())
	scalar("colorouter_backends_healthy", "gauge", "Backends currently admitted to routing.", uint64(healthy))
	scalar("colorouter_backends_total", "gauge", "Backends joined to the ring.", uint64(members))
	fmt.Fprintf(w, "# HELP colorouter_in_flight_requests Requests currently being routed.\n# TYPE colorouter_in_flight_requests gauge\ncolorouter_in_flight_requests %d\n", m.inFlight.Load())
}

// hedgeBuckets are the latency histogram bounds: geometric ×2 from
// 50µs to ~1.6s, wide enough to derive a p95 hedge delay for both
// in-process (µs) and networked (ms) fleets.
var hedgeBuckets = func() []time.Duration {
	out := make([]time.Duration, 0, 16)
	for d := 50 * time.Microsecond; d <= 2*time.Second; d *= 2 {
		out = append(out, d)
	}
	return out
}()

// latencyHist is a fixed-bucket histogram with lock-free observation,
// used both for the per-endpoint scrape and to derive the hedge delay
// from the backend-call p95.
type latencyHist struct {
	counts  [17]atomic.Uint64 // len(hedgeBuckets)+1 for +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	i := sort.Search(len(hedgeBuckets), func(i int) bool { return hedgeBuckets[i] >= d })
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + d.Seconds()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// quantile returns the upper bound of the bucket containing quantile q
// (0 when the histogram is empty). Upper bounds overestimate slightly,
// which is the safe direction for a hedge delay.
func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	cum := uint64(0)
	for i, ub := range hedgeBuckets {
		cum += h.counts[i].Load()
		if cum >= target {
			return ub
		}
	}
	return hedgeBuckets[len(hedgeBuckets)-1] * 2
}

// samples returns the observation count.
func (h *latencyHist) samples() uint64 { return h.count.Load() }
