package cluster

import (
	"testing"

	"colocmodel/internal/features"
	"colocmodel/internal/serve"
)

// TestScenarioKeyFormatPin pins the canonical scenario-key format from
// OUTSIDE the serve package. The router's shard placement and
// singleflight keys are derived from serve.CanonicalScenario; if serve
// ever changes the byte layout, routing silently desynchronises from
// the backend caches (keys hash elsewhere, cache hit rates collapse).
// This test turns that silent drift into a loud one.
func TestScenarioKeyFormatPin(t *testing.T) {
	cases := []struct {
		sc        features.Scenario
		wantCanon string
	}{
		{features.Scenario{Target: "canneal", CoApps: []string{"ep", "cg"}, PState: 2}, "canneal|2|cg|ep"},
		{features.Scenario{Target: "cg", CoApps: nil, PState: 0}, "cg|0"},
		{features.Scenario{Target: "mg", CoApps: []string{"mg", "mg", "cg"}, PState: 1}, "mg|1|cg|mg|mg"},
	}
	for _, tc := range cases {
		if got := serve.CanonicalScenario(tc.sc); got != tc.wantCanon {
			t.Errorf("CanonicalScenario(%+v) = %q, want %q", tc.sc, got, tc.wantCanon)
		}
	}
	// The cache key prefixes model@generation; the router's routing key
	// deliberately omits the generation (promotions must not move keys).
	sc := cases[0].sc
	if got, want := serve.ScenarioKey("m6", 3, sc), "m6@3|canneal|2|cg|ep"; got != want {
		t.Errorf("ScenarioKey = %q, want %q", got, want)
	}
	if got, want := routeKey("m6", sc), "m6|canneal|2|cg|ep"; got != want {
		t.Errorf("routeKey = %q, want %q", got, want)
	}
	// Co-app order must not matter (the features are sums).
	perm := features.Scenario{Target: "canneal", CoApps: []string{"cg", "ep"}, PState: 2}
	if routeKey("m6", sc) != routeKey("m6", perm) {
		t.Error("routeKey differs across co-app permutations; cache affinity lost")
	}
	// CanonicalScenario must not mutate the caller's slice.
	co := []string{"ep", "cg"}
	serve.CanonicalScenario(features.Scenario{Target: "x", CoApps: co})
	if co[0] != "ep" || co[1] != "cg" {
		t.Errorf("CanonicalScenario reordered the caller's co-app slice: %v", co)
	}
}
