// Package cluster is the scale-out serving tier: an HTTP gateway
// (cmd/colorouter) that spreads prediction traffic across a replicated
// coloserve fleet while preserving the single-node tier's cache
// behaviour and API surface.
//
// # Routing
//
// Each request's scenario is reduced to the serve tier's canonical form
// (serve.CanonicalScenario — byte-identical to the backend cache key,
// minus the generation) and consistent-hashed onto a ring of virtual
// nodes. The first R distinct backends clockwise form the key's replica
// set, owner first, so the same scenario always lands on the same small
// set of backends and their prediction caches stay hot. The ring is
// rebuilt only on explicit join/leave; health flaps never reshuffle key
// ownership.
//
// # Health
//
// A probe loop GETs every backend's /healthz and /v1/version. Backends
// answering the serve tier's typed drain shed (503 "draining" with
// Retry-After) are marked shedding — alive, skipped for new work, not
// ejected. Consecutive probe failures eject a backend; re-admission is
// probed with exponential backoff and takes effect on the first healthy
// answer.
//
// # Tail latency
//
// Identical in-flight cache-miss scenarios are coalesced (singleflight):
// a thundering herd of one scenario costs one backend call. Predict
// calls unanswered after a hedge delay — configured, or derived from
// the observed backend p95 — launch a second attempt on the next
// replica; the first usable reply wins and the loser is discarded
// without double-counting metrics.
//
// # Rolling promotion protocol
//
// POST /v1/models/reload on the router rolls a model promotion across
// the fleet one backend at a time: reload backend i, re-read its
// /v1/version to record the new generation, then move to backend i+1.
// Mid-rollout the fleet serves mixed generations; the router hides this
// from clients with per-client generation floors. Every response's
// generation raises the requesting client's floor (clients identify
// themselves with X-Client-ID; anonymous requests share one floor), and
// candidate selection skips backends below the caller's floor. A client
// that has seen generation g is therefore never routed to a backend
// still serving g-1, so each client observes a monotone generation
// sequence with no mixed-generation window, even while the fleet is
// mid-promotion.
package cluster
