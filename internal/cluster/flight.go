package cluster

import (
	"sync"
	"sync/atomic"

	"colocmodel/internal/obs"
)

// flightGroup coalesces identical in-flight work: the first caller for
// a key becomes the leader and runs fn; callers arriving while the
// leader is in flight block and share its result. A thundering herd of
// N identical cache-miss scenarios therefore costs one backend call.
//
// Unlike a cache, nothing is retained: the key is forgotten the moment
// the leader finishes, so followers only ever observe a response that
// was produced while their own request was pending (no staleness).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *proxyResult
	err  error
	// leaderTrace is the leader's trace ID, recorded so followers can
	// annotate their coalesce span with the trace that did the work.
	leaderTrace string
	// followers counts callers sharing this flight; tests use it to
	// step the coalescing machinery deterministically.
	followers atomic.Int64
}

// do runs fn for key, coalescing concurrent duplicates. The boolean
// reports whether the result was shared from another caller's flight.
// tr is the caller's trace (nil-safe): the leader's trace ID is stored
// on the flight, and a follower spends its wait inside a "coalesce"
// span annotated with that ID, so the two traces cross-reference.
func (g *flightGroup) do(key string, tr *obs.Trace, fn func() (*proxyResult, error)) (*proxyResult, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.followers.Add(1)
		g.mu.Unlock()
		sp := tr.StartSpan("coalesce")
		if c.leaderTrace != "" {
			sp.Annotate("leader_trace", c.leaderTrace)
		}
		<-c.done
		sp.End()
		return c.res, c.err, true
	}
	c := &flightCall{done: make(chan struct{}), leaderTrace: tr.TraceID()}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, c.err, false
}

// pendingFollowers reports how many callers are sharing the in-flight
// call for key (0 when no flight is active). Lets tests step the
// coalescing machinery deterministically instead of sleeping.
func (g *flightGroup) pendingFollowers(key string) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.followers.Load()
	}
	return 0
}
