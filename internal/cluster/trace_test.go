package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"colocmodel/internal/fleetobs"
	"colocmodel/internal/obs"
	"colocmodel/internal/serve"
)

// spanAttr returns the value of one span annotation ("" when absent).
func spanAttr(sp *obs.SpanData, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// findSpan returns the first span matching name and origin (-1 when
// absent).
func findSpan(td *obs.TraceData, name, origin string) int {
	for i := range td.Spans {
		if td.Spans[i].Name == name && td.Spans[i].Origin == origin {
			return i
		}
	}
	return -1
}

// latestPredictTrace returns the newest retained OK predict trace.
func latestPredictTrace(t *testing.T, rt *Router) *obs.TraceData {
	t.Helper()
	for _, td := range rt.Tracer().Snapshot(obs.Filter{Name: "predict"}) {
		if td.Status == http.StatusOK {
			return td
		}
	}
	t.Fatal("no retained OK predict trace")
	return nil
}

// TestStitchedTraceServedByTracesEndpoint is the end-to-end acceptance
// path: one proxied predict retains a trace whose tree holds both the
// router's own spans (route, proxy) and the winning backend's
// decode → cache → eval → encode spans under one trace ID, served by
// GET /v1/traces.
func TestStitchedTraceServedByTracesEndpoint(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1, SlowThreshold: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")

	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict returned %d: %s", rec.Code, rec.Body.String())
	}

	rec = doReq(t, rt.Handler(), http.MethodGet, "/v1/traces?endpoint=predict", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("traces returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp serve.TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding traces response: %v", err)
	}
	var td *obs.TraceData
	for _, cand := range resp.Traces {
		if cand.Name == "predict" && cand.Status == http.StatusOK {
			td = cand
			break
		}
	}
	if td == nil {
		t.Fatalf("no retained predict trace in %d traces", resp.Count)
	}
	if len(td.TraceID) != 32 {
		t.Fatalf("trace ID %q, want 32 hex digits", td.TraceID)
	}
	if i := findSpan(td, "route", ""); i < 0 {
		t.Fatalf("router route span missing: %+v", td.Spans)
	}
	pi := findSpan(td, "proxy", "")
	if pi < 0 {
		t.Fatalf("router proxy span missing: %+v", td.Spans)
	}
	if got := spanAttr(&td.Spans[pi], "backend"); got != "a" {
		t.Fatalf("proxy span backend %q, want the owner a", got)
	}
	// The backend's remote root splices under the proxy span, carrying
	// its own stage children, all tagged with the backend's origin.
	ri := findSpan(td, "predict", "a")
	if ri < 0 {
		t.Fatalf("remote root span missing: %+v", td.Spans)
	}
	if td.Spans[ri].Parent != pi {
		t.Fatalf("remote root parent %d, want the proxy span %d", td.Spans[ri].Parent, pi)
	}
	if spanAttr(&td.Spans[ri], "remote_id") == "" {
		t.Fatal("remote root missing the remote_id annotation")
	}
	for _, stage := range []string{"decode", "cache", "eval", "encode"} {
		si := findSpan(td, stage, "a")
		if si < 0 {
			t.Fatalf("remote %s span missing: %+v", stage, td.Spans)
		}
		if td.Spans[si].Parent != ri {
			t.Fatalf("remote %s parent %d, want the remote root %d", stage, td.Spans[si].Parent, ri)
		}
	}
}

// TestStitchedTraceUnderHedge pins stitching under hedging: the
// winner's remote spans attach under its hedge span, the abandoned
// loser is annotated, and the merged Server-Timing carries the
// router-local route and hedge_wait stages in front of the backend's
// own breakdown (satellite format pin).
func TestStitchedTraceUnderHedge(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: 2 * time.Millisecond, SlowThreshold: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")

	a.stall.Store(true)
	defer close(a.gate)
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged predict returned %d: %s", rec.Code, rec.Body.String())
	}

	st := rec.Header().Get("Server-Timing")
	last := -1
	for _, stage := range []string{"route;dur=", "hedge_wait;dur=", "backend;dur=", "eval;dur="} {
		i := strings.Index(st, stage)
		if i < 0 {
			t.Fatalf("Server-Timing %q missing stage %q", st, stage)
		}
		if i < last {
			t.Fatalf("Server-Timing %q: stage %q out of order", st, stage)
		}
		last = i
	}

	td := latestPredictTrace(t, rt)
	hi := findSpan(td, "hedge", "")
	if hi < 0 {
		t.Fatalf("hedge span missing: %+v", td.Spans)
	}
	if got := spanAttr(&td.Spans[hi], "backend"); got != "b" {
		t.Fatalf("hedge span backend %q, want the winner b", got)
	}
	// Winner's remote tree hangs off the hedge span.
	ri := findSpan(td, "predict", "b")
	if ri < 0 || td.Spans[ri].Parent != hi {
		t.Fatalf("winner's remote root not under the hedge span: %+v", td.Spans)
	}
	if findSpan(td, "eval", "b") < 0 {
		t.Fatalf("winner's eval span missing: %+v", td.Spans)
	}
	// Loser a: span present, annotated abandoned, no remote spans.
	pi := findSpan(td, "proxy", "")
	if pi < 0 {
		t.Fatalf("primary proxy span missing: %+v", td.Spans)
	}
	if got := spanAttr(&td.Spans[pi], "backend"); got != "a" {
		t.Fatalf("primary proxy span backend %q, want a", got)
	}
	if got := spanAttr(&td.Spans[pi], "outcome"); got != "abandoned" {
		t.Fatalf("loser outcome %q, want abandoned", got)
	}
	if findSpan(td, "eval", "a") >= 0 {
		t.Fatalf("abandoned loser must not contribute remote spans: %+v", td.Spans)
	}
}

// TestCoalesceFollowerSharesLeaderTrace pins coalescing tracing: the
// follower's trace records a coalesce span annotated with the leader's
// trace ID, its Server-Timing carries the coalesce stage, and only the
// leader's trace carries the backend's stitched spans.
func TestCoalesceFollowerSharesLeaderTrace(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1, SlowThreshold: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")
	body := predictBody(sc)
	flightKey := fmt.Sprintf("%d|%s", 0, routeKey("demo", sc))

	a.stall.Store(true)
	type res struct {
		code int
		st   string
	}
	results := make(chan res, 2)
	issue := func() {
		rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", body, nil)
		results <- res{rec.Code, rec.Header().Get("Server-Timing")}
	}
	go issue() // leader
	waitFor(t, "leader to reach the backend", func() bool { return a.predicts.Load() == 1 })
	go issue() // follower
	waitFor(t, "follower to join the flight", func() bool {
		return rt.flights.pendingFollowers(flightKey) == 1
	})
	close(a.gate)

	sawCoalesceStage := false
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("coalesced predict returned %d", r.code)
		}
		if strings.Contains(r.st, "coalesce;dur=") {
			sawCoalesceStage = true
		}
	}
	if !sawCoalesceStage {
		t.Fatal("no response carried the coalesce Server-Timing stage")
	}

	var leader, follower *obs.TraceData
	for _, td := range rt.Tracer().Snapshot(obs.Filter{Name: "predict"}) {
		if findSpan(td, "coalesce", "") >= 0 {
			follower = td
		} else if findSpan(td, "proxy", "") >= 0 {
			leader = td
		}
	}
	if leader == nil || follower == nil {
		t.Fatalf("leader/follower traces not both retained (leader=%v follower=%v)", leader != nil, follower != nil)
	}
	ci := findSpan(follower, "coalesce", "")
	if got := spanAttr(&follower.Spans[ci], "leader_trace"); got != leader.TraceID {
		t.Fatalf("follower's leader_trace %q, want the leader's trace ID %q", got, leader.TraceID)
	}
	if leader.TraceID == follower.TraceID {
		t.Fatal("leader and follower must keep distinct trace IDs")
	}
	// The stitched backend spans live on the leader only.
	if findSpan(leader, "eval", "a") < 0 {
		t.Fatalf("leader missing the backend's stitched spans: %+v", leader.Spans)
	}
	if findSpan(follower, "eval", "a") >= 0 {
		t.Fatalf("follower must not duplicate the backend's spans: %+v", follower.Spans)
	}
}

// TestMetricsDroppedObservations pins the satellite counter: an
// observation against an endpoint never registered with NewMetrics is
// counted as dropped, mirroring coloserve_metrics_dropped_total.
func TestMetricsDroppedObservations(t *testing.T) {
	m := NewMetrics("known")
	m.ObserveRequest("known", time.Millisecond, false)
	m.ObserveRequest("unknown", time.Millisecond, true)
	if got := m.DroppedObservations(); got != 1 {
		t.Fatalf("dropped %d, want 1", got)
	}
	if got := m.endpoints["known"].requests.Load(); got != 1 {
		t.Fatalf("registered endpoint saw %d requests, want 1", got)
	}
	var sb strings.Builder
	m.WritePrometheus(&sb, 0, 0)
	if !strings.Contains(sb.String(), "colorouter_metrics_dropped_total 1") {
		t.Fatalf("scrape missing the dropped counter:\n%s", sb.String())
	}
}

// TestFleetMetricsEndpoint pins the aggregation surface: the router's
// GET /v1/fleet/metrics merges every backend's scrape, labels fleet
// health per backend, appends the router's own metrics and SLO gauges,
// and the whole document round-trips through the exposition parser.
func TestFleetMetricsEndpoint(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")

	if rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil); rec.Code != http.StatusOK {
		t.Fatalf("predict returned %d", rec.Code)
	}
	rec := doReq(t, rt.Handler(), http.MethodGet, "/v1/fleet/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet metrics returned %d: %s", rec.Code, rec.Body.String())
	}
	text := rec.Body.String()
	for _, want := range []string{
		`coloserve_requests_total{endpoint="predict"} 1`, // summed across the fleet (a=1, b=0)
		`coloserve_in_flight_requests{backend="a"}`,      // gauges re-labelled, not summed
		`colorouter_fleet_backend_up{backend="a"} 1`,
		`colorouter_fleet_backend_up{backend="b"} 1`,
		`colorouter_fleet_backend_error_rate{backend="a"}`,
		`colorouter_requests_total{endpoint="predict"} 1`,
		`colorouter_slo_objective 0.999`,
		`colorouter_slo_state 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("fleet metrics missing %q:\n%s", want, text)
		}
	}
	if _, err := fleetobs.Parse(strings.NewReader(text)); err != nil {
		t.Fatalf("fleet document does not round-trip through the parser: %v", err)
	}
}

// TestRouterSLOEndpoint pins the router's SLO verdict surface and its
// disabled form.
func TestRouterSLOEndpoint(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{Replicas: 1, HedgeAfter: -1}, a)
	sc := scenarioOwnedBy(t, rt, "a")
	if rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil); rec.Code != http.StatusOK {
		t.Fatalf("predict returned %d", rec.Code)
	}
	rec := doReq(t, rt.Handler(), http.MethodGet, "/v1/slo", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("slo returned %d: %s", rec.Code, rec.Body.String())
	}
	var st obs.SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding SLO status: %v", err)
	}
	if st.State != "ok" || st.Objective != 0.999 {
		t.Fatalf("SLO status %+v, want ok at the default objective", st)
	}
	if st.Short.Good != 1 || st.Short.Bad != 0 {
		t.Fatalf("short window %+v, want 1 good observation", st.Short)
	}

	off := newTestRouter(t, Config{Replicas: 1, HedgeAfter: -1, SLOObjective: -1, TraceRing: -1}, a)
	if rec := doReq(t, off.Handler(), http.MethodGet, "/v1/slo", "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("disabled SLO returned %d, want 503", rec.Code)
	}
	if rec := doReq(t, off.Handler(), http.MethodGet, "/v1/traces", "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("disabled tracing returned %d, want 503", rec.Code)
	}
}
