package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"colocmodel/internal/serve"
)

// BackendState is a backend's admission state in the pool.
type BackendState int32

const (
	// StateHealthy admits the backend to routing.
	StateHealthy BackendState = iota
	// StateShedding marks a live backend that is refusing new work
	// (typed 503 "draining" with Retry-After). It is skipped for new
	// requests but NOT ejected: the process answered, it is not dead.
	StateShedding
	// StateEjected removes the backend from routing after consecutive
	// probe failures; re-admission is probed with exponential backoff.
	StateEjected
)

// String names the state for listings and metrics.
func (s BackendState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateShedding:
		return "shedding"
	case StateEjected:
		return "ejected"
	default:
		return fmt.Sprintf("BackendState(%d)", int32(s))
	}
}

// Backend is one coloserve replica: its address, admission state, and
// the per-model serving generations last observed by probes and proxied
// responses. Generations only move forward (a backend restart that
// resets its registry generation is treated as stale information, never
// as a reason to route a client backwards).
type Backend struct {
	// Name identifies the backend in metrics and listings.
	Name string
	// Base is the HTTP root, e.g. "http://10.0.0.3:8080".
	Base string

	state atomic.Int32
	// inflight counts proxied calls currently outstanding against the
	// backend; the placements route picks the least-loaded backend by it.
	inflight atomic.Int64

	mu           sync.Mutex
	consecFails  int
	backoff      time.Duration
	retryAt      time.Time // earliest next probe when ejected / shed expiry
	gens         map[string]uint64
	defaultModel string
}

// State returns the backend's admission state.
func (b *Backend) State() BackendState { return BackendState(b.state.Load()) }

// Available reports whether new requests may be routed to the backend.
func (b *Backend) Available() bool { return b.State() == StateHealthy }

// Inflight reports the number of proxied calls currently outstanding
// against the backend.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// acquire/release bracket one outstanding proxied call.
func (b *Backend) acquire() { b.inflight.Add(1) }
func (b *Backend) release() { b.inflight.Add(-1) }

// Gen returns the backend's last observed serving generation for a
// model; the empty model selects the backend's default entry. Unknown
// models report 0, which always satisfies a zero floor.
func (b *Backend) Gen(model string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if model == "" {
		model = b.defaultModel
	}
	return b.gens[model]
}

// Generations returns a copy of the backend's observed generation map.
func (b *Backend) Generations() map[string]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]uint64, len(b.gens))
	for k, v := range b.gens {
		out[k] = v
	}
	return out
}

// NoteGeneration folds an observed serving generation into the
// backend's record (monotone: lower observations are ignored).
func (b *Backend) NoteGeneration(model string, gen uint64) {
	if model == "" || gen == 0 {
		return
	}
	b.mu.Lock()
	if b.gens == nil {
		b.gens = make(map[string]uint64)
	}
	if gen > b.gens[model] {
		b.gens[model] = gen
	}
	if b.defaultModel == "" {
		b.defaultModel = model
	}
	b.mu.Unlock()
}

// SetGeneration records an authoritatively observed generation: the
// value was read from the backend's own registry (a /v1/version probe),
// so it is adopted even when LOWER than the current record — a lower
// reading means the process restarted and its swap counter reset, and
// keeping the stale high-water mark would route floor-holding clients
// to a backend that can no longer satisfy their floor.
func (b *Backend) SetGeneration(model string, gen uint64) {
	if model == "" || gen == 0 {
		return
	}
	b.mu.Lock()
	if b.gens == nil {
		b.gens = make(map[string]uint64)
	}
	b.gens[model] = gen
	if b.defaultModel == "" {
		b.defaultModel = model
	}
	b.mu.Unlock()
}

// markShedding records a typed-drain response: the backend is alive but
// refusing new work for about retryAfter.
func (b *Backend) markShedding(retryAfter time.Duration) {
	b.mu.Lock()
	b.consecFails = 0
	b.backoff = 0
	b.retryAt = time.Now().Add(retryAfter)
	b.mu.Unlock()
	b.state.Store(int32(StateShedding))
}

// Pool is the health- and generation-aware backend set. It owns the
// consistent-hash ring (rebuilt only on explicit join/leave, never on
// health flaps, so temporary ejections do not reshuffle key ownership)
// and runs the periodic probe loop: GET /healthz decides admission,
// GET /v1/version refreshes serving generations. Consecutive probe
// failures eject a backend; re-admission is retried with exponential
// backoff and succeeds on the first healthy probe.
type Pool struct {
	client       *http.Client
	probeTimeout time.Duration
	ejectAfter   int
	backoffBase  time.Duration
	backoffMax   time.Duration
	vnodes       int
	metrics      *Metrics

	mu       sync.RWMutex
	backends map[string]*Backend
	ring     atomic.Pointer[ring]
}

// newPool wires a pool from the router config (cfg must have defaults
// applied).
func newPool(cfg Config, m *Metrics) *Pool {
	p := &Pool{
		client:       cfg.Client,
		probeTimeout: cfg.ProbeTimeout,
		ejectAfter:   cfg.EjectAfter,
		backoffBase:  cfg.ReadmitBackoff,
		backoffMax:   cfg.ReadmitBackoffMax,
		vnodes:       cfg.VirtualNodes,
		metrics:      m,
		backends:     make(map[string]*Backend),
	}
	p.ring.Store(buildRing(nil, p.vnodes))
	return p
}

// Add joins a backend to the pool and rebuilds the ring. Only the key
// ranges adjacent to the new backend's virtual nodes change owner.
func (p *Pool) Add(name, base string) error {
	if name == "" || base == "" {
		return fmt.Errorf("cluster: backend needs a name and a base URL")
	}
	base = strings.TrimRight(base, "/")
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.backends[name]; dup {
		return fmt.Errorf("cluster: backend %q already joined", name)
	}
	p.backends[name] = &Backend{Name: name, Base: base}
	p.rebuildLocked()
	return nil
}

// Remove leaves a backend from the pool and rebuilds the ring; keys it
// owned move to their next replica, everything else stays put.
func (p *Pool) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.backends[name]; !ok {
		return fmt.Errorf("cluster: backend %q not joined", name)
	}
	delete(p.backends, name)
	p.rebuildLocked()
	return nil
}

func (p *Pool) rebuildLocked() {
	names := make([]string, 0, len(p.backends))
	for n := range p.backends {
		names = append(names, n)
	}
	p.ring.Store(buildRing(names, p.vnodes))
}

// Get resolves a backend by name (nil if unknown).
func (p *Pool) Get(name string) *Backend {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.backends[name]
}

// Backends lists the pool sorted by name.
func (p *Pool) Backends() []*Backend {
	p.mu.RLock()
	out := make([]*Backend, 0, len(p.backends))
	for _, b := range p.backends {
		out = append(out, b)
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Available lists routable backends sorted by name.
func (p *Pool) Available() []*Backend {
	all := p.Backends()
	out := all[:0]
	for _, b := range all {
		if b.Available() {
			out = append(out, b)
		}
	}
	return out
}

// Replicas returns the key's replica set in ring order (owner first),
// unfiltered by health — the router filters so that fallback decisions
// and metrics stay in one place.
func (p *Pool) Replicas(key string, n int) []*Backend {
	names := p.ring.Load().pick(key, n)
	out := make([]*Backend, 0, len(names))
	for _, name := range names {
		if b := p.Get(name); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// Members returns the ring's member names (sorted).
func (p *Pool) Members() []string { return p.ring.Load().members() }

// Start runs the probe loop until ctx is cancelled.
func (p *Pool) Start(ctx context.Context, interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll probes every backend once. Exported so tests (and the router
// at startup) can step the health machinery deterministically instead
// of waiting out the ticker.
func (p *Pool) ProbeAll(ctx context.Context) {
	for _, b := range p.Backends() {
		p.probe(ctx, b)
	}
}

// probe runs one health/generation probe against a backend and applies
// the admission transition.
func (p *Pool) probe(ctx context.Context, b *Backend) {
	b.mu.Lock()
	if BackendState(b.state.Load()) == StateEjected && time.Now().Before(b.retryAt) {
		b.mu.Unlock()
		return // still backing off
	}
	b.mu.Unlock()

	status, retryAfter, err := p.probeHealthz(ctx, b)
	switch {
	case err == nil && status == http.StatusOK:
		was := BackendState(b.state.Load())
		b.mu.Lock()
		b.consecFails = 0
		b.backoff = 0
		b.mu.Unlock()
		b.state.Store(int32(StateHealthy))
		if was == StateEjected {
			p.metrics.ReadmissionRecorded(b.Name)
		}
		p.RefreshGeneration(ctx, b)
	case err == nil && retryAfter > 0:
		// Typed drain shed: alive but refusing work. Not a failure.
		b.markShedding(retryAfter)
	default:
		p.recordFailure(b)
	}
}

// recordFailure counts one probe failure and ejects the backend once
// the consecutive-failure threshold is crossed (doubling the
// re-admission backoff while failures continue).
func (p *Pool) recordFailure(b *Backend) {
	b.mu.Lock()
	b.consecFails++
	eject := b.consecFails >= p.ejectAfter
	if eject {
		if b.backoff == 0 {
			b.backoff = p.backoffBase
		} else {
			b.backoff *= 2
			if b.backoff > p.backoffMax {
				b.backoff = p.backoffMax
			}
		}
		b.retryAt = time.Now().Add(b.backoff)
	}
	b.mu.Unlock()
	if eject {
		if BackendState(b.state.Load()) != StateEjected {
			p.metrics.EjectionRecorded(b.Name)
		}
		b.state.Store(int32(StateEjected))
	}
}

// probeHealthz GETs the backend's /healthz. A 503 carrying Retry-After
// is the serve tier's typed drain shed; its delay is returned so the
// caller can mark the backend shedding instead of failed.
func (p *Pool) probeHealthz(ctx context.Context, b *Backend) (status int, retryAfter time.Duration, err error) {
	pctx, cancel := context.WithTimeout(ctx, p.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.Base+"/healthz", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			secs, perr := strconv.Atoi(strings.TrimSpace(ra))
			if perr != nil || secs < 1 {
				secs = 1
			}
			return resp.StatusCode, time.Duration(secs) * time.Second, nil
		}
		return resp.StatusCode, 0, fmt.Errorf("cluster: %s unhealthy: %s", b.Name, resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, 0, fmt.Errorf("cluster: %s healthz returned %s", b.Name, resp.Status)
	}
	return resp.StatusCode, 0, nil
}

// RefreshGeneration reads the backend's /v1/version and adopts the
// reported serving generations verbatim (see SetGeneration: a probe is
// authoritative, so a restart's counter reset is picked up rather than
// shadowed by the old high-water mark).
func (p *Pool) RefreshGeneration(ctx context.Context, b *Backend) {
	pctx, cancel := context.WithTimeout(ctx, p.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.Base+"/v1/version", nil)
	if err != nil {
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	var v serve.VersionResponse
	if err := json.Unmarshal(raw, &v); err != nil {
		return
	}
	b.mu.Lock()
	if v.DefaultModel != "" {
		b.defaultModel = v.DefaultModel
	}
	b.mu.Unlock()
	for model, gen := range v.Generations {
		b.SetGeneration(model, gen)
	}
	p.metrics.GenerationObserved(b.Name, b.Gen(""))
}
