package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"colocmodel/internal/features"
	"colocmodel/internal/obs"
	"colocmodel/internal/serve"
)

// fakeBackend is a scripted coloserve stand-in: it answers the probe
// and predict surface with controllable health, drain, generation and
// stall behaviour, so routing decisions can be tested deterministically
// without training a model.
type fakeBackend struct {
	name string
	ts   *httptest.Server

	predicts   atomic.Int64
	placements atomic.Int64
	reloads    atomic.Int64
	gen        atomic.Uint64
	healthy    atomic.Bool
	drain      atomic.Bool
	stall      atomic.Bool
	gate       chan struct{}
}

func writeShed(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	io.WriteString(w, `{"error":{"code":"draining","message":"server is draining for shutdown"}}`)
}

func newFakeBackend(t *testing.T, name string) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{name: name, gate: make(chan struct{})}
	fb.healthy.Store(true)
	fb.gen.Store(1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case fb.drain.Load():
			writeShed(w)
		case !fb.healthy.Load():
			w.WriteHeader(http.StatusInternalServerError)
		default:
			io.WriteString(w, `{"status":"ok"}`)
		}
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(serve.VersionResponse{
			DefaultModel: "demo",
			Generations:  map[string]uint64{"demo": fb.gen.Load()},
		})
	})
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if fb.drain.Load() {
			writeShed(w)
			return
		}
		fb.predicts.Add(1)
		if fb.stall.Load() {
			select {
			case <-fb.gate:
			case <-r.Context().Done():
				return
			}
		}
		// Mirror the serve tier's trace emission: when the router sent a
		// sampled traceparent, answer with a real span tree so stitching
		// is exercised against the production wire format.
		if tc, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok && tc.Sampled {
			bt := obs.NewTracer(obs.Config{}).Start("http", "predict", "backend-req")
			bt.AdoptContext(tc)
			for _, stage := range []string{"decode", "cache", "eval", "encode"} {
				sp := bt.StartSpan(stage)
				sp.End()
			}
			w.Header().Set(obs.TraceSpansHeader, bt.WireSpans())
			bt.Finish(http.StatusOK, false)
		}
		w.Header().Set("Server-Timing", "eval;dur=0.100")
		fmt.Fprintf(w, `{"model":"demo","generation":%d,"predicted_seconds":1.5,"predicted_slowdown":1.1}`, fb.gen.Load())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprintf(w, "# TYPE coloserve_requests_total counter\ncoloserve_requests_total{endpoint=\"predict\"} %d\n", fb.predicts.Load())
		fmt.Fprintf(w, "# TYPE coloserve_request_errors_total counter\ncoloserve_request_errors_total{endpoint=\"predict\"} 0\n")
		fmt.Fprintf(w, "# TYPE coloserve_in_flight_requests gauge\ncoloserve_in_flight_requests 0\n")
	})
	mux.HandleFunc("POST /v1/placements", func(w http.ResponseWriter, r *http.Request) {
		if fb.drain.Load() {
			writeShed(w)
			return
		}
		fb.placements.Add(1)
		if fb.stall.Load() {
			select {
			case <-fb.gate:
			case <-r.Context().Done():
				return
			}
		}
		// A streaming response: one incremental plan line, one final.
		w.Header().Set("Content-Type", "application/x-ndjson")
		io.WriteString(w, `{"final":false,"plan":{"objective":2.5}}`+"\n")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		fmt.Fprintf(w, `{"final":true,"plan":{"objective":2.0},"search":{"rounds":1,"improvements":1,"scenarios_predicted":8,"converged":true}}%s`, "\n")
	})
	mux.HandleFunc("POST /v1/models/reload", func(w http.ResponseWriter, r *http.Request) {
		fb.reloads.Add(1)
		fb.gen.Add(1)
		io.WriteString(w, `{"reloaded":["demo"]}`)
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

// newTestRouter joins the fakes and probes once (no ticker: tests step
// the probe machinery explicitly via ProbeAll).
func newTestRouter(t *testing.T, cfg Config, fbs ...*fakeBackend) *Router {
	t.Helper()
	rt := New(cfg)
	for _, fb := range fbs {
		if err := rt.Pool().Add(fb.name, fb.ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	rt.pool.ProbeAll(context.Background())
	return rt
}

func doReq(t *testing.T, h http.Handler, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// scenarioOwnedBy searches the scenario space for one whose routing key
// lands on the wanted owner.
func scenarioOwnedBy(t *testing.T, rt *Router, owner string) features.Scenario {
	t.Helper()
	for i := 0; i < 10000; i++ {
		sc := features.Scenario{Target: fmt.Sprintf("app%d", i), CoApps: []string{"ep"}, PState: 0}
		if set := rt.pool.Replicas(routeKey("demo", sc), 1); len(set) > 0 && set[0].Name == owner {
			return sc
		}
	}
	t.Fatalf("no scenario owned by %s in 10000 candidates", owner)
	return features.Scenario{}
}

func predictBody(sc features.Scenario) string {
	return fmt.Sprintf(`{"model":"demo","target":%q,"co_apps":["ep"],"pstate":%d}`, sc.Target, sc.PState)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPredictProxy pins the basic hop contract: the owner serves the
// request, the request ID is echoed, and the router's Server-Timing
// stitches its hop stages in front of the backend's own breakdown.
func TestPredictProxy(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")

	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc),
		map[string]string{"X-Request-ID": "req-42"})
	if rec.Code != http.StatusOK {
		t.Fatalf("predict returned %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "req-42" {
		t.Fatalf("X-Request-ID %q, want the client's req-42 echoed", got)
	}
	if got := rec.Header().Get("X-Backend"); got != "a" {
		t.Fatalf("served by %q, want owner a", got)
	}
	st := rec.Header().Get("Server-Timing")
	for _, stage := range []string{"route", "backend", "eval"} {
		if !strings.Contains(st, stage) {
			t.Fatalf("Server-Timing %q missing stage %q", st, stage)
		}
	}
	if a.predicts.Load() != 1 || b.predicts.Load() != 0 {
		t.Fatalf("backend calls a=%d b=%d, want exactly one on the owner", a.predicts.Load(), b.predicts.Load())
	}
	// The response generation raised the anonymous floor.
	if got := rt.floors.get("", "demo"); got != 1 {
		t.Fatalf("anonymous floor %d after a gen-1 response, want 1", got)
	}
}

// TestSingleflightCoalesce pins the coalescing contract: N concurrent
// identical cache-miss scenarios cost exactly one backend call, and the
// followers share the leader's response.
func TestSingleflightCoalesce(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")
	body := predictBody(sc)
	flightKey := fmt.Sprintf("%d|%s", 0, routeKey("demo", sc))

	a.stall.Store(true)
	const followers = 7
	results := make(chan *httptest.ResponseRecorder, followers+1)
	issue := func() { results <- doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", body, nil) }

	go issue() // leader
	waitFor(t, "leader to reach the backend", func() bool { return a.predicts.Load() == 1 })
	for i := 0; i < followers; i++ {
		go issue()
	}
	waitFor(t, "followers to join the flight", func() bool {
		return rt.flights.pendingFollowers(flightKey) == followers
	})
	close(a.gate) // release the leader; everyone shares its response

	for i := 0; i < followers+1; i++ {
		rec := <-results
		if rec.Code != http.StatusOK {
			t.Fatalf("coalesced request returned %d: %s", rec.Code, rec.Body.String())
		}
	}
	if got := a.predicts.Load(); got != 1 {
		t.Fatalf("backend saw %d predict calls for %d identical requests, want 1", got, followers+1)
	}
	if got := rt.metrics.Coalesced(); got != followers {
		t.Fatalf("coalesced counter %d, want %d", got, followers)
	}
}

// TestHedgeFiresOnStall pins the hedging contract: a stalled owner
// trips the hedge timer, the next replica answers, and the slow reply
// is discarded without double-counting — one inbound request stays one
// measured request.
func TestHedgeFiresOnStall(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: 2 * time.Millisecond}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")

	a.stall.Store(true)
	defer close(a.gate)
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged predict returned %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "b" {
		t.Fatalf("served by %q, want the hedge replica b", got)
	}
	if got := rt.metrics.Hedges(); got != 1 {
		t.Fatalf("hedges %d, want 1", got)
	}
	if got := rt.metrics.HedgeWins(); got != 1 {
		t.Fatalf("hedge wins %d, want 1", got)
	}
	// No double counting: one inbound request, one measured latency, one
	// winning backend-call sample in the hedge-delay estimator.
	if got := rt.metrics.endpoints["predict"].requests.Load(); got != 1 {
		t.Fatalf("endpoint counted %d requests, want 1", got)
	}
	if got := rt.metrics.endpoints["predict"].latency.samples(); got != 1 {
		t.Fatalf("endpoint latency has %d samples, want 1", got)
	}
	if got := rt.backLat.samples(); got != 1 {
		t.Fatalf("backend-latency estimator has %d samples, want 1 (the winner)", got)
	}
}

// TestDrainShedFailover pins satellite behaviour: a typed 503 with
// Retry-After re-routes the request and marks the backend shedding —
// alive, skipped, NOT ejected — while a plain failure would count
// toward ejection.
func TestDrainShedFailover(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, a, b)
	sc := scenarioOwnedBy(t, rt, "a")

	a.drain.Store(true)
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict during owner drain returned %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "b" {
		t.Fatalf("served by %q, want failover to b", got)
	}
	ba := rt.pool.Get("a")
	if got := ba.State(); got != StateShedding {
		t.Fatalf("drained backend state %v, want shedding (alive, not ejected)", got)
	}
	if got := rt.metrics.Sheds("a"); got != 1 {
		t.Fatalf("sheds(a) %d, want 1", got)
	}
	// The ring still holds both members: drain never reshuffles keys.
	if got := rt.pool.Members(); len(got) != 2 {
		t.Fatalf("ring members %v, want both despite the drain", got)
	}
	// Probe sees the typed shed too and keeps the state, not ejecting.
	rt.pool.ProbeAll(context.Background())
	if got := ba.State(); got != StateShedding {
		t.Fatalf("state after probe %v, want still shedding", got)
	}
	// Drain ends: the next probe re-admits immediately (shedding never
	// carries a re-admission backoff).
	a.drain.Store(false)
	rt.pool.ProbeAll(context.Background())
	if got := ba.State(); got != StateHealthy {
		t.Fatalf("state after drain ended %v, want healthy", got)
	}
}

// TestEjectionAndReadmission steps the probe state machine: consecutive
// probe failures eject (without touching the ring), and a recovered
// backend is re-admitted after its backoff.
func TestEjectionAndReadmission(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{
		Replicas:       2,
		HedgeAfter:     -1,
		EjectAfter:     2,
		ReadmitBackoff: time.Millisecond,
	}, a, b)
	ctx := context.Background()
	ba := rt.pool.Get("a")

	a.healthy.Store(false)
	rt.pool.ProbeAll(ctx)
	if got := ba.State(); got != StateHealthy {
		t.Fatalf("state after 1 failed probe %v, want still healthy (threshold 2)", got)
	}
	rt.pool.ProbeAll(ctx)
	if got := ba.State(); got != StateEjected {
		t.Fatalf("state after 2 failed probes %v, want ejected", got)
	}
	if got := rt.metrics.backend("a").ejections.Load(); got != 1 {
		t.Fatalf("ejections(a) %d, want 1", got)
	}
	if got := len(rt.pool.Members()); got != 2 {
		t.Fatalf("ring members %d after ejection, want 2 (health never reshuffles keys)", got)
	}
	if got := len(rt.pool.Available()); got != 1 {
		t.Fatalf("available backends %d, want 1", got)
	}

	a.healthy.Store(true)
	time.Sleep(2 * time.Millisecond) // let the 1ms re-admission backoff lapse
	rt.pool.ProbeAll(ctx)
	if got := ba.State(); got != StateHealthy {
		t.Fatalf("state after recovery probe %v, want healthy", got)
	}
	if got := rt.metrics.backend("a").readmissions.Load(); got != 1 {
		t.Fatalf("readmissions(a) %d, want 1", got)
	}
}

// TestGenerationFloorRouting pins the no-mixed-generation-window
// property at the unit level: once a client has seen generation 2, it
// is never again routed to a backend still serving generation 1 — even
// when that backend owns the key — while fresh clients still use the
// owner.
func TestGenerationFloorRouting(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 1, HedgeAfter: -1}, a, b)
	ctx := context.Background()
	scA := scenarioOwnedBy(t, rt, "a")
	scB := scenarioOwnedBy(t, rt, "b")
	hdr := map[string]string{"X-Client-ID": "c1"}

	// Promote a to generation 2 (b stays at 1) and refresh the record.
	a.gen.Store(2)
	rt.pool.RefreshGeneration(ctx, rt.pool.Get("a"))

	// The client observes generation 2 on a — its floor rises.
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(scA), hdr)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Backend") != "a" {
		t.Fatalf("predict on a: code %d backend %q", rec.Code, rec.Header().Get("X-Backend"))
	}
	if got := rt.floors.get("c1", "demo"); got != 2 {
		t.Fatalf("client floor %d after seeing generation 2, want 2", got)
	}

	// A key owned by the unpromoted b must NOT go backwards for c1.
	rec = doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(scB), hdr)
	if rec.Code != http.StatusOK {
		t.Fatalf("floored predict returned %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Backend"); got != "a" {
		t.Fatalf("client with floor 2 served by %q (gen 1), want a (gen 2)", got)
	}
	// A fresh client still gets the owner.
	rec = doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(scB),
		map[string]string{"X-Client-ID": "c2"})
	if got := rec.Header().Get("X-Backend"); got != "b" {
		t.Fatalf("fresh client served by %q, want owner b", got)
	}
}

// TestRollingPromotion drives the router's reload endpoint: every
// backend reloads exactly once, the recorded generations advance, and
// the rollout reports completion.
func TestRollingPromotion(t *testing.T) {
	fbs := []*fakeBackend{newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c")}
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, fbs...)

	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/models/reload", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp RolloutResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Completed {
		t.Fatalf("rollout not completed: %+v", resp)
	}
	if len(resp.Backends) != 3 {
		t.Fatalf("rollout covered %d backends, want 3", len(resp.Backends))
	}
	for _, rb := range resp.Backends {
		if rb.Error != "" {
			t.Fatalf("backend %s failed: %s", rb.Backend, rb.Error)
		}
		if rb.Generation != 2 {
			t.Fatalf("backend %s at generation %d after promotion, want 2", rb.Backend, rb.Generation)
		}
	}
	for _, fb := range fbs {
		if got := fb.reloads.Load(); got != 1 {
			t.Fatalf("backend %s reloaded %d times, want exactly 1", fb.name, got)
		}
	}
	if got := rt.metrics.promotions.Load(); got != 1 {
		t.Fatalf("promotions %d, want 1", got)
	}
}

// TestRestartedBackendCatchesUp covers the process-restart hole in the
// promotion protocol: serve generations are per-process swap counters,
// so a restarted replica reports a LOWER generation than the pool
// remembers. The probe must adopt the reset (not keep the stale
// high-water mark, which would route floor-holding clients to a backend
// that cannot satisfy their floor), and the next rollout must issue
// catch-up reloads until the straggler matches the fleet maximum —
// otherwise one reload each leaves it permanently behind.
func TestRestartedBackendCatchesUp(t *testing.T) {
	a, b := newFakeBackend(t, "a"), newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, a, b)

	// First rollout: fleet converges at generation 2.
	if rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/models/reload", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("reload returned %d: %s", rec.Code, rec.Body.String())
	}

	// b "restarts": its swap counter resets to 1. The next probe is
	// authoritative and must adopt the lower value.
	b.gen.Store(1)
	rt.pool.ProbeAll(context.Background())
	if got := rt.pool.Get("b").Gen("demo"); got != 1 {
		t.Fatalf("pool records b at generation %d after restart probe, want 1 (stale high-water mark kept)", got)
	}

	// Second rollout: a goes 2->3 with one reload; b needs the rolling
	// reload (1->2) plus one catch-up (2->3).
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/models/reload", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp RolloutResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Completed {
		t.Fatalf("rollout with a straggler not completed: %+v", resp)
	}
	for _, rb := range resp.Backends {
		if rb.Generation != 3 {
			t.Fatalf("backend %s at generation %d after catch-up rollout, want 3", rb.Backend, rb.Generation)
		}
	}
	if got := a.reloads.Load(); got != 2 {
		t.Fatalf("a reloaded %d times total, want 2 (one per rollout)", got)
	}
	if got := b.reloads.Load(); got != 3 {
		t.Fatalf("b reloaded %d times total, want 3 (rollouts + one catch-up)", got)
	}
	if got, want := rt.pool.Get("b").Gen("demo"), uint64(3); got != want {
		t.Fatalf("pool records b at generation %d, want %d", got, want)
	}
}

// TestNoBackendTyped503 pins the router's own typed unavailability: no
// admissible backend yields a 503 with code "no_backend".
func TestNoBackendTyped503(t *testing.T) {
	a := newFakeBackend(t, "a")
	rt := newTestRouter(t, Config{Replicas: 1, HedgeAfter: -1}, a)
	a.healthy.Store(false)
	rt.pool.ProbeAll(context.Background())
	rt.pool.ProbeAll(context.Background())
	rt.pool.ProbeAll(context.Background()) // default EjectAfter=3

	sc := features.Scenario{Target: "cg", CoApps: []string{"ep"}, PState: 0}
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict", predictBody(sc), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict with no backends returned %d, want 503", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != CodeNoBackend {
		t.Fatalf("error code %q, want %q", eb.Error.Code, CodeNoBackend)
	}
	if got := rt.metrics.noBackend.Load(); got == 0 {
		t.Fatal("no_backend counter not incremented")
	}
}

// TestHealthzAndClusterEndpoints sanity-checks the introspection
// surface: healthz summarises fleet health, /v1/cluster lists members
// with state and generations, /metrics renders the Prometheus text.
func TestHealthzAndClusterEndpoints(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: -1}, a, b)

	rec := doReq(t, rt.Handler(), http.MethodGet, "/healthz", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz returned %d", rec.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Healthy != 2 || hr.Backends != 2 {
		t.Fatalf("healthz reports %d/%d healthy, want 2/2", hr.Healthy, hr.Backends)
	}

	rec = doReq(t, rt.Handler(), http.MethodGet, "/v1/cluster", "", nil)
	var cr ClusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Backends) != 2 || cr.Replicas != 2 {
		t.Fatalf("cluster listing %+v, want 2 backends, R=2", cr)
	}
	for _, bi := range cr.Backends {
		if bi.State != "healthy" || bi.Generations["demo"] != 1 {
			t.Fatalf("backend %s: state %s gens %v, want healthy at gen 1", bi.Name, bi.State, bi.Generations)
		}
	}

	rec = doReq(t, rt.Handler(), http.MethodGet, "/metrics", "", nil)
	for _, metric := range []string{"colorouter_requests_total", "colorouter_backend_requests_total", "colorouter_backends_healthy 2"} {
		if !strings.Contains(rec.Body.String(), metric) {
			t.Fatalf("/metrics missing %q", metric)
		}
	}
}

// TestBatchScatterGather splits a batch across owners and reassembles
// it in request order.
func TestBatchScatterGather(t *testing.T) {
	a := newFakeBackend(t, "a")
	b := newFakeBackend(t, "b")
	// The fakes need a batch endpoint; answer each scenario in order.
	for _, fb := range []*fakeBackend{a, b} {
		fb := fb
		mux := fb.ts.Config.Handler.(*http.ServeMux)
		mux.HandleFunc("POST /v1/predict/batch", func(w http.ResponseWriter, r *http.Request) {
			var req serve.BatchRequest
			_ = json.NewDecoder(r.Body).Decode(&req)
			results := make([]batchItem, len(req.Scenarios))
			for i, sc := range req.Scenarios {
				results[i].Result = json.RawMessage(fmt.Sprintf(
					`{"model":"demo","generation":%d,"target":%q,"predicted_seconds":1.5}`, fb.gen.Load(), sc.Target))
			}
			_ = json.NewEncoder(w).Encode(batchResponse{Model: "demo", Results: results})
		})
	}
	rt := newTestRouter(t, Config{Replicas: 1, HedgeAfter: -1}, a, b)
	scA := scenarioOwnedBy(t, rt, "a")
	scB := scenarioOwnedBy(t, rt, "b")

	body := fmt.Sprintf(`{"model":"demo","scenarios":[
		{"target":%q,"co_apps":["ep"],"pstate":0},
		{"target":%q,"co_apps":["ep"],"pstate":0},
		{"target":%q,"co_apps":["ep"],"pstate":0}]}`, scA.Target, scB.Target, scA.Target)
	rec := doReq(t, rt.Handler(), http.MethodPost, "/v1/predict/batch", body, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch returned %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Errors != 0 {
		t.Fatalf("batch results %d errors %d, want 3/0", len(resp.Results), resp.Errors)
	}
	// Order preserved: slot targets match the request order.
	wantTargets := []string{scA.Target, scB.Target, scA.Target}
	for i, item := range resp.Results {
		var id struct {
			Target string `json:"target"`
		}
		if err := json.Unmarshal(item.Result, &id); err != nil {
			t.Fatal(err)
		}
		if id.Target != wantTargets[i] {
			t.Fatalf("slot %d answered for %q, want %q (order lost in scatter-gather)", i, id.Target, wantTargets[i])
		}
	}
}

// TestConcurrentTrafficUnderChurn hammers the router from many
// goroutines while health flaps and a promotion rolls — a -race canary
// for the pool/ring/floor data structures. During a simultaneous drain
// and promotion a request's generation floor can leave only the
// draining backend admissible; the router answers that window with its
// typed retryable 503 (Retry-After set), which is the one non-200
// outcome the test accepts.
func TestConcurrentTrafficUnderChurn(t *testing.T) {
	fbs := []*fakeBackend{newFakeBackend(t, "a"), newFakeBackend(t, "b"), newFakeBackend(t, "c")}
	rt := newTestRouter(t, Config{Replicas: 2, HedgeAfter: time.Millisecond}, fbs...)
	h := rt.Handler()
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var served, retryable atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sc := features.Scenario{Target: fmt.Sprintf("app%d", (w*100+i)%23), CoApps: []string{"ep"}, PState: i % 2}
				rec := doReq(t, h, http.MethodPost, "/v1/predict", predictBody(sc),
					map[string]string{"X-Client-ID": fmt.Sprintf("w%d", w)})
				switch {
				case rec.Code == http.StatusOK:
					served.Add(1)
				case rec.Code == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") != "":
					retryable.Add(1)
				default:
					t.Errorf("predict returned %d: %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			fbs[1].drain.Store(true)
			rt.pool.ProbeAll(ctx)
			fbs[1].drain.Store(false)
			rt.pool.ProbeAll(ctx)
			doReq(t, h, http.MethodPost, "/v1/models/reload", "", nil)
		}
	}()
	wg.Wait() // traffic workers finish first
	close(stop)
	churn.Wait()
	if served.Load() == 0 {
		t.Fatal("no request succeeded under churn")
	}
	if r, s := retryable.Load(), served.Load(); r > s/4 {
		t.Fatalf("%d retryable 503s vs %d served: churn starved the fleet", r, s)
	}
}
