package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sort"
	"time"

	"colocmodel/internal/obs"
)

// ---- placements ----

// leastLoaded returns the available backends ordered by outstanding
// proxied calls (ties by name, so routing is deterministic under equal
// load). Placement requests have no scenario key — any backend can
// serve any request, and they are the fleet's most expensive calls, so
// load is the only signal worth routing on.
func (rt *Router) leastLoaded() []*Backend {
	cands := rt.pool.Available()
	sort.SliceStable(cands, func(i, j int) bool {
		li, lj := cands[i].Inflight(), cands[j].Inflight()
		if li != lj {
			return li < lj
		}
		return cands[i].Name < cands[j].Name
	})
	return cands
}

// flushWriter flushes after every write so a backend's incremental
// NDJSON plans reach the client as the search produces them, not when
// it converges.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// handlePlacements proxies POST /v1/placements to the least-loaded
// healthy backend. Registered outside wrap: the streaming mode must
// copy the backend's NDJSON body to the client incrementally, so the
// handler owns the writer. Failover (transport error, 5xx, drain shed)
// moves to the next candidate as long as no body byte has been
// forwarded; hedging is deliberately off — an optimizer search is the
// most expensive call in the system, and racing two of them doubles
// fleet load for no latency win.
func (rt *Router) handlePlacements(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rt.metrics.RequestStarted()
	defer rt.metrics.RequestDone()
	reqID, tr := rt.ingress(w, r, "placements", start)
	finish := func(status int) {
		d := time.Since(start)
		tr.Finish(status, status >= 500)
		rt.logRequest(r, "placements", reqID, status, d)
		rt.metrics.ObserveRequest("placements", d, status >= 500)
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		status, eb := errJSON(http.StatusBadRequest, CodeBadRequest, "reading request body: %v", err)
		writeJSON(w, status, eb)
		finish(status)
		return
	}
	cands := rt.leastLoaded()
	if len(cands) == 0 {
		rt.metrics.NoBackendRecorded()
		w.Header().Set("Retry-After", "1")
		status, eb := errJSON(http.StatusServiceUnavailable, CodeNoBackend, "no healthy backend")
		writeJSON(w, status, eb)
		finish(status)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	ctx = obs.NewContext(ctx, reqID, tr)
	var lastErr error
	allShed := true
	for _, b := range cands {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, b.Base+"/v1/placements", bytes.NewReader(body))
		if rerr != nil {
			lastErr = rerr
			allShed = false
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", reqID)
		if tp := outboundTraceparent(ctx); tp != "" {
			req.Header.Set(obs.TraceparentHeader, tp)
		}
		b.acquire()
		resp, derr := rt.cfg.Client.Do(req)
		if derr != nil {
			b.release()
			rt.metrics.BackendRequest(b.Name, true)
			lastErr = derr
			allShed = false
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
			// Typed drain shed: alive but refusing. Mark it and move on.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			b.release()
			b.markShedding(time.Second)
			rt.metrics.ShedRecorded(b.Name)
			rt.metrics.BackendRequest(b.Name, false)
			continue
		}
		if resp.StatusCode >= 500 {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			b.release()
			rt.metrics.BackendRequest(b.Name, true)
			lastErr = nil
			allShed = false
			continue
		}
		// Definitive answer: replay status and stream the body through.
		rt.metrics.BackendRequest(b.Name, false)
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		if st := resp.Header.Get("Server-Timing"); st != "" {
			w.Header().Set("Server-Timing", st)
		}
		w.Header().Set("X-Backend", b.Name)
		w.WriteHeader(resp.StatusCode)
		f, _ := w.(http.Flusher)
		_, _ = io.Copy(flushWriter{w: w, f: f}, resp.Body)
		resp.Body.Close()
		b.release()
		finish(resp.StatusCode)
		return
	}
	var status int
	var eb any
	switch {
	case allShed && lastErr == nil:
		w.Header().Set("Retry-After", "1")
		status, eb = errJSON(http.StatusServiceUnavailable, CodeNoBackend, "all healthy backends are draining")
	case lastErr != nil:
		status, eb = errJSON(http.StatusBadGateway, CodeBackendUnavailable, "all candidates failed: %v", lastErr)
	default:
		status, eb = errJSON(http.StatusBadGateway, CodeBackendUnavailable, "all candidates failed")
	}
	writeJSON(w, status, eb)
	finish(status)
}
