package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation of xs and ys.
// It returns 0 for degenerate inputs (constant series), and an error for
// mismatched or too-short inputs.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation: Pearson correlation of
// the ranks, with average ranks for ties.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks to a series.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// CorrelationMatrix returns the Pearson correlation matrix of the columns
// of data (each inner slice is one column/series of equal length).
func CorrelationMatrix(columns [][]float64) ([][]float64, error) {
	d := len(columns)
	if d == 0 {
		return nil, fmt.Errorf("stats: no columns")
	}
	n := len(columns[0])
	for j, c := range columns {
		if len(c) != n {
			return nil, fmt.Errorf("stats: column %d has %d samples, want %d", j, len(c), n)
		}
	}
	out := make([][]float64, d)
	for i := range out {
		out[i] = make([]float64, d)
		out[i][i] = 1
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			r, err := Pearson(columns[i], columns[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = r
			out[j][i] = r
		}
	}
	return out, nil
}
