package stats

import (
	"math"
	"testing"
	"testing/quick"

	"colocmodel/internal/xrand"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if math.Abs(Variance(xs)-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of singleton not NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestMPEKnown(t *testing.T) {
	// Errors of +10% and -10% -> MPE 10.
	got, err := MPE([]float64{110, 90}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("MPE = %v, want 10", got)
	}
}

func TestMPEPerfect(t *testing.T) {
	got, err := MPE([]float64{5, 6}, []float64{5, 6})
	if err != nil || got != 0 {
		t.Fatalf("MPE perfect = %v err=%v", got, err)
	}
}

func TestMPEErrors(t *testing.T) {
	if _, err := MPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MPE(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := MPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero actual accepted")
	}
}

func TestNRMSEKnown(t *testing.T) {
	// predicted-actual = {1, -1}; RMSE = 1; range = 10 -> 10%.
	got, err := NRMSE([]float64{11, 19}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("NRMSE = %v, want 10", got)
	}
}

func TestNRMSEDegenerate(t *testing.T) {
	if _, err := NRMSE([]float64{1, 2}, []float64{5, 5}); err == nil {
		t.Fatal("zero range accepted")
	}
	if _, err := NRMSE(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := NRMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPercentErrorsSigned(t *testing.T) {
	pe, err := PercentErrors([]float64{110, 95}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if pe[0] != 10 || pe[1] != -5 {
		t.Fatalf("PercentErrors = %v", pe)
	}
	if _, err := PercentErrors([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero actual accepted")
	}
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Median(xs) != 3 {
		t.Fatalf("median = %v", Median(xs))
	}
	if Quantile(xs, 0.25) != 2 {
		t.Fatalf("q1 = %v", Quantile(xs, 0.25))
	}
	// Interpolation: median of {1,2,3,4} is 2.5.
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("interpolated median wrong")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 || s.Mean != 3 || s.N != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestFractionWithin(t *testing.T) {
	xs := []float64{-1, 0.5, 2, -3}
	if FractionWithin(xs, 1) != 0.5 {
		t.Fatalf("FractionWithin = %v", FractionWithin(xs, 1))
	}
	if !math.IsNaN(FractionWithin(nil, 1)) {
		t.Fatal("empty not NaN")
	}
}

func TestHistogram(t *testing.T) {
	bins := Histogram([]float64{0.1, 0.2, 0.9, -5, 42}, 0, 1, 2)
	// -5 clamps to bin 0; 42 clamps to bin 1.
	if bins[0] != 3 || bins[1] != 2 {
		t.Fatalf("Histogram = %v", bins)
	}
	if Histogram(nil, 1, 0, 2) != nil {
		t.Fatal("degenerate range accepted")
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{1, 1, 1, 1})
	if mean != 1 || hw != 0 {
		t.Fatalf("MeanCI = %v ± %v", mean, hw)
	}
	_, hw1 := MeanCI([]float64{1})
	if !math.IsNaN(hw1) {
		t.Fatal("singleton CI not NaN")
	}
}

func TestPartitionerSplits(t *testing.T) {
	src := xrand.New(1)
	p, err := NewPartitioner(100, 0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	part := p.Next()
	if len(part.Test) != 30 || len(part.Train) != 70 {
		t.Fatalf("split sizes %d/%d", len(part.Train), len(part.Test))
	}
	seen := make([]bool, 100)
	for _, i := range append(append([]int(nil), part.Train...), part.Test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d missing", i)
		}
	}
}

func TestPartitionerVariesBetweenCalls(t *testing.T) {
	src := xrand.New(2)
	p, _ := NewPartitioner(50, 0.3, src)
	a, b := p.Next(), p.Next()
	same := true
	for i := range a.Test {
		if a.Test[i] != b.Test[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two partitions identical")
	}
}

func TestPartitionerErrors(t *testing.T) {
	src := xrand.New(3)
	if _, err := NewPartitioner(1, 0.3, src); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewPartitioner(10, 0, src); err == nil {
		t.Fatal("frac=0 accepted")
	}
	if _, err := NewPartitioner(10, 1, src); err == nil {
		t.Fatal("frac=1 accepted")
	}
	if _, err := NewPartitioner(3, 0.01, src); err == nil {
		t.Fatal("empty test split accepted")
	}
}

func TestPartitionsCount(t *testing.T) {
	src := xrand.New(4)
	p, _ := NewPartitioner(20, 0.3, src)
	ps := p.Partitions(100)
	if len(ps) != 100 {
		t.Fatalf("got %d partitions", len(ps))
	}
}

// Property: a partition is always an exact disjoint cover of [0,n).
func TestPartitionProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		n := int(nRaw%200) + 10
		src := xrand.New(uint64(seed))
		p, err := NewPartitioner(n, 0.3, src)
		if err != nil {
			return false
		}
		part := p.Next()
		if len(part.Train)+len(part.Test) != n {
			return false
		}
		seen := make([]bool, n)
		for _, i := range part.Train {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		for _, i := range part.Test {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MPE is invariant under uniform scaling of both predicted and
// actual values (magnitude independence, the paper's stated reason for
// choosing it).
func TestMPEScaleInvariantProperty(t *testing.T) {
	f := func(seed uint16) bool {
		src := xrand.New(uint64(seed) + 7)
		n := 5 + src.Intn(20)
		pred := make([]float64, n)
		act := make([]float64, n)
		for i := range act {
			act[i] = src.Uniform(100, 1000)
			pred[i] = act[i] * src.Uniform(0.8, 1.2)
		}
		m1, err1 := MPE(pred, act)
		scale := src.Uniform(0.5, 50)
		sp := make([]float64, n)
		sa := make([]float64, n)
		for i := range act {
			sp[i], sa[i] = pred[i]*scale, act[i]*scale
		}
		m2, err2 := MPE(sp, sa)
		return err1 == nil && err2 == nil && math.Abs(m1-m2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMPE(b *testing.B) {
	src := xrand.New(5)
	n := 2000
	pred := make([]float64, n)
	act := make([]float64, n)
	for i := range act {
		act[i] = src.Uniform(100, 1000)
		pred[i] = act[i] * src.Uniform(0.9, 1.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MPE(pred, act); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartitioner(b *testing.B) {
	src := xrand.New(6)
	p, _ := NewPartitioner(2000, 0.3, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Next()
	}
}

func TestPearsonKnown(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v, %v", r, err)
	}
	r, _ = Pearson([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2})
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", r)
	}
	r, _ = Pearson([]float64{1, 2, 3}, []float64{5, 5, 5})
	if r != 0 {
		t.Fatalf("constant series correlation = %v", r)
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform preserves rank correlation exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // x³: nonlinear but monotone
	r, err := Spearman(xs, ys)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Spearman of monotone transform = %v, %v", r, err)
	}
}

func TestSpearmanTies(t *testing.T) {
	r, err := Spearman([]float64{1, 1, 2, 2}, []float64{1, 1, 2, 2})
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("tied perfect correlation = %v, %v", r, err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	src := xrand.New(30)
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = src.Normal(0, 1)
		b[i] = 2*a[i] + src.Normal(0, 0.01) // ~perfectly correlated with a
		c[i] = src.Normal(0, 1)             // independent
	}
	m, err := CorrelationMatrix([][]float64{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Fatal("diagonal not 1")
	}
	if m[0][1] < 0.99 {
		t.Fatalf("correlated pair r=%v", m[0][1])
	}
	if math.Abs(m[0][2]) > 0.15 {
		t.Fatalf("independent pair r=%v", m[0][2])
	}
	if m[0][1] != m[1][0] {
		t.Fatal("matrix not symmetric")
	}
	if _, err := CorrelationMatrix(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := CorrelationMatrix([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged accepted")
	}
}
