package stats

import (
	"fmt"

	"colocmodel/internal/xrand"
)

// Partition is one train/test split of sample indices produced by the
// repeated random sub-sampling validation protocol of Section IV-B4.
type Partition struct {
	Train []int
	Test  []int
}

// Partitioner generates repeated random sub-sampling partitions: each call
// to Next withholds a fixed fraction of the samples for testing, selected
// uniformly at random without replacement, per the bootstrapping approach
// of Efron & Tibshirani cited by the paper.
type Partitioner struct {
	n        int
	testFrac float64
	src      *xrand.Source
}

// NewPartitioner returns a partitioner over n samples that withholds
// testFrac of them (the paper uses 0.30) in each partition.
func NewPartitioner(n int, testFrac float64, src *xrand.Source) (*Partitioner, error) {
	if n < 2 {
		return nil, fmt.Errorf("stats: partitioner requires at least 2 samples, got %d", n)
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, fmt.Errorf("stats: test fraction must be in (0,1), got %v", testFrac)
	}
	nTest := int(float64(n) * testFrac)
	if nTest == 0 || nTest == n {
		return nil, fmt.Errorf("stats: test fraction %v leaves an empty split for n=%d", testFrac, n)
	}
	return &Partitioner{n: n, testFrac: testFrac, src: src}, nil
}

// Next draws a fresh random partition.
func (p *Partitioner) Next() Partition {
	perm := p.src.Perm(p.n)
	nTest := int(float64(p.n) * p.testFrac)
	test := append([]int(nil), perm[:nTest]...)
	train := append([]int(nil), perm[nTest:]...)
	return Partition{Train: train, Test: test}
}

// Partitions draws k independent partitions (the paper uses k = 100).
func (p *Partitioner) Partitions(k int) []Partition {
	out := make([]Partition, k)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}
