// Package stats implements the statistical machinery of the paper's
// evaluation protocol: the Mean Percent Error (Eq. 2) and Normalized Root
// Mean Squared Error (Eq. 3) accuracy metrics, descriptive statistics and
// quantiles for the distribution views of Figure 5, and the repeated
// random sub-sampling (bootstrap) train/test partitioner of Section IV-B4.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// MPE computes the Mean Percent Error of Eq. 2:
//
//	MPE = 100/M · Σ |(predicted_j − actual_j) / actual_j|
//
// It returns an error if the slices differ in length, are empty, or any
// actual value is zero (the metric is undefined there).
func MPE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("stats: MPE length mismatch %d vs %d", len(predicted), len(actual))
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for j, a := range actual {
		if a == 0 {
			return 0, fmt.Errorf("stats: MPE undefined, actual[%d] == 0", j)
		}
		s += math.Abs((predicted[j] - a) / a)
	}
	return 100 * s / float64(len(actual)), nil
}

// NRMSE computes the Normalized Root Mean Squared Error of Eq. 3. Per the
// paper's description it is "a ratio of Root Mean Squared Error and the
// interval of values that the actual data can take", expressed in percent:
//
//	NRMSE = 100 · sqrt( Σ (predicted_j − actual_j)² / M )
//	            / (actual_max − actual_min)
//
// It returns an error for degenerate inputs (mismatched or empty slices,
// or a zero actual range).
func NRMSE(predicted, actual []float64) (float64, error) {
	if len(predicted) != len(actual) {
		return 0, fmt.Errorf("stats: NRMSE length mismatch %d vs %d", len(predicted), len(actual))
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for j, a := range actual {
		d := predicted[j] - a
		s += d * d
	}
	lo, hi := MinMax(actual)
	if hi == lo {
		return 0, errors.New("stats: NRMSE undefined, actual range is zero")
	}
	rms := math.Sqrt(s / float64(len(actual)))
	return 100 * rms / (hi - lo), nil
}

// PercentErrors returns the signed percent error of each prediction:
// 100·(predicted−actual)/actual. Used for the Figure 5(b) distributions.
func PercentErrors(predicted, actual []float64) ([]float64, error) {
	if len(predicted) != len(actual) {
		return nil, fmt.Errorf("stats: PercentErrors length mismatch %d vs %d", len(predicted), len(actual))
	}
	out := make([]float64, len(actual))
	for j, a := range actual {
		if a == 0 {
			return nil, fmt.Errorf("stats: PercentErrors undefined, actual[%d] == 0", j)
		}
		out[j] = 100 * (predicted[j] - a) / a
	}
	return out, nil
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// FiveNum is a five-number summary plus mean, as used by the distribution
// plots of Figure 5 (median dashed, quartiles dotted).
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) FiveNum {
	lo, hi := MinMax(xs)
	return FiveNum{
		Min:    lo,
		Q1:     Quantile(xs, 0.25),
		Median: Median(xs),
		Q3:     Quantile(xs, 0.75),
		Max:    hi,
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// String renders the summary in a compact single line.
func (f FiveNum) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		f.N, f.Min, f.Q1, f.Median, f.Q3, f.Max, f.Mean)
}

// FractionWithin returns the fraction of xs whose absolute value is at
// most bound. Used for the "±2 % / ±5 %" claims about Figure 5(b).
func FractionWithin(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range xs {
		if math.Abs(v) <= bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram bins xs into n equal-width bins over [lo, hi]. Values outside
// the range are clamped into the first or last bin.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, v := range xs {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		bins[b]++
	}
	return bins
}

// MeanCI returns the mean of xs and the half-width of its normal-theory
// 95 % confidence interval. The paper reports that per-partition errors
// vary by at most a quarter percent; this is how we verify the analogous
// property of our partitions.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, math.NaN()
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, 1.96 * se
}
