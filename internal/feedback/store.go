package feedback

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Store is the observation log abstraction the rest of the system
// consumes: serve ingests through it, drift/retrain read through it.
// Implementations: the file-backed group-commit *Log, the memory-only
// *MemStore, and the object-store-shaped *ObjectLog.
type Store interface {
	// Append stores one observation durably (one-record AppendBatch).
	Append(o Observation) error
	// AppendAll stores a batch atomically with respect to validation:
	// if any observation is invalid, nothing is written.
	AppendAll(obs []Observation) error
	// AppendBatch is AppendAll returning the Commit that made the
	// batch durable — timing the enqueue wait, the coalesced write and
	// the fsync, and reporting how many records the group commit
	// carried in total.
	AppendBatch(obs []Observation) (Commit, error)
	// Len reports the number of committed observations in the store.
	Len() int
	// Segments reports the active segment index (0 for stores without
	// segment files).
	Segments() int
	// Recent returns up to n of the most recent observations, oldest
	// first, from the in-memory ring.
	Recent(n int) []Observation
	// All returns every committed observation, oldest first. It is
	// safe against concurrent appends and compaction.
	All() ([]Observation, error)
	// Stats reports cumulative ingest pipeline statistics.
	Stats() IngestStats
	// Close flushes pending commits and releases resources.
	Close() error
}

// Commit describes the group commit that made an AppendBatch durable.
// Its timestamps bound the pipeline stages: Queued→WriteStart is the
// enqueue wait, WriteStart→SyncStart the coalesced segment write, and
// SyncStart→Done the fsync (SyncStart == Done when the log runs
// without Sync).
type Commit struct {
	// Batch counts the records the whole group commit carried — at
	// least the caller's own records, more when concurrent appends
	// coalesced into the same commit.
	Batch int

	Queued     time.Time
	WriteStart time.Time
	SyncStart  time.Time
	Done       time.Time
}

// IngestStats is a point-in-time snapshot of the ingest pipeline's
// cumulative counters, exposed by serve as Prometheus metrics.
type IngestStats struct {
	// Batches counts group commits; Records counts observations
	// committed; Fsyncs counts fsync(2) calls issued.
	Batches uint64
	Records uint64
	Fsyncs  uint64
	// MaxBatch is the largest group commit seen.
	MaxBatch int
	// QueueDepth is the current number of append batches waiting on
	// the committer.
	QueueDepth int
	// BatchRecords, CommitSeconds and FsyncSeconds are histograms of
	// group-commit size, total commit latency (write start → release)
	// and fsync latency.
	BatchRecords  HistSnapshot
	CommitSeconds HistSnapshot
	FsyncSeconds  HistSnapshot
	// CompactionRuns counts compaction passes that folded segments;
	// CompactedRecords counts records folded into compacted segments.
	CompactionRuns   uint64
	CompactedRecords uint64
	// ReclaimedBytes and RetentionDroppedRecords account for data
	// removed by the retention policy.
	ReclaimedBytes          uint64
	RetentionDroppedRecords uint64
}

// HistSnapshot is a fixed-bucket histogram snapshot. Counts has
// len(Bounds)+1 entries; the last is the overflow (+Inf) bucket.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// hist is a lock-free fixed-bucket histogram (same idiom as the serve
// metrics registry, duplicated here so feedback stays stdlib-only and
// dependency-free).
type hist struct {
	bounds  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	n       atomic.Uint64
}

func newHist(bounds []float64) *hist {
	return &hist{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *hist) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

var (
	latencyBounds = []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.25,
	}
	batchBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// ingestCounters is the shared cumulative-counter block behind
// Store.Stats.
type ingestCounters struct {
	batches          atomic.Uint64
	records          atomic.Uint64
	fsyncs           atomic.Uint64
	maxBatch         atomic.Int64
	batchHist        *hist
	commitHist       *hist
	fsyncHist        *hist
	compactRuns      atomic.Uint64
	compactedRecords atomic.Uint64
	reclaimedBytes   atomic.Uint64
	retentionRecords atomic.Uint64
}

func newIngestCounters() *ingestCounters {
	return &ingestCounters{
		batchHist:  newHist(batchBounds),
		commitHist: newHist(latencyBounds),
		fsyncHist:  newHist(latencyBounds),
	}
}

// observeCommit records one group commit of n records that issued the
// given number of fsyncs between the stage timestamps.
func (c *ingestCounters) observeCommit(n, fsyncs int, writeStart, syncStart, done time.Time) {
	c.batches.Add(1)
	c.records.Add(uint64(n))
	c.fsyncs.Add(uint64(fsyncs))
	for {
		old := c.maxBatch.Load()
		if int64(n) <= old || c.maxBatch.CompareAndSwap(old, int64(n)) {
			break
		}
	}
	c.batchHist.observe(float64(n))
	c.commitHist.observe(done.Sub(writeStart).Seconds())
	if fsyncs > 0 {
		c.fsyncHist.observe(done.Sub(syncStart).Seconds())
	}
}

func (c *ingestCounters) snapshot(queueDepth int) IngestStats {
	return IngestStats{
		Batches:                 c.batches.Load(),
		Records:                 c.records.Load(),
		Fsyncs:                  c.fsyncs.Load(),
		MaxBatch:                int(c.maxBatch.Load()),
		QueueDepth:              queueDepth,
		BatchRecords:            c.batchHist.snapshot(),
		CommitSeconds:           c.commitHist.snapshot(),
		FsyncSeconds:            c.fsyncHist.snapshot(),
		CompactionRuns:          c.compactRuns.Load(),
		CompactedRecords:        c.compactedRecords.Load(),
		ReclaimedBytes:          c.reclaimedBytes.Load(),
		RetentionDroppedRecords: c.retentionRecords.Load(),
	}
}

// ring is the fixed-size most-recent-observations buffer shared by the
// store implementations. Callers guard it with their own lock.
type ring struct {
	buf  []Observation
	next int
	full bool
}

func newRing(size int) ring { return ring{buf: make([]Observation, size)} }

func (r *ring) push(o Observation) {
	r.buf[r.next] = o
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// recent returns up to n of the newest records, oldest first.
func (r *ring) recent(n int) []Observation {
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n > size {
		n = size
	}
	if n <= 0 {
		return nil
	}
	out := make([]Observation, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}
