package feedback

import (
	"sync"
	"time"
)

// MemStore is the memory-only Store: a full in-memory record slice
// plus the recent-observations ring. It is what Open returns when
// Config.Dir is empty — embedders and tests that do not need
// durability.
type MemStore struct {
	mu     sync.Mutex
	all    []Observation
	ring   ring
	closed bool
	st     *ingestCounters
}

func newMemStore(cfg Config) *MemStore {
	return &MemStore{ring: newRing(cfg.RingSize), st: newIngestCounters()}
}

// Append stores one observation.
func (m *MemStore) Append(o Observation) error {
	_, err := m.AppendBatch([]Observation{o})
	return err
}

// AppendAll stores a batch; if any observation is invalid nothing is
// written.
func (m *MemStore) AppendAll(obs []Observation) error {
	_, err := m.AppendBatch(obs)
	return err
}

// AppendBatch stores a batch. The Commit is immediate: memory writes
// have no queue, write or sync stages.
func (m *MemStore) AppendBatch(obs []Observation) (Commit, error) {
	if err := validateAll(obs); err != nil {
		return Commit{}, err
	}
	if len(obs) == 0 {
		return Commit{}, nil
	}
	now := time.Now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Commit{}, ErrClosed
	}
	m.all = append(m.all, obs...)
	for _, o := range obs {
		m.ring.push(o)
	}
	m.mu.Unlock()
	m.st.observeCommit(len(obs), 0, now, now, now)
	return Commit{Batch: len(obs), Queued: now, WriteStart: now, SyncStart: now, Done: now}, nil
}

// Len reports the number of stored observations.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.all)
}

// Segments is always 0: a memory store has no segment files.
func (m *MemStore) Segments() int { return 0 }

// Stats reports cumulative ingest statistics.
func (m *MemStore) Stats() IngestStats { return m.st.snapshot(0) }

// Recent returns up to n of the most recent observations, oldest
// first.
func (m *MemStore) Recent(n int) []Observation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.recent(n)
}

// All returns a copy of every stored observation, oldest first.
func (m *MemStore) All() ([]Observation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Observation(nil), m.all...), nil
}

// Close marks the store closed; later appends fail with ErrClosed.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
