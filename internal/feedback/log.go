package feedback

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// segmentRef is one sealed (immutable) segment in a snapshot.
type segmentRef struct {
	name        string
	first, last int // plain segment index range (first == last when plain)
	recs        int
	bytes       int64
	compacted   bool
	mod         time.Time
}

// snapshot is the atomically published read view of the log: the
// sealed segment list plus the committed byte offset of the active
// segment. Snapshots are immutable; readers load the pointer and never
// contend with in-flight commit I/O.
type snapshot struct {
	refs      []segmentRef
	seg       int   // active segment index
	activeOff int64 // committed bytes of the active segment
	total     int   // committed records across the whole log
}

// appendReq is one caller's batch parked on the commit queue. The
// records are encoded by the caller (outside any lock); the committer
// only splices bytes.
type appendReq struct {
	obs    []Observation
	buf    []byte // encoded records, newline-terminated, concatenated
	ends   []int  // end offset of each record within buf
	enq    time.Time
	commit Commit
	err    error
	done   chan struct{}
}

// Log is the file-backed group-commit observation store. See the
// package comment for the durability model.
type Log struct {
	cfg Config

	snap   atomic.Pointer[snapshot]
	snapMu sync.Mutex // serialises snapshot publication (committer vs compactor)

	ringMu sync.Mutex
	ring   ring

	st *ingestCounters

	queue chan *appendReq
	stop  chan struct{} // closed by Close; committer drains then exits
	done  chan struct{} // closed by the committer on exit

	closeMu sync.RWMutex
	closed  bool

	failMu  sync.Mutex
	failure error // sticky first commit error; poisons later appends

	directMu sync.Mutex // Direct mode: serialises whole commits

	// Committer-owned write state (Direct mode: guarded by directMu).
	file    *os.File
	seg     int
	segRecs int
	segOff  int64
	cohort  []*appendReq

	// Compactor state. chain is the newest compacted segment's chain
	// hash (compactor-owned after Open).
	chain       [sha256.Size]byte
	compactKick chan struct{}
	compactStop chan struct{}
	compactDone chan struct{}
	compactMu   sync.Mutex // serialises compaction passes (background vs Compact)
}

func openLog(cfg Config) (*Log, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: creating log dir: %w", err)
	}
	l := &Log{cfg: cfg, st: newIngestCounters()}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if !cfg.Direct {
		l.queue = make(chan *appendReq, cfg.Queue)
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.committer()
	}
	if cfg.CompactAfter > 0 || cfg.Retention.enabled() {
		l.compactKick = make(chan struct{}, 1)
		l.compactStop = make(chan struct{})
		l.compactDone = make(chan struct{})
		go l.compactor()
		l.kickCompactor() // fold any backlog left by a previous run
	}
	return l, nil
}

// recover scans the directory, resolves interrupted compactions,
// verifies every segment, truncates a torn tail of the final plain
// segment, rebuilds the ring, and opens the active segment for append.
func (l *Log) recover() error {
	segs, err := listDir(l.cfg.Dir)
	if err != nil {
		return fmt.Errorf("feedback: reading log dir: %w", err)
	}
	// A compacted segment supersedes the plain segments in its range:
	// if both exist, the crash hit between the rename commit point and
	// the source unlink — the compacted copy wins, sources are dropped
	// so records are not read twice.
	covered := func(idx int) bool {
		for _, s := range segs {
			if s.compacted && idx >= s.first && idx <= s.last {
				return true
			}
		}
		return false
	}
	kept := segs[:0]
	for _, s := range segs {
		if !s.compacted && covered(s.first) {
			if err := os.Remove(filepath.Join(l.cfg.Dir, s.name)); err != nil {
				return fmt.Errorf("feedback: removing superseded %s: %w", s.name, err)
			}
			continue
		}
		kept = append(kept, s)
	}
	segs = kept
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].last {
			return fmt.Errorf("feedback: segments %s and %s overlap", segs[i-1].name, segs[i].name)
		}
	}

	var (
		refs      []segmentRef
		all       []Observation
		prevChain [sha256.Size]byte
		seenCmp   bool
	)
	for i, s := range segs {
		path := filepath.Join(l.cfg.Dir, s.name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("feedback: reading %s: %w", s.name, err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("feedback: stat %s: %w", s.name, err)
		}
		last := i == len(segs)-1 && !s.compacted
		obs, keep, hdr, perr := parseSegment(data, last)
		if perr != nil {
			return fmt.Errorf("feedback: recovering %s: %w", s.name, perr)
		}
		if s.compacted {
			if hdr == nil {
				// The name promises a compacted segment but the content
				// has no header (e.g. truncated to nothing): corruption,
				// never silently acceptable.
				return fmt.Errorf("feedback: %s: compacted segment has no header", s.name)
			}
			// Verify chain linkage between surviving compacted
			// segments. The first present segment is the trust anchor:
			// retention may legitimately have dropped its
			// predecessors, so its prev is accepted as-is.
			if seenCmp && hdr.Prev != hexChain(prevChain) {
				return fmt.Errorf("feedback: %s: chain broken (prev %s does not match predecessor)", s.name, hdr.Prev)
			}
			if err := decodeHex32(hdr.Chain, &prevChain); err != nil {
				return fmt.Errorf("feedback: %s: %w", s.name, err)
			}
			seenCmp = true
		}
		if last && keep < int64(len(data)) {
			if err := os.Truncate(path, keep); err != nil {
				return fmt.Errorf("feedback: truncating torn tail of %s: %w", s.name, err)
			}
			data = data[:keep]
		}
		refs = append(refs, segmentRef{
			name: s.name, first: s.first, last: s.last,
			recs: len(obs), bytes: int64(len(data)),
			compacted: s.compacted, mod: fi.ModTime(),
		})
		all = append(all, obs...)
	}
	l.chain = prevChain

	// The newest plain segment is the active one; everything earlier
	// is sealed. With no plain segments the next index after the
	// compacted history starts fresh.
	seg, segRecs, segOff := 1, 0, int64(0)
	if n := len(refs); n > 0 {
		if tail := refs[n-1]; !tail.compacted {
			seg, segRecs, segOff = tail.first, tail.recs, tail.bytes
			refs = refs[:n-1]
		} else {
			seg = tail.last + 1
		}
	}
	if segRecs >= l.cfg.MaxSegmentRecords {
		refs = append(refs, segmentRef{
			name: segName(seg), first: seg, last: seg,
			recs: segRecs, bytes: segOff, mod: time.Now(),
		})
		seg++
		segRecs, segOff = 0, 0
	}
	f, err := os.OpenFile(filepath.Join(l.cfg.Dir, segName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: opening segment: %w", err)
	}
	l.file, l.seg, l.segRecs, l.segOff = f, seg, segRecs, segOff

	l.ring = newRing(l.cfg.RingSize)
	for _, o := range all {
		l.ring.push(o)
	}
	l.snap.Store(&snapshot{refs: refs, seg: seg, activeOff: segOff, total: len(all)})
	return nil
}

// Append stores one observation (a one-record group commit).
func (l *Log) Append(o Observation) error {
	_, err := l.AppendBatch([]Observation{o})
	return err
}

// AppendAll stores a batch; if any observation is invalid nothing is
// written.
func (l *Log) AppendAll(obs []Observation) error {
	_, err := l.AppendBatch(obs)
	return err
}

// AppendBatch validates and encodes the batch outside any lock, parks
// it on the commit queue, and returns once the committer has made it
// durable, reporting the group commit it rode in.
func (l *Log) AppendBatch(obs []Observation) (Commit, error) {
	if err := validateAll(obs); err != nil {
		return Commit{}, err
	}
	if len(obs) == 0 {
		return Commit{}, nil
	}
	req := &appendReq{obs: obs, enq: time.Now(), done: make(chan struct{})}
	for i, o := range obs {
		line, err := encodeRecord(o)
		if err != nil {
			return Commit{}, fmt.Errorf("feedback: encoding observation %d: %w", i, err)
		}
		req.buf = append(req.buf, line...)
		req.buf = append(req.buf, '\n')
		req.ends = append(req.ends, len(req.buf))
	}
	// closeMu makes enqueue-vs-Close safe: Close flips closed only
	// after every in-flight enqueue (holding the read lock, possibly
	// blocked on a full queue) has completed, then stops the
	// committer, which drains what remains — so no parked caller is
	// ever abandoned.
	l.closeMu.RLock()
	if l.closed {
		l.closeMu.RUnlock()
		return Commit{}, ErrClosed
	}
	if l.cfg.Direct {
		defer l.closeMu.RUnlock()
		l.directMu.Lock()
		defer l.directMu.Unlock()
		l.commitCohort([]*appendReq{req})
		return req.commit, req.err
	}
	l.queue <- req
	l.closeMu.RUnlock()
	<-req.done
	return req.commit, req.err
}

// committer is the single goroutine that turns queued batches into
// group commits: one coalesced write per segment run, one fsync per
// commit.
func (l *Log) committer() {
	defer close(l.done)
	for {
		var first *appendReq
		select {
		case first = <-l.queue:
		case <-l.stop:
			l.finalDrain()
			return
		}
		cohort := append(l.cohort[:0], first)
		if iv := l.cfg.CommitInterval; iv > 0 {
			t := time.NewTimer(iv)
		hold:
			for {
				select {
				case r := <-l.queue:
					cohort = append(cohort, r)
				case <-t.C:
					break hold
				case <-l.stop:
					break hold
				}
			}
			t.Stop()
		}
		cohort = l.drainQueue(cohort)
		l.commitCohort(cohort)
		for i := range cohort {
			cohort[i] = nil
		}
		l.cohort = cohort[:0]
	}
}

func (l *Log) drainQueue(cohort []*appendReq) []*appendReq {
	for {
		select {
		case r := <-l.queue:
			cohort = append(cohort, r)
		default:
			return cohort
		}
	}
}

// finalDrain commits everything still queued at Close.
func (l *Log) finalDrain() {
	if cohort := l.drainQueue(nil); len(cohort) > 0 {
		l.commitCohort(cohort)
	}
}

// commitCohort writes one group commit: the cohort's records are
// spliced into segment-sized runs (rotating at exactly
// MaxSegmentRecords, so the file layout is bit-identical to the
// one-write-per-record path), flushed with one write per run, then
// fsynced once. Only after durability does it publish the new
// snapshot, update the ring, and release every parked caller.
func (l *Log) commitCohort(cohort []*appendReq) {
	writeStart := time.Now()
	if err := l.failed(); err != nil {
		l.release(cohort, Commit{}, err)
		return
	}
	var (
		sealed []segmentRef
		wbuf   []byte
		n      int
		fsyncs int
		err    error
	)
	flush := func() error {
		if len(wbuf) == 0 {
			return nil
		}
		if _, werr := l.file.Write(wbuf); werr != nil {
			return fmt.Errorf("feedback: appending observations: %w", werr)
		}
		l.segOff += int64(len(wbuf))
		wbuf = wbuf[:0]
		return nil
	}
commit:
	for _, r := range cohort {
		start := 0
		for _, end := range r.ends {
			if l.segRecs >= l.cfg.MaxSegmentRecords {
				if err = flush(); err != nil {
					break commit
				}
				var ref segmentRef
				if ref, err = l.rotate(&fsyncs); err != nil {
					break commit
				}
				sealed = append(sealed, ref)
			}
			wbuf = append(wbuf, r.buf[start:end]...)
			start = end
			l.segRecs++
			n++
		}
	}
	if err == nil {
		err = flush()
	}
	syncStart := time.Now()
	if err == nil && l.cfg.Sync {
		if serr := l.file.Sync(); serr != nil {
			err = fmt.Errorf("feedback: syncing segment: %w", serr)
		}
		fsyncs++
	}
	end := time.Now()
	if err != nil {
		// A failed commit may leave a torn tail only reopen-recovery
		// can repair; poison the log so later appends fail fast.
		l.poison(err)
		l.release(cohort, Commit{}, err)
		return
	}

	l.snapMu.Lock()
	old := l.snap.Load()
	refs := old.refs
	if len(sealed) > 0 {
		refs = make([]segmentRef, 0, len(old.refs)+len(sealed))
		refs = append(append(refs, old.refs...), sealed...)
	}
	l.snap.Store(&snapshot{refs: refs, seg: l.seg, activeOff: l.segOff, total: old.total + n})
	l.snapMu.Unlock()

	l.ringMu.Lock()
	for _, r := range cohort {
		for _, o := range r.obs {
			l.ring.push(o)
		}
	}
	l.ringMu.Unlock()

	l.st.observeCommit(n, fsyncs, writeStart, syncStart, end)
	l.release(cohort, Commit{Batch: n, WriteStart: writeStart, SyncStart: syncStart, Done: end}, nil)
	if len(sealed) > 0 {
		l.kickCompactor()
	}
}

// rotate seals the active segment (fsyncing it first under Sync, so a
// cohort spanning a rotation leaves no unsynced sealed data) and opens
// the next one.
func (l *Log) rotate(fsyncs *int) (segmentRef, error) {
	if l.cfg.Sync {
		if err := l.file.Sync(); err != nil {
			return segmentRef{}, fmt.Errorf("feedback: syncing sealed segment: %w", err)
		}
		*fsyncs++
	}
	if err := l.file.Close(); err != nil {
		return segmentRef{}, fmt.Errorf("feedback: closing segment: %w", err)
	}
	ref := segmentRef{
		name: segName(l.seg), first: l.seg, last: l.seg,
		recs: l.segRecs, bytes: l.segOff, mod: time.Now(),
	}
	l.seg++
	l.segRecs, l.segOff = 0, 0
	f, err := os.OpenFile(filepath.Join(l.cfg.Dir, segName(l.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return segmentRef{}, fmt.Errorf("feedback: opening segment: %w", err)
	}
	l.file = f
	return ref, nil
}

func (l *Log) release(cohort []*appendReq, c Commit, err error) {
	for _, r := range cohort {
		r.commit = c
		r.commit.Queued = r.enq
		r.err = err
		close(r.done)
	}
}

func (l *Log) poison(err error) {
	l.failMu.Lock()
	if l.failure == nil {
		l.failure = err
	}
	l.failMu.Unlock()
}

func (l *Log) failed() error {
	l.failMu.Lock()
	defer l.failMu.Unlock()
	return l.failure
}

func (l *Log) queueDepth() int {
	if l.queue == nil {
		return 0
	}
	return len(l.queue)
}

// Len reports committed observations; lock-free.
func (l *Log) Len() int { return l.snap.Load().total }

// Segments reports the active segment index; lock-free.
func (l *Log) Segments() int { return l.snap.Load().seg }

// Stats reports cumulative ingest statistics.
func (l *Log) Stats() IngestStats { return l.st.snapshot(l.queueDepth()) }

// Recent returns up to n of the most recent observations, oldest
// first.
func (l *Log) Recent(n int) []Observation {
	l.ringMu.Lock()
	defer l.ringMu.Unlock()
	return l.ring.recent(n)
}

// All re-reads every committed observation from disk, oldest first. It
// runs against a published snapshot, never blocking on (or observing)
// in-flight commits. If compaction deletes a snapshotted file
// mid-read, the read retries against a fresh snapshot.
func (l *Log) All() ([]Observation, error) {
	for attempt := 0; ; attempt++ {
		out, err := l.readSnapshot(l.snap.Load())
		if err == nil || attempt >= 4 || !errors.Is(err, fs.ErrNotExist) {
			return out, err
		}
	}
}

func (l *Log) readSnapshot(s *snapshot) ([]Observation, error) {
	out := make([]Observation, 0, s.total)
	for _, ref := range s.refs {
		data, err := os.ReadFile(filepath.Join(l.cfg.Dir, ref.name))
		if err != nil {
			return nil, err
		}
		obs, _, _, perr := parseSegment(data, false)
		if perr != nil {
			return nil, fmt.Errorf("feedback: segment %s: %w", ref.name, perr)
		}
		out = append(out, obs...)
	}
	if s.activeOff > 0 {
		f, err := os.Open(filepath.Join(l.cfg.Dir, segName(s.seg)))
		if err != nil {
			return nil, err
		}
		data := make([]byte, s.activeOff)
		_, err = io.ReadFull(f, data)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("feedback: reading active segment: %w", err)
		}
		obs, _, _, perr := parseSegment(data, false)
		if perr != nil {
			return nil, fmt.Errorf("feedback: segment %s: %w", segName(s.seg), perr)
		}
		out = append(out, obs...)
	}
	return out, nil
}

// Close stops the pipeline: no new appends are accepted, the committer
// drains and commits everything already queued, the compactor
// finishes its pass, and the active segment is closed.
func (l *Log) Close() error {
	l.closeMu.Lock()
	if l.closed {
		l.closeMu.Unlock()
		return nil
	}
	l.closed = true
	l.closeMu.Unlock()
	if !l.cfg.Direct {
		close(l.stop)
		<-l.done
	}
	if l.compactStop != nil {
		close(l.compactStop)
		<-l.compactDone
	}
	if err := l.file.Close(); err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("feedback: closing segment: %w", err)
	}
	return nil
}
