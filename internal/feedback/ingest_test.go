package feedback

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func asLog(t *testing.T, s Store) *Log {
	t.Helper()
	l, ok := s.(*Log)
	if !ok {
		t.Fatalf("store is %T, want *Log", s)
	}
	return l
}

func cmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, cmpPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestGroupCommitCoalescing drives 64 concurrent writers through the
// commit queue with a hold window and verifies the commits coalesced:
// far fewer group commits (and fsyncs) than records, well-ordered
// per-stage timestamps, and coherent pipeline statistics.
func TestGroupCommitCoalescing(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), Sync: true, CommitInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const writers = 64
	start := make(chan struct{})
	commits := make([]Commit, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			commits[i], errs[i] = l.AppendBatch([]Observation{obs(i)})
		}(i)
	}
	close(start)
	wg.Wait()

	sawCoalesced := false
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
		c := commits[i]
		if c.Batch < 1 {
			t.Fatalf("writer %d: commit batch %d", i, c.Batch)
		}
		if c.Batch > 1 {
			sawCoalesced = true
		}
		if c.WriteStart.Before(c.Queued) || c.SyncStart.Before(c.WriteStart) || c.Done.Before(c.SyncStart) {
			t.Fatalf("writer %d: commit stages out of order: %+v", i, c)
		}
	}
	if !sawCoalesced {
		t.Fatal("no commit carried more than one record: nothing coalesced")
	}
	if l.Len() != writers {
		t.Fatalf("len = %d, want %d", l.Len(), writers)
	}
	st := l.Stats()
	if st.Records != writers {
		t.Fatalf("stats records = %d, want %d", st.Records, writers)
	}
	if st.Batches >= writers/2 {
		t.Fatalf("stats batches = %d for %d records: commits did not coalesce", st.Batches, writers)
	}
	if st.Fsyncs < st.Batches {
		t.Fatalf("fsyncs = %d < batches = %d with Sync on", st.Fsyncs, st.Batches)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("max batch = %d, want coalescing", st.MaxBatch)
	}
	if st.BatchRecords.Count != st.Batches || st.CommitSeconds.Count != st.Batches {
		t.Fatalf("histogram counts %d/%d do not match %d batches",
			st.BatchRecords.Count, st.CommitSeconds.Count, st.Batches)
	}
	if st.FsyncSeconds.Count == 0 {
		t.Fatal("no fsync latency samples with Sync on")
	}
}

// TestGroupCommitFileParityWithDirect proves the group-commit writer
// produces bit-identical segment files to the direct
// one-write-per-append path: same records, same rotation points, same
// bytes.
func TestGroupCommitFileParityWithDirect(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	direct, err := Open(Config{Dir: dirA, MaxSegmentRecords: 3, Direct: true, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Open(Config{Dir: dirB, MaxSegmentRecords: 3, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := direct.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
		if err := grouped.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	direct.Close()
	grouped.Close()

	for i := 1; i <= 4; i++ {
		a, err := os.ReadFile(filepath.Join(dirA, segName(i)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, segName(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between direct and group-commit writers", segName(i))
		}
	}
}

// TestCrashRecoveryEveryByte is the crash-recovery property test: a
// crash can truncate the final segment at ANY byte. For every possible
// truncation point, reopening must succeed and recover exactly the
// records whose newline made it to disk — never fewer, never a torn
// one.
func TestCrashRecoveryEveryByte(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MaxSegmentRecords: 4}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	check := func(path string, priorRecs int, data []byte) {
		t.Helper()
		for cut := 0; cut <= len(data); cut++ {
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l, err := Open(cfg)
			if err != nil {
				t.Fatalf("cut %d: recovery failed: %v", cut, err)
			}
			wantN := priorRecs + bytes.Count(data[:cut], []byte("\n"))
			if l.Len() != wantN {
				t.Fatalf("cut %d: recovered %d records, want %d", cut, l.Len(), wantN)
			}
			got, err := l.All()
			if err != nil {
				t.Fatalf("cut %d: %v", cut, err)
			}
			for i, o := range got {
				if o.PredictedSeconds != want[i].PredictedSeconds {
					t.Fatalf("cut %d: record %d corrupted", cut, i)
				}
			}
			l.Close()
		}
	}

	// Segments 1 and 2 are sealed (4 records each); segment 3 holds the
	// final two. Truncate the final segment at every byte.
	seg3 := filepath.Join(dir, segName(3))
	data3, err := os.ReadFile(seg3)
	if err != nil {
		t.Fatal(err)
	}
	check(seg3, 8, data3)

	// With segment 3 gone entirely, segment 2 becomes the final segment
	// and earns the same torn-tail tolerance.
	if err := os.Remove(seg3); err != nil {
		t.Fatal(err)
	}
	seg2 := filepath.Join(dir, segName(2))
	data2, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	check(seg2, 4, data2)
}

// TestMidFileDamageDetected: torn-tail tolerance applies only to the
// FINAL segment. The same truncation mid-record in an earlier segment
// must fail recovery loudly.
func TestMidFileDamageDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MaxSegmentRecords: 4}
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg1 := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-record (not at a newline boundary): a non-final segment
	// may never be torn.
	if err := os.WriteFile(seg1, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("mid-file truncation not detected")
	}
}

// TestCompactionFoldAndChain folds sealed segments into compacted
// chain-checksummed segments, across a reopen, and audits the chain.
func TestCompactionFoldAndChain(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MaxSegmentRecords: 2, CompactAfter: 2}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := asLog(t, s)
	for i := 0; i < 9; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if len(cmpFiles(t, dir)) == 0 {
		t.Fatal("no compacted segment written")
	}
	st := l.Stats()
	if st.CompactedRecords != 8 {
		t.Fatalf("compacted records = %d, want 8", st.CompactedRecords)
	}
	if st.CompactionRuns == 0 {
		t.Fatal("no compaction runs recorded")
	}
	all, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 9 {
		t.Fatalf("All() = %d records after compaction, want 9", len(all))
	}
	l.Close()

	// Reopen: the chain continues where it left off; new folds link to
	// the pre-reopen compacted history.
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l2 := asLog(t, s2)
	defer l2.Close()
	if l2.Len() != 9 {
		t.Fatalf("reopened len = %d, want 9", l2.Len())
	}
	for i := 9; i < 14; i++ {
		if err := l2.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l2.VerifyChain(); err != nil {
		t.Fatalf("chain broken across reopen: %v", err)
	}
	if len(cmpFiles(t, dir)) < 2 {
		t.Fatalf("expected a second compacted segment, have %v", cmpFiles(t, dir))
	}
	all, err = l2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 14 {
		t.Fatalf("All() = %d records, want 14", len(all))
	}
	for i, o := range all {
		if o.PredictedSeconds != obs(i).PredictedSeconds {
			t.Fatalf("record %d corrupted after compaction+reopen", i)
		}
	}
}

// TestCompactionCrashStates walks recovery through every intermediate
// state a crash can leave around the compaction rename: a stale tmp
// file (crash before rename), compacted output alongside its sources
// (crash between rename and unlink), and a truncated compacted file at
// every byte (must be DETECTED — compacted segments are written with
// write→fsync→rename and are never legitimately torn).
func TestCompactionCrashStates(t *testing.T) {
	dir := t.TempDir()
	plain := Config{Dir: dir, MaxSegmentRecords: 2}
	l, err := Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// State: crash BEFORE the rename commit point. The partial tmp is
	// garbage; sources are intact.
	tmp := filepath.Join(dir, cmpName(1, 2)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(plain)
	if err != nil {
		t.Fatalf("recovery with stale tmp failed: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale compaction tmp not removed")
	}
	if l2.Len() != 6 {
		t.Fatalf("len = %d after tmp cleanup, want 6", l2.Len())
	}
	l2.Close()

	// Save the source segments, run a real fold, then resurrect the
	// sources: the state a crash between rename and unlink leaves.
	src1, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	src2, err := os.ReadFile(filepath.Join(dir, segName(2)))
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Config{Dir: dir, MaxSegmentRecords: 2, CompactAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := asLog(t, s3).Compact(); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	cmps := cmpFiles(t, dir)
	if len(cmps) != 1 {
		t.Fatalf("expected one compacted segment, have %v", cmps)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1)), src1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(2)), src2, 0o644); err != nil {
		t.Fatal(err)
	}
	l4, err := Open(plain)
	if err != nil {
		t.Fatalf("recovery with compacted+sources failed: %v", err)
	}
	if l4.Len() != 6 {
		t.Fatalf("len = %d with superseded sources present, want 6 (no duplication)", l4.Len())
	}
	for _, n := range []string{segName(1), segName(2)} {
		if _, err := os.Stat(filepath.Join(dir, n)); !os.IsNotExist(err) {
			t.Fatalf("superseded %s not removed", n)
		}
	}
	l4.Close()

	// Truncating the compacted file anywhere must fail recovery: the
	// chain hash (or the header) no longer verifies.
	cmpData, err := os.ReadFile(cmps[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(cmpData); cut++ {
		if err := os.WriteFile(cmps[0], cmpData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(plain); err == nil {
			t.Fatalf("truncated compacted segment (cut %d) not detected", cut)
		}
	}
	if err := os.WriteFile(cmps[0], cmpData, 0o644); err != nil {
		t.Fatal(err)
	}
	l5, err := Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	if l5.Len() != 6 {
		t.Fatalf("len = %d after restore, want 6", l5.Len())
	}
	l5.Close()
}

// TestChainTamperDetected: modifying, or wholesale re-forging, a
// compacted segment breaks the SHA-256 chain and fails recovery.
func TestChainTamperDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, MaxSegmentRecords: 2, CompactAfter: 2}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := asLog(t, s)
	for i := 0; i < 14; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
		if i == 8 || i == 13 {
			if err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	cmps := cmpFiles(t, dir)
	if len(cmps) < 2 {
		t.Fatalf("need two chained compacted segments, have %v", cmps)
	}

	// Flip one byte in the oldest compacted body.
	orig, err := os.ReadFile(cmps[0])
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), orig...)
	flipped[len(flipped)-2] ^= 0x01
	if err := os.WriteFile(cmps[0], flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil {
		t.Fatal("flipped byte in compacted segment not detected")
	}

	// Forge a self-consistent replacement with one record dropped: its
	// own hash verifies, but the NEXT segment's prev no longer links.
	nl := bytes.IndexByte(orig, '\n')
	body := orig[nl+1:]
	lines := bytes.SplitAfter(body, []byte("\n"))
	forgedBody := bytes.Join(lines[1:], nil)
	var h cmpHeader
	if _, _, hp, err := parseSegment(orig, false); err != nil {
		t.Fatal(err)
	} else {
		h = *hp
	}
	var prev [32]byte
	if err := decodeHex32(h.Prev, &prev); err != nil {
		t.Fatal(err)
	}
	forged, _, err := encodeCompacted(h.First, h.Last, h.Records-1, prev, forgedBody)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cmps[0], forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(cfg); err == nil || !strings.Contains(err.Error(), "chain") {
		t.Fatalf("forged compacted segment not caught by chain linkage: %v", err)
	}

	if err := os.WriteFile(cmps[0], orig, 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := asLog(t, restored).VerifyChain(); err != nil {
		t.Fatal(err)
	}
	restored.Close()
}

// TestRetention drops whole oldest segments once the log exceeds its
// size or age budget.
func TestRetention(t *testing.T) {
	t.Run("bytes", func(t *testing.T) {
		s, err := Open(Config{Dir: t.TempDir(), MaxSegmentRecords: 2,
			Retention: Retention{MaxBytes: 1}})
		if err != nil {
			t.Fatal(err)
		}
		l := asLog(t, s)
		defer l.Close()
		for i := 0; i < 7; i++ {
			if err := l.Append(obs(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		// Sealed segments 1..3 (6 records) blow the 1-byte budget and
		// drop; the active segment (record 7) always survives.
		if l.Len() != 1 {
			t.Fatalf("len = %d after retention, want 1", l.Len())
		}
		all, err := l.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(all) != 1 || all[0].PredictedSeconds != obs(6).PredictedSeconds {
			t.Fatalf("wrong survivor: %+v", all)
		}
		st := l.Stats()
		if st.RetentionDroppedRecords != 6 || st.ReclaimedBytes == 0 {
			t.Fatalf("retention stats: dropped=%d reclaimed=%d", st.RetentionDroppedRecords, st.ReclaimedBytes)
		}
	})
	t.Run("age", func(t *testing.T) {
		s, err := Open(Config{Dir: t.TempDir(), MaxSegmentRecords: 2,
			Retention: Retention{MaxAge: time.Nanosecond}})
		if err != nil {
			t.Fatal(err)
		}
		l := asLog(t, s)
		defer l.Close()
		for i := 0; i < 5; i++ {
			if err := l.Append(obs(i)); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(10 * time.Millisecond)
		if err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		if l.Len() != 1 {
			t.Fatalf("len = %d after age retention, want 1", l.Len())
		}
	})
}

// TestStoreParity: the three Store implementations agree on what was
// stored.
func TestStoreParity(t *testing.T) {
	var seq []Observation
	for i := 0; i < 10; i++ {
		seq = append(seq, obs(i))
	}

	file, err := Open(Config{Dir: t.TempDir(), MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	mem, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	objects := NewMemObjects()
	objl, err := NewObjectLog(objects, Config{MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer objl.Close()

	for name, s := range map[string]Store{"file": file, "mem": mem, "object": objl} {
		if err := s.AppendAll(seq); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Len() != len(seq) {
			t.Fatalf("%s: len = %d, want %d", name, s.Len(), len(seq))
		}
		all, err := s.All()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(all, seq) {
			t.Fatalf("%s: All() diverged:\n got %+v\nwant %+v", name, all, seq)
		}
		if got := s.Recent(3); len(got) != 3 || got[2].PredictedSeconds != seq[9].PredictedSeconds {
			t.Fatalf("%s: Recent wrong: %+v", name, got)
		}
	}

	// ObjectLog durability is at sealed-segment granularity by design:
	// a reopen over the same object store recovers the 8 sealed records
	// and loses the 2-record in-memory tail.
	re, err := NewObjectLog(objects, Config{MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 8 || re.Segments() != 2 {
		t.Fatalf("object reopen: len=%d segments=%d, want 8/2", re.Len(), re.Segments())
	}
	re.Close()
}

// TestAppendAfterClose: every implementation rejects appends once
// closed.
func TestAppendAfterClose(t *testing.T) {
	for name, cfg := range map[string]Config{
		"group":  {Dir: t.TempDir()},
		"direct": {Dir: t.TempDir(), Direct: true},
		"mem":    {},
	} {
		s, err := Open(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if err := s.Append(obs(0)); err != ErrClosed {
			t.Fatalf("%s: append after close = %v, want ErrClosed", name, err)
		}
	}
}

// TestLockFreeReadsUnderCompaction races readers against concurrent
// appends and compaction passes: All() must never error (retrying when
// compaction unlinks a snapshotted file) and must never observe the log
// shrinking.
func TestLockFreeReadsUnderCompaction(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), MaxSegmentRecords: 4, CompactAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := asLog(t, s)
	defer l.Close()

	const total = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastLen := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				all, err := l.All()
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(all) < lastLen {
					t.Errorf("reader: log shrank from %d to %d", lastLen, len(all))
					return
				}
				lastLen = len(all)
			}
		}()
	}
	for i := 0; i < total; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 49 {
			if err := l.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	all, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != total {
		t.Fatalf("final All() = %d, want %d", len(all), total)
	}
	for i, o := range all {
		if o.PredictedSeconds != obs(i).PredictedSeconds {
			t.Fatalf("record %d corrupted under concurrency", i)
		}
	}
}

// TestAppendBatchCommitDirect exercises the Commit surface of the
// direct (baseline) path: one fsync per append, batch = own records.
func TestAppendBatchCommitDirect(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), Direct: true, Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c, err := l.AppendBatch([]Observation{obs(0), obs(1)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Batch != 2 {
		t.Fatalf("direct commit batch = %d, want 2", c.Batch)
	}
	st := l.Stats()
	if st.Batches != 1 || st.Fsyncs != 1 {
		t.Fatalf("direct stats: batches=%d fsyncs=%d, want 1/1", st.Batches, st.Fsyncs)
	}
	if _, err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
