package feedback

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzSegmentDecoder drives hostile bytes through the segment decoder
// in both modes (strict, and torn-tail-tolerant recovery). The
// contract under fuzz: parseSegment never panics, never keeps more
// bytes than it was given, is deterministic, and its recovery output
// is idempotent — the prefix it keeps must reparse STRICTLY to the
// same records, since that prefix is exactly what recovery truncates
// the segment file to. Compacted segments must honour their header's
// record count. The committed corpus seeds the interesting shapes: a
// valid plain segment, a valid compacted segment, a truncation
// mid-batch, a flipped checksum, and a duplicated record under an
// unchanged compacted header (count mismatch).
func FuzzSegmentDecoder(f *testing.F) {
	for _, img := range corpusImages() {
		f.Add(img)
	}
	f.Add([]byte{})
	f.Add([]byte(cmpMagic + "{\"version\":1}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, allowTorn := range []bool{false, true} {
			obs, keep, hdr, err := parseSegment(data, allowTorn)
			obs2, keep2, _, err2 := parseSegment(data, allowTorn)
			if (err == nil) != (err2 == nil) || keep != keep2 || len(obs) != len(obs2) {
				t.Fatalf("allowTorn=%v: non-deterministic parse", allowTorn)
			}
			if err != nil {
				continue
			}
			if keep < 0 || keep > int64(len(data)) {
				t.Fatalf("allowTorn=%v: keep %d outside [0,%d]", allowTorn, keep, len(data))
			}
			if hdr != nil {
				if len(obs) != hdr.Records {
					t.Fatalf("compacted: %d records vs header %d", len(obs), hdr.Records)
				}
				continue
			}
			if !allowTorn && keep != int64(len(data)) {
				t.Fatalf("strict parse succeeded but kept %d of %d bytes", keep, len(data))
			}
			// Recovery idempotence: what recovery would keep on disk
			// must be fully valid on the next open.
			robs, rkeep, _, rerr := parseSegment(data[:keep], false)
			if rerr != nil {
				t.Fatalf("recovered prefix does not reparse: %v", rerr)
			}
			if rkeep != keep || len(robs) != len(obs) {
				t.Fatalf("recovered prefix reparsed to %d records / %d bytes, want %d / %d",
					len(robs), rkeep, len(obs), keep)
			}
		}
	})
}

// corpusImages builds the seed images with the package's own encoders,
// so the fuzzer starts from deep inside the valid formats.
func corpusImages() [][]byte {
	var plain []byte
	for i := 0; i < 3; i++ {
		line, err := encodeRecord(Observation{
			Model: "m", Target: "cg", PState: i,
			PredictedSeconds: 10 + float64(i), MeasuredSeconds: 11,
		})
		if err != nil {
			panic(err)
		}
		plain = append(plain, line...)
		plain = append(plain, '\n')
	}

	truncated := append([]byte(nil), plain[:len(plain)/2]...)

	flipped := append([]byte(nil), plain...)
	flipped[0] ^= 0x01 // corrupt the first record's checksum

	var zero [sha256.Size]byte
	compacted, _, err := encodeCompacted(1, 2, 3, zero, plain)
	if err != nil {
		panic(err)
	}

	// Duplicate the first record but keep the header's count: the chain
	// hash covers the duplicated body (so it verifies) and the count
	// mismatch must be what rejects it.
	firstLine := plain[:bytes.IndexByte(plain, '\n')+1]
	dupBody := append(append([]byte(nil), firstLine...), plain...)
	duplicated, _, err := encodeCompacted(1, 2, 3, zero, dupBody)
	if err != nil {
		panic(err)
	}

	return [][]byte{plain, truncated, flipped, compacted, duplicated}
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus from
// corpusImages. Guarded so it only runs when explicitly requested:
//
//	FEEDBACK_REGEN_CORPUS=1 go test -run TestRegenerateFuzzCorpus ./internal/feedback/
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("FEEDBACK_REGEN_CORPUS") == "" {
		t.Skip("set FEEDBACK_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzSegmentDecoder")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecoder")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := []string{"valid-plain", "truncated-mid-batch", "checksum-flipped", "valid-compacted", "duplicated-sequence"}
	for i, img := range corpusImages() {
		entry := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(img)))
		if err := os.WriteFile(filepath.Join(dir, names[i]), []byte(entry), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
