package feedback

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	segPrefix = "obs-"
	segSuffix = ".log"
	cmpPrefix = "obs-c-"
	tmpSuffix = ".tmp"
	// cmpMagic opens the header line of a compacted segment. The "!"
	// cannot begin a plain record (those start with a hex checksum),
	// so the two formats are self-distinguishing.
	cmpMagic = "!cmp "
)

func segName(i int) string {
	return fmt.Sprintf("%s%06d%s", segPrefix, i, segSuffix)
}

func cmpName(first, last int) string {
	return fmt.Sprintf("%s%06d-%06d%s", cmpPrefix, first, last, segSuffix)
}

// parseSegName extracts the index from a plain segment file name.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	var idx int
	if _, err := fmt.Sscanf(mid, "%d", &idx); err != nil || strings.ContainsAny(mid, "-.") {
		return 0, false
	}
	return idx, true
}

// parseCmpName extracts the folded index range from a compacted
// segment file name.
func parseCmpName(name string) (first, last int, ok bool) {
	if !strings.HasPrefix(name, cmpPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, cmpPrefix), segSuffix)
	if _, err := fmt.Sscanf(mid, "%06d-%06d", &first, &last); err != nil {
		return 0, 0, false
	}
	return first, last, true
}

// encodeRecord renders one observation as a log line (without the
// trailing newline): an 8-hex-digit CRC32 (IEEE) of the JSON payload,
// one space, then the payload.
func encodeRecord(o Observation) ([]byte, error) {
	payload, err := json.Marshal(o)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+9)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	return append(line, payload...), nil
}

// decodeRecord parses and verifies one log line (without newline).
func decodeRecord(line []byte) (Observation, error) {
	var o Observation
	if len(line) < 10 || line[8] != ' ' {
		return o, fmt.Errorf("malformed record")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return o, fmt.Errorf("malformed checksum: %w", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return o, fmt.Errorf("checksum mismatch: got %08x want %08x", got, want)
	}
	if err := json.Unmarshal(payload, &o); err != nil {
		return o, fmt.Errorf("bad payload: %w", err)
	}
	return o, nil
}

// cmpHeader is the JSON body of a compacted segment's "!cmp " header
// line. Chain is hex(SHA-256(prevChain || SHA-256(body))) where body
// is every byte after the header line and prevChain is the previous
// compacted segment's chain hash (all zeros for the first). The chain
// makes tampering with, dropping, or reordering compacted history
// detectable from the newest surviving segment.
type cmpHeader struct {
	Version int    `json:"version"`
	First   int    `json:"first"`
	Last    int    `json:"last"`
	Records int    `json:"records"`
	Prev    string `json:"prev"`
	Chain   string `json:"chain"`
}

// chainHash links one compacted segment's body onto the running chain.
func chainHash(prev [sha256.Size]byte, body []byte) [sha256.Size]byte {
	bodySum := sha256.Sum256(body)
	h := sha256.New()
	h.Write(prev[:])
	h.Write(bodySum[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// parseSegment decodes a segment image in either format.
//
// Plain segments are newline-terminated checksummed records; with
// allowTorn, a partial or checksum-failing final record is dropped and
// keep reports the byte length of the surviving prefix (the recovery
// truncation point). Without allowTorn any damage is an error.
//
// Compacted segments (a "!cmp " header line) never tolerate damage:
// the record count must match the header and the chain hash must
// verify against the header's prev — so any bit flipped, record
// dropped, or record duplicated after compaction is detected. The
// parsed header is returned for chain-linkage checks across segments.
func parseSegment(data []byte, allowTorn bool) (obs []Observation, keep int64, hdr *cmpHeader, err error) {
	if bytes.HasPrefix(data, []byte(cmpMagic)) {
		obs, hdr, err = parseCompacted(data)
		return obs, int64(len(data)), hdr, err
	}
	off := int64(0)
	raw := data
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			// No trailing newline: a torn final record.
			if !allowTorn {
				return nil, off, nil, fmt.Errorf("truncated mid-record at offset %d", off)
			}
			return obs, off, nil, nil
		}
		o, derr := decodeRecord(raw[:nl])
		if derr != nil {
			if allowTorn && nl == len(raw)-1 {
				// Damaged final record: torn tail, drop it.
				return obs, off, nil, nil
			}
			return nil, off, nil, fmt.Errorf("record at offset %d: %w", off, derr)
		}
		obs = append(obs, o)
		raw = raw[nl+1:]
		off += int64(nl) + 1
	}
	return obs, off, nil, nil
}

func parseCompacted(data []byte) ([]Observation, *cmpHeader, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, nil, fmt.Errorf("compacted segment: truncated header")
	}
	var h cmpHeader
	if err := json.Unmarshal(data[len(cmpMagic):nl], &h); err != nil {
		return nil, nil, fmt.Errorf("compacted segment: bad header: %w", err)
	}
	if h.Version != 1 {
		return nil, nil, fmt.Errorf("compacted segment: unsupported version %d", h.Version)
	}
	if h.First < 1 || h.Last < h.First {
		return nil, nil, fmt.Errorf("compacted segment: bad range [%d,%d]", h.First, h.Last)
	}
	body := data[nl+1:]
	var prev [sha256.Size]byte
	if err := decodeHex32(h.Prev, &prev); err != nil {
		return nil, nil, fmt.Errorf("compacted segment: bad prev hash: %w", err)
	}
	var want [sha256.Size]byte
	if err := decodeHex32(h.Chain, &want); err != nil {
		return nil, nil, fmt.Errorf("compacted segment: bad chain hash: %w", err)
	}
	if chainHash(prev, body) != want {
		return nil, nil, fmt.Errorf("compacted segment: chain hash mismatch (body tampered or truncated)")
	}
	obs, _, _, err := parseSegment(body, false)
	if err != nil {
		return nil, nil, fmt.Errorf("compacted segment: %w", err)
	}
	if len(obs) != h.Records {
		return nil, nil, fmt.Errorf("compacted segment: %d records, header claims %d", len(obs), h.Records)
	}
	return obs, &h, nil
}

func decodeHex32(s string, out *[sha256.Size]byte) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return err
	}
	if len(b) != sha256.Size {
		return fmt.Errorf("hash is %d bytes, want %d", len(b), sha256.Size)
	}
	copy(out[:], b)
	return nil
}

// encodeCompacted renders a compacted segment image for the given
// concatenated record body.
func encodeCompacted(first, last, records int, prev [sha256.Size]byte, body []byte) ([]byte, [sha256.Size]byte, error) {
	chain := chainHash(prev, body)
	h := cmpHeader{
		Version: 1,
		First:   first,
		Last:    last,
		Records: records,
		Prev:    hex.EncodeToString(prev[:]),
		Chain:   hex.EncodeToString(chain[:]),
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, chain, err
	}
	out := make([]byte, 0, len(cmpMagic)+len(hdr)+1+len(body))
	out = append(out, cmpMagic...)
	out = append(out, hdr...)
	out = append(out, '\n')
	out = append(out, body...)
	return out, chain, nil
}

// dirSegment is one segment file found on disk during recovery.
type dirSegment struct {
	name        string
	first, last int
	compacted   bool
}

// listDir scans the log directory, removes leftover temporary files
// from an interrupted compaction (crash before the rename commit
// point), and returns the segment files sorted by first index,
// compacted segments before plain ones at equal first index.
func listDir(dir string) ([]dirSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []dirSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) && strings.HasPrefix(name, segPrefix) {
			// An interrupted compaction never reached its rename; the
			// source segments are still intact, so the partial output
			// is garbage.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return nil, fmt.Errorf("feedback: removing stale %s: %w", name, err)
			}
			continue
		}
		if first, last, ok := parseCmpName(name); ok {
			segs = append(segs, dirSegment{name: name, first: first, last: last, compacted: true})
			continue
		}
		if idx, ok := parseSegName(name); ok {
			segs = append(segs, dirSegment{name: name, first: idx, last: idx})
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].first != segs[j].first {
			return segs[i].first < segs[j].first
		}
		return segs[i].compacted && !segs[j].compacted
	})
	return segs, nil
}
