package feedback

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

func hexChain(c [sha256.Size]byte) string { return hex.EncodeToString(c[:]) }

func (l *Log) kickCompactor() {
	select {
	case l.compactKick <- struct{}{}:
	default:
	}
}

// compactor runs in the background, woken by the committer whenever a
// segment seals. Each pass folds eligible plain segments and enforces
// the retention bound.
func (l *Log) compactor() {
	defer close(l.compactDone)
	for {
		select {
		case <-l.compactStop:
			return
		case <-l.compactKick:
		}
		if err := l.Compact(); err != nil {
			// Compaction is best-effort hygiene: a failed pass leaves
			// the plain segments in place and the log fully readable,
			// so record the failure and retry on the next kick.
			l.poison(fmt.Errorf("feedback: compaction: %w", err))
			return
		}
	}
}

// Compact runs one synchronous compaction pass: folding sealed plain
// segments into a chain-checksummed compacted segment once CompactAfter
// of them have accumulated, then enforcing Retention. It is safe
// concurrently with appends and reads, and is exported so embedders
// (and tests) can force a deterministic pass.
func (l *Log) Compact() error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()
	if l.cfg.CompactAfter > 0 {
		if err := l.foldPlain(); err != nil {
			return err
		}
	}
	if l.cfg.Retention.enabled() {
		if err := l.enforceRetention(); err != nil {
			return err
		}
	}
	return nil
}

// foldPlain folds the run of sealed plain segments (always the suffix
// of the ref list — compacted history precedes it) into one compacted
// segment. The fold is crash-atomic around the rename: tmp write →
// fsync → rename is the commit point; sources are deleted only after
// the new snapshot is published, and reopen-recovery resolves every
// intermediate state.
func (l *Log) foldPlain() error {
	snap := l.snap.Load()
	i := 0
	for j, ref := range snap.refs {
		if ref.compacted {
			i = j + 1
		}
	}
	run := snap.refs[i:]
	if len(run) < l.cfg.CompactAfter {
		return nil
	}
	var (
		body []byte
		recs int
	)
	for _, ref := range run {
		data, err := os.ReadFile(filepath.Join(l.cfg.Dir, ref.name))
		if err != nil {
			return fmt.Errorf("reading %s: %w", ref.name, err)
		}
		body = append(body, data...)
		recs += ref.recs
	}
	first, last := run[0].first, run[len(run)-1].last
	img, chain, err := encodeCompacted(first, last, recs, l.chain, body)
	if err != nil {
		return fmt.Errorf("encoding compacted segment: %w", err)
	}
	name := cmpName(first, last)
	path := filepath.Join(l.cfg.Dir, name)
	tmp := path + tmpSuffix
	if err := writeFileSync(tmp, img); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("committing %s: %w", name, err)
	}
	if err := syncDir(l.cfg.Dir); err != nil {
		return err
	}
	newRef := segmentRef{
		name: name, first: first, last: last,
		recs: recs, bytes: int64(len(img)),
		compacted: true, mod: time.Now(),
	}

	// Publish before deleting sources: readers holding the old
	// snapshot retry on ENOENT and pick up the compacted view.
	l.snapMu.Lock()
	fresh := l.snap.Load()
	refs := make([]segmentRef, 0, len(fresh.refs)-len(run)+1)
	refs = append(refs, fresh.refs[:i]...)
	refs = append(refs, newRef)
	refs = append(refs, fresh.refs[i+len(run):]...)
	l.snap.Store(&snapshot{refs: refs, seg: fresh.seg, activeOff: fresh.activeOff, total: fresh.total})
	l.snapMu.Unlock()
	l.chain = chain

	for _, ref := range run {
		if err := os.Remove(filepath.Join(l.cfg.Dir, ref.name)); err != nil {
			return fmt.Errorf("removing folded %s: %w", ref.name, err)
		}
	}
	l.st.compactRuns.Add(1)
	l.st.compactedRecords.Add(uint64(recs))
	return nil
}

// enforceRetention drops whole oldest sealed segments while the log
// exceeds its size or age budget.
func (l *Log) enforceRetention() error {
	now := time.Now()
	for {
		snap := l.snap.Load()
		if len(snap.refs) == 0 {
			return nil
		}
		total := snap.activeOff
		for _, r := range snap.refs {
			total += r.bytes
		}
		oldest := snap.refs[0]
		drop := false
		if mb := l.cfg.Retention.MaxBytes; mb > 0 && total > mb {
			drop = true
		}
		if ma := l.cfg.Retention.MaxAge; ma > 0 && now.Sub(oldest.mod) > ma {
			drop = true
		}
		if !drop {
			return nil
		}
		l.snapMu.Lock()
		fresh := l.snap.Load()
		l.snap.Store(&snapshot{
			refs: fresh.refs[1:], seg: fresh.seg,
			activeOff: fresh.activeOff, total: fresh.total - oldest.recs,
		})
		l.snapMu.Unlock()
		if err := os.Remove(filepath.Join(l.cfg.Dir, oldest.name)); err != nil {
			return fmt.Errorf("dropping expired %s: %w", oldest.name, err)
		}
		l.st.reclaimedBytes.Add(uint64(oldest.bytes))
		l.st.retentionRecords.Add(uint64(oldest.recs))
	}
}

// VerifyChain re-reads every compacted segment in the current snapshot
// and verifies the SHA-256 chain: each segment's hash must cover its
// body and link to its predecessor's hash. The oldest surviving
// segment is the trust anchor (retention may have dropped its
// predecessors). This is the tamper-evidence audit: any record
// modified, dropped, duplicated or reordered after compaction breaks
// the chain.
func (l *Log) VerifyChain() error {
	snap := l.snap.Load()
	var prev [sha256.Size]byte
	seen := false
	for _, ref := range snap.refs {
		if !ref.compacted {
			continue
		}
		data, err := os.ReadFile(filepath.Join(l.cfg.Dir, ref.name))
		if err != nil {
			return fmt.Errorf("feedback: verify %s: %w", ref.name, err)
		}
		_, _, hdr, err := parseSegment(data, false)
		if err != nil {
			return fmt.Errorf("feedback: verify %s: %w", ref.name, err)
		}
		if hdr == nil {
			return fmt.Errorf("feedback: verify %s: not a compacted segment", ref.name)
		}
		if seen && hdr.Prev != hexChain(prev) {
			return fmt.Errorf("feedback: verify %s: chain broken", ref.name)
		}
		if err := decodeHex32(hdr.Chain, &prev); err != nil {
			return fmt.Errorf("feedback: verify %s: %w", ref.name, err)
		}
		seen = true
	}
	return nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("creating %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("syncing %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("opening dir for sync: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("syncing dir: %w", err)
	}
	return nil
}
