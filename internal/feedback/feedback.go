// Package feedback is the observation side of the online adaptation
// loop: a durable, append-only log of (predicted, measured) execution
// times per co-location scenario. The paper trains its models once on
// an offline homogeneous sweep and concedes (Section IV-B3) that
// accuracy depends on the training data resembling deployment; this
// package captures what deployment actually looks like, so the drift
// monitor can notice when the two diverge and the retraining
// controller can fold real observations back into the training set.
//
// The package exposes a small Store interface with three
// implementations selected by Config: a file-backed group-commit Log
// (Dir set), a memory-only MemStore (Dir empty), and an
// object-store-shaped ObjectLog (NewObjectLog) for embedders that keep
// observations in a blob store.
//
// Durability model (file-backed): the log is a directory of segment
// files. Each record is one line — an 8-hex-digit CRC32 of the JSON
// payload, a space, then the payload. Appends go to the newest
// segment, which rotates after a fixed number of records. Concurrent
// appends are group-committed: callers enqueue encoded records into a
// bounded commit queue and park; a single committer goroutine drains
// the queue, writes one coalesced segment append, issues one fsync,
// and releases the whole cohort — amortising the durability cost
// across the batch. Reads are lock-free: they run against an
// atomically published snapshot of the sealed segments and the
// committed tail offset, so a reader never waits on in-flight commit
// I/O.
//
// On open, all segments are verified; a torn tail (a partial or
// checksum-failing final record of the final segment, the signature of
// a crash mid-append) is truncated away, while corruption anywhere
// earlier is reported as an error rather than silently dropped.
//
// With CompactAfter set, a background compactor folds sealed segments
// into compacted segments carrying SHA-256 chain checksums (each
// compacted segment's chain hash covers its body and the previous
// compacted segment's chain hash), making record tampering, loss or
// reordering in the compacted history tamper-evident. A Retention
// bound drops whole oldest segments once the log exceeds a size or age
// budget.
package feedback

import (
	"errors"
	"fmt"
	"time"
)

// Observation is one feedback record: what a model predicted for a
// scenario and what was actually measured when the scenario ran.
type Observation struct {
	// Model is the registry name of the model that produced the
	// prediction.
	Model string `json:"model"`
	// Generation is the registry generation of that model at predict
	// time, so residuals attribute to the right incumbent across
	// hot-swaps.
	Generation uint64 `json:"generation"`
	// Target is the measured application.
	Target string `json:"target"`
	// CoApps are the co-located application names (one per copy).
	CoApps []string `json:"co_apps,omitempty"`
	// PState is the P-state index of the run.
	PState int `json:"pstate"`
	// PredictedSeconds is the model's predicted execution time.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// MeasuredSeconds is the observed execution time.
	MeasuredSeconds float64 `json:"measured_seconds"`
	// UnixNanos optionally timestamps the measurement (0 if unknown).
	UnixNanos int64 `json:"unix_nanos,omitempty"`
}

// PercentError is the signed percent error of the prediction,
// 100·(predicted−measured)/measured — the residual the drift detector
// monitors.
func (o Observation) PercentError() float64 {
	return 100 * (o.PredictedSeconds - o.MeasuredSeconds) / o.MeasuredSeconds
}

// Validate rejects observations that cannot contribute a residual.
func (o Observation) Validate() error {
	if o.Target == "" {
		return fmt.Errorf("feedback: observation has no target")
	}
	if !(o.MeasuredSeconds > 0) {
		return fmt.Errorf("feedback: measured_seconds %v must be positive", o.MeasuredSeconds)
	}
	if !(o.PredictedSeconds > 0) {
		return fmt.Errorf("feedback: predicted_seconds %v must be positive", o.PredictedSeconds)
	}
	return nil
}

// Retention bounds the file-backed log's disk footprint, enforced by
// the compactor at whole-segment granularity: while the log's total
// size exceeds MaxBytes, or the oldest sealed segment was last written
// longer than MaxAge ago, the oldest sealed segment is dropped. The
// zero value keeps everything.
type Retention struct {
	// MaxBytes bounds the summed size of all segment files (0 = no
	// size bound).
	MaxBytes int64
	// MaxAge bounds how long a sealed segment is kept (0 = no age
	// bound).
	MaxAge time.Duration
}

func (r Retention) enabled() bool { return r.MaxBytes > 0 || r.MaxAge > 0 }

// Config tunes the log.
type Config struct {
	// Dir is the segment directory. Empty selects a memory-only store.
	Dir string
	// MaxSegmentRecords rotates the active segment after this many
	// records. Default 4096.
	MaxSegmentRecords int
	// RingSize bounds the in-memory ring of recent observations kept
	// for cheap drift reports. Default 1024.
	RingSize int
	// Sync fsyncs each group commit. Off by default: the recovery path
	// already tolerates a torn tail, so the only exposure is the OS
	// page cache.
	Sync bool
	// Queue bounds the commit queue: the number of append batches that
	// may wait on the committer before further callers block
	// (backpressure). Default 1024.
	Queue int
	// CommitInterval optionally holds each group commit open for this
	// long after its first batch arrives, trading append latency for
	// larger cohorts. 0 commits as soon as the committer is free
	// (pure piggyback coalescing — usually the right choice).
	CommitInterval time.Duration
	// Direct bypasses the group-commit pipeline: every append performs
	// its own write (and fsync, under Sync) while holding the log
	// lock. This is the pre-group-commit write path, kept as the
	// benchmark baseline and for strictly single-writer embedders.
	Direct bool
	// CompactAfter folds sealed plain segments into one compacted,
	// chain-checksummed segment whenever at least this many have
	// accumulated. 0 disables compaction (the default, preserving
	// exact segment-file layout).
	CompactAfter int
	// Retention bounds the log's disk footprint (requires the
	// compactor; any non-zero Retention enables it). Zero keeps
	// everything.
	Retention Retention
}

func (c *Config) defaults() {
	if c.MaxSegmentRecords == 0 {
		c.MaxSegmentRecords = 4096
	}
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
	if c.Queue == 0 {
		c.Queue = 1024
	}
}

// ErrClosed is returned by appends against a closed store.
var ErrClosed = errors.New("feedback: log closed")

// Open creates or recovers a store: a file-backed group-commit Log
// when cfg.Dir is set, a memory-only MemStore otherwise. For a
// disk-backed log every existing segment is verified: earlier segments
// must be fully intact, compacted segments must satisfy their SHA-256
// chain, and a torn final record of the final segment is truncated
// away (the crash-recovery path). The ring is rebuilt from the newest
// records.
func Open(cfg Config) (Store, error) {
	cfg.defaults()
	if cfg.Dir == "" {
		return newMemStore(cfg), nil
	}
	return openLog(cfg)
}

func validateAll(obs []Observation) error {
	for i, o := range obs {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("feedback: observation %d: %w", i, err)
		}
	}
	return nil
}
