// Package feedback is the observation side of the online adaptation
// loop: a durable, append-only log of (predicted, measured) execution
// times per co-location scenario. The paper trains its models once on
// an offline homogeneous sweep and concedes (Section IV-B3) that
// accuracy depends on the training data resembling deployment; this
// package captures what deployment actually looks like, so the drift
// monitor can notice when the two diverge and the retraining
// controller can fold real observations back into the training set.
//
// Durability model: the log is a directory of segment files. Each
// record is one line — an 8-hex-digit CRC32 of the JSON payload, a
// space, then the payload. Appends go to the newest segment, which
// rotates after a fixed number of records. On open, all segments are
// verified; a torn tail (a partial or checksum-failing final record of
// the final segment, the signature of a crash mid-append) is truncated
// away, while corruption anywhere earlier is reported as an error
// rather than silently dropped. With an empty directory name the log
// is memory-only (useful for tests and embedded servers).
package feedback

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Observation is one feedback record: what a model predicted for a
// scenario and what was actually measured when the scenario ran.
type Observation struct {
	// Model is the registry name of the model that produced the
	// prediction.
	Model string `json:"model"`
	// Generation is the registry generation of that model at predict
	// time, so residuals attribute to the right incumbent across
	// hot-swaps.
	Generation uint64 `json:"generation"`
	// Target is the measured application.
	Target string `json:"target"`
	// CoApps are the co-located application names (one per copy).
	CoApps []string `json:"co_apps,omitempty"`
	// PState is the P-state index of the run.
	PState int `json:"pstate"`
	// PredictedSeconds is the model's predicted execution time.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// MeasuredSeconds is the observed execution time.
	MeasuredSeconds float64 `json:"measured_seconds"`
	// UnixNanos optionally timestamps the measurement (0 if unknown).
	UnixNanos int64 `json:"unix_nanos,omitempty"`
}

// PercentError is the signed percent error of the prediction,
// 100·(predicted−measured)/measured — the residual the drift detector
// monitors.
func (o Observation) PercentError() float64 {
	return 100 * (o.PredictedSeconds - o.MeasuredSeconds) / o.MeasuredSeconds
}

// Validate rejects observations that cannot contribute a residual.
func (o Observation) Validate() error {
	if o.Target == "" {
		return fmt.Errorf("feedback: observation has no target")
	}
	if !(o.MeasuredSeconds > 0) {
		return fmt.Errorf("feedback: measured_seconds %v must be positive", o.MeasuredSeconds)
	}
	if !(o.PredictedSeconds > 0) {
		return fmt.Errorf("feedback: predicted_seconds %v must be positive", o.PredictedSeconds)
	}
	return nil
}

// Config tunes the log.
type Config struct {
	// Dir is the segment directory. Empty selects a memory-only log.
	Dir string
	// MaxSegmentRecords rotates the active segment after this many
	// records. Default 4096.
	MaxSegmentRecords int
	// RingSize bounds the in-memory ring of recent observations kept
	// for cheap drift reports. Default 1024.
	RingSize int
	// Sync fsyncs after every append. Off by default: the recovery
	// path already tolerates a torn tail, so the only exposure is the
	// OS page cache.
	Sync bool
}

func (c *Config) defaults() {
	if c.MaxSegmentRecords == 0 {
		c.MaxSegmentRecords = 4096
	}
	if c.RingSize == 0 {
		c.RingSize = 1024
	}
}

// Log is the append-only observation log.
type Log struct {
	mu  sync.Mutex
	cfg Config

	// Disk state (nil file when memory-only).
	file    *os.File
	seg     int // index of the active segment
	segRecs int // records in the active segment
	total   int // records across all segments

	// mem holds every observation when memory-only.
	mem []Observation

	// ring holds the most recent observations (bounded).
	ring []Observation
	next int
	full bool
}

const segPrefix = "obs-"
const segSuffix = ".log"

func segName(i int) string { return fmt.Sprintf("%s%06d%s", segPrefix, i, segSuffix) }

// Open creates or recovers a log. For a disk-backed log every existing
// segment is verified: earlier segments must be fully intact, and a
// torn final record of the final segment is truncated away (the
// crash-recovery path). The ring is rebuilt from the newest records.
func Open(cfg Config) (*Log, error) {
	cfg.defaults()
	l := &Log{cfg: cfg, ring: make([]Observation, cfg.RingSize)}
	if cfg.Dir == "" {
		return l, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: creating log dir: %w", err)
	}
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		obs, err := recoverSegment(filepath.Join(cfg.Dir, segName(seg)), last)
		if err != nil {
			return nil, err
		}
		l.total += len(obs)
		for _, o := range obs {
			l.push(o)
		}
		if last {
			l.seg = seg
			l.segRecs = len(obs)
		}
	}
	if len(segs) == 0 {
		l.seg = 1
	} else if l.segRecs >= cfg.MaxSegmentRecords {
		l.seg++
		l.segRecs = 0
	}
	f, err := os.OpenFile(filepath.Join(cfg.Dir, segName(l.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("feedback: opening segment: %w", err)
	}
	l.file = f
	return l, nil
}

// listSegments returns the sorted segment indices present in dir.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("feedback: reading log dir: %w", err)
	}
	var segs []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), "%d", &i); err != nil {
			continue
		}
		segs = append(segs, i)
	}
	sort.Ints(segs)
	return segs, nil
}

// recoverSegment reads one segment, verifying every record. When
// allowTorn is set (the final segment), a partial or checksum-failing
// final record is treated as a crash artefact and truncated off the
// file; anywhere else it is corruption and an error.
func recoverSegment(path string, allowTorn bool) ([]Observation, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("feedback: reading segment: %w", err)
	}
	var out []Observation
	off := 0
	for off < len(raw) {
		nl := -1
		for j := off; j < len(raw); j++ {
			if raw[j] == '\n' {
				nl = j
				break
			}
		}
		if nl < 0 {
			// No trailing newline: a torn final record.
			if !allowTorn {
				return nil, fmt.Errorf("feedback: segment %s truncated mid-record at offset %d", filepath.Base(path), off)
			}
			return out, os.Truncate(path, int64(off))
		}
		o, err := decodeRecord(raw[off:nl])
		if err != nil {
			if !allowTorn || nl != len(raw)-1 {
				return nil, fmt.Errorf("feedback: segment %s record at offset %d: %w", filepath.Base(path), off, err)
			}
			// A checksum-failing *final* record: torn mid-write.
			return out, os.Truncate(path, int64(off))
		}
		out = append(out, o)
		off = nl + 1
	}
	return out, nil
}

// encodeRecord renders one log line (without the newline).
func encodeRecord(o Observation) ([]byte, error) {
	payload, err := json.Marshal(o)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	return append(line, payload...), nil
}

// decodeRecord parses and checksum-verifies one log line.
func decodeRecord(line []byte) (Observation, error) {
	if len(line) < 10 || line[8] != ' ' {
		return Observation{}, fmt.Errorf("malformed record header")
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return Observation{}, fmt.Errorf("malformed checksum: %w", err)
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != sum {
		return Observation{}, fmt.Errorf("checksum mismatch")
	}
	var o Observation
	if err := json.Unmarshal(payload, &o); err != nil {
		return Observation{}, fmt.Errorf("decoding payload: %w", err)
	}
	return o, nil
}

// push adds an observation to the bounded ring (and, memory-only, to
// the full in-memory slice). Caller holds the lock or is in Open.
func (l *Log) push(o Observation) {
	if l.cfg.Dir == "" {
		l.mem = append(l.mem, o)
	}
	l.ring[l.next] = o
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.full = true
	}
}

// Append validates and durably records one observation.
func (l *Log) Append(o Observation) error {
	return l.AppendAll([]Observation{o})
}

// AppendAll records a batch. The batch is validated up front so a bad
// observation rejects the whole call without a partial write.
func (l *Log) AppendAll(obs []Observation) error {
	for i, o := range obs {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("feedback: observation %d: %w", i, err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, o := range obs {
		if l.file != nil {
			if err := l.appendDisk(o); err != nil {
				return err
			}
		} else {
			l.total++
		}
		l.push(o)
	}
	return nil
}

// appendDisk writes one record to the active segment, rotating first
// if the segment is full. Caller holds the lock.
func (l *Log) appendDisk(o Observation) error {
	if l.segRecs >= l.cfg.MaxSegmentRecords {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	line, err := encodeRecord(o)
	if err != nil {
		return fmt.Errorf("feedback: encoding observation: %w", err)
	}
	if _, err := l.file.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("feedback: appending observation: %w", err)
	}
	if l.cfg.Sync {
		if err := l.file.Sync(); err != nil {
			return fmt.Errorf("feedback: syncing segment: %w", err)
		}
	}
	l.segRecs++
	l.total++
	return nil
}

// rotate closes the active segment and starts the next one.
func (l *Log) rotate() error {
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("feedback: closing segment: %w", err)
	}
	l.seg++
	l.segRecs = 0
	f, err := os.OpenFile(filepath.Join(l.cfg.Dir, segName(l.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: opening segment: %w", err)
	}
	l.file = f
	return nil
}

// Len returns the total number of recorded observations.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Segments returns the number of segment files (0 when memory-only).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return 0
	}
	return l.seg
}

// Recent returns up to n of the most recent observations, oldest
// first. It reads only the in-memory ring, so n is capped at RingSize.
func (l *Log) Recent(n int) []Observation {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.full {
		size = len(l.ring)
	}
	if n > size {
		n = size
	}
	out := make([]Observation, 0, n)
	for i := size - n; i < size; i++ {
		idx := i
		if l.full {
			idx = (l.next + len(l.ring) - size + i) % len(l.ring)
		}
		out = append(out, l.ring[idx])
	}
	return out
}

// All returns every recorded observation in append order. Disk-backed
// logs re-read the segments, so the result reflects exactly what a
// recovery would see; memory-only logs return a copy of the in-memory
// history.
func (l *Log) All() ([]Observation, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cfg.Dir == "" {
		return append([]Observation(nil), l.mem...), nil
	}
	segs, err := listSegments(l.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var out []Observation
	for _, seg := range segs {
		path := filepath.Join(l.cfg.Dir, segName(seg))
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("feedback: opening segment: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		for sc.Scan() {
			o, err := decodeRecord(sc.Bytes())
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("feedback: segment %s: %w", filepath.Base(path), err)
			}
			out = append(out, o)
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return out, nil
}

// Close closes the active segment file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.file == nil {
		return nil
	}
	err := l.file.Close()
	l.file = nil
	return err
}
