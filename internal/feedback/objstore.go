package feedback

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ObjectStore is the minimal blob-store surface ObjectLog persists
// through: named immutable objects with atomic whole-object puts —
// the shape of S3/GCS-style APIs. Implementations must make Put
// atomic (no torn objects), which is why ObjectLog needs no torn-tail
// recovery.
type ObjectStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List() ([]string, error)
}

// MemObjects is an in-memory ObjectStore, the mock used in tests and
// the reference for what object semantics ObjectLog assumes.
type MemObjects struct {
	mu   sync.Mutex
	objs map[string][]byte
}

// NewMemObjects returns an empty in-memory object store.
func NewMemObjects() *MemObjects { return &MemObjects{objs: map[string][]byte{}} }

// Put stores an object atomically (whole-object replace).
func (m *MemObjects) Put(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objs[name] = append([]byte(nil), data...)
	return nil
}

// Get returns a copy of the named object.
func (m *MemObjects) Get(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objs[name]
	if !ok {
		return nil, fmt.Errorf("object %q not found", name)
	}
	return append([]byte(nil), data...), nil
}

// List returns the object names in lexicographic order.
func (m *MemObjects) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.objs))
	for n := range m.objs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// ObjectLog is the object-store-shaped Store: sealed segments are
// immutable objects in the same record format as the file-backed log's
// segment files; the unsealed tail lives in memory until it reaches
// MaxSegmentRecords and is sealed with one atomic Put. Durability is
// therefore at segment granularity — the trade an object store
// imposes, since per-record puts would be one round trip each.
type ObjectLog struct {
	store  ObjectStore
	cfg    Config
	mu     sync.Mutex
	sealed int // sealed segment count; next sealed object is segName(sealed+1)
	total  int
	tail   []Observation
	ring   ring
	closed bool
	st     *ingestCounters
}

// NewObjectLog opens a Store over the given object store, recovering
// any segments already present.
func NewObjectLog(store ObjectStore, cfg Config) (*ObjectLog, error) {
	cfg.defaults()
	l := &ObjectLog{store: store, cfg: cfg, ring: newRing(cfg.RingSize), st: newIngestCounters()}
	names, err := store.List()
	if err != nil {
		return nil, fmt.Errorf("feedback: listing objects: %w", err)
	}
	var idxs []int
	for _, n := range names {
		if idx, ok := parseSegName(n); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		data, err := store.Get(segName(idx))
		if err != nil {
			return nil, fmt.Errorf("feedback: reading object %s: %w", segName(idx), err)
		}
		obs, _, _, perr := parseSegment(data, false)
		if perr != nil {
			return nil, fmt.Errorf("feedback: object %s: %w", segName(idx), perr)
		}
		l.total += len(obs)
		for _, o := range obs {
			l.ring.push(o)
		}
		l.sealed = idx
	}
	return l, nil
}

// Append stores one observation.
func (l *ObjectLog) Append(o Observation) error {
	_, err := l.AppendBatch([]Observation{o})
	return err
}

// AppendAll stores a batch; if any observation is invalid nothing is
// written.
func (l *ObjectLog) AppendAll(obs []Observation) error {
	_, err := l.AppendBatch(obs)
	return err
}

// AppendBatch appends to the in-memory tail and seals full segments as
// immutable objects.
func (l *ObjectLog) AppendBatch(obs []Observation) (Commit, error) {
	if err := validateAll(obs); err != nil {
		return Commit{}, err
	}
	if len(obs) == 0 {
		return Commit{}, nil
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Commit{}, ErrClosed
	}
	l.tail = append(l.tail, obs...)
	for _, o := range obs {
		l.ring.push(o)
	}
	l.total += len(obs)
	writeStart := time.Now()
	for len(l.tail) >= l.cfg.MaxSegmentRecords {
		if err := l.sealLocked(l.tail[:l.cfg.MaxSegmentRecords]); err != nil {
			return Commit{}, err
		}
		l.tail = append(l.tail[:0:0], l.tail[l.cfg.MaxSegmentRecords:]...)
	}
	done := time.Now()
	l.st.observeCommit(len(obs), 0, start, done, done)
	return Commit{Batch: len(obs), Queued: start, WriteStart: writeStart, SyncStart: done, Done: done}, nil
}

func (l *ObjectLog) sealLocked(obs []Observation) error {
	var buf []byte
	for _, o := range obs {
		line, err := encodeRecord(o)
		if err != nil {
			return fmt.Errorf("feedback: encoding observation: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	name := segName(l.sealed + 1)
	if err := l.store.Put(name, buf); err != nil {
		return fmt.Errorf("feedback: sealing object %s: %w", name, err)
	}
	l.sealed++
	return nil
}

// Len reports stored observations (sealed plus unsealed tail).
func (l *ObjectLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Segments reports the number of sealed segment objects.
func (l *ObjectLog) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealed
}

// Stats reports cumulative ingest statistics.
func (l *ObjectLog) Stats() IngestStats { return l.st.snapshot(0) }

// Recent returns up to n of the most recent observations, oldest
// first.
func (l *ObjectLog) Recent(n int) []Observation {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ring.recent(n)
}

// All re-reads the sealed objects plus the unsealed tail, oldest
// first.
func (l *ObjectLog) All() ([]Observation, error) {
	l.mu.Lock()
	sealed := l.sealed
	tail := append([]Observation(nil), l.tail...)
	l.mu.Unlock()
	var out []Observation
	for i := 1; i <= sealed; i++ {
		data, err := l.store.Get(segName(i))
		if err != nil {
			return nil, fmt.Errorf("feedback: reading object %s: %w", segName(i), err)
		}
		obs, _, _, perr := parseSegment(data, false)
		if perr != nil {
			return nil, fmt.Errorf("feedback: object %s: %w", segName(i), perr)
		}
		out = append(out, obs...)
	}
	return append(out, tail...), nil
}

// Close seals nothing (the tail is not durable by design) and marks
// the store closed.
func (l *ObjectLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}
