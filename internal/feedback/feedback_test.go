package feedback

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func obs(i int) Observation {
	return Observation{
		Model:            "primary",
		Generation:       1,
		Target:           "canneal",
		CoApps:           []string{"cg", "cg"},
		PState:           i % 3,
		PredictedSeconds: 10 + float64(i),
		MeasuredSeconds:  11 + float64(i),
	}
}

func TestPercentError(t *testing.T) {
	o := Observation{PredictedSeconds: 110, MeasuredSeconds: 100}
	if got := o.PercentError(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("percent error = %v, want 10", got)
	}
}

func TestValidate(t *testing.T) {
	for name, bad := range map[string]Observation{
		"no target":     {MeasuredSeconds: 1, PredictedSeconds: 1},
		"zero measured": {Target: "cg", PredictedSeconds: 1},
		"neg predicted": {Target: "cg", MeasuredSeconds: 1, PredictedSeconds: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if err := obs(0).Validate(); err != nil {
		t.Fatalf("valid observation rejected: %v", err)
	}
}

func TestMemoryOnlyLog(t *testing.T) {
	l, err := Open(Config{RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 10 {
		t.Fatalf("len = %d, want 10", l.Len())
	}
	if l.Segments() != 0 {
		t.Fatalf("memory-only log reports %d segments", l.Segments())
	}
	all, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 || all[3].PredictedSeconds != obs(3).PredictedSeconds {
		t.Fatalf("All() wrong: %d records", len(all))
	}
	// Ring keeps only the newest four, oldest first.
	recent := l.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("recent = %d records, want 4", len(recent))
	}
	if recent[0].PredictedSeconds != obs(6).PredictedSeconds || recent[3].PredictedSeconds != obs(9).PredictedSeconds {
		t.Fatalf("ring order wrong: %+v", recent)
	}
}

func TestDiskRoundTripAndRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxSegmentRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 10 records at 3 per segment: segments 1..4.
	if got := l.Segments(); got != 4 {
		t.Fatalf("segments = %d, want 4", got)
	}
	all, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("All() = %d records, want %d", len(all), n)
	}
	for i, o := range all {
		if o.PredictedSeconds != obs(i).PredictedSeconds || o.Target != "canneal" || len(o.CoApps) != 2 {
			t.Fatalf("record %d corrupted: %+v", i, o)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: counts and contents survive; appends continue in order.
	l2, err := Open(Config{Dir: dir, MaxSegmentRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Len() != n {
		t.Fatalf("reopened len = %d, want %d", l2.Len(), n)
	}
	if err := l2.Append(obs(n)); err != nil {
		t.Fatal(err)
	}
	all, err = l2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n+1 || all[n].PredictedSeconds != obs(n).PredictedSeconds {
		t.Fatalf("append after reopen wrong: %d records", len(all))
	}
}

// TestCrashRecoveryTornTail simulates a crash mid-append: the final
// record of the final segment is half-written. Recovery must drop only
// that record and keep every prior segment intact.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxSegmentRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: write a partial record (no newline) to the last
	// segment, as if the process died mid-write.
	last := filepath.Join(dir, segName(3))
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"model":"pri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(Config{Dir: dir, MaxSegmentRecords: 4})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if l2.Len() != 10 {
		t.Fatalf("recovered len = %d, want 10 (torn tail dropped)", l2.Len())
	}
	all, err := l2.All()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range all {
		if o.PredictedSeconds != obs(i).PredictedSeconds {
			t.Fatalf("record %d lost or corrupted after recovery", i)
		}
	}
	// The log keeps working after recovery.
	if err := l2.Append(obs(10)); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 11 {
		t.Fatalf("post-recovery append: len = %d", l2.Len())
	}
	l2.Close()
}

// TestCrashRecoveryCorruptTailChecksum covers the other torn-write
// shape: a complete final line whose payload was garbled (checksum
// mismatch). It is truncated; the same damage mid-file is an error.
func TestCrashRecoveryCorruptTailChecksum(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxSegmentRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(obs(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, `00000000 {"model":"x","target":"cg","predicted_seconds":1,"measured_seconds":1}`)
	f.Close()

	l2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if l2.Len() != 5 {
		t.Fatalf("recovered len = %d, want 5", l2.Len())
	}
	l2.Close()

	// Corruption in the *middle* of a segment is not a torn tail: it
	// must surface as an error, never be silently skipped.
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	lines[1] = "00000000 " + lines[1][9:]
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("mid-segment corruption not reported")
	}
}

// TestAppendAllAtomicValidation verifies a batch with one bad record
// writes nothing.
func TestAppendAllAtomicValidation(t *testing.T) {
	l, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Observation{obs(0), {Target: "cg"}, obs(1)}
	if err := l.AppendAll(batch); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if l.Len() != 0 {
		t.Fatalf("partial batch written: len = %d", l.Len())
	}
}

func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, MaxSegmentRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 25; i++ {
				if err := l.Append(obs(g*25 + i)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 200 {
		t.Fatalf("len = %d, want 200", l.Len())
	}
	all, err := l.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 200 {
		t.Fatalf("All() = %d, want 200", len(all))
	}
}
