package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/features"
	"colocmodel/internal/stats"
)

// FeatureCorrelations computes the Pearson correlation matrix of the
// eight Table I features across the 6-core training dataset. It explains
// the diminishing returns the paper observes beyond feature set C/E: the
// three co-application features are nearly collinear for homogeneous
// co-runners (all are k times a per-application constant), as are the
// three target-side features, so later sets add little *linear*
// information — the nonlinear interactions are what the neural network
// exploits.
func (s *Suite) FeatureCorrelations() ([][]float64, []features.Feature, error) {
	ds, err := s.Dataset(6)
	if err != nil {
		return nil, nil, err
	}
	x, err := features.FullMatrix(ds, ds.Records)
	if err != nil {
		return nil, nil, err
	}
	cols := make([][]float64, x.Cols)
	for j := 0; j < x.Cols; j++ {
		cols[j] = x.Col(j)
	}
	m, err := stats.CorrelationMatrix(cols)
	if err != nil {
		return nil, nil, err
	}
	return m, features.AllFeatures(), nil
}

// RenderFeatureCorrelations formats the correlation matrix.
func RenderFeatureCorrelations(m [][]float64, fs []features.Feature) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table I feature correlations over the 6-core training data")
	w := tabwriter.NewWriter(&b, 2, 4, 1, ' ', 0)
	fmt.Fprint(w, "feature")
	for _, f := range fs {
		fmt.Fprintf(w, "\t%s", shortName(f))
	}
	fmt.Fprintln(w)
	for i, f := range fs {
		fmt.Fprint(w, f.String())
		for j := range fs {
			fmt.Fprintf(w, "\t%+.2f", m[i][j])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// shortName abbreviates feature names for matrix column headers.
func shortName(f features.Feature) string {
	switch f {
	case features.BaseExTime:
		return "base"
	case features.NumCoApp:
		return "num"
	case features.CoAppMem:
		return "coMem"
	case features.TargetMem:
		return "tMem"
	case features.CoAppCMCA:
		return "coCM"
	case features.CoAppCAINS:
		return "coCA"
	case features.TargetCMCA:
		return "tCM"
	case features.TargetCAINS:
		return "tCA"
	default:
		return f.String()
	}
}
