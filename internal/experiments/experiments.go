// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) from the simulated substrate. It is the engine
// behind cmd/coloexp and the repository's benchmark harness; EXPERIMENTS.md
// records its output next to the paper's numbers.
//
// Experiment index:
//
//	Table I    — the eight model features (static)
//	Table II   — the six feature sets A–F (static)
//	Table III  — the eleven applications with baseline memory intensity
//	Table IV   — the two Xeon machines
//	Table V    — the training-data campaign
//	Table VI   — canneal vs. increasing cg co-location on the 12-core
//	             machine, with linear-F and NN-F prediction error
//	Figures 1,2 — MPE of all twelve models (6-core, 12-core)
//	Figures 3,4 — NRMSE of all twelve models (6-core, 12-core)
//	Figure 5a  — per-application execution-time distributions (6-core)
//	Figure 5b  — per-application NN-F percent-error distributions
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/pca"
	"colocmodel/internal/simproc"
	"colocmodel/internal/stats"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// Config tunes the experiment suite.
type Config struct {
	// Partitions is the repeated random sub-sampling count (paper: 100).
	Partitions int
	// Seed drives data-collection noise, partitioning, and model
	// initialisation.
	Seed uint64
	// NoiseSigma is the measurement-noise sigma for data collection.
	NoiseSigma float64
	// Workers bounds parallel partition training; 0 = GOMAXPROCS.
	Workers int
}

// Default returns the paper's evaluation configuration.
func Default() Config {
	return Config{Partitions: 100, Seed: 42, NoiseSigma: 0.01}
}

// Suite holds the collected datasets and memoised evaluation results.
type Suite struct {
	cfg  Config
	ds6  *harness.Dataset
	ds12 *harness.Dataset

	eval6  []*core.EvalResult
	eval12 []*core.EvalResult
}

// NewSuite collects the Table V datasets for both machines.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Partitions <= 0 {
		return nil, fmt.Errorf("experiments: partitions must be positive")
	}
	s := &Suite{cfg: cfg}
	for _, spec := range simproc.Machines() {
		plan := harness.DefaultPlan(spec, cfg.Seed)
		plan.NoiseSigma = cfg.NoiseSigma
		ds, err := harness.Collect(plan)
		if err != nil {
			return nil, err
		}
		if spec.Cores == 6 {
			s.ds6 = ds
		} else {
			s.ds12 = ds
		}
	}
	return s, nil
}

// Dataset returns the collected dataset for the 6- or 12-core machine.
func (s *Suite) Dataset(cores int) (*harness.Dataset, error) {
	switch cores {
	case 6:
		return s.ds6, nil
	case 12:
		return s.ds12, nil
	default:
		return nil, fmt.Errorf("experiments: no machine with %d cores", cores)
	}
}

// evaluations runs (and memoises) the twelve-model evaluation for one
// machine.
func (s *Suite) evaluations(cores int) ([]*core.EvalResult, error) {
	ds, err := s.Dataset(cores)
	if err != nil {
		return nil, err
	}
	cached := &s.eval6
	if cores == 12 {
		cached = &s.eval12
	}
	if *cached != nil {
		return *cached, nil
	}
	res, err := core.EvaluateAll(ds, core.EvalConfig{
		Partitions: s.cfg.Partitions,
		Seed:       s.cfg.Seed,
		Workers:    s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	*cached = res
	return res, nil
}

// Table1 renders Table I: the eight model features.
func Table1() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Feature name\taspect of execution measured")
	for _, f := range features.AllFeatures() {
		fmt.Fprintf(w, "%s\t%s\n", f, f.Describe())
	}
	w.Flush()
	return b.String()
}

// Table2 renders Table II: the feature-set groups.
func Table2() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Set name\tfeature groups within set")
	for i, set := range features.Sets() {
		var desc string
		if i == 0 {
			desc = set.Features[0].String()
		} else {
			prev := features.Sets()[i-1]
			added := set.Features[len(prev.Features):]
			names := make([]string, len(added))
			for j, f := range added {
				names[j] = f.String()
			}
			desc = fmt.Sprintf("model %s + %s", prev.Name, strings.Join(names, ", "))
		}
		fmt.Fprintf(w, "%s\t%s\n", set.Name, desc)
	}
	w.Flush()
	return b.String()
}

// Table3Row is one application's Table III entry.
type Table3Row struct {
	App          string
	Suite        workload.Suite
	Class        workload.Class
	MemIntensity float64 // measured baseline memory intensity (6-core)
}

// Table3 measures baseline memory intensity for every application on the
// 6-core machine.
func (s *Suite) Table3() ([]Table3Row, error) {
	ds, err := s.Dataset(6)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, a := range workload.All() {
		b, err := ds.Baseline(a.Name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			App:          a.Name,
			Suite:        a.Suite,
			Class:        a.Class,
			MemIntensity: b.MemIntensity,
		})
	}
	return rows, nil
}

// RenderTable3 formats Table III.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "application\tsuite\tclass\tbaseline memory intensity")
	for _, r := range rows {
		suite := "(N)"
		if r.Suite == workload.PARSEC {
			suite = "(P)"
		}
		fmt.Fprintf(w, "%s %s\t%s\t%s\t%.3e\n", r.App, suite, r.Suite, r.Class, r.MemIntensity)
	}
	w.Flush()
	return b.String()
}

// Table4 renders Table IV: the machines.
func Table4() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Intel processor\tnum. cores\tL3 cache\tfrequency range")
	for _, m := range simproc.Machines() {
		fmt.Fprintf(w, "%s\t%d\t%.0fMB\t%.2f-%.2f GHz\n",
			m.Name, m.Cores, m.LLCBytes/(1024*1024), m.PStates.MinFreq(), m.PStates.MaxFreq())
	}
	w.Flush()
	return b.String()
}

// Table5 renders Table V: the training-data campaign.
func Table5() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "machine\ttargets\tco-apps\tnum. of co-locations\tP-state frequencies (GHz)")
	for _, m := range simproc.Machines() {
		plan := harness.DefaultPlan(m, 0)
		var freqs []string
		for _, st := range m.PStates.States() {
			freqs = append(freqs, fmt.Sprintf("%.2f", st.FreqGHz))
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%v\t%s\n",
			m.Name, len(plan.Targets), strings.Join(workload.Names(plan.CoApps), ","),
			plan.CoCounts, strings.Join(freqs, ","))
	}
	w.Flush()
	return b.String()
}

// Table6Row is one co-location count's Table VI entry.
type Table6Row struct {
	NumCG          int
	Seconds        float64 // measured canneal execution time
	Normalized     float64 // over the canneal baseline
	LinearFError   float64 // |percent error| of the linear-F prediction
	NeuralFError   float64 // |percent error| of the NN-F prediction
	LinearFPredict float64
	NeuralFPredict float64
}

// Table6Result is the full Table VI reproduction.
type Table6Result struct {
	BaselineSeconds float64
	Rows            []Table6Row
}

// Table6 reproduces Table VI: canneal co-located with increasing numbers
// of cg on the 12-core machine at P0, with linear-F and NN-F prediction
// accuracy. Models are trained on the machine's full Table V dataset.
func (s *Suite) Table6() (*Table6Result, error) {
	ds, err := s.Dataset(12)
	if err != nil {
		return nil, err
	}
	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	lin, err := core.Train(core.Spec{Technique: core.Linear, FeatureSet: setF, Seed: s.cfg.Seed}, ds, ds.Records)
	if err != nil {
		return nil, err
	}
	nn, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed}, ds, ds.Records)
	if err != nil {
		return nil, err
	}

	proc, err := simproc.New(simproc.XeonE52697v2())
	if err != nil {
		return nil, err
	}
	canneal, err := workload.ByName("canneal")
	if err != nil {
		return nil, err
	}
	cg, err := workload.ByName("cg")
	if err != nil {
		return nil, err
	}
	base, err := proc.RunBaseline(canneal, 0)
	if err != nil {
		return nil, err
	}
	// Small measurement noise, as in data collection.
	noise := xrand.New(s.cfg.Seed + 1)

	res := &Table6Result{BaselineSeconds: base.TargetSeconds}
	for k := 1; k <= proc.Spec().Cores-1; k++ {
		co := make([]workload.App, k)
		for i := range co {
			co[i] = cg
		}
		run, err := proc.RunColocation(canneal, co, 0, simproc.Options{})
		if err != nil {
			return nil, err
		}
		actual := run.TargetSeconds
		if s.cfg.NoiseSigma > 0 {
			actual *= noise.LogNormal(0, s.cfg.NoiseSigma)
		}
		sc := features.Scenario{Target: "canneal", CoApps: coNames("cg", k), PState: 0}
		lp, err := lin.Predict(sc)
		if err != nil {
			return nil, err
		}
		np, err := nn.Predict(sc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table6Row{
			NumCG:          k,
			Seconds:        actual,
			Normalized:     actual / base.TargetSeconds,
			LinearFPredict: lp,
			NeuralFPredict: np,
			LinearFError:   100 * abs(lp-actual) / actual,
			NeuralFError:   100 * abs(np-actual) / actual,
		})
	}
	return res, nil
}

func coNames(name string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = name
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderTable6 formats the Table VI reproduction.
func RenderTable6(t *Table6Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "canneal baseline execution time: %.1f s\n", t.BaselineSeconds)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "num. cg\texec time (s)\tnormalized exec time\tlinear-F MPE\tNN-F MPE")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.3f\t%.2f%%\t%.2f%%\n",
			r.NumCG, r.Seconds, r.Normalized, r.LinearFError, r.NeuralFError)
	}
	w.Flush()
	return b.String()
}

// FigurePoint is one model's data point in Figures 1–4.
type FigurePoint struct {
	Model      string // e.g. "linear-A"
	TrainError float64
	TestError  float64
}

// FigureResult is one of Figures 1–4.
type FigureResult struct {
	Figure  int
	Machine string
	Metric  string // "MPE" or "NRMSE"
	Points  []FigurePoint
}

// Figure produces Figures 1–4:
//
//	1: 6-core MPE     2: 12-core MPE
//	3: 6-core NRMSE   4: 12-core NRMSE
func (s *Suite) Figure(n int) (*FigureResult, error) {
	var cores int
	var metric string
	switch n {
	case 1:
		cores, metric = 6, "MPE"
	case 2:
		cores, metric = 12, "MPE"
	case 3:
		cores, metric = 6, "NRMSE"
	case 4:
		cores, metric = 12, "NRMSE"
	default:
		return nil, fmt.Errorf("experiments: figure %d not in 1-4", n)
	}
	evals, err := s.evaluations(cores)
	if err != nil {
		return nil, err
	}
	ds, err := s.Dataset(cores)
	if err != nil {
		return nil, err
	}
	res := &FigureResult{Figure: n, Machine: ds.Machine, Metric: metric}
	for _, e := range evals {
		p := FigurePoint{Model: e.Spec.String()}
		if metric == "MPE" {
			p.TrainError, p.TestError = e.TrainMPE, e.TestMPE
		} else {
			p.TrainError, p.TestError = e.TrainNRMSE, e.TestNRMSE
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// RenderFigure formats a Figures 1–4 result.
func RenderFigure(f *FigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s prediction accuracy on %s (%s, %% error)\n",
		f.Figure, f.Metric, f.Machine, f.Metric)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\ttraining error\ttesting error")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\n", p.Model, p.TrainError, p.TestError)
	}
	w.Flush()
	return b.String()
}

// Figure5aRow is one application's execution-time distribution (6-core).
type Figure5aRow struct {
	App     string
	Summary stats.FiveNum
}

// Figure5a summarises each application's measured execution-time
// distribution on the 6-core machine.
func (s *Suite) Figure5a() ([]Figure5aRow, error) {
	ds, err := s.Dataset(6)
	if err != nil {
		return nil, err
	}
	byApp := map[string][]float64{}
	for _, r := range ds.Records {
		byApp[r.Target] = append(byApp[r.Target], r.Seconds)
	}
	names := make([]string, 0, len(byApp))
	for n := range byApp {
		names = append(names, n)
	}
	sort.Strings(names)
	var rows []Figure5aRow
	for _, n := range names {
		rows = append(rows, Figure5aRow{App: n, Summary: stats.Summarize(byApp[n])})
	}
	return rows, nil
}

// RenderFigure5a formats Figure 5(a).
func RenderFigure5a(rows []Figure5aRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5(a): execution-time distributions per application (6-core, seconds)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "application\tmin\tq1\tmedian\tq3\tmax\tn")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%d\n",
			r.App, r.Summary.Min, r.Summary.Q1, r.Summary.Median, r.Summary.Q3, r.Summary.Max, r.Summary.N)
	}
	w.Flush()
	return b.String()
}

// Figure5bRow is one application's NN-F percent-error distribution.
type Figure5bRow struct {
	App     string
	Summary stats.FiveNum
	Within2 float64 // fraction of |error| ≤ 2 %
	Within5 float64 // fraction of |error| ≤ 5 %
}

// Figure5bResult is the Figure 5(b) reproduction.
type Figure5bResult struct {
	Rows []Figure5bRow
	// Overall fractions across all applications.
	Within2, Within5 float64
}

// Figure5b trains the NN-F model on repeated partitions of the 6-core
// dataset and summarises the signed percent error of the withheld
// predictions, grouped by target application.
func (s *Suite) Figure5b() (*Figure5bResult, error) {
	ds, err := s.Dataset(6)
	if err != nil {
		return nil, err
	}
	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	spec := core.Spec{Technique: core.NeuralNet, FeatureSet: setF}
	// A modest number of partitions yields thousands of test-point
	// errors, plenty for stable quartiles.
	parts := s.cfg.Partitions / 5
	if parts < 3 {
		parts = 3
	}
	partitioner, err := stats.NewPartitioner(len(ds.Records), 0.30, xrand.New(s.cfg.Seed+2))
	if err != nil {
		return nil, err
	}
	byApp := map[string][]float64{}
	var all []float64
	for pi := 0; pi < parts; pi++ {
		p := partitioner.Next()
		train := make([]harness.Record, len(p.Train))
		for i, j := range p.Train {
			train[i] = ds.Records[j]
		}
		spec.Seed = s.cfg.Seed + uint64(pi)
		m, err := core.Train(spec, ds, train)
		if err != nil {
			return nil, err
		}
		for _, j := range p.Test {
			r := ds.Records[j]
			pred, err := m.Predict(features.ScenarioFromRecord(r))
			if err != nil {
				return nil, err
			}
			pe := 100 * (pred - r.Seconds) / r.Seconds
			byApp[r.Target] = append(byApp[r.Target], pe)
			all = append(all, pe)
		}
	}
	names := make([]string, 0, len(byApp))
	for n := range byApp {
		names = append(names, n)
	}
	sort.Strings(names)
	res := &Figure5bResult{
		Within2: stats.FractionWithin(all, 2),
		Within5: stats.FractionWithin(all, 5),
	}
	for _, n := range names {
		res.Rows = append(res.Rows, Figure5bRow{
			App:     n,
			Summary: stats.Summarize(byApp[n]),
			Within2: stats.FractionWithin(byApp[n], 2),
			Within5: stats.FractionWithin(byApp[n], 5),
		})
	}
	return res, nil
}

// RenderFigure5b formats Figure 5(b).
func RenderFigure5b(f *Figure5bResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5(b): NN model-F percent-error distributions per application (6-core)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "application\tq1\tmedian\tq3\t|err|<=2%\t|err|<=5%\tn")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%s\t%+.2f%%\t%+.2f%%\t%+.2f%%\t%.0f%%\t%.0f%%\t%d\n",
			r.App, r.Summary.Q1, r.Summary.Median, r.Summary.Q3,
			100*r.Within2, 100*r.Within5, r.Summary.N)
	}
	w.Flush()
	fmt.Fprintf(&b, "overall: %.0f%% of predictions within ±2%%, %.0f%% within ±5%%\n",
		100*f.Within2, 100*f.Within5)
	return b.String()
}

// PCARankRow is one feature's PCA importance (Section III-B).
type PCARankRow struct {
	Feature features.Feature
	Score   float64
}

// PCARanking runs the Section III-B feature-ranking PCA over the eight
// Table I features of the 6-core dataset.
func (s *Suite) PCARanking() ([]PCARankRow, error) {
	ds, err := s.Dataset(6)
	if err != nil {
		return nil, err
	}
	x, err := features.FullMatrix(ds, ds.Records)
	if err != nil {
		return nil, err
	}
	fit, err := pca.Fit(x)
	if err != nil {
		return nil, err
	}
	scores := fit.FeatureScore()
	rank := fit.Rank()
	rows := make([]PCARankRow, len(rank))
	for i, fi := range rank {
		rows[i] = PCARankRow{Feature: features.Feature(fi), Score: scores[fi]}
	}
	return rows, nil
}

// RenderPCARanking formats the PCA feature ranking.
func RenderPCARanking(rows []PCARankRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "PCA feature ranking (Section III-B)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rank\tfeature\tvariance share")
	for i, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%.3f\n", i+1, r.Feature, r.Score)
	}
	w.Flush()
	return b.String()
}
