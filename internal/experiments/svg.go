package experiments

import (
	"fmt"
	"strings"

	"colocmodel/internal/features"
	"colocmodel/internal/svgplot"
)

// FigureSVG renders a Figures 1–4 result as an SVG line chart with the
// paper's layout: feature sets A–F on the x axis, four series (train and
// test error for each technique, training dashed).
func FigureSVG(f *FigureResult) (string, error) {
	cats := make([]string, 0, len(features.Sets()))
	for _, s := range features.Sets() {
		cats = append(cats, s.Name)
	}
	pick := func(prefix string, train bool) []float64 {
		vals := make([]float64, len(cats))
		for i, c := range cats {
			name := prefix + "-" + c
			for _, p := range f.Points {
				if p.Model == name {
					if train {
						vals[i] = p.TrainError
					} else {
						vals[i] = p.TestError
					}
				}
			}
		}
		return vals
	}
	chart := &svgplot.LineChart{
		Title:      fmt.Sprintf("Figure %d: %s on %s", f.Figure, f.Metric, f.Machine),
		XLabel:     "model feature set",
		YLabel:     f.Metric + " (%)",
		Categories: cats,
		Series: []svgplot.Series{
			{Name: "linear train", Values: pick("linear", true), Dashed: true},
			{Name: "linear test", Values: pick("linear", false)},
			{Name: "neural train", Values: pick("neural-net", true), Dashed: true},
			{Name: "neural test", Values: pick("neural-net", false)},
		},
	}
	return chart.Render()
}

// Figure5aSVG renders the execution-time distributions as a box plot.
func Figure5aSVG(rows []Figure5aRow) (string, error) {
	p := &svgplot.BoxPlot{
		Title:  "Figure 5(a): execution-time distributions (6-core)",
		YLabel: "execution time (s)",
	}
	for _, r := range rows {
		p.Boxes = append(p.Boxes, svgplot.Box{
			Label: r.App,
			Min:   r.Summary.Min, Q1: r.Summary.Q1, Median: r.Summary.Median,
			Q3: r.Summary.Q3, Max: r.Summary.Max,
		})
	}
	return p.Render()
}

// Figure5bSVG renders the NN-F percent-error distributions as a box plot
// with a zero reference line.
func Figure5bSVG(f *Figure5bResult) (string, error) {
	p := &svgplot.BoxPlot{
		Title:    "Figure 5(b): NN model-F percent-error distributions (6-core)",
		YLabel:   "percent error",
		ZeroLine: true,
	}
	for _, r := range f.Rows {
		p.Boxes = append(p.Boxes, svgplot.Box{
			Label: r.App,
			Min:   r.Summary.Min, Q1: r.Summary.Q1, Median: r.Summary.Median,
			Q3: r.Summary.Q3, Max: r.Summary.Max,
		})
	}
	return p.Render()
}

// Table6SVG renders the Table VI sweep as a line chart of normalised
// execution time vs. co-location count.
func Table6SVG(t *Table6Result) (string, error) {
	cats := make([]string, len(t.Rows))
	norm := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		cats[i] = fmt.Sprint(r.NumCG)
		norm[i] = r.Normalized
	}
	chart := &svgplot.LineChart{
		Title:      "Table VI: canneal normalised execution time vs. cg co-location (12-core)",
		XLabel:     "number of co-located cg",
		YLabel:     "normalised execution time",
		Categories: cats,
		Series:     []svgplot.Series{{Name: "measured", Values: norm}},
	}
	return chart.Render()
}

// SVGName maps an experiment id ("1".."4", "5a", "5b", "table6") to a
// file name.
func SVGName(id string) string {
	id = strings.ToLower(id)
	if id == "table6" {
		return "table6.svg"
	}
	return "figure" + id + ".svg"
}
