package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/stats"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// The microbenchmark-transfer experiment contrasts with [ChD14], which
// built its characterisation from constructed microbenchmarks. The
// methodology here trains on *scientific workloads* (the paper argues
// that is more representative); this experiment asks the converse
// question: does a model trained on the Table V scientific campaign
// predict the behaviour of microbenchmark-style kernels it never saw —
// extreme points of the memory/compute space (serialised pointer chasing,
// pure streaming, dense compute, a small stencil)?
//
// Only the microbenchmarks' serial baselines are measured (the same cost
// any new application pays); all co-location predictions come from the
// scientific model.
//
// The result maps the methodology's validity boundary: kernels whose
// behaviour resembles the scientific training workloads (dgemm,
// ministencil) transfer with single-digit error, while the deliberately
// extreme kernels (pchase's fully serialised misses, stream's bandwidth
// demand beyond any training application) fall outside the learned
// envelope and mispredict badly — quantifying exactly how far "make
// predictions about applications it has not seen previously" (Section
// IV-B3) stretches.

// MicroTransferRow is one microbenchmark's transfer accuracy.
type MicroTransferRow struct {
	// Kernel is the microbenchmark name.
	Kernel string
	// Scenarios is the number of co-location scenarios evaluated.
	Scenarios int
	// MPE is the NN-F mean absolute percent error vs. fresh simulation.
	MPE float64
	// MeanSlowdown is the mean measured slowdown across the scenarios
	// (context for the error magnitude).
	MeanSlowdown float64
}

// MicrobenchmarkTransfer trains NN-F on the 12-core Table V dataset,
// measures the four microbenchmarks' baselines, and evaluates predictions
// for each microbenchmark as a target under the four training co-runners
// at several counts.
func (s *Suite) MicrobenchmarkTransfer() ([]MicroTransferRow, error) {
	ds, err := s.Dataset(12)
	if err != nil {
		return nil, err
	}
	spec := simproc.XeonE52697v2()
	proc, err := simproc.New(spec)
	if err != nil {
		return nil, err
	}
	// Baselines for the microbenchmarks, appended to a copy of the
	// dataset's baseline store so the original suite data stays pristine.
	noise := xrand.New(s.cfg.Seed + 4)
	micro := workload.Microbenchmarks()
	microBase, err := harness.CollectBaselines(proc, micro, s.cfg.NoiseSigma, noise)
	if err != nil {
		return nil, err
	}
	aug := &harness.Dataset{
		Machine:     ds.Machine,
		PStateFreqs: ds.PStateFreqs,
		LLCBytes:    ds.LLCBytes,
		Baselines:   map[string]harness.Baseline{},
		Records:     ds.Records,
	}
	for k, v := range ds.Baselines {
		aug.Baselines[k] = v
	}
	for k, v := range microBase {
		aug.Baselines[k] = v
	}

	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	model, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed}, aug, aug.Records)
	if err != nil {
		return nil, err
	}

	var out []MicroTransferRow
	for _, kernel := range micro {
		var pes, slows []float64
		for _, co := range workload.TrainingCoApps() {
			for _, k := range []int{2, 5, 9} {
				coApps := make([]workload.App, k)
				coNames := make([]string, k)
				for i := range coApps {
					coApps[i] = co
					coNames[i] = co.Name
				}
				run, err := proc.RunColocation(kernel, coApps, 0, simproc.Options{})
				if err != nil {
					return nil, err
				}
				actual := run.TargetSeconds
				if s.cfg.NoiseSigma > 0 {
					actual *= noise.LogNormal(0, s.cfg.NoiseSigma)
				}
				pred, err := model.Predict(features.Scenario{Target: kernel.Name, CoApps: coNames, PState: 0})
				if err != nil {
					return nil, err
				}
				pes = append(pes, 100*abs(pred-actual)/actual)
				slows = append(slows, actual/microBase[kernel.Name].SecondsByPState[0])
			}
		}
		out = append(out, MicroTransferRow{
			Kernel:       kernel.Name,
			Scenarios:    len(pes),
			MPE:          stats.Mean(pes),
			MeanSlowdown: stats.Mean(slows),
		})
	}
	return out, nil
}

// RenderMicrobenchmarkTransfer formats the experiment.
func RenderMicrobenchmarkTransfer(rows []MicroTransferRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Microbenchmark transfer: scientific-workload model on constructed kernels (12-core, NN-F)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "kernel\tscenarios\tmean slowdown\tMPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.2f%%\n", r.Kernel, r.Scenarios, r.MeanSlowdown, r.MPE)
	}
	w.Flush()
	return b.String()
}
