package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/stats"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// The mixed-training experiment probes a design decision the paper makes
// and defends against [DwF12]: training data is collected from a uniform
// sweep of *homogeneous* co-locations, rather than randomly sampled mixed
// ones. How much accuracy on heterogeneous schedules does that design
// give up, and does augmenting with a modest number of random mixed
// measurements recover it?
//
// Three NN-F variants are evaluated on a held-out set of random
// heterogeneous scenarios (12-core):
//
//	homogeneous:  the paper's Table V campaign only
//	augmented:    Table V plus nAug random mixed measurements
//	mixed-only:   the same number of random mixed measurements as the
//	              Table V campaign contains, none homogeneous ([DwF12]'s
//	              strategy)

// MixedTrainingRow is one training-set variant's accuracy on mixed
// scenarios.
type MixedTrainingRow struct {
	Variant   string
	TrainSize int
	TestMPE   float64
}

// MixedTraining runs the experiment. nAug controls the augmentation
// budget (0 selects 150).
func (s *Suite) MixedTraining(nAug int) ([]MixedTrainingRow, error) {
	if nAug <= 0 {
		nAug = 150
	}
	ds, err := s.Dataset(12)
	if err != nil {
		return nil, err
	}
	spec := simproc.XeonE52697v2()
	proc, err := simproc.New(spec)
	if err != nil {
		return nil, err
	}
	src := xrand.New(s.cfg.Seed + 5)
	targets := workload.All()
	pool := workload.All() // mixed co-runners drawn from all eleven apps
	pstates := []int{0, 1, 2, 3, 4, 5}

	// Training scenarios.
	homScs, homSecs, err := recordsAsScenarios(ds)
	if err != nil {
		return nil, err
	}
	augScenarios, err := harness.RandomMixedScenarios(targets, pool, spec.Cores-1, nAug, pstates, src)
	if err != nil {
		return nil, err
	}
	augMeasured, err := harness.CollectScenarios(proc, augScenarios, s.cfg.NoiseSigma, src)
	if err != nil {
		return nil, err
	}
	mixedOnlyScenarios, err := harness.RandomMixedScenarios(targets, pool, spec.Cores-1, len(homScs), pstates, src)
	if err != nil {
		return nil, err
	}
	mixedOnlyMeasured, err := harness.CollectScenarios(proc, mixedOnlyScenarios, s.cfg.NoiseSigma, src)
	if err != nil {
		return nil, err
	}

	// Held-out heterogeneous test set.
	testScenarios, err := harness.RandomMixedScenarios(targets, pool, spec.Cores-1, 120, pstates, src)
	if err != nil {
		return nil, err
	}
	testMeasured, err := harness.CollectScenarios(proc, testScenarios, s.cfg.NoiseSigma, src)
	if err != nil {
		return nil, err
	}

	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		scs  []features.Scenario
		secs []float64
	}{
		{"homogeneous (Table V)", homScs, homSecs},
		{fmt.Sprintf("augmented (+%d mixed)", nAug),
			append(append([]features.Scenario{}, homScs...), toScenarios(augMeasured)...),
			append(append([]float64{}, homSecs...), toSeconds(augMeasured)...)},
		{"mixed-only ([DwF12]-style)", toScenarios(mixedOnlyMeasured), toSeconds(mixedOnlyMeasured)},
	}
	var out []MixedTrainingRow
	for _, v := range variants {
		m, err := core.TrainScenarios(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed},
			ds, v.scs, v.secs)
		if err != nil {
			return nil, err
		}
		var pes []float64
		for _, t := range testMeasured {
			pred, err := m.Predict(features.Scenario{Target: t.Target, CoApps: t.CoApps, PState: t.PState})
			if err != nil {
				return nil, err
			}
			pes = append(pes, 100*abs(pred-t.Seconds)/t.Seconds)
		}
		out = append(out, MixedTrainingRow{Variant: v.name, TrainSize: len(v.scs), TestMPE: stats.Mean(pes)})
	}
	return out, nil
}

// recordsAsScenarios converts the dataset's homogeneous records to
// scenario/label pairs.
func recordsAsScenarios(ds *harness.Dataset) ([]features.Scenario, []float64, error) {
	scs := make([]features.Scenario, len(ds.Records))
	secs := make([]float64, len(ds.Records))
	for i, r := range ds.Records {
		scs[i] = features.ScenarioFromRecord(r)
		secs[i] = r.Seconds
	}
	return scs, secs, nil
}

func toScenarios(ms []harness.MixedRecord) []features.Scenario {
	out := make([]features.Scenario, len(ms))
	for i, m := range ms {
		out[i] = features.Scenario{Target: m.Target, CoApps: m.CoApps, PState: m.PState}
	}
	return out
}

func toSeconds(ms []harness.MixedRecord) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Seconds
	}
	return out
}

// RenderMixedTraining formats the experiment.
func RenderMixedTraining(rows []MixedTrainingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Mixed-training ablation: accuracy on heterogeneous schedules (12-core, NN-F)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "training data\ttraining size\ttest MPE (mixed scenarios)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.2f%%\n", r.Variant, r.TrainSize, r.TestMPE)
	}
	w.Flush()
	return b.String()
}
