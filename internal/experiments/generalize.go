package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/simproc"
	"colocmodel/internal/stats"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// The generalisation experiment tests the claim of Section IV-B3: the
// training data is "designed to be able to both predict between the
// training data's gaps in the sample space, and extend beyond the set of
// four co-location applications available to the training data and be
// able to make predictions about applications that it has not seen
// previously."
//
// Three scenario families, none of which appear in the Table V training
// data:
//
//   - gap:    homogeneous co-runners drawn from the four training co-apps
//     but at co-location counts the 12-core campaign skips (4, 6, 8, 10);
//   - unseen: homogeneous co-runners that are never co-apps in training
//     (canneal, streamcluster, lu, blackscholes);
//   - mixed:  heterogeneous co-runner sets mixing classes, which the
//     harness never generates.

// GeneralizationCase is one out-of-sample scenario family's accuracy.
type GeneralizationCase struct {
	// Family is "gap", "unseen" or "mixed".
	Family string
	// Scenarios is the number of evaluated scenarios.
	Scenarios int
	// MPE is the mean absolute percent error of NN-F predictions against
	// fresh simulator ground truth.
	MPE float64
	// WorstErr is the largest absolute percent error observed.
	WorstErr float64
}

// Generalization trains NN-F on the 12-core machine's full Table V
// dataset and measures it on the three out-of-sample families.
func (s *Suite) Generalization() ([]GeneralizationCase, error) {
	ds, err := s.Dataset(12)
	if err != nil {
		return nil, err
	}
	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	model, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed}, ds, ds.Records)
	if err != nil {
		return nil, err
	}
	proc, err := simproc.New(simproc.XeonE52697v2())
	if err != nil {
		return nil, err
	}

	// Measuring unseen co-runners needs their baselines, which the
	// Table V campaign already collected only for targets; every app is
	// a target, so all baselines exist in ds.

	type scenario struct {
		target     string
		coAppsList []string
	}
	families := map[string][]scenario{}

	// Gap counts: training uses {1,2,3,5,7,9,11}; test 4, 6, 8, 10.
	for _, target := range []string{"canneal", "fluidanimate", "cg"} {
		for _, co := range []string{"cg", "sp"} {
			for _, k := range []int{4, 6, 8, 10} {
				families["gap"] = append(families["gap"], scenario{target, repeatName(co, k)})
			}
		}
	}
	// Unseen co-runners at trained counts.
	for _, target := range []string{"canneal", "ft", "ep"} {
		for _, co := range []string{"streamcluster", "canneal", "lu", "blackscholes"} {
			if co == target {
				continue
			}
			for _, k := range []int{2, 5, 9} {
				families["unseen"] = append(families["unseen"], scenario{target, repeatName(co, k)})
			}
		}
	}
	// Heterogeneous mixes.
	mixes := [][]string{
		{"cg", "ep"},
		{"cg", "sp", "ep"},
		{"cg", "cg", "sp", "fluidanimate", "ep"},
		{"streamcluster", "sp", "blackscholes"},
		{"cg", "canneal", "lu", "ep", "ep", "sp", "mg"},
	}
	for _, target := range []string{"canneal", "sp", "bodytrack"} {
		for _, mix := range mixes {
			families["mixed"] = append(families["mixed"], scenario{target, mix})
		}
	}

	noise := xrand.New(s.cfg.Seed + 3)
	var out []GeneralizationCase
	for _, fam := range []string{"gap", "unseen", "mixed"} {
		var pes []float64
		worst := 0.0
		for _, sc := range families[fam] {
			target, err := workload.ByName(sc.target)
			if err != nil {
				return nil, err
			}
			co := make([]workload.App, len(sc.coAppsList))
			for i, n := range sc.coAppsList {
				app, err := workload.ByName(n)
				if err != nil {
					return nil, err
				}
				co[i] = app
			}
			run, err := proc.RunColocation(target, co, 0, simproc.Options{})
			if err != nil {
				return nil, err
			}
			actual := run.TargetSeconds
			if s.cfg.NoiseSigma > 0 {
				actual *= noise.LogNormal(0, s.cfg.NoiseSigma)
			}
			pred, err := model.Predict(features.Scenario{Target: sc.target, CoApps: sc.coAppsList, PState: 0})
			if err != nil {
				return nil, err
			}
			pe := 100 * abs(pred-actual) / actual
			pes = append(pes, pe)
			if pe > worst {
				worst = pe
			}
		}
		out = append(out, GeneralizationCase{
			Family:    fam,
			Scenarios: len(pes),
			MPE:       stats.Mean(pes),
			WorstErr:  worst,
		})
	}
	return out, nil
}

func repeatName(name string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = name
	}
	return out
}

// RenderGeneralization formats the generalisation experiment.
func RenderGeneralization(cases []GeneralizationCase) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Generalization (Section IV-B3 claim): NN-F on out-of-sample scenarios (12-core)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "family\tscenarios\tMPE\tworst error")
	for _, c := range cases {
		fmt.Fprintf(w, "%s\t%d\t%.2f%%\t%.2f%%\n", c.Family, c.Scenarios, c.MPE, c.WorstErr)
	}
	w.Flush()
	return b.String()
}
