package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
)

// InteractionRow is one model's accuracy in the interaction ablation.
type InteractionRow struct {
	Model   string
	TestMPE float64
}

// InteractionAblation probes *why* the neural-network models beat the
// linear ones: co-location slowdown is approximately multiplicative in the
// baseline execution time, a form a plain linear model cannot express. It
// evaluates, on the 6-core dataset:
//
//   - linear-F            (the paper's linear model)
//   - linear-F+x          (linear with hand-crafted product terms)
//   - neural-net-F        (the paper's best model)
//
// If the crafted interactions recover most of the gap, the NN's advantage
// is primarily the multiplicative structure; the residual gap is its
// ability to learn the saturating nonlinearities (cache occupancy, DRAM
// queueing) no fixed product basis captures.
func (s *Suite) InteractionAblation() ([]InteractionRow, error) {
	ds, err := s.Dataset(6)
	if err != nil {
		return nil, err
	}
	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	cfg := core.EvalConfig{Partitions: s.cfg.Partitions, Seed: s.cfg.Seed, Workers: s.cfg.Workers}
	specs := []core.Spec{
		{Technique: core.Linear, FeatureSet: setF},
		{Technique: core.Linear, FeatureSet: features.WithInteractions(setF)},
		{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed},
	}
	var out []InteractionRow
	for _, spec := range specs {
		res, err := core.Evaluate(spec, ds, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, InteractionRow{Model: spec.String(), TestMPE: res.TestMPE})
	}
	return out, nil
}

// RenderInteractionAblation formats the ablation.
func RenderInteractionAblation(rows []InteractionRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Interaction ablation: why the neural network wins (6-core, test MPE)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\ttest MPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.2f%%\n", r.Model, r.TestMPE)
	}
	w.Flush()
	return b.String()
}
