package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/stats"
	"colocmodel/internal/workload"
	"colocmodel/internal/xrand"
)

// The problem-size experiment probes another axis of the portability
// claim: NAS benchmarks come in problem classes (A, B, C …) whose working
// sets and instruction counts grow together. A model trained on one
// problem size sees a *scaled* version of an application as a brand-new
// application — different baseline time, different memory intensity —
// known only through its serial baseline. Does prediction accuracy
// survive the shift?
//
// The answer is range-dependent: 2x targets keep their baseline execution
// times within the span the model trained on and transfer well; 0.5x and
// 4x targets push baseExTime outside the training envelope, and accuracy
// degrades the way any regression degrades under extrapolation. Like the
// microbenchmark experiment, this maps a validity boundary — here along
// the baseline-time axis instead of the memory-behaviour axis.

// ScalingRow is one problem-size factor's transfer accuracy.
type ScalingRow struct {
	// Factor is the work multiplier applied to every target.
	Factor float64
	// Scenarios is the number of evaluated co-locations.
	Scenarios int
	// MPE is NN-F's error against fresh simulation.
	MPE float64
}

// ProblemSizeScaling trains NN-F on the standard 12-core campaign and
// evaluates predictions for ×0.5, ×2 and ×4 scaled variants of three
// representative targets under the training co-runners.
func (s *Suite) ProblemSizeScaling() ([]ScalingRow, error) {
	ds, err := s.Dataset(12)
	if err != nil {
		return nil, err
	}
	spec := simproc.XeonE52697v2()
	proc, err := simproc.New(spec)
	if err != nil {
		return nil, err
	}
	noise := xrand.New(s.cfg.Seed + 6)

	targets := []string{"canneal", "cg", "fluidanimate"}
	factors := []float64{0.5, 2, 4}

	// Scaled variants with measured baselines, appended to a copy of the
	// baseline store.
	aug := &harness.Dataset{
		Machine:     ds.Machine,
		PStateFreqs: ds.PStateFreqs,
		LLCBytes:    ds.LLCBytes,
		Baselines:   map[string]harness.Baseline{},
		Records:     ds.Records,
	}
	for k, v := range ds.Baselines {
		aug.Baselines[k] = v
	}
	scaled := map[float64][]workload.App{}
	for _, f := range factors {
		for _, name := range targets {
			base, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			v, err := base.Scaled(fmt.Sprintf("x%g", f), f)
			if err != nil {
				return nil, err
			}
			scaled[f] = append(scaled[f], v)
		}
		bs, err := harness.CollectBaselines(proc, scaled[f], s.cfg.NoiseSigma, noise)
		if err != nil {
			return nil, err
		}
		for k, v := range bs {
			aug.Baselines[k] = v
		}
	}

	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	model, err := core.Train(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed}, aug, aug.Records)
	if err != nil {
		return nil, err
	}

	var out []ScalingRow
	for _, f := range factors {
		var pes []float64
		for _, target := range scaled[f] {
			for _, co := range workload.TrainingCoApps() {
				for _, k := range []int{3, 7} {
					coApps := make([]workload.App, k)
					coNames := make([]string, k)
					for i := range coApps {
						coApps[i] = co
						coNames[i] = co.Name
					}
					run, err := proc.RunColocation(target, coApps, 0, simproc.Options{})
					if err != nil {
						return nil, err
					}
					actual := run.TargetSeconds
					if s.cfg.NoiseSigma > 0 {
						actual *= noise.LogNormal(0, s.cfg.NoiseSigma)
					}
					pred, err := model.Predict(features.Scenario{Target: target.Name, CoApps: coNames, PState: 0})
					if err != nil {
						return nil, err
					}
					pes = append(pes, 100*abs(pred-actual)/actual)
				}
			}
		}
		out = append(out, ScalingRow{Factor: f, Scenarios: len(pes), MPE: stats.Mean(pes)})
	}
	return out, nil
}

// RenderProblemSizeScaling formats the experiment.
func RenderProblemSizeScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Problem-size scaling: NN-F on rescaled targets (12-core, canneal/cg/fluidanimate)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "work factor\tscenarios\tMPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%gx\t%d\t%.2f%%\n", r.Factor, r.Scenarios, r.MPE)
	}
	w.Flush()
	return b.String()
}
