package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

// The phase-sensitivity experiment tests a claim from the paper's
// introduction: although applications use memory in varying phases across
// their execution ([SaS13]), "going into such a level of detail is not
// necessary to make accurate predictions" — the models consume only
// run-averaged counters.
//
// We regenerate the 6-core campaign with every application's phase
// amplitude scaled (0× = phase-free, 1× = the calibrated behaviour,
// up to strongly phased) and evaluate NN-F each time. If the claim holds
// on this substrate, accuracy should degrade only mildly as phase
// amplitude grows, because phases average out over a full execution.

// PhaseSensitivityRow is one amplitude setting's accuracy.
type PhaseSensitivityRow struct {
	// Scale multiplies every application's calibrated PhaseAmplitude.
	Scale float64
	// MaxAmplitude is the largest resulting amplitude across apps.
	MaxAmplitude float64
	// TestMPE is NN-F's test error on that campaign.
	TestMPE float64
}

// PhaseSensitivity sweeps phase-amplitude scales on the 6-core machine.
// It uses a reduced partition count (phases only affect collection, not
// the evaluation protocol).
func (s *Suite) PhaseSensitivity(scales []float64) ([]PhaseSensitivityRow, error) {
	if len(scales) == 0 {
		scales = []float64{0, 1, 3, 5}
	}
	setF, err := features.SetByName("F")
	if err != nil {
		return nil, err
	}
	partitions := s.cfg.Partitions / 2
	if partitions < 5 {
		partitions = 5
	}
	var out []PhaseSensitivityRow
	for _, scale := range scales {
		plan := harness.DefaultPlan(simproc.XeonE5649(), s.cfg.Seed)
		plan.NoiseSigma = s.cfg.NoiseSigma
		maxAmp := 0.0
		plan.Targets = scaleAmplitudes(plan.Targets, scale, &maxAmp)
		plan.CoApps = scaleAmplitudes(plan.CoApps, scale, &maxAmp)
		ds, err := harness.Collect(plan)
		if err != nil {
			return nil, err
		}
		res, err := core.Evaluate(core.Spec{Technique: core.NeuralNet, FeatureSet: setF, Seed: s.cfg.Seed},
			ds, core.EvalConfig{Partitions: partitions, Seed: s.cfg.Seed, Workers: s.cfg.Workers})
		if err != nil {
			return nil, err
		}
		out = append(out, PhaseSensitivityRow{Scale: scale, MaxAmplitude: maxAmp, TestMPE: res.TestMPE})
	}
	return out, nil
}

// scaleAmplitudes returns copies of apps with PhaseAmplitude scaled and
// clamped to the validator's 0.5 ceiling, tracking the maximum.
func scaleAmplitudes(apps []workload.App, scale float64, maxAmp *float64) []workload.App {
	out := make([]workload.App, len(apps))
	for i, a := range apps {
		a.PhaseAmplitude *= scale
		if a.PhaseAmplitude > 0.5 {
			a.PhaseAmplitude = 0.5
		}
		if a.PhaseAmplitude > *maxAmp {
			*maxAmp = a.PhaseAmplitude
		}
		out[i] = a
	}
	return out
}

// RenderPhaseSensitivity formats the experiment.
func RenderPhaseSensitivity(rows []PhaseSensitivityRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Phase sensitivity: NN-F accuracy vs. application phase amplitude (6-core)")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "amplitude scale\tmax amplitude\tNN-F test MPE")
	for _, r := range rows {
		fmt.Fprintf(w, "%.0fx\t±%.0f%%\t%.2f%%\n", r.Scale, 100*r.MaxAmplitude, r.TestMPE)
	}
	w.Flush()
	return b.String()
}
