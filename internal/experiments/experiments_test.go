package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The suite collects full Table V datasets; share one across tests with a
// reduced partition count so the package tests stay fast.
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func testSuite(t testing.TB) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		cfg := Default()
		cfg.Partitions = 5
		suiteVal, suiteErr = NewSuite(cfg)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestNewSuiteValidation(t *testing.T) {
	if _, err := NewSuite(Config{Partitions: 0}); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"baseExTime", "targetCA/INS", "number of co-located"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := Table2()
	for _, want := range []string{"A", "model E + targetCM/CA", "baseExTime"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	t4 := Table4()
	for _, want := range []string{"Xeon E5649", "Xeon E5-2697v2", "12MB", "30MB", "1.60-2.53", "1.20-2.70"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table IV missing %q", want)
		}
	}
	t5 := Table5()
	for _, want := range []string{"cg,sp,fluidanimate,ep", "[1 2 3 4 5]", "[1 2 3 5 7 9 11]"} {
		if !strings.Contains(t5, want) {
			t.Errorf("Table V missing %q", want)
		}
	}
}

func TestDatasetLookup(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Dataset(6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dataset(12); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Dataset(8); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestTable3ClassStructure(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	// Classes appear in order and intensities decrease across class
	// boundaries.
	for i := 1; i < len(rows); i++ {
		if rows[i].Class < rows[i-1].Class {
			t.Fatal("rows not ordered by class")
		}
	}
	if out := RenderTable3(rows); !strings.Contains(out, "canneal") {
		t.Fatal("render missing canneal")
	}
}

func TestTable6Shape(t *testing.T) {
	s := testSuite(t)
	res, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("got %d rows, want 11 (k = 1..11)", len(res.Rows))
	}
	if res.BaselineSeconds <= 0 {
		t.Fatal("no baseline")
	}
	// Normalised execution time grows monotonically (allowing noise).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Normalized < res.Rows[i-1].Normalized-0.03 {
			t.Fatalf("row %d normalised %v below previous %v",
				i, res.Rows[i].Normalized, res.Rows[i-1].Normalized)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Normalized < 1.15 || last.Normalized > 2.0 {
		t.Fatalf("k=11 normalised time %v outside plausible range", last.Normalized)
	}
	// Model F predictions land in the right ballpark.
	for _, r := range res.Rows {
		if r.NeuralFError > 15 || r.LinearFError > 30 {
			t.Fatalf("k=%d prediction errors implausible: linear %v NN %v",
				r.NumCG, r.LinearFError, r.NeuralFError)
		}
	}
	if out := RenderTable6(res); !strings.Contains(out, "normalized") {
		t.Fatal("render missing header")
	}
}

func TestFiguresShape(t *testing.T) {
	s := testSuite(t)
	for n := 1; n <= 4; n++ {
		f, err := s.Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Points) != 12 {
			t.Fatalf("figure %d has %d points, want 12", n, len(f.Points))
		}
		for _, p := range f.Points {
			if p.TestError <= 0 || p.TrainError <= 0 {
				t.Fatalf("figure %d model %s has non-positive error", n, p.Model)
			}
		}
		if out := RenderFigure(f); !strings.Contains(out, "neural-net-F") {
			t.Fatalf("figure %d render incomplete", n)
		}
	}
	if _, err := s.Figure(9); err == nil {
		t.Fatal("figure 9 accepted")
	}
}

func TestFigure1HeadlineOrdering(t *testing.T) {
	s := testSuite(t)
	f, err := s.Figure(1)
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]FigurePoint{}
	for _, p := range f.Points {
		byModel[p.Model] = p
	}
	// The paper's headline: NN-F is the most accurate model, and the NN
	// improves substantially from A to F.
	nnF := byModel["neural-net-F"].TestError
	for name, p := range byModel {
		if name != "neural-net-F" && p.TestError < nnF {
			t.Fatalf("%s (%v) beats NN-F (%v)", name, p.TestError, nnF)
		}
	}
	if nnF > 0.75*byModel["neural-net-A"].TestError {
		t.Fatalf("NN A→F improvement too small: %v -> %v",
			byModel["neural-net-A"].TestError, nnF)
	}
}

func TestFigure5a(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Figure5a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Summary.Min <= 0 || r.Summary.Max < r.Summary.Min {
			t.Fatalf("%s summary degenerate: %+v", r.App, r.Summary)
		}
		// Co-location stretches times: max must exceed min.
		if r.Summary.Max <= r.Summary.Min {
			t.Fatalf("%s has no execution-time spread", r.App)
		}
	}
	if out := RenderFigure5a(rows); !strings.Contains(out, "median") {
		t.Fatal("render missing header")
	}
}

func TestFigure5bAccuracyClaims(t *testing.T) {
	s := testSuite(t)
	res, err := s.Figure5b()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 11 {
		t.Fatalf("got %d rows, want 11", len(res.Rows))
	}
	// The paper: the majority of predictions within ±2 %, nearly all
	// within ±5 %.
	if res.Within2 < 0.5 {
		t.Fatalf("only %.0f%% of NN-F predictions within ±2%%", 100*res.Within2)
	}
	if res.Within5 < 0.9 {
		t.Fatalf("only %.0f%% of NN-F predictions within ±5%%", 100*res.Within5)
	}
	// Median error near zero for each application.
	for _, r := range res.Rows {
		if r.Summary.Median > 4 || r.Summary.Median < -4 {
			t.Fatalf("%s median error %v far from zero", r.App, r.Summary.Median)
		}
	}
	if out := RenderFigure5b(res); !strings.Contains(out, "overall") {
		t.Fatal("render missing overall line")
	}
}

func TestPCARanking(t *testing.T) {
	s := testSuite(t)
	rows, err := s.PCARanking()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d features, want 8", len(rows))
	}
	sum := 0.0
	for i, r := range rows {
		sum += r.Score
		if i > 0 && r.Score > rows[i-1].Score+1e-12 {
			t.Fatal("ranking not descending")
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("scores sum to %v", sum)
	}
	if out := RenderPCARanking(rows); !strings.Contains(out, "rank") {
		t.Fatal("render missing header")
	}
}

func TestGeneralization(t *testing.T) {
	s := testSuite(t)
	cases, err := s.Generalization()
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("got %d families, want 3", len(cases))
	}
	for _, c := range cases {
		if c.Scenarios == 0 {
			t.Fatalf("family %s has no scenarios", c.Family)
		}
		// The Section IV-B3 claim: out-of-sample predictions stay
		// usable. Interpolation (gaps) should be tight; extrapolation to
		// unseen and mixed co-runners may be looser but must remain far
		// better than ignoring co-location entirely (model-A territory
		// is ~5% on in-sample data; allow up to 12% out of sample).
		limit := 6.0
		if c.Family != "gap" {
			limit = 12.0
		}
		if c.MPE > limit {
			t.Errorf("family %s MPE %.2f%% exceeds %.0f%%", c.Family, c.MPE, limit)
		}
	}
	if out := RenderGeneralization(cases); !strings.Contains(out, "unseen") {
		t.Fatal("render incomplete")
	}
}

func TestSVGRenderers(t *testing.T) {
	s := testSuite(t)
	f, err := s.Figure(1)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := FigureSVG(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "neural test", "linear train"} {
		if !strings.Contains(svg, want) {
			t.Errorf("figure SVG missing %q", want)
		}
	}
	rows, err := s.Figure5a()
	if err != nil {
		t.Fatal(err)
	}
	if svg, err := Figure5aSVG(rows); err != nil || !strings.Contains(svg, "canneal") {
		t.Fatalf("figure 5a SVG: %v", err)
	}
	f5b, err := s.Figure5b()
	if err != nil {
		t.Fatal(err)
	}
	if svg, err := Figure5bSVG(f5b); err != nil || !strings.Contains(svg, "percent error") {
		t.Fatalf("figure 5b SVG: %v", err)
	}
	t6, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if svg, err := Table6SVG(t6); err != nil || !strings.Contains(svg, "normalised") {
		t.Fatalf("table 6 SVG: %v", err)
	}
	if SVGName("5a") != "figure5a.svg" || SVGName("table6") != "table6.svg" {
		t.Fatal("SVG names wrong")
	}
}

func TestInteractionAblation(t *testing.T) {
	s := testSuite(t)
	rows, err := s.InteractionAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byModel := map[string]float64{}
	for _, r := range rows {
		if r.TestMPE <= 0 {
			t.Fatalf("%s has non-positive MPE", r.Model)
		}
		byModel[r.Model] = r.TestMPE
	}
	// The crafted interactions must recover part of the linear/NN gap...
	if byModel["linear-F+x"] >= byModel["linear-F"] {
		t.Fatalf("interactions did not help: %v vs %v", byModel["linear-F+x"], byModel["linear-F"])
	}
	// ...while the NN retains an edge from the saturating nonlinearities.
	if byModel["neural-net-F"] >= byModel["linear-F"] {
		t.Fatalf("NN-F (%v) not better than linear-F (%v)", byModel["neural-net-F"], byModel["linear-F"])
	}
	if out := RenderInteractionAblation(rows); !strings.Contains(out, "linear-F+x") {
		t.Fatal("render incomplete")
	}
}

func TestFeatureCorrelations(t *testing.T) {
	s := testSuite(t)
	m, fs, err := s.FeatureCorrelations()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 8 || len(fs) != 8 {
		t.Fatalf("matrix %dx, features %d", len(m), len(fs))
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Fatal("diagonal not 1")
		}
	}
	// The documented redundancy: the three co-app features are nearly
	// collinear for homogeneous co-runners. coAppMem=2, coAppCMCA=4,
	// coAppCAINS=5 in Table I order.
	if m[2][4] < 0.7 || m[2][5] < 0.7 {
		t.Fatalf("co-app features not strongly correlated: %v, %v", m[2][4], m[2][5])
	}
	if out := RenderFeatureCorrelations(m, fs); !strings.Contains(out, "coAppMem") {
		t.Fatal("render incomplete")
	}
}

func TestMicrobenchmarkTransfer(t *testing.T) {
	s := testSuite(t)
	rows, err := s.MicrobenchmarkTransfer()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d kernels", len(rows))
	}
	byKernel := map[string]MicroTransferRow{}
	for _, r := range rows {
		if r.Scenarios != 12 {
			t.Fatalf("%s evaluated %d scenarios", r.Kernel, r.Scenarios)
		}
		// CPU-bound kernels barely slow down; measurement noise can push
		// the mean marginally below 1.
		if r.MeanSlowdown < 0.97 {
			t.Fatalf("%s mean slowdown %v implausibly low", r.Kernel, r.MeanSlowdown)
		}
		byKernel[r.Kernel] = r
	}
	// Kernels inside the training envelope (behaviour resembling the
	// scientific workloads) must transfer well...
	for _, k := range []string{"dgemm", "ministencil"} {
		if byKernel[k].MPE > 15 {
			t.Errorf("%s transfer MPE %.2f%% exceeds 15%%", k, byKernel[k].MPE)
		}
	}
	// ...while the deliberately extreme kernels sit outside it: the
	// experiment's value is *mapping the validity boundary*, so assert the
	// boundary exists (extremes predict worse than the in-envelope
	// kernels) rather than demanding the impossible.
	for _, k := range []string{"pchase", "stream"} {
		if byKernel[k].MPE <= byKernel["ministencil"].MPE {
			t.Errorf("%s (MPE %.2f%%) unexpectedly transfers better than ministencil (%.2f%%)",
				k, byKernel[k].MPE, byKernel["ministencil"].MPE)
		}
	}
	if out := RenderMicrobenchmarkTransfer(rows); !strings.Contains(out, "pchase") {
		t.Fatal("render incomplete")
	}
}

func TestPhaseSensitivity(t *testing.T) {
	s := testSuite(t)
	rows, err := s.PhaseSensitivity([]float64{0, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TestMPE <= 0 || r.TestMPE > 20 {
			t.Fatalf("scale %vx: MPE %v implausible", r.Scale, r.TestMPE)
		}
	}
	// The paper's claim: run-averaged features survive phase behaviour.
	// Strongly phased applications (5x amplitude) may cost some accuracy
	// but must not break the model (error stays within 2.5x the
	// phase-free error and under 5%).
	if rows[2].TestMPE > 2.5*rows[0].TestMPE || rows[2].TestMPE > 5 {
		t.Fatalf("phases break the model: %.2f%% (0x) -> %.2f%% (5x)",
			rows[0].TestMPE, rows[2].TestMPE)
	}
	if out := RenderPhaseSensitivity(rows); !strings.Contains(out, "amplitude") {
		t.Fatal("render incomplete")
	}
}

func TestMixedTraining(t *testing.T) {
	s := testSuite(t)
	rows, err := s.MixedTraining(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d variants", len(rows))
	}
	byVariant := map[string]MixedTrainingRow{}
	for _, r := range rows {
		if r.TestMPE <= 0 || r.TestMPE > 30 {
			t.Fatalf("%s MPE %v implausible", r.Variant, r.TestMPE)
		}
		if r.TrainSize == 0 {
			t.Fatalf("%s trained on nothing", r.Variant)
		}
		key := r.Variant
		if strings.HasPrefix(key, "augmented") {
			key = "augmented"
		}
		byVariant[key] = r
	}
	// Augmenting the uniform homogeneous campaign with mixed samples must
	// not hurt mixed-scenario accuracy (and typically helps).
	if byVariant["augmented"].TestMPE > byVariant["homogeneous (Table V)"].TestMPE*1.25 {
		t.Fatalf("augmentation hurt: %.2f%% -> %.2f%%",
			byVariant["homogeneous (Table V)"].TestMPE, byVariant["augmented"].TestMPE)
	}
	if out := RenderMixedTraining(rows); !strings.Contains(out, "augmented") {
		t.Fatal("render incomplete")
	}
}

func TestProblemSizeScaling(t *testing.T) {
	s := testSuite(t)
	rows, err := s.ProblemSizeScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d factors", len(rows))
	}
	byFactor := map[float64]ScalingRow{}
	for _, r := range rows {
		if r.Scenarios != 24 {
			t.Fatalf("factor %gx: %d scenarios", r.Factor, r.Scenarios)
		}
		byFactor[r.Factor] = r
	}
	// 2x targets keep their baselines inside the training envelope and
	// must transfer well; 0.5x and 4x push baseExTime outside the span of
	// the training data, so accuracy degrades — they must stay bounded
	// (the model does not blow up) but are expected to be worse.
	if byFactor[2].MPE > 10 {
		t.Errorf("2x transfer MPE %.2f%% exceeds 10%%", byFactor[2].MPE)
	}
	for _, f := range []float64{0.5, 4} {
		if byFactor[f].MPE > 40 {
			t.Errorf("%gx transfer MPE %.2f%% exceeds 40%%", f, byFactor[f].MPE)
		}
	}
	if out := RenderProblemSizeScaling(rows); !strings.Contains(out, "work factor") {
		t.Fatal("render incomplete")
	}
}
