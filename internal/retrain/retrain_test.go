package retrain

import (
	"strings"
	"sync"
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/feedback"
	"colocmodel/internal/harness"
	"colocmodel/internal/simproc"
	"colocmodel/internal/workload"
)

var (
	dsOnce sync.Once
	dsVal  *harness.Dataset
	dsErr  error
)

func testDataset(t testing.TB) *harness.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		cg, _ := workload.ByName("cg")
		ep, _ := workload.ByName("ep")
		canneal, _ := workload.ByName("canneal")
		plan := harness.Plan{
			Spec:       simproc.XeonE5649(),
			Targets:    []workload.App{cg, canneal, ep},
			CoApps:     []workload.App{cg, ep},
			CoCounts:   []int{1, 3},
			PStates:    []int{0, 1},
			NoiseSigma: 0.01,
			Seed:       7,
		}
		dsVal, dsErr = harness.Collect(plan)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

// split partitions the offline sweep by co-location count: the
// incumbent trains only on solo co-location, so heavier records look
// like a workload shift it has never seen.
func split(ds *harness.Dataset) (solo, heavy []harness.Record) {
	for _, r := range ds.Records {
		if r.NumCoLoc <= 1 {
			solo = append(solo, r)
		} else {
			heavy = append(heavy, r)
		}
	}
	return
}

func linearSpec(t testing.TB, seed uint64) core.Spec {
	t.Helper()
	set, err := features.SetByName("F")
	if err != nil {
		t.Fatal(err)
	}
	return core.Spec{Technique: core.Linear, FeatureSet: set, Seed: seed}
}

// fakeRegistry is the minimal Registry: one named slot with a
// generation counter, mirroring serve.Registry semantics.
type fakeRegistry struct {
	mu    sync.Mutex
	name  string
	model *core.Model
	gen   uint64
}

func (r *fakeRegistry) Get(name string) (*core.Model, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name != r.name {
		return nil, 0, errUnknown
	}
	return r.model, r.gen, nil
}

func (r *fakeRegistry) Swap(name string, m *core.Model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name != r.name {
		return errUnknown
	}
	r.model, r.gen = m, r.gen+1
	return nil
}

var errUnknown = &unknownErr{}

type unknownErr struct{}

func (*unknownErr) Error() string { return "unknown model" }

// observationsFrom converts harness records into deployment
// observations: the record's measured seconds is ground truth, the
// incumbent supplies the (wrong) prediction.
func observationsFrom(t testing.TB, m *core.Model, records []harness.Record) []feedback.Observation {
	t.Helper()
	out := make([]feedback.Observation, 0, len(records))
	for _, r := range records {
		sc := features.ScenarioFromRecord(r)
		pred, err := m.Predict(sc)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, feedback.Observation{
			Model: "primary", Generation: 1,
			Target: sc.Target, CoApps: sc.CoApps, PState: sc.PState,
			PredictedSeconds: pred, MeasuredSeconds: r.Seconds,
		})
	}
	return out
}

func newController(t testing.TB, cfg Config, reg Registry, base *harness.Dataset, obs []feedback.Observation) *Controller {
	t.Helper()
	log, err := feedback.Open(feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AppendAll(obs); err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, reg, base, log)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPromotesWhenCandidateWins is the core closed-loop property: an
// incumbent trained only on solo co-location, judged on a holdout
// dominated by heavier observations, loses to a candidate retrained on
// the full augmented dataset — and the registry generation advances.
func TestPromotesWhenCandidateWins(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}

	soloDS := *ds
	soloDS.Records = solo
	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10},
		reg, &soloDS, observationsFrom(t, incumbent, heavy))

	res, err := c.RunOnce("drift")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("candidate not promoted: %+v", res)
	}
	if res.CandidateMPE >= res.IncumbentMPE {
		t.Fatalf("promoted but candidate MPE %v >= incumbent %v", res.CandidateMPE, res.IncumbentMPE)
	}
	if res.Observations != len(heavy) || res.BaseRecords != len(solo) {
		t.Fatalf("augmented dataset wrong: %+v", res)
	}
	if _, gen, _ := reg.Get("primary"); gen != 2 {
		t.Fatalf("generation = %d, want 2 after promotion", gen)
	}
	if reg.model == incumbent {
		t.Fatal("registry still serves the incumbent after promotion")
	}
	if !reg.model.IsCompiled() {
		t.Fatal("promoted model is not compiled for the serving fast path")
	}

	st := c.Status()
	if st.Attempts != 1 || st.Promoted != 1 || st.Rejected != 0 || st.Last == nil || !st.Last.Promoted {
		t.Fatalf("status wrong: %+v", st)
	}
}

// TestRejectsWhenMarginNotMet: an impossible margin keeps the
// incumbent serving even though the candidate is strictly better.
func TestRejectsWhenMarginNotMet(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}

	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10, MarginPct: 1e9},
		reg, ds, observationsFrom(t, incumbent, heavy))

	res, err := c.RunOnce("manual")
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatal("promoted despite impossible margin")
	}
	if !strings.Contains(res.Rejection, "does not beat") {
		t.Fatalf("rejection reason wrong: %q", res.Rejection)
	}
	if _, gen, _ := reg.Get("primary"); gen != 1 {
		t.Fatalf("generation moved to %d on a rejected attempt", gen)
	}
	if reg.model != incumbent {
		t.Fatal("incumbent replaced on a rejected attempt")
	}
	if st := c.Status(); st.Rejected != 1 || st.Promoted != 0 {
		t.Fatalf("status wrong: %+v", st)
	}
}

// TestRejectsOnTooFewObservations: below MinObservations nothing is
// trained at all.
func TestRejectsOnTooFewObservations(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	c := newController(t, Config{Model: "primary", Seed: 1, MinObservations: 10_000},
		reg, ds, observationsFrom(t, incumbent, heavy))

	res, err := c.RunOnce("manual")
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted || !strings.Contains(res.Rejection, "observations") {
		t.Fatalf("expected observation-count rejection, got %+v", res)
	}
}

// TestSkipsUnusableObservations: observations naming unknown apps or
// out-of-range P-states are counted and excluded, not fatal.
func TestSkipsUnusableObservations(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}

	obs := observationsFrom(t, incumbent, heavy)
	obs = append(obs,
		feedback.Observation{Model: "primary", Target: "no-such-app", PredictedSeconds: 1, MeasuredSeconds: 1},
		feedback.Observation{Model: "primary", Target: "cg", PState: 99, PredictedSeconds: 1, MeasuredSeconds: 1},
		feedback.Observation{Model: "primary", Target: "cg", CoApps: []string{"ghost"}, PredictedSeconds: 1, MeasuredSeconds: 1},
	)
	c := newController(t, Config{Model: "primary", Seed: 9, MinObservations: 10}, reg, ds, obs)

	res, err := c.RunOnce("manual")
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedObservations != 3 {
		t.Fatalf("skipped = %d, want 3", res.SkippedObservations)
	}
	if res.Observations != len(heavy) {
		t.Fatalf("usable observations = %d, want %d", res.Observations, len(heavy))
	}
}

// TestDeterministicAttempts: two controllers with identical config and
// inputs produce identical results.
func TestDeterministicAttempts(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	run := func() Result {
		incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
		if err != nil {
			t.Fatal(err)
		}
		reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
		c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10},
			reg, ds, observationsFrom(t, incumbent, heavy))
		res, err := c.RunOnce("drift")
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	a, b := run(), run()
	if a.CandidateMPE != b.CandidateMPE || a.IncumbentMPE != b.IncumbentMPE ||
		a.Promoted != b.Promoted || a.TrainSize != b.TrainSize {
		t.Fatalf("attempts diverge:\n%+v\n%+v", a, b)
	}
}

// TestRollback restores the previous incumbent and bumps the
// generation again (a rollback is itself a swap).
func TestRollback(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10},
		reg, ds, observationsFrom(t, incumbent, heavy))

	if err := c.Rollback(); err == nil {
		t.Fatal("rollback with no promotion should fail")
	}
	res, err := c.RunOnce("drift")
	if err != nil || !res.Promoted {
		t.Fatalf("setup promotion failed: %+v %v", res, err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}
	if reg.model != incumbent {
		t.Fatal("rollback did not restore the incumbent")
	}
	if _, gen, _ := reg.Get("primary"); gen != 3 {
		t.Fatalf("generation = %d, want 3 (promote + rollback both swap)", gen)
	}
	if err := c.Rollback(); err == nil {
		t.Fatal("second rollback should fail (stack empty)")
	}
}

// TestTrainsFromBaselinesWithoutBaseDataset: with no offline dataset
// the controller falls back to the incumbent's baseline store and
// trains on observations alone.
func TestTrainsFromBaselinesWithoutBaseDataset(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	// Observations cover the full mix so a from-scratch candidate can win.
	all := append(append([]harness.Record(nil), solo...), heavy...)
	c := newController(t, Config{Model: "primary", Seed: 4, MinObservations: 10},
		reg, nil, observationsFrom(t, incumbent, all))

	res, err := c.RunOnce("drift")
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseRecords != 0 {
		t.Fatalf("base records = %d, want 0 without an offline dataset", res.BaseRecords)
	}
	if !res.Promoted {
		t.Fatalf("observations-only candidate not promoted: %+v", res)
	}
}

// TestOnPromoteCallback fires on promotion with the model name.
func TestOnPromoteCallback(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10},
		reg, ds, observationsFrom(t, incumbent, heavy))

	var got []string
	c.OnPromote(func(name string) { got = append(got, name) })
	if _, err := c.RunOnce("drift"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "primary" {
		t.Fatalf("callback calls = %v, want [primary]", got)
	}
}

func TestConfigValidation(t *testing.T) {
	reg := &fakeRegistry{name: "m"}
	log, _ := feedback.Open(feedback.Config{})
	if _, err := New(Config{}, reg, nil, log); err == nil {
		t.Fatal("empty model name accepted")
	}
	if _, err := New(Config{Model: "m", HoldoutFraction: 1.5}, reg, nil, log); err == nil {
		t.Fatal("holdout fraction 1.5 accepted")
	}
	if _, err := New(Config{Model: "m"}, nil, nil, log); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := New(Config{Model: "m"}, reg, nil, nil); err == nil {
		t.Fatal("nil observation source accepted")
	}
}
