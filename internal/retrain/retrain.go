// Package retrain closes the adaptation loop: when the drift monitor
// (or an operator) signals that a serving model no longer matches its
// workload, the controller trains a candidate replacement on an
// augmented dataset — the original offline sweep plus the logged
// deployment observations — gates it against the incumbent on a
// held-out split, and promotes it through the registry's atomic
// hot-swap only if it wins by a configurable margin. The incumbent
// keeps serving through training, through a failed gate, and through
// any error; a promotion history records every attempt and supports
// rolling back to the previous incumbent.
//
// The gate is the paper's own yardstick: MPE (Eq. 2) of predicted vs.
// measured execution time on records the candidate never trained on.
package retrain

import (
	"context"
	"fmt"
	"sync"

	"colocmodel/internal/core"
	"colocmodel/internal/features"
	"colocmodel/internal/feedback"
	"colocmodel/internal/harness"
	"colocmodel/internal/obs"
	"colocmodel/internal/stats"
	"colocmodel/internal/xrand"
)

// Registry is the slice of the serving registry the controller needs:
// read the incumbent, atomically swap in a winner. Satisfied by
// serve.Registry.
type Registry interface {
	Get(name string) (*core.Model, uint64, error)
	Swap(name string, m *core.Model) error
}

// ObservationSource supplies the logged deployment observations. The
// controller consumes the feedback.Store interface, never a concrete
// log type: any store implementation (file-backed, memory, object
// store) can feed retraining, and dataset assembly reads through the
// store's snapshot semantics — a compaction pass racing All() is
// invisible to the read (the store retries against the post-compaction
// snapshot).
type ObservationSource = feedback.Store

// Config tunes the controller.
type Config struct {
	// Model is the registry entry the controller manages.
	Model string
	// Spec is the candidate's model spec. A zero Spec (empty feature
	// set) adopts the incumbent's spec at each attempt.
	Spec core.Spec
	// HoldoutFraction is the share of the augmented dataset withheld
	// from training and used for the gate. Default 0.3 (the paper's
	// test fraction).
	HoldoutFraction float64
	// MarginPct is the gate: the candidate's holdout MPE must be at
	// least this many percentage points below the incumbent's.
	// Default 0.25.
	MarginPct float64
	// MinObservations is the fewest logged observations worth
	// retraining on. Default 30.
	MinObservations int
	// Seed drives the train/holdout shuffle and candidate
	// initialisation; each attempt derives its own stream from it.
	Seed uint64
}

func (c *Config) defaults() error {
	if c.Model == "" {
		return fmt.Errorf("retrain: config needs a model name")
	}
	if c.HoldoutFraction == 0 {
		c.HoldoutFraction = 0.3
	}
	if c.HoldoutFraction <= 0 || c.HoldoutFraction >= 1 {
		return fmt.Errorf("retrain: holdout fraction %v out of (0,1)", c.HoldoutFraction)
	}
	if c.MarginPct == 0 {
		c.MarginPct = 0.25
	}
	if c.MinObservations == 0 {
		c.MinObservations = 30
	}
	return nil
}

// Result reports one retraining attempt.
type Result struct {
	// Attempt numbers the attempt (1-based).
	Attempt int `json:"attempt"`
	// Reason is what triggered it ("drift", "manual", ...).
	Reason string `json:"reason"`
	// BaseRecords and Observations count the augmented dataset's two
	// halves; SkippedObservations were unusable (unknown app, bad
	// P-state) and excluded.
	BaseRecords         int `json:"base_records"`
	Observations        int `json:"observations"`
	SkippedObservations int `json:"skipped_observations,omitempty"`
	// TrainSize and TestSize describe the deterministic split.
	TrainSize int `json:"train_size"`
	TestSize  int `json:"test_size"`
	// CandidateMPE and IncumbentMPE are the holdout errors the gate
	// compared (Eq. 2).
	CandidateMPE float64 `json:"candidate_mpe"`
	IncumbentMPE float64 `json:"incumbent_mpe"`
	// Promoted reports whether the candidate replaced the incumbent.
	Promoted bool `json:"promoted"`
	// Rejection explains a non-promotion ("" when promoted).
	Rejection string `json:"rejection,omitempty"`
	// Generation is the registry generation after the attempt.
	Generation uint64 `json:"generation"`
}

// Status is the controller's queryable state.
type Status struct {
	// State is "idle" or "training".
	State string `json:"state"`
	// Attempts, Promoted and Rejected count completed attempts.
	Attempts int `json:"attempts"`
	Promoted int `json:"promoted"`
	Rejected int `json:"rejected"`
	// Last is the most recent completed attempt (nil before any).
	Last *Result `json:"last,omitempty"`
	// History lists every completed attempt, oldest first.
	History []Result `json:"history"`
}

// Controller runs gated background retraining for one registry entry.
type Controller struct {
	cfg  Config
	reg  Registry
	base *harness.Dataset // offline sweep; may be nil (observations only)
	obs  ObservationSource

	// onPromote is called with the model name after each promotion
	// (the serve tier uses it to reset the drift monitor).
	onPromote func(model string)

	// tracer, when set, records each attempt's stage lifecycle (dataset
	// assembly, train, holdout eval, promote) as a retained trace.
	tracer *obs.Tracer

	// scratch carries the trainer's reusable buffers (QR scratch, neural
	// workspace) across attempts. Attempts are serialised by the training
	// flag, so the single scratch is never used concurrently.
	scratch *core.TrainScratch

	mu       sync.Mutex
	training bool
	attempts int
	promoted int
	rejected int
	history  []Result
	prev     []*core.Model // previous incumbents, for rollback

	trigger chan string
}

// New builds a controller. base supplies the offline training records
// and the baseline store; nil trains on logged observations alone,
// using the incumbent's baseline store for features.
func New(cfg Config, reg Registry, base *harness.Dataset, obs ObservationSource) (*Controller, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if reg == nil {
		return nil, fmt.Errorf("retrain: nil registry")
	}
	if obs == nil {
		return nil, fmt.Errorf("retrain: nil observation source")
	}
	return &Controller{
		cfg: cfg, reg: reg, base: base, obs: obs,
		scratch: core.NewTrainScratch(),
		trigger: make(chan string, 4),
	}, nil
}

// OnPromote registers a callback invoked (synchronously, outside the
// controller lock) with the model name after each promotion.
func (c *Controller) OnPromote(fn func(model string)) { c.onPromote = fn }

// SetTracer attaches a span tracer; each retraining attempt then
// records its stage timings as a "retrain" trace (nil detaches).
func (c *Controller) SetTracer(tr *obs.Tracer) { c.tracer = tr }

// Trigger requests a background retraining attempt. It never blocks;
// it reports false when the queue is full (attempts already pending),
// which is not an error — the pending attempt will see the same
// observations.
func (c *Controller) Trigger(reason string) bool {
	select {
	case c.trigger <- reason:
		return true
	default:
		return false
	}
}

// Start runs the background loop until ctx is cancelled: each queued
// trigger becomes one synchronous retraining attempt.
func (c *Controller) Start(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case reason := <-c.trigger:
				// Errors are recorded in history by RunOnce; a
				// background attempt has nowhere else to report.
				_, _ = c.RunOnce(reason)
			}
		}
	}()
}

// RunOnce performs one synchronous retraining attempt: assemble the
// augmented dataset, train a candidate, gate it on the holdout, and
// promote through the registry only on a win. Any failure leaves the
// incumbent serving and is recorded as a rejected attempt.
func (c *Controller) RunOnce(reason string) (*Result, error) {
	c.mu.Lock()
	if c.training {
		c.mu.Unlock()
		return nil, fmt.Errorf("retrain: attempt already in progress")
	}
	c.training = true
	c.attempts++
	attempt := c.attempts
	c.mu.Unlock()

	// Retrain attempts are rare and always worth a retained trace: the
	// stage spans answer "where did that attempt spend its time" and the
	// root annotations record the verdict.
	tr := c.tracer.Start("retrain", reason, obs.NewRequestID())
	tr.Retain()
	res, incumbentBefore, err := c.attemptLocked(tr, attempt, reason)
	if tr != nil {
		if res != nil {
			tr.Annotate("promoted", fmt.Sprintf("%t", res.Promoted))
			if res.Rejection != "" {
				tr.Annotate("rejection", res.Rejection)
			}
		}
		tr.Finish(0, err != nil)
	}

	c.mu.Lock()
	c.training = false
	if res != nil {
		if res.Promoted {
			c.promoted++
			c.prev = append(c.prev, incumbentBefore)
		} else {
			c.rejected++
		}
		c.history = append(c.history, *res)
	}
	c.mu.Unlock()
	if res != nil && res.Promoted && c.onPromote != nil {
		c.onPromote(c.cfg.Model)
	}
	return res, err
}

// attemptLocked is the body of one attempt. It holds no lock (training
// can be slow); the caller serialises attempts via the training flag.
// On promotion it returns the incumbent that was replaced. tr may be
// nil; stage spans are recorded when it is live.
func (c *Controller) attemptLocked(tr *obs.Trace, attempt int, reason string) (*Result, *core.Model, error) {
	res := &Result{Attempt: attempt, Reason: reason}
	reject := func(format string, args ...any) (*Result, *core.Model, error) {
		res.Rejection = fmt.Sprintf(format, args...)
		if _, gen, err := c.reg.Get(c.cfg.Model); err == nil {
			res.Generation = gen
		}
		return res, nil, nil
	}

	incumbent, gen, err := c.reg.Get(c.cfg.Model)
	if err != nil {
		return nil, nil, fmt.Errorf("retrain: resolving incumbent: %w", err)
	}
	res.Generation = gen

	asp := tr.StartSpan("dataset_assembly")
	observations, err := c.obs.All()
	if err != nil {
		asp.Fail(err.Error())
		asp.End()
		return nil, nil, fmt.Errorf("retrain: reading observations: %w", err)
	}
	if len(observations) < c.cfg.MinObservations {
		asp.End()
		return reject("only %d observations, need %d", len(observations), c.cfg.MinObservations)
	}

	// The feature source: the offline dataset if present, else the
	// incumbent's baseline store (artefacts carry baselines).
	base := c.base
	if base == nil {
		base = incumbent.Baselines()
	}
	if base == nil {
		asp.End()
		return nil, nil, fmt.Errorf("retrain: no baseline store available")
	}

	// Assemble the augmented dataset: offline records first, then
	// logged observations, both as (scenario, measured seconds).
	var scs []features.Scenario
	var secs []float64
	if c.base != nil {
		for _, r := range c.base.Records {
			scs = append(scs, features.ScenarioFromRecord(r))
			secs = append(secs, r.Seconds)
		}
	}
	res.BaseRecords = len(scs)
	for _, o := range observations {
		sc := features.Scenario{Target: o.Target, CoApps: o.CoApps, PState: o.PState}
		if !usable(base, sc) {
			res.SkippedObservations++
			continue
		}
		scs = append(scs, sc)
		secs = append(secs, o.MeasuredSeconds)
	}
	res.Observations = len(scs) - res.BaseRecords
	if res.Observations < c.cfg.MinObservations {
		asp.End()
		return reject("only %d usable observations, need %d", res.Observations, c.cfg.MinObservations)
	}

	// Deterministic shuffle, split off the holdout.
	src := xrand.New(c.cfg.Seed + uint64(attempt))
	perm := src.Perm(len(scs))
	nTest := int(c.cfg.HoldoutFraction * float64(len(scs)))
	if nTest < 1 || len(scs)-nTest < 2 {
		asp.End()
		return reject("augmented dataset of %d records too small to split", len(scs))
	}
	testScs, testY := pick(scs, secs, perm[:nTest])
	trainScs, trainY := pick(scs, secs, perm[nTest:])
	res.TrainSize, res.TestSize = len(trainScs), len(testScs)
	asp.Annotate("records", fmt.Sprintf("%d", len(scs)))
	asp.End()

	spec := c.cfg.Spec
	if len(spec.FeatureSet.Features) == 0 {
		spec = incumbent.Spec
	}
	spec.Seed = c.cfg.Seed + uint64(attempt)

	tsp := tr.StartSpan("train")
	candidate, err := core.TrainScenariosScratch(spec, base, trainScs, trainY, c.scratch)
	if err != nil {
		tsp.Fail(err.Error())
		tsp.End()
		return reject("training candidate: %v", err)
	}
	tsp.End()

	hsp := tr.StartSpan("holdout_eval")
	candMPE, err := holdoutMPE(candidate, testScs, testY)
	if err != nil {
		hsp.End()
		return reject("evaluating candidate: %v", err)
	}
	incMPE, err := holdoutMPE(incumbent, testScs, testY)
	hsp.End()
	if err != nil {
		return reject("evaluating incumbent: %v", err)
	}
	res.CandidateMPE, res.IncumbentMPE = candMPE, incMPE

	if candMPE+c.cfg.MarginPct > incMPE {
		return reject("candidate MPE %.3f%% does not beat incumbent %.3f%% by %.3g points",
			candMPE, incMPE, c.cfg.MarginPct)
	}

	psp := tr.StartSpan("promote")
	err = c.reg.Swap(c.cfg.Model, candidate)
	psp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("retrain: promoting candidate: %w", err)
	}
	res.Promoted = true
	if _, gen, err := c.reg.Get(c.cfg.Model); err == nil {
		res.Generation = gen
	}
	return res, incumbent, nil
}

// usable reports whether a scenario can produce features against the
// baseline store (known apps, in-range P-state).
func usable(ds *harness.Dataset, sc features.Scenario) bool {
	b, err := ds.Baseline(sc.Target)
	if err != nil {
		return false
	}
	if sc.PState < 0 || sc.PState >= len(b.SecondsByPState) {
		return false
	}
	for _, a := range sc.CoApps {
		if _, err := ds.Baseline(a); err != nil {
			return false
		}
	}
	return true
}

func pick(scs []features.Scenario, secs []float64, idx []int) ([]features.Scenario, []float64) {
	outS := make([]features.Scenario, len(idx))
	outY := make([]float64, len(idx))
	for i, j := range idx {
		outS[i], outY[i] = scs[j], secs[j]
	}
	return outS, outY
}

// holdoutMPE is the gate metric: MPE (Eq. 2) of a model's predictions on
// the held-out scenarios, evaluated in one batched pass (bit-identical to
// predicting scenario-at-a-time).
func holdoutMPE(m *core.Model, scs []features.Scenario, measured []float64) (float64, error) {
	pred, err := m.PredictScenarios(scs)
	if err != nil {
		return 0, err
	}
	return stats.MPE(pred, measured)
}

// Rollback swaps the previous incumbent back in, undoing the most
// recent promotion. It fails when there is nothing to roll back to.
func (c *Controller) Rollback() error {
	c.mu.Lock()
	if len(c.prev) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("retrain: no promotion to roll back")
	}
	m := c.prev[len(c.prev)-1]
	c.prev = c.prev[:len(c.prev)-1]
	c.mu.Unlock()
	if err := c.reg.Swap(c.cfg.Model, m); err != nil {
		return fmt.Errorf("retrain: rolling back: %w", err)
	}
	if c.onPromote != nil {
		c.onPromote(c.cfg.Model)
	}
	return nil
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		State:    "idle",
		Attempts: c.attempts,
		Promoted: c.promoted,
		Rejected: c.rejected,
		History:  append([]Result(nil), c.history...),
	}
	if c.training {
		s.State = "training"
	}
	if n := len(c.history); n > 0 {
		last := c.history[n-1]
		s.Last = &last
	}
	return s
}

// Model returns the registry entry name the controller manages.
func (c *Controller) Model() string { return c.cfg.Model }
