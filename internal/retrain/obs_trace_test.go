package retrain

import (
	"testing"

	"colocmodel/internal/core"
	"colocmodel/internal/obs"
)

// TestAttemptTraceStages verifies every retraining attempt records a
// retained trace covering the attempt lifecycle: dataset assembly →
// train → holdout eval → promote, with the verdict annotated on the
// root span.
func TestAttemptTraceStages(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	soloDS := *ds
	soloDS.Records = solo
	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10},
		reg, &soloDS, observationsFrom(t, incumbent, heavy))

	// A huge slow threshold proves retrain traces are retained by force,
	// not by the latency rule.
	tracer := obs.NewTracer(obs.Config{Capacity: 8, SlowThreshold: 1 << 50})
	c.SetTracer(tracer)

	res, err := c.RunOnce("drift")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("expected promotion: %+v", res)
	}

	got := tracer.Snapshot(obs.Filter{Kind: "retrain"})
	if len(got) != 1 {
		t.Fatalf("retained %d retrain traces, want 1", len(got))
	}
	td := got[0]
	if td.Name != "drift" || td.Error {
		t.Fatalf("trace metadata: %+v", td)
	}
	if td.ID == "" {
		t.Fatal("retrain trace has no minted ID")
	}
	stages := map[string]obs.SpanData{}
	for _, sp := range td.Spans[1:] {
		stages[sp.Name] = sp
	}
	order := []string{"dataset_assembly", "train", "holdout_eval", "promote"}
	for _, want := range order {
		sp, ok := stages[want]
		if !ok {
			t.Fatalf("stage %s missing: have %v", want, stages)
		}
		if sp.EndNS <= 0 || sp.EndNS < sp.StartNS {
			t.Fatalf("stage %s not closed/monotone: %+v", want, sp)
		}
		if sp.Parent != 0 {
			t.Fatalf("stage %s should parent to the root", want)
		}
	}
	for i := 1; i < len(order); i++ {
		if stages[order[i]].StartNS < stages[order[i-1]].EndNS {
			t.Fatalf("stage %s starts before %s ends", order[i], order[i-1])
		}
	}
	var records, promoted string
	for _, a := range stages["dataset_assembly"].Attrs {
		if a.Key == "records" {
			records = a.Value
		}
	}
	for _, a := range td.Spans[0].Attrs {
		if a.Key == "promoted" {
			promoted = a.Value
		}
	}
	if records == "" || records == "0" {
		t.Fatalf("dataset_assembly records attr = %q", records)
	}
	if promoted != "true" {
		t.Fatalf("root promoted attr = %q", promoted)
	}
}

// TestRejectedAttemptTrace: a rejected attempt still leaves a trace,
// without a promote stage, carrying the rejection reason.
func TestRejectedAttemptTrace(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10, MarginPct: 1e9},
		reg, ds, observationsFrom(t, incumbent, heavy))
	tracer := obs.NewTracer(obs.Config{Capacity: 8})
	c.SetTracer(tracer)

	res, err := c.RunOnce("manual")
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatal("impossible margin promoted")
	}
	got := tracer.Snapshot(obs.Filter{Kind: "retrain", Name: "manual"})
	if len(got) != 1 {
		t.Fatalf("retained %d traces", len(got))
	}
	td := got[0]
	for _, sp := range td.Spans {
		if sp.Name == "promote" {
			t.Fatal("rejected attempt recorded a promote stage")
		}
	}
	var rejection string
	for _, a := range td.Spans[0].Attrs {
		if a.Key == "rejection" {
			rejection = a.Value
		}
	}
	if rejection == "" {
		t.Fatal("rejection reason not annotated")
	}
}

// TestNilTracerAttempts: a controller without a tracer runs attempts
// unchanged (the default wiring when serve tracing is disabled).
func TestNilTracerAttempts(t *testing.T) {
	ds := testDataset(t)
	solo, heavy := split(ds)
	incumbent, err := core.Train(linearSpec(t, 1), ds, solo)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{name: "primary", model: incumbent, gen: 1}
	soloDS := *ds
	soloDS.Records = solo
	c := newController(t, Config{Model: "primary", Seed: 42, MinObservations: 10},
		reg, &soloDS, observationsFrom(t, incumbent, heavy))
	c.SetTracer(nil)
	res, err := c.RunOnce("drift")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Promoted {
		t.Fatalf("nil tracer changed the outcome: %+v", res)
	}
}
