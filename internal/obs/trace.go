package obs

import (
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"
)

// maxSpans bounds one trace's span count so a 4096-slot batch fan-out
// cannot balloon a retained trace; spans past the cap are counted in
// SpansDropped instead of recorded.
const maxSpans = 128

// maxRemotes bounds how many remote span payloads one trace can attach
// (one per proxied call; a scatter-gather touches at most one per
// backend group).
const maxRemotes = 16

// maxStitchedSpans bounds the total span count of a stitched trace
// (local spans plus all spliced remote trees).
const maxStitchedSpans = 512

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is the recorded form of one span. Times are nanosecond
// offsets from the trace start, so a span tree is self-contained and
// trivially checked for containment/monotonicity.
type SpanData struct {
	// Name is the stage name ("decode", "cache", "eval", "encode", ...).
	Name string `json:"name"`
	// Parent indexes the parent span within the trace; -1 for the root.
	Parent int `json:"parent"`
	// StartNS and EndNS are offsets from the trace start in nanoseconds.
	// EndNS is 0 for a span that never ended (a bug or a panic path).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Attrs are optional annotations (cache outcome, model name, ...).
	Attrs []Attr `json:"attrs,omitempty"`
	// Error is set when the span's stage failed.
	Error string `json:"error,omitempty"`
	// Origin names the process a stitched span came from (the backend
	// name); "" for spans recorded locally.
	Origin string `json:"origin,omitempty"`
}

// DurationNS returns the span's recorded extent.
func (s *SpanData) DurationNS() int64 { return s.EndNS - s.StartNS }

// TraceData is a completed trace: what the ring retains and what
// GET /v1/traces serves.
type TraceData struct {
	// ID is the request ID (or a minted ID for background work).
	ID string `json:"id"`
	// TraceID is the cross-process trace identity (32 hex digits),
	// shared by every hop that adopted the same traceparent.
	TraceID string `json:"trace_id,omitempty"`
	// ParentSpanID is the caller's span ID when this trace adopted an
	// incoming trace context; "" for a root trace.
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// Kind groups traces by origin: "http" or "retrain".
	Kind string `json:"kind"`
	// Name is the endpoint (http) or trigger reason (retrain).
	Name string `json:"name"`
	// Status is the HTTP status for http traces, 0 otherwise.
	Status int `json:"status,omitempty"`
	// Error marks a failed request or attempt.
	Error bool `json:"error,omitempty"`
	// Start is the wall-clock start; span offsets are relative to it.
	Start time.Time `json:"start"`
	// DurationMS is the root span's extent in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Spans is the span tree; Spans[0] is the root.
	Spans []SpanData `json:"spans"`
	// SpansDropped counts spans discarded past the per-trace cap,
	// including remote spans truncated on the wire or at stitch time.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// remoteAttach is one pending remote span payload: a backend's encoded
// tree waiting to be spliced under a local span. Payloads are decoded
// lazily at Finish, and only for retained traces, so proxying stays
// cheap when the trace is going to be skipped anyway.
type remoteAttach struct {
	parent  int
	origin  string
	payload string
}

// Trace is a live, in-progress trace. Span slots are reserved with an
// atomic counter in a fixed pooled array, so recording a span takes no
// lock: concurrent stages (batch fan-out workers) reserve distinct
// slots and then own them exclusively. Reads that span the whole array
// (ServerTiming, Finish) happen only after the recording goroutines
// have been joined — the contract every handler already satisfies.
// Only a retained trace materialises a TraceData (an immutable copy
// handed to the ring); the Trace itself is always recycled.
type Trace struct {
	tracer *Tracer
	start  time.Time
	id     string
	kind   string
	name   string

	// tc is the trace's cross-process identity, minted fresh at StartAt
	// and overwritten when AdoptContext stitches this hop under a
	// caller's trace. parentSpan holds the caller's span ID when
	// hasParent is set.
	tc         TraceContext
	parentSpan [8]byte
	hasParent  bool

	retain atomic.Bool
	// nspans counts reserved slots; values past maxSpans are drops.
	nspans atomic.Int32
	spans  [maxSpans]SpanData
	// nremotes counts reserved remote-attach slots, same discipline as
	// nspans: concurrent gather workers reserve distinct slots.
	nremotes atomic.Int32
	remotes  [maxRemotes]remoteAttach
}

// Span is a cheap handle on one recorded span (a trace pointer plus an
// index). The zero Span is a no-op, which is how spans behave when
// tracing is disabled or the trace is full.
type Span struct {
	t *Trace
	i int
}

// StartSpan opens a child of the root span. Safe on a nil trace.
func (t *Trace) StartSpan(name string) Span {
	if t == nil {
		return Span{}
	}
	return t.startSpan(name, 0)
}

// Root returns a handle on the trace's root span, so helpers that take
// a parent Span can nest directly under the request. Zero (no-op) on a
// nil trace.
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, i: 0}
}

// StartChild opens a child of this span (e.g. per-slot work under a
// batch fan-out span). Safe on the zero Span.
func (s Span) StartChild(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(name, s.i)
}

func (t *Trace) startSpan(name string, parent int) Span {
	off := int64(time.Since(t.start))
	i := int(t.nspans.Add(1)) - 1
	if i >= maxSpans {
		return Span{}
	}
	sp := &t.spans[i]
	sp.Name, sp.Parent, sp.StartNS, sp.EndNS = name, parent, off, 0
	sp.Attrs, sp.Error = nil, ""
	return Span{t: t, i: i}
}

// End closes the span, stamping its end offset.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.spans[s.i].EndNS = int64(time.Since(s.t.start))
}

// Annotate attaches a key/value attribute to the span.
func (s Span) Annotate(key, value string) {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.i]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Value: value})
}

// Record adds an already-completed child span with explicit wall-clock
// bounds — for stages measured outside the request goroutine (e.g. the
// feedback log's group-commit pipeline, which times enqueue, write and
// fsync in the committer) and attributed into this trace after the
// fact. Zero or inverted bounds are dropped; bounds before the trace
// start are clamped to it. Safe on the zero Span.
func (s Span) Record(name string, start, end time.Time) {
	if s.t == nil || start.IsZero() || end.Before(start) {
		return
	}
	i := int(s.t.nspans.Add(1)) - 1
	if i >= maxSpans {
		return
	}
	startNS := int64(start.Sub(s.t.start))
	if startNS < 0 {
		startNS = 0
	}
	endNS := int64(end.Sub(s.t.start))
	if endNS <= startNS {
		endNS = startNS + 1
	}
	sp := &s.t.spans[i]
	sp.Name, sp.Parent, sp.StartNS, sp.EndNS = name, s.i, startNS, endNS
	sp.Attrs, sp.Error = nil, ""
}

// Fail marks the span's stage as failed.
func (s Span) Fail(msg string) {
	if s.t == nil {
		return
	}
	s.t.spans[s.i].Error = msg
}

// Annotate attaches a key/value attribute to the trace's root span.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	Span{t: t, i: 0}.Annotate(key, value)
}

// Retain forces the trace into the ring at Finish regardless of the
// slow threshold (retrain attempts are rare and always worth keeping).
func (t *Trace) Retain() {
	if t == nil {
		return
	}
	t.retain.Store(true)
}

// ID returns the trace's request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// AdoptContext re-parents the trace under an incoming traceparent: the
// trace takes the caller's trace ID and sampled flag, and records the
// caller's span as its parent. Must be called at ingress, before any
// concurrent span work. Safe on a nil trace.
func (t *Trace) AdoptContext(tc TraceContext) {
	if t == nil || !tc.Valid() {
		return
	}
	t.tc.TraceID = tc.TraceID
	t.tc.Sampled = tc.Sampled
	t.parentSpan = tc.SpanID
	t.hasParent = true
}

// TraceID returns the trace's cross-process identity as 32 hex digits
// ("" on a nil trace).
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.tc.TraceIDString()
}

// OutboundContext mints the trace context to inject into one proxied
// call: the trace's identity with a fresh span ID naming that call.
// ok=false on a nil trace (tracing disabled — inject nothing).
func (t *Trace) OutboundContext() (tc TraceContext, ok bool) {
	if t == nil {
		return TraceContext{}, false
	}
	return t.tc.Child(), true
}

// AttachRemote records a backend's encoded X-Trace-Spans payload under
// this span. The payload is kept verbatim and decoded only if the trace
// is retained, so attaching costs one slot reservation on the hot path.
// Safe on the zero Span and from concurrent gather workers.
func (s Span) AttachRemote(origin, payload string) {
	if s.t == nil || payload == "" {
		return
	}
	i := int(s.t.nremotes.Add(1)) - 1
	if i >= maxRemotes {
		return
	}
	s.t.remotes[i] = remoteAttach{parent: s.i, origin: origin, payload: payload}
}

// WireSpans encodes the trace's spans recorded so far as an
// X-Trace-Spans header value. Call only after concurrent span work has
// been joined (same contract as ServerTiming); the root span is given a
// provisional end offset if still open. Returns "" on a nil trace.
func (t *Trace) WireSpans() string {
	if t == nil {
		return ""
	}
	n := int(t.nspans.Load())
	recorded := n
	if recorded > maxSpans {
		recorded = maxSpans
	}
	if t.spans[0].EndNS == 0 {
		// Finish re-stamps the real end; this keeps the shipped root
		// span well-formed for the stitcher.
		t.spans[0].EndNS = int64(time.Since(t.start))
	}
	return EncodeRemoteSpans(&RemoteSpans{
		TraceID: t.tc.TraceIDString(),
		ID:      t.id,
		Spans:   t.spans[:recorded],
		Dropped: n - recorded,
	})
}

// Finish closes the root span and hands the trace to its tracer's ring,
// which retains it if it was slow, failed, or force-retained. The trace
// must not be used after Finish. Safe on a nil trace.
func (t *Trace) Finish(status int, failed bool) {
	if t == nil {
		return
	}
	d := time.Since(t.start)
	t.spans[0].EndNS = int64(d)
	nr := int(t.nremotes.Load())
	if nr > maxRemotes {
		nr = maxRemotes
	}
	if t.retain.Load() || failed || d >= t.tracer.slow {
		n := int(t.nspans.Load())
		recorded := n
		if recorded > maxSpans {
			recorded = maxSpans
		}
		// An immutable copy goes to the ring; the live trace is recycled.
		data := &TraceData{
			ID: t.id, Kind: t.kind, Name: t.name,
			TraceID: t.tc.TraceIDString(),
			Status:  status, Error: failed,
			Start: t.start, DurationMS: float64(d) / 1e6,
			Spans:        append([]SpanData(nil), t.spans[:recorded]...),
			SpansDropped: n - recorded,
		}
		if t.hasParent {
			data.ParentSpanID = hex.EncodeToString(t.parentSpan[:])
		}
		for i := 0; i < nr; i++ {
			t.stitch(data, &t.remotes[i])
		}
		t.tracer.keep(data)
	} else {
		t.tracer.skip()
	}
	for i := 0; i < nr; i++ {
		t.remotes[i] = remoteAttach{}
	}
	tracePool.Put(t)
}

// stitch decodes one attached remote payload and splices its span tree
// under the attach span: parents are remapped into the merged index
// space, offsets are shifted to the attach span's start (each process
// records offsets from its own trace start; the proxy span's start is
// the closest shared anchor), and Origin marks the source backend. A
// payload that fails to decode or claims a different trace ID degrades
// to an annotation on the attach span.
func (t *Trace) stitch(data *TraceData, ra *remoteAttach) {
	if ra.payload == "" || ra.parent >= len(data.Spans) {
		return
	}
	anchor := &data.Spans[ra.parent]
	env, err := DecodeRemoteSpans(ra.payload)
	if err != nil {
		anchor.Attrs = append(anchor.Attrs, Attr{Key: "stitch_error", Value: err.Error()})
		return
	}
	if env.TraceID != "" && env.TraceID != data.TraceID {
		anchor.Attrs = append(anchor.Attrs, Attr{Key: "stitch_error", Value: "trace id mismatch"})
		return
	}
	base := len(data.Spans)
	take := len(env.Spans)
	if room := maxStitchedSpans - base; take > room {
		take = room
	}
	if take < 0 {
		take = 0
	}
	data.SpansDropped += env.Dropped + len(env.Spans) - take
	shift := anchor.StartNS
	for j := 0; j < take; j++ {
		sp := env.Spans[j]
		if j == 0 {
			sp.Parent = ra.parent
			if env.ID != "" {
				sp.Attrs = append(sp.Attrs, Attr{Key: "remote_id", Value: env.ID})
			}
		} else {
			sp.Parent += base
		}
		sp.StartNS += shift
		if sp.EndNS != 0 {
			sp.EndNS += shift
		}
		sp.Origin = ra.origin
		data.Spans = append(data.Spans, sp)
	}
}

// ServerTiming renders the trace's completed non-root spans as a
// Server-Timing header value ("decode;dur=0.012, cache;dur=0.003", dur
// in milliseconds), aggregating repeated stage names. Returns "" on a
// nil trace or when no span has finished.
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	// Aggregate into stack-backed arrays and format with integer
	// arithmetic (dur has millisecond units and microsecond precision,
	// so it is exactly the duration in µs with a point inserted): this
	// sits on the per-request hot path and FormatFloat is too slow.
	var nameBuf [16]string
	var durBuf [16]int64
	names, durs := nameBuf[:0], durBuf[:0]
	n := int(t.nspans.Load())
	if n > maxSpans {
		n = maxSpans
	}
	for i := 1; i < n; i++ {
		sp := &t.spans[i]
		if sp.EndNS == 0 {
			continue
		}
		j := 0
		for ; j < len(names); j++ {
			if names[j] == sp.Name {
				break
			}
		}
		if j == len(names) {
			if len(names) == cap(names) {
				break // more distinct stages than the header can carry
			}
			names = append(names, sp.Name)
			durs = append(durs, 0)
		}
		durs[j] += sp.DurationNS()
	}
	if len(names) == 0 {
		return ""
	}
	var arr [160]byte
	b := arr[:0]
	for i, n := range names {
		if i > 0 {
			b = append(b, ", "...)
		}
		b = append(b, n...)
		b = append(b, ";dur="...)
		us := (durs[i] + 500) / 1000 // round ns to µs
		b = strconv.AppendInt(b, us/1000, 10)
		b = append(b, '.', byte('0'+us/100%10), byte('0'+us/10%10), byte('0'+us%10))
	}
	return string(b)
}
