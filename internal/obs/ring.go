package obs

import (
	"sync"
	"time"
)

// Config tunes a Tracer.
type Config struct {
	// Capacity bounds the trace ring (retained traces). Default 256.
	Capacity int
	// SlowThreshold is the retention bar: traces at least this slow are
	// kept, as are failed or force-retained traces. 0 retains every
	// trace (useful for soaks and debugging; expensive in production).
	SlowThreshold time.Duration
}

// Tracer mints traces and retains recent slow/failed ones in a bounded
// ring. A nil *Tracer is a fully disabled tracer: Start returns a nil
// trace and every downstream call is a no-op.
type Tracer struct {
	slow time.Duration

	mu       sync.Mutex
	buf      []*TraceData
	next     int
	seen     uint64
	retained uint64
}

// NewTracer builds a tracer with a bounded retention ring.
func NewTracer(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	return &Tracer{slow: cfg.SlowThreshold, buf: make([]*TraceData, 0, cfg.Capacity)}
}

// SlowThreshold returns the retention bar (0 = retain everything).
func (tr *Tracer) SlowThreshold() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slow
}

// Start opens a trace. kind groups traces ("http", "retrain"), name is
// the endpoint or trigger, id the request ID. Returns nil on a nil
// tracer, and nil traces no-op everywhere, so callers never branch.
func (tr *Tracer) Start(kind, name, id string) *Trace {
	return tr.StartAt(kind, name, id, time.Now())
}

// StartAt is Start with a caller-supplied start time, for callers that
// already stamped the request's arrival (span offsets are relative to
// it).
func (tr *Tracer) StartAt(kind, name, id string, start time.Time) *Trace {
	if tr == nil {
		return nil
	}
	t := tracePool.Get().(*Trace)
	t.tracer = tr
	t.start = start
	t.id, t.kind, t.name = id, kind, name
	t.tc = NewTraceContext()
	t.parentSpan = [8]byte{}
	t.hasParent = false
	t.retain.Store(false)
	t.spans[0] = SpanData{Name: name, Parent: -1}
	t.nspans.Store(1)
	t.nremotes.Store(0)
	return t
}

// tracePool recycles live traces, so tracing a request allocates
// nothing after warm-up unless the trace is retained (which copies its
// spans into the ring).
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// keep retains one finished trace, evicting the oldest at capacity.
func (tr *Tracer) keep(data *TraceData) {
	tr.mu.Lock()
	tr.seen++
	tr.retained++
	if len(tr.buf) < cap(tr.buf) {
		tr.buf = append(tr.buf, data)
	} else {
		tr.buf[tr.next] = data
		tr.next = (tr.next + 1) % len(tr.buf)
	}
	tr.mu.Unlock()
}

// skip accounts a finished trace that did not meet the retention bar.
func (tr *Tracer) skip() {
	tr.mu.Lock()
	tr.seen++
	tr.mu.Unlock()
}

// Filter selects traces from a snapshot. Zero fields are unchecked.
type Filter struct {
	// Kind matches TraceData.Kind exactly ("http", "retrain").
	Kind string
	// Name matches the endpoint / trigger exactly.
	Name string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Limit caps the result count (newest first). 0 = no cap.
	Limit int
}

// Snapshot returns retained traces matching the filter, newest first.
// The returned TraceData values are shared and must not be mutated.
func (tr *Tracer) Snapshot(f Filter) []*TraceData {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*TraceData, 0, len(tr.buf))
	// Newest first: walk backwards from the slot before the next
	// overwrite position.
	for i := 0; i < len(tr.buf); i++ {
		j := (tr.next - 1 - i + 2*len(tr.buf)) % len(tr.buf)
		t := tr.buf[j]
		if f.Kind != "" && t.Kind != f.Kind {
			continue
		}
		if f.Name != "" && t.Name != f.Name {
			continue
		}
		if f.MinDuration > 0 && t.DurationMS < float64(f.MinDuration)/1e6 {
			continue
		}
		out = append(out, t)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Stats summarises the tracer for status endpoints.
type Stats struct {
	// Seen counts all finished traces; Retained those kept in the ring
	// over the process lifetime (retention is monotone, the ring is not).
	Seen     uint64 `json:"seen"`
	Retained uint64 `json:"retained"`
	// Capacity is the ring bound.
	Capacity int `json:"capacity"`
	// SlowThresholdMS is the retention bar in milliseconds.
	SlowThresholdMS float64 `json:"slow_threshold_ms"`
}

// Stats snapshots the tracer's counters.
func (tr *Tracer) Stats() Stats {
	if tr == nil {
		return Stats{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return Stats{
		Seen: tr.seen, Retained: tr.retained,
		Capacity:        cap(tr.buf),
		SlowThresholdMS: float64(tr.slow) / 1e6,
	}
}
