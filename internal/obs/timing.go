package obs

import (
	"strconv"
	"strings"
)

// EachServerTiming parses a Server-Timing header value as produced by
// Trace.ServerTiming ("decode;dur=0.012, cache;dur=0.003") and calls fn
// with each stage name and duration in seconds. Entries without a dur
// parameter, and malformed entries, are skipped — the header is
// advisory, never load-bearing.
func EachServerTiming(h string, fn func(stage string, seconds float64)) {
	for _, entry := range strings.Split(h, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, ";")
		if !ok {
			continue
		}
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		for _, param := range strings.Split(rest, ";") {
			k, v, ok := strings.Cut(strings.TrimSpace(param), "=")
			if !ok || strings.TrimSpace(k) != "dur" {
				continue
			}
			ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				break
			}
			fn(name, ms/1e3)
			break
		}
	}
}

// ParseServerTiming collects a Server-Timing header into a map of stage
// name to duration in seconds, summing repeated stages.
func ParseServerTiming(h string) map[string]float64 {
	out := make(map[string]float64)
	EachServerTiming(h, func(stage string, seconds float64) { out[stage] += seconds })
	return out
}

// JoinServerTiming merges Server-Timing header values, skipping empty
// parts. A gateway uses it to propagate a backend's stage breakdown
// alongside its own hop stages in one header, which clients parse back
// with EachServerTiming (repeated stage names sum).
func JoinServerTiming(parts ...string) string {
	var b strings.Builder
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p)
	}
	return b.String()
}

// ServerTimingEntry renders one Server-Timing entry ("name;dur=1.234",
// duration in milliseconds with microsecond resolution) for handlers
// that time stages without a full Tracer attached.
func ServerTimingEntry(name string, seconds float64) string {
	return name + ";dur=" + strconv.FormatFloat(seconds*1e3, 'f', 3, 64)
}
