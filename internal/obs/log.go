package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// LogFormats lists the -log-format selector values NewLogger accepts.
const LogFormats = "json, text, off"

// NewLogger builds a structured logger for a -log-format style
// selector: "json" (machine-parseable, the serving default), "text"
// (slog key=value lines), or "off" / "" (returns a nil logger, which
// the serving tier treats as logging disabled — zero hot-path cost).
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "off", "none", "":
		return nil, nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want one of: %s)", format, LogFormats)
}
