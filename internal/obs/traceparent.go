package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// TraceparentHeader is the header carrying trace context between the
// router and the backends, in the W3C Trace Context wire format:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// Only version 00 and the "sampled" flag bit are understood; anything
// else fails to parse and the hop starts a fresh trace.
const TraceparentHeader = "Traceparent"

// TraceSpansHeader carries a backend's completed span tree back to the
// router on the response (base64 of a bounded JSON envelope, gzipped
// only when that is what fits it under the wire bound, see
// EncodeRemoteSpans), so the router can stitch a cross-process tree.
const TraceSpansHeader = "X-Trace-Spans"

// TraceContext is a decoded traceparent: the trace identity shared by
// every hop plus the span the next hop should parent under.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// traceIDPrefix makes minted trace IDs process-unique the same way
// request IDs are: 8 random bytes per process, 8 counter bytes per
// trace, so minting costs one atomic add and no entropy reads.
var traceIDPrefix = func() [8]byte {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		copy(b[:], "colotrce")
	}
	return b
}()

var traceIDCounter, spanIDCounter atomic.Uint64

// NewTraceContext mints a fresh sampled trace context (a new trace ID
// and a root span ID). Cheap enough for once-per-request use.
func NewTraceContext() TraceContext {
	var tc TraceContext
	copy(tc.TraceID[:8], traceIDPrefix[:])
	binary.BigEndian.PutUint64(tc.TraceID[8:], traceIDCounter.Add(1))
	tc.SpanID = newSpanID()
	tc.Sampled = true
	return tc
}

func newSpanID() [8]byte {
	var id [8]byte
	binary.BigEndian.PutUint32(id[:4], binary.BigEndian.Uint32(traceIDPrefix[:4]))
	binary.BigEndian.PutUint32(id[4:], uint32(spanIDCounter.Add(1)))
	return id
}

// Child derives the context to inject into an outbound call: same trace
// ID and flags, fresh span ID identifying the caller's span for that
// call.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = newSpanID()
	return tc
}

// Valid reports whether the context carries a usable (non-zero) trace
// ID, per the W3C rule that an all-zero trace-id is invalid.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID ("" when invalid).
func (tc TraceContext) TraceIDString() string {
	if !tc.Valid() {
		return ""
	}
	return hex.EncodeToString(tc.TraceID[:])
}

// SpanIDString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanIDString() string {
	return hex.EncodeToString(tc.SpanID[:])
}

// Header renders the context in traceparent wire format.
func (tc TraceContext) Header() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tc.SpanID[:])
	b[52], b[53] = '-', '0'
	if tc.Sampled {
		b[54] = '1'
	} else {
		b[54] = '0'
	}
	return string(b[:])
}

// ParseTraceparent decodes a traceparent header value. It accepts only
// version 00 with the exact 55-byte layout; a malformed or all-zero
// value returns ok=false and the hop should mint its own context.
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	if !tc.Valid() || tc.SpanID == [8]byte{} {
		return TraceContext{}, false
	}
	tc.Sampled = flags[0]&1 != 0
	return tc, true
}
