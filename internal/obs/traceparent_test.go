package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("minted context is invalid")
	}
	h := tc.Header()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("bad header layout: %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected own header %q", h)
	}
	if got != tc {
		t.Fatalf("round trip mismatch: %+v != %+v", got, tc)
	}
}

func TestTraceparentUnsampled(t *testing.T) {
	tc := NewTraceContext()
	tc.Sampled = false
	if !strings.HasSuffix(tc.Header(), "-00") {
		t.Fatalf("unsampled header should end -00: %q", tc.Header())
	}
	got, ok := ParseTraceparent(tc.Header())
	if !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: ok=%v got=%+v", ok, got)
	}
}

func TestTraceparentChild(t *testing.T) {
	tc := NewTraceContext()
	c1, c2 := tc.Child(), tc.Child()
	if c1.TraceID != tc.TraceID || c2.TraceID != tc.TraceID {
		t.Fatal("child changed trace ID")
	}
	if c1.SpanID == tc.SpanID || c1.SpanID == c2.SpanID {
		t.Fatal("child span IDs must be fresh and distinct")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := NewTraceContext().Header()
	bad := []string{
		"",
		"00-abc",
		valid[:54],
		valid + "0",
		"01" + valid[2:], // unknown version
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span ID
		strings.Replace(valid, "-", "_", 1),               // bad separator
		"00-" + strings.Repeat("g", 32) + valid[35:],      // non-hex
		valid[:53] + "zz", // non-hex flags
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
}

func TestNewTraceContextUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceContext().TraceIDString()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}
