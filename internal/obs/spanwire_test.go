package obs

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"strings"
	"testing"
)

func wireSpansFixture(n int) []SpanData {
	spans := make([]SpanData, n)
	spans[0] = SpanData{Name: "http", Parent: -1, StartNS: 0, EndNS: 1000}
	for i := 1; i < n; i++ {
		spans[i] = SpanData{Name: "stage", Parent: 0, StartNS: int64(i), EndNS: int64(i + 1)}
	}
	return spans
}

func TestRemoteSpansRoundTrip(t *testing.T) {
	in := &RemoteSpans{
		TraceID: NewTraceContext().TraceIDString(),
		ID:      "req-1",
		Spans: []SpanData{
			{Name: "http", Parent: -1, StartNS: 0, EndNS: 5000, Attrs: []Attr{{Key: "k", Value: "v"}}},
			{Name: "decode", Parent: 0, StartNS: 10, EndNS: 20},
			{Name: "eval", Parent: 0, StartNS: 30, EndNS: 400, Error: "boom"},
		},
	}
	enc := EncodeRemoteSpans(in)
	if enc == "" {
		t.Fatal("encode returned empty")
	}
	out, err := DecodeRemoteSpans(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.TraceID != in.TraceID || out.ID != in.ID || out.Dropped != 0 {
		t.Fatalf("envelope fields mismatch: %+v", out)
	}
	if len(out.Spans) != len(in.Spans) {
		t.Fatalf("span count %d != %d", len(out.Spans), len(in.Spans))
	}
	for i := range in.Spans {
		a, b := in.Spans[i], out.Spans[i]
		if a.Name != b.Name || a.Parent != b.Parent || a.StartNS != b.StartNS || a.EndNS != b.EndNS || a.Error != b.Error {
			t.Fatalf("span %d mismatch: %+v != %+v", i, a, b)
		}
	}
}

func TestEncodeRemoteSpansTruncatesToWireBound(t *testing.T) {
	// Bloat every span with incompressible padding (a cheap LCG keeps it
	// deterministic) so the full tree cannot fit the wire bound even
	// after gzip.
	spans := wireSpansFixture(maxSpans)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range spans {
		pad := make([]byte, 0, 400)
		for len(pad) < 400 {
			state = state*6364136223846793005 + 1442695040888963407
			pad = append(pad, "abcdefghijklmnopqrstuvwxyz012345"[state>>59])
		}
		spans[i].Attrs = []Attr{{Key: "pad", Value: string(pad)}}
	}
	enc := EncodeRemoteSpans(&RemoteSpans{Spans: spans})
	if enc == "" {
		t.Fatal("encode gave up entirely")
	}
	if len(enc) > maxWireEncoded {
		t.Fatalf("encoded length %d exceeds bound %d", len(enc), maxWireEncoded)
	}
	out, err := DecodeRemoteSpans(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Dropped == 0 || len(out.Spans)+out.Dropped != maxSpans {
		t.Fatalf("truncation not accounted: kept=%d dropped=%d", len(out.Spans), out.Dropped)
	}
	// A truncated prefix must still be a valid tree (checked by decode),
	// and the root must survive.
	if out.Spans[0].Parent != -1 {
		t.Fatal("root lost in truncation")
	}
}

func TestSmallTreesShipUncompressed(t *testing.T) {
	// A tree that fits the wire bound raw must skip gzip — the hot path
	// ships one of these per traced slow request — and a gzip-format
	// payload must still decode, so the two encodings coexist on the wire.
	env := &RemoteSpans{ID: "req-1", Spans: wireSpansFixture(8)}
	enc := EncodeRemoteSpans(env)
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[0] != '{' {
		t.Fatalf("small tree not shipped as raw JSON (starts with %q)", raw[:min(len(raw), 2)])
	}
	if _, err := DecodeRemoteSpans(enc); err != nil {
		t.Fatalf("raw form does not decode: %v", err)
	}

	js, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(js); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRemoteSpans(base64.StdEncoding.EncodeToString(buf.Bytes()))
	if err != nil {
		t.Fatalf("gzip form does not decode: %v", err)
	}
	if len(out.Spans) != len(env.Spans) || out.ID != env.ID {
		t.Fatalf("gzip round trip mismatch: %+v", out)
	}
}

func TestDecodeRemoteSpansRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"!!!not-base64!!!",
		"aGVsbG8=", // valid base64, not gzip
		strings.Repeat("A", maxWireEncoded+1),
	}
	for _, s := range cases {
		if _, err := DecodeRemoteSpans(s); err == nil {
			t.Errorf("decode accepted %q...", s[:min(len(s), 16)])
		}
	}
}

func TestDecodeRemoteSpansRejectsBadTree(t *testing.T) {
	bad := [][]SpanData{
		{{Name: "root", Parent: 0}},                           // root must be -1
		{{Name: "root", Parent: -1}, {Name: "x", Parent: 1}},  // self-parent
		{{Name: "root", Parent: -1}, {Name: "x", Parent: 5}},  // forward ref
		{{Name: "root", Parent: -1}, {Name: "x", Parent: -2}}, // negative non-root
	}
	for i, spans := range bad {
		enc := encodeEnvelope(&RemoteSpans{Spans: spans})
		if enc == "" {
			t.Fatalf("case %d: encode failed", i)
		}
		if _, err := DecodeRemoteSpans(enc); err == nil {
			t.Errorf("case %d: bad tree accepted", i)
		}
	}
}
