package obs

import "testing"

func BenchmarkTraceEnvelope(b *testing.B) {
	tr := NewTracer(Config{Capacity: 256, SlowThreshold: 1 << 40})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := tr.Start("http", "predict", "bench-id")
		sp := t.StartSpan("decode")
		sp.End()
		sp = t.Root().StartChild("cache")
		sp.End()
		_ = t.ServerTiming()
		sp = t.StartSpan("encode")
		sp.End()
		t.Finish(200, false)
	}
}
