package obs

import (
	"testing"
	"time"
)

// backendTrace simulates a coloserve hop: adopt the router's outbound
// context, record handler stages, ship them back on the wire.
func backendTrace(t *testing.T, tc TraceContext) string {
	t.Helper()
	tr := NewTracer(Config{Capacity: 4}) // SlowThreshold 0: retain all
	bt := tr.Start("http", "predict", "backend-req")
	bt.AdoptContext(tc)
	for _, stage := range []string{"decode", "cache", "eval", "encode"} {
		sp := bt.StartSpan(stage)
		sp.End()
	}
	wire := bt.WireSpans()
	if wire == "" {
		t.Fatal("backend WireSpans empty")
	}
	bt.Finish(200, false)
	// The backend's own retained trace records the adopted identity.
	snap := tr.Snapshot(Filter{})
	if len(snap) != 1 {
		t.Fatalf("backend retained %d traces", len(snap))
	}
	if snap[0].TraceID != tc.TraceIDString() {
		t.Fatalf("backend trace ID %s != adopted %s", snap[0].TraceID, tc.TraceIDString())
	}
	if snap[0].ParentSpanID != tc.SpanIDString() {
		t.Fatalf("backend parent span %s != caller span %s", snap[0].ParentSpanID, tc.SpanIDString())
	}
	return wire
}

func TestTraceStitchAcrossProcesses(t *testing.T) {
	router := NewTracer(Config{Capacity: 4})
	rt := router.Start("http", "predict", "router-req")

	route := rt.StartSpan("route")
	route.End()
	proxy := rt.StartSpan("proxy")
	proxy.Annotate("backend", "b0")

	out, ok := rt.OutboundContext()
	if !ok {
		t.Fatal("no outbound context on live trace")
	}
	if out.TraceID != [16]byte(mustParse(t, rt.TraceID())) {
		t.Fatal("outbound context trace ID differs from trace's own")
	}
	wire := backendTrace(t, out)
	proxy.AttachRemote("b0", wire)
	proxy.End()
	rt.Finish(200, false)

	snap := router.Snapshot(Filter{})
	if len(snap) != 1 {
		t.Fatalf("router retained %d traces", len(snap))
	}
	td := snap[0]
	if td.TraceID == "" || td.ParentSpanID != "" {
		t.Fatalf("router trace identity wrong: %+v", td)
	}
	// Local spans: root, route, proxy. Remote: http + 4 stages.
	if len(td.Spans) != 3+5 {
		t.Fatalf("stitched span count %d, want 8: %+v", len(td.Spans), td.Spans)
	}
	remoteRoot := td.Spans[3]
	if remoteRoot.Origin != "b0" || remoteRoot.Parent != 2 {
		t.Fatalf("remote root not spliced under proxy span: %+v", remoteRoot)
	}
	if !hasAttr(remoteRoot.Attrs, "remote_id", "backend-req") {
		t.Fatalf("remote root missing remote_id attr: %+v", remoteRoot.Attrs)
	}
	stages := map[string]bool{}
	for _, sp := range td.Spans[4:] {
		if sp.Origin != "b0" {
			t.Fatalf("remote span lost origin: %+v", sp)
		}
		if sp.Parent != 3 {
			t.Fatalf("remote child parent %d not remapped to remote root: %+v", sp.Parent, sp)
		}
		if sp.StartNS < td.Spans[2].StartNS {
			t.Fatalf("remote span not shifted to proxy anchor: %+v", sp)
		}
		stages[sp.Name] = true
	}
	for _, want := range []string{"decode", "cache", "eval", "encode"} {
		if !stages[want] {
			t.Fatalf("stitched tree missing backend stage %q", want)
		}
	}
}

func TestStitchRejectsForeignTrace(t *testing.T) {
	router := NewTracer(Config{Capacity: 4})
	rt := router.Start("http", "predict", "r")
	proxy := rt.StartSpan("proxy")
	// Backend answers with a context from a different trace.
	wire := backendTrace(t, NewTraceContext())
	proxy.AttachRemote("b0", wire)
	proxy.End()
	rt.Finish(200, false)
	td := router.Snapshot(Filter{})[0]
	if len(td.Spans) != 2 {
		t.Fatalf("foreign spans were stitched: %d spans", len(td.Spans))
	}
	if !hasAttr(td.Spans[1].Attrs, "stitch_error", "trace id mismatch") {
		t.Fatalf("missing stitch_error annotation: %+v", td.Spans[1].Attrs)
	}
}

func TestStitchBadPayloadAnnotates(t *testing.T) {
	router := NewTracer(Config{Capacity: 4})
	rt := router.Start("http", "predict", "r")
	proxy := rt.StartSpan("proxy")
	proxy.AttachRemote("b0", "corrupt-payload")
	proxy.End()
	rt.Finish(200, false)
	td := router.Snapshot(Filter{})[0]
	if len(td.Spans) != 2 {
		t.Fatalf("corrupt payload grew the tree: %d spans", len(td.Spans))
	}
	found := false
	for _, a := range td.Spans[1].Attrs {
		if a.Key == "stitch_error" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing stitch_error attr: %+v", td.Spans[1].Attrs)
	}
}

func TestStitchSkippedTracePaysNoDecode(t *testing.T) {
	// A trace under the slow bar is skipped: remotes must be cleared and
	// the pooled trace reusable without leaking prior payloads.
	router := NewTracer(Config{Capacity: 4, SlowThreshold: time.Hour})
	rt := router.Start("http", "predict", "r")
	sp := rt.StartSpan("proxy")
	sp.AttachRemote("b0", "never-decoded-so-not-an-error")
	sp.End()
	rt.Finish(200, false)
	if got := len(router.Snapshot(Filter{})); got != 0 {
		t.Fatalf("trace unexpectedly retained: %d", got)
	}
}

func mustParse(t *testing.T, traceID string) [16]byte {
	t.Helper()
	tc, ok := ParseTraceparent("00-" + traceID + "-00000000000000ff-01")
	if !ok {
		t.Fatalf("bad trace id %q", traceID)
	}
	return tc.TraceID
}

func hasAttr(attrs []Attr, key, value string) bool {
	for _, a := range attrs {
		if a.Key == key && a.Value == value {
			return true
		}
	}
	return false
}
