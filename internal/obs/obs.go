// Package obs is the serving stack's observability core, stdlib-only:
//
//   - Request identity: process-unique request IDs minted at ingress and
//     carried through context.Context so every layer (registry, cache,
//     adaptation, retraining) can stamp its logs and spans with the
//     request that caused the work.
//   - Structured logging: log/slog constructors keyed by a -log-format
//     style selector (json / text / off), so request logs are machine-
//     parseable by default.
//   - Span tracing: a lightweight start/finish tracer recording
//     per-stage timings (decode → cache → eval → encode, batch fan-out,
//     observation ingest, drift checks, retrain attempt stages) as a
//     tree of spans with parent links and attributes.
//   - Trace retention: a bounded ring keeping recent slow or failed
//     traces for GET /v1/traces, so "why was that request slow" is
//     answerable after the fact without a profiler attached.
//   - Server-Timing interchange: completed span timings render into the
//     standard Server-Timing response header, which the loadgen harness
//     parses back into a per-stage latency breakdown.
//
// Everything is nil-safe: a nil *Tracer or nil *Trace makes every
// tracing call a no-op, so disabled observability costs a pointer test
// on the hot path.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// reqPrefix makes request IDs process-unique so IDs minted by different
// server instances do not collide in aggregated logs. It falls back to
// a fixed prefix only if the system's entropy source is unreadable.
var reqPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000-"
	}
	return hex.EncodeToString(b[:]) + "-"
}()

var reqCounter atomic.Uint64

// NewRequestID mints a process-unique request identifier: a random
// per-process prefix plus a monotone counter. It is cheap enough to
// call once per request on the hot path.
func NewRequestID() string {
	return reqPrefix + strconv.FormatUint(reqCounter.Add(1), 36)
}

// reqState is the single context value the observability layer plants
// at ingress: the request ID plus the live trace (nil when tracing is
// disabled). One allocation covers both.
type reqState struct {
	id string
	tr *Trace
}

type ctxKey struct{}

// NewContext returns ctx carrying the request ID and (possibly nil)
// trace for downstream layers.
func NewContext(ctx context.Context, id string, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, &reqState{id: id, tr: tr})
}

// RequestID returns the request ID planted at ingress, or "" when the
// context carries none (e.g. internal work not tied to a request).
func RequestID(ctx context.Context) string {
	if s, ok := ctx.Value(ctxKey{}).(*reqState); ok {
		return s.id
	}
	return ""
}

// TraceFrom returns the live trace carried by ctx, or nil. A nil trace
// is safe to use: all span operations on it are no-ops.
func TraceFrom(ctx context.Context) *Trace {
	if s, ok := ctx.Value(ctxKey{}).(*reqState); ok {
		return s.tr
	}
	return nil
}
