package obs

import (
	"strings"
	"testing"
	"time"
)

// sloT0 is an arbitrary fixed clock origin aligned to a bucket edge so
// window-boundary assertions are exact.
func sloT0(width time.Duration) time.Time {
	return time.Unix(0, int64(width)*1_000_000)
}

func closeTo(got, want float64) bool {
	d := got - want
	return d < 1e-9 && d > -1e-9
}

func newTestSLO() *SLOTracker {
	return NewSLOTracker(SLOConfig{
		Objective:   0.99, // budget 0.01
		ShortWindow: time.Minute,
		LongWindow:  10 * time.Minute,
		BucketWidth: 10 * time.Second,
		WarnBurn:    2,
		PageBurn:    10,
	})
}

func TestSLOBurnRateMath(t *testing.T) {
	tr := newTestSLO()
	now := sloT0(10 * time.Second)
	for i := 0; i < 99; i++ {
		tr.ObserveAt(now, time.Millisecond, false)
	}
	tr.ObserveAt(now, time.Millisecond, true)
	st := tr.StatusAt(now)
	// 1% bad over a 1% budget = burn rate 1, in both windows.
	if !closeTo(st.Short.BurnRate, 1) || !closeTo(st.Long.BurnRate, 1) {
		t.Fatalf("burn rates %v / %v, want 1 / 1", st.Short.BurnRate, st.Long.BurnRate)
	}
	if st.Short.Good != 99 || st.Short.Bad != 1 || st.Long.Good != 99 || st.Long.Bad != 1 {
		t.Fatalf("window counts wrong: %+v", st)
	}
	if st.State != "ok" {
		t.Fatalf("state %q, want ok at burn 1 (< warn 2)", st.State)
	}
}

func TestSLOLatencyTargetCountsAsBad(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objective: 0.9, LatencyTarget: 100 * time.Millisecond})
	now := sloT0(tr.Config().BucketWidth)
	tr.ObserveAt(now, 50*time.Millisecond, false)  // good
	tr.ObserveAt(now, 100*time.Millisecond, false) // good: boundary inclusive
	tr.ObserveAt(now, 101*time.Millisecond, false) // bad: too slow
	tr.ObserveAt(now, 50*time.Millisecond, true)   // bad: failed
	st := tr.StatusAt(now)
	if st.Short.Good != 2 || st.Short.Bad != 2 {
		t.Fatalf("good/bad = %d/%d, want 2/2", st.Short.Good, st.Short.Bad)
	}
}

func TestSLOWindowBoundaryExpiry(t *testing.T) {
	tr := newTestSLO()
	width := 10 * time.Second
	t0 := sloT0(width)
	tr.ObserveAt(t0, time.Millisecond, true) // one bad in bucket at t0

	// Short window is 6 buckets. From bucket t0+5w the observation is
	// still in the short window; at t0+6w it ages out of short but stays
	// in long.
	st := tr.StatusAt(t0.Add(5 * width))
	if st.Short.Bad != 1 {
		t.Fatalf("bad aged out of short window too early: %+v", st.Short)
	}
	st = tr.StatusAt(t0.Add(6 * width))
	if st.Short.Bad != 0 {
		t.Fatalf("bad survived past the short window: %+v", st.Short)
	}
	if st.Long.Bad != 1 {
		t.Fatalf("bad missing from long window: %+v", st.Long)
	}

	// Long window is 60 buckets: present at +59w, gone at +60w.
	st = tr.StatusAt(t0.Add(59 * width))
	if st.Long.Bad != 1 {
		t.Fatalf("bad aged out of long window too early: %+v", st.Long)
	}
	st = tr.StatusAt(t0.Add(60 * width))
	if st.Long.Bad != 0 || st.Long.Good != 0 {
		t.Fatalf("observation survived past the long window: %+v", st.Long)
	}
}

func TestSLOBucketReuseZeroesStaleCounts(t *testing.T) {
	tr := newTestSLO()
	width := 10 * time.Second
	t0 := sloT0(width)
	tr.ObserveAt(t0, time.Millisecond, true)
	// One full ring rotation later the same slot is reused for a new
	// epoch; the stale bad count must not bleed into the new bucket.
	later := t0.Add(time.Duration(tr.nbuckets) * width)
	tr.ObserveAt(later, time.Millisecond, false)
	st := tr.StatusAt(later)
	if st.Long.Bad != 0 || st.Long.Good != 1 {
		t.Fatalf("stale counts leaked through slot reuse: %+v", st.Long)
	}
}

func TestSLOStateTransitions(t *testing.T) {
	tr := newTestSLO()
	now := sloT0(10 * time.Second)
	// 100% bad: burn = 1/0.01 = 100 in both windows -> page.
	for i := 0; i < 10; i++ {
		tr.ObserveAt(now, time.Millisecond, true)
	}
	if st := tr.StatusAt(now); st.State != "page" {
		t.Fatalf("state %q, want page (burn %v)", st.State, st.Short.BurnRate)
	}
	// Dilute with good traffic to land between warn (2) and page (10):
	// 10 bad / 200 total = 5% bad -> burn 5.
	for i := 0; i < 190; i++ {
		tr.ObserveAt(now, time.Millisecond, false)
	}
	if st := tr.StatusAt(now); st.State != "warn" {
		t.Fatalf("state %q, want warn (burn %v)", st.State, st.Short.BurnRate)
	}
	// Dilute further below warn: 10/1000 = 1% -> burn 1.
	for i := 0; i < 800; i++ {
		tr.ObserveAt(now, time.Millisecond, false)
	}
	if st := tr.StatusAt(now); st.State != "ok" {
		t.Fatalf("state %q, want ok (burn %v)", st.State, st.Short.BurnRate)
	}
}

func TestSLOPageNeedsBothWindows(t *testing.T) {
	tr := newTestSLO()
	width := 10 * time.Second
	t0 := sloT0(width)
	// A large good history in the long window, then a short burst of
	// errors: the short window pages but the long window stays low, so
	// the verdict must not be page.
	for i := 0; i < 5000; i++ {
		tr.ObserveAt(t0, time.Millisecond, false)
	}
	burst := t0.Add(8 * width)
	for i := 0; i < 20; i++ {
		tr.ObserveAt(burst, time.Millisecond, true)
	}
	st := tr.StatusAt(burst)
	if st.Short.BurnRate < tr.Config().PageBurn {
		t.Fatalf("test setup: short burn %v should exceed page", st.Short.BurnRate)
	}
	if st.Long.BurnRate >= tr.Config().PageBurn {
		t.Fatalf("test setup: long burn %v should stay below page", st.Long.BurnRate)
	}
	if st.State == "page" {
		t.Fatal("paged on a short-window blip alone")
	}
}

func TestSLOEmptyAndNil(t *testing.T) {
	tr := newTestSLO()
	st := tr.StatusAt(sloT0(10 * time.Second))
	if st.State != "ok" || st.Short.BurnRate != 0 {
		t.Fatalf("empty tracker not ok: %+v", st)
	}
	var nilTr *SLOTracker
	nilTr.Observe(time.Millisecond, true) // must not panic
	if got := nilTr.StatusAt(time.Now()); got.State != "disabled" {
		t.Fatalf("nil tracker state %q", got.State)
	}
	var sb strings.Builder
	nilTr.WriteSLOMetrics(&sb, "x")
	if sb.Len() != 0 {
		t.Fatal("nil tracker wrote metrics")
	}
}

func TestSLOMetricsRender(t *testing.T) {
	tr := newTestSLO()
	tr.Observe(time.Millisecond, true)
	var sb strings.Builder
	tr.WriteSLOMetrics(&sb, "colorouter")
	out := sb.String()
	for _, want := range []string{
		"colorouter_slo_objective 0.99",
		`colorouter_slo_burn_rate{window="1m0s"}`,
		`colorouter_slo_burn_rate{window="10m0s"}`,
		`colorouter_slo_bad_total{window="1m0s"} 1`,
		"colorouter_slo_state",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}
