package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRequestIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := NewRequestID()
		if id == "" {
			t.Fatal("empty request ID")
		}
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, reqPrefix) {
			t.Fatalf("ID %q missing process prefix %q", id, reqPrefix)
		}
	}
}

func TestNewRequestIDConcurrent(t *testing.T) {
	const workers, per = 8, 1000
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]string, per)
			for i := range ids[w] {
				ids[w][i] = NewRequestID()
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[string]bool, workers*per)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate request ID %q under concurrency", id)
			}
			seen[id] = true
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	bg := context.Background()
	if got := RequestID(bg); got != "" {
		t.Fatalf("RequestID on bare context = %q, want empty", got)
	}
	if TraceFrom(bg) != nil {
		t.Fatal("TraceFrom on bare context should be nil")
	}
	tr := NewTracer(Config{}).Start("http", "predict", "rid-1")
	ctx := NewContext(bg, "rid-1", tr)
	if got := RequestID(ctx); got != "rid-1" {
		t.Fatalf("RequestID = %q, want rid-1", got)
	}
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not return the planted trace")
	}
	// A nil trace in the context is fine (tracing disabled).
	ctx = NewContext(bg, "rid-2", nil)
	if TraceFrom(ctx) != nil {
		t.Fatal("TraceFrom should return the nil trace unchanged")
	}
	if got := RequestID(ctx); got != "rid-2" {
		t.Fatalf("RequestID = %q, want rid-2", got)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", 0)
	if err != nil || lg == nil {
		t.Fatalf("json logger: %v", err)
	}
	lg.Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line is not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("json log line missing fields: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", 0)
	if err != nil || lg == nil {
		t.Fatalf("text logger: %v", err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "msg=hello") || !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text log line malformed: %q", buf.String())
	}

	for _, off := range []string{"off", "none", ""} {
		lg, err = NewLogger(&buf, off, 0)
		if err != nil || lg != nil {
			t.Fatalf("format %q: logger=%v err=%v, want nil/nil", off, lg, err)
		}
	}
	if _, err = NewLogger(&buf, "yaml", 0); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestNilSafety(t *testing.T) {
	// Every call on a nil tracer / nil trace / zero span must be a no-op.
	var tr *Tracer
	if tr.SlowThreshold() != 0 {
		t.Fatal("nil tracer slow threshold")
	}
	if got := tr.Snapshot(Filter{}); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if s := tr.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", s)
	}
	trace := tr.Start("http", "predict", "id")
	if trace != nil {
		t.Fatal("nil tracer minted a trace")
	}
	sp := trace.StartSpan("decode")
	sp.Annotate("k", "v")
	sp.Fail("boom")
	child := sp.StartChild("inner")
	child.End()
	sp.End()
	trace.Annotate("k", "v")
	trace.Retain()
	if trace.ID() != "" {
		t.Fatal("nil trace ID")
	}
	if trace.ServerTiming() != "" {
		t.Fatal("nil trace server timing")
	}
	trace.Finish(200, false) // must not panic
}

func TestSpanTree(t *testing.T) {
	tracer := NewTracer(Config{Capacity: 4}) // slow=0: retain everything
	trace := tracer.Start("http", "predict", "rid-7")
	if trace.ID() != "rid-7" {
		t.Fatalf("trace ID = %q", trace.ID())
	}

	dec := trace.StartSpan("decode")
	time.Sleep(time.Millisecond)
	dec.End()
	fan := trace.StartSpan("fanout")
	fan.Annotate("slots", "2")
	slot := fan.StartChild("eval")
	time.Sleep(time.Millisecond)
	slot.End()
	fan.End()
	trace.Annotate("model", "m6")
	trace.Finish(200, false)

	got := tracer.Snapshot(Filter{})
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	td := got[0]
	if td.Kind != "http" || td.Name != "predict" || td.Status != 200 || td.Error {
		t.Fatalf("trace metadata wrong: %+v", td)
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (root, decode, fanout, eval)", len(td.Spans))
	}
	root := td.Spans[0]
	if root.Parent != -1 || root.Name != "predict" {
		t.Fatalf("root span wrong: %+v", root)
	}
	if len(root.Attrs) != 1 || root.Attrs[0] != (Attr{Key: "model", Value: "m6"}) {
		t.Fatalf("root attrs wrong: %+v", root.Attrs)
	}
	byName := map[string]SpanData{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	if byName["decode"].Parent != 0 || byName["fanout"].Parent != 0 {
		t.Fatal("decode/fanout should parent to the root")
	}
	evalIdx := -1
	for i, sp := range td.Spans {
		if sp.Name == "eval" {
			evalIdx = i
		}
	}
	if td.Spans[evalIdx].Parent == 0 || td.Spans[td.Spans[evalIdx].Parent].Name != "fanout" {
		t.Fatalf("eval should parent to fanout, got parent %d", td.Spans[evalIdx].Parent)
	}
	// Timing invariants: every span is contained in its parent's extent
	// and monotone (End >= Start); the root covers the whole trace.
	for i, sp := range td.Spans {
		if sp.EndNS < sp.StartNS {
			t.Fatalf("span %s ends before it starts: %+v", sp.Name, sp)
		}
		if sp.Parent >= 0 {
			p := td.Spans[sp.Parent]
			if sp.StartNS < p.StartNS || sp.EndNS > p.EndNS {
				t.Fatalf("span %d (%s) [%d,%d] escapes parent %s [%d,%d]",
					i, sp.Name, sp.StartNS, sp.EndNS, p.Name, p.StartNS, p.EndNS)
			}
		}
	}
	if td.DurationMS <= 0 || int64(td.DurationMS*1e6) < root.EndNS-1e3 {
		t.Fatalf("duration %.3fms inconsistent with root span %dns", td.DurationMS, root.EndNS)
	}
}

func TestTraceRetentionRules(t *testing.T) {
	tracer := NewTracer(Config{Capacity: 8, SlowThreshold: time.Hour})

	fast := tracer.Start("http", "predict", "fast")
	fast.Finish(200, false) // under the bar, clean: dropped

	failed := tracer.Start("http", "predict", "failed")
	failed.Finish(500, true) // failed: kept

	forced := tracer.Start("retrain", "drift", "forced")
	forced.Retain()
	forced.Finish(0, false) // forced: kept

	got := tracer.Snapshot(Filter{})
	if len(got) != 2 {
		t.Fatalf("retained %d, want 2 (failed + forced)", len(got))
	}
	// Newest first.
	if got[0].ID != "forced" || got[1].ID != "failed" {
		t.Fatalf("order wrong: %s, %s", got[0].ID, got[1].ID)
	}
	st := tracer.Stats()
	if st.Seen != 3 || st.Retained != 2 || st.Capacity != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SlowThresholdMS != float64(time.Hour)/1e6 {
		t.Fatalf("slow threshold ms = %g", st.SlowThresholdMS)
	}
}

func TestRingEviction(t *testing.T) {
	tracer := NewTracer(Config{Capacity: 4})
	for i := 0; i < 10; i++ {
		tr := tracer.Start("http", "predict", fmt.Sprintf("id-%d", i))
		tr.Finish(200, false)
	}
	got := tracer.Snapshot(Filter{})
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(got))
	}
	for i, td := range got {
		want := fmt.Sprintf("id-%d", 9-i)
		if td.ID != want {
			t.Fatalf("slot %d = %s, want %s (newest first)", i, td.ID, want)
		}
	}
	st := tracer.Stats()
	if st.Seen != 10 || st.Retained != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSnapshotFilter(t *testing.T) {
	tracer := NewTracer(Config{Capacity: 16})
	for i := 0; i < 3; i++ {
		tr := tracer.Start("http", "predict", fmt.Sprintf("p%d", i))
		tr.Finish(200, false)
	}
	tr := tracer.Start("http", "schedule", "s0")
	tr.Finish(200, false)
	tr = tracer.Start("retrain", "drift", "r0")
	tr.Finish(0, false)

	if got := tracer.Snapshot(Filter{Kind: "retrain"}); len(got) != 1 || got[0].ID != "r0" {
		t.Fatalf("kind filter: %v", got)
	}
	if got := tracer.Snapshot(Filter{Name: "schedule"}); len(got) != 1 || got[0].ID != "s0" {
		t.Fatalf("name filter: %v", got)
	}
	if got := tracer.Snapshot(Filter{Name: "predict", Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: got %d", len(got))
	}
	// MinDuration well above any test trace filters everything out.
	if got := tracer.Snapshot(Filter{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter kept %d", len(got))
	}
}

func TestSpanCap(t *testing.T) {
	tracer := NewTracer(Config{Capacity: 2})
	trace := tracer.Start("http", "batch", "big")
	for i := 0; i < maxSpans+50; i++ {
		sp := trace.StartSpan("slot")
		sp.End()
	}
	trace.Finish(200, false)
	got := tracer.Snapshot(Filter{})
	if len(got) != 1 {
		t.Fatalf("retained %d", len(got))
	}
	if len(got[0].Spans) != maxSpans {
		t.Fatalf("span count %d, want cap %d", len(got[0].Spans), maxSpans)
	}
	if got[0].SpansDropped != 51 { // root consumed one slot
		t.Fatalf("dropped %d, want 51", got[0].SpansDropped)
	}
}

func TestConcurrentSpans(t *testing.T) {
	// Batch fan-out workers record spans into one trace concurrently;
	// run with -race to make this meaningful.
	tracer := NewTracer(Config{Capacity: 2})
	trace := tracer.Start("http", "batch", "conc")
	fan := trace.StartSpan("fanout")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				sp := fan.StartChild("eval")
				sp.Annotate("w", "x")
				sp.End()
			}
		}()
	}
	wg.Wait()
	fan.End()
	trace.Finish(200, false)
	got := tracer.Snapshot(Filter{})
	if len(got) != 1 {
		t.Fatalf("retained %d", len(got))
	}
	recorded := len(got[0].Spans) + got[0].SpansDropped
	if recorded != 82 { // root + fanout + 80 slots
		t.Fatalf("spans+dropped = %d, want 82", recorded)
	}
}

func TestServerTimingRoundTrip(t *testing.T) {
	tracer := NewTracer(Config{Capacity: 2})
	trace := tracer.Start("http", "predict", "st")
	dec := trace.StartSpan("decode")
	time.Sleep(2 * time.Millisecond)
	dec.End()
	ch := trace.StartSpan("cache")
	ch.End()
	ch2 := trace.StartSpan("cache") // repeated stage: durations aggregate
	ch2.End()
	open := trace.StartSpan("eval") // never ended: excluded
	_ = open

	h := trace.ServerTiming()
	if h == "" {
		t.Fatal("empty Server-Timing")
	}
	if strings.Contains(h, "eval") {
		t.Fatalf("unfinished span leaked into header: %q", h)
	}
	stages := ParseServerTiming(h)
	if len(stages) != 2 {
		t.Fatalf("parsed %d stages from %q, want 2", len(stages), h)
	}
	if stages["decode"] < 0.002 {
		t.Fatalf("decode %gs, want >= 2ms", stages["decode"])
	}
	if _, ok := stages["cache"]; !ok {
		t.Fatalf("cache stage missing from %q", h)
	}
	trace.Finish(200, false)
}

func TestEachServerTimingMalformed(t *testing.T) {
	cases := []struct {
		in   string
		want map[string]float64
	}{
		{"", nil},
		{"decode;dur=1.5", map[string]float64{"decode": 0.0015}},
		{"decode;dur=1.5, cache;dur=0.25", map[string]float64{"decode": 0.0015, "cache": 0.00025}},
		{"a;dur=1, a;dur=2", map[string]float64{"a": 0.003}},
		{"noentry, ;dur=1, bad;dur=zzz, ok;desc=x;dur=4", map[string]float64{"ok": 0.004}},
		{"spaced ; dur = 2", map[string]float64{"spaced": 0.002}},
	}
	for _, tc := range cases {
		got := ParseServerTiming(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.in, got, tc.want)
		}
		for k, v := range tc.want {
			if math.Abs(got[k]-v) > 1e-12 {
				t.Fatalf("%q: stage %s = %g, want %g", tc.in, k, got[k], v)
			}
		}
	}
}

func TestConcurrentTracerUse(t *testing.T) {
	// Many goroutines finishing traces while others snapshot — the ring
	// must stay bounded and race-free.
	tracer := NewTracer(Config{Capacity: 8})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := tracer.Start("http", "predict", fmt.Sprintf("w%d-%d", w, i))
				sp := tr.StartSpan("decode")
				sp.End()
				tr.Finish(200, i%10 == 0)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tracer.Snapshot(Filter{Limit: 4})
			tracer.Stats()
		}
	}()
	wg.Wait()
	if got := tracer.Snapshot(Filter{}); len(got) > 8 {
		t.Fatalf("ring exceeded capacity: %d", len(got))
	}
	if st := tracer.Stats(); st.Seen != 200 {
		t.Fatalf("seen %d, want 200", st.Seen)
	}
}
