package obs

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// RemoteSpans is the envelope a backend ships to its caller in the
// X-Trace-Spans response header: the span tree it recorded for one
// request, tagged with the trace ID it adopted so the caller can verify
// the tree belongs to its trace before stitching.
type RemoteSpans struct {
	// TraceID is the 32-hex-digit trace ID the backend adopted.
	TraceID string `json:"trace_id,omitempty"`
	// ID is the backend's request ID, kept so stitched spans stay
	// attributable to the backend's own logs and trace ring.
	ID string `json:"id,omitempty"`
	// Spans is the tree in TraceData order (Spans[0] is the backend's
	// root; parents always precede children).
	Spans []SpanData `json:"spans"`
	// Dropped counts spans truncated to fit the wire bound.
	Dropped int `json:"dropped,omitempty"`
}

// Wire bounds: the encoded header value is capped so a deep span tree
// cannot bloat every response, and the decoder refuses payloads that
// inflate past a sanity bound (the header comes from our own backends,
// but the router should survive a confused or hostile one).
const (
	maxWireEncoded = 8 << 10  // max len of the base64 header value
	maxWireDecoded = 64 << 10 // max inflated JSON size accepted
	maxWireSpans   = maxSpans // per-envelope span cap on decode
)

// gzipPool recycles gzip writers (their window buffers dominate the
// cost of compression setup) so encoding a span tree allocates little.
var gzipPool = sync.Pool{New: func() any {
	zw, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
	return zw
}}

// EncodeRemoteSpans renders the envelope as gzip+base64 for the
// X-Trace-Spans header. If the encoding exceeds the wire bound the span
// list is truncated (parents precede children, so a prefix is still a
// valid tree) and Dropped is set. Returns "" if the envelope cannot be
// brought under the bound at all.
func EncodeRemoteSpans(rs *RemoteSpans) string {
	if rs == nil || len(rs.Spans) == 0 {
		return ""
	}
	total := len(rs.Spans)
	for keep := total; keep >= 1; keep /= 2 {
		env := RemoteSpans{TraceID: rs.TraceID, ID: rs.ID, Spans: rs.Spans[:keep], Dropped: rs.Dropped + total - keep}
		if keep == total {
			env.Dropped = rs.Dropped
		}
		if s := encodeEnvelope(&env); len(s) > 0 && len(s) <= maxWireEncoded {
			return s
		}
	}
	return ""
}

func encodeEnvelope(env *RemoteSpans) string {
	raw, err := json.Marshal(env)
	if err != nil {
		return ""
	}
	// Plain base64(JSON) when it already fits: gzip exists to squeeze
	// deep trees under the wire bound, and costs tens of microseconds
	// per call — too much for a header shipped on every traced request.
	// The decoder tells the formats apart by the gzip magic bytes (JSON
	// always starts with '{').
	if base64.StdEncoding.EncodedLen(len(raw)) <= maxWireEncoded {
		return base64.StdEncoding.EncodeToString(raw)
	}
	var buf bytes.Buffer
	buf.Grow(len(raw)/3 + 64)
	zw := gzipPool.Get().(*gzip.Writer)
	zw.Reset(&buf)
	_, werr := zw.Write(raw)
	cerr := zw.Close()
	gzipPool.Put(zw)
	if werr != nil || cerr != nil {
		return ""
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// DecodeRemoteSpans parses an X-Trace-Spans header value. It enforces
// the wire bounds and basic tree sanity (parents precede children) so a
// bad payload degrades to an error, never a corrupt stitched trace.
func DecodeRemoteSpans(s string) (*RemoteSpans, error) {
	if s == "" {
		return nil, errors.New("obs: empty span payload")
	}
	if len(s) > maxWireEncoded {
		return nil, errors.New("obs: span payload exceeds wire bound")
	}
	zipped, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	raw := zipped
	if len(zipped) >= 2 && zipped[0] == 0x1f && zipped[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(zipped))
		if err != nil {
			return nil, err
		}
		raw, err = io.ReadAll(io.LimitReader(zr, maxWireDecoded+1))
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
	}
	if len(raw) > maxWireDecoded {
		return nil, errors.New("obs: span payload inflates past bound")
	}
	var env RemoteSpans
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, err
	}
	if len(env.Spans) > maxWireSpans {
		env.Dropped += len(env.Spans) - maxWireSpans
		env.Spans = env.Spans[:maxWireSpans]
	}
	for i := range env.Spans {
		if p := env.Spans[i].Parent; p >= i || (i == 0 && p != -1) || (i > 0 && p < 0) {
			return nil, errors.New("obs: span payload is not a valid tree")
		}
	}
	return &env, nil
}
