package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// SLOConfig tunes an SLOTracker.
type SLOConfig struct {
	// Objective is the good-request fraction target in (0,1), e.g.
	// 0.999. The error budget is 1-Objective. Default 0.999.
	Objective float64
	// LatencyTarget makes latency part of the objective: a request is
	// good only if it finished within the target AND did not fail. 0
	// means errors alone burn budget.
	LatencyTarget time.Duration
	// ShortWindow and LongWindow are the two burn-rate windows (the
	// classic fast/slow pair). Defaults 5m and 1h.
	ShortWindow, LongWindow time.Duration
	// BucketWidth is the ring's time-bucket granularity. Default 10s.
	// Both windows are rounded up to whole buckets.
	BucketWidth time.Duration
	// WarnBurn and PageBurn are burn-rate thresholds (1.0 = burning the
	// budget exactly as fast as the objective allows over the window).
	// A state fires only when BOTH windows exceed its threshold, so a
	// long-past incident (long window still high) or a brief blip
	// (short window spike) alone does not page. Defaults 2 and 10.
	WarnBurn, PageBurn float64
}

func (c *SLOConfig) applyDefaults() {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = time.Hour
	}
	if c.LongWindow < c.ShortWindow {
		c.LongWindow = c.ShortWindow
	}
	if c.BucketWidth <= 0 {
		c.BucketWidth = 10 * time.Second
	}
	if c.BucketWidth > c.ShortWindow {
		c.BucketWidth = c.ShortWindow
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.PageBurn <= c.WarnBurn {
		c.PageBurn = 10
		if c.PageBurn <= c.WarnBurn {
			c.PageBurn = c.WarnBurn * 2
		}
	}
}

// sloBucket is one time bucket of good/bad counts. epoch is the bucket
// sequence number (unix time / width) the counts belong to; a bucket is
// lazily re-zeroed when its slot is reused for a new epoch.
type sloBucket struct {
	epoch     atomic.Int64
	good, bad atomic.Uint64
}

// SLOTracker measures SLO burn rate over a lock-free ring of time
// buckets. Observe is wait-free on the hot path: locate the current
// bucket by epoch, CAS it forward if the slot is stale, add one
// counter. The CAS loser of a bucket turnover may drop that single
// observation — tolerable for telemetry, and single-threaded use (as in
// tests) is exact. A nil tracker no-ops everywhere.
type SLOTracker struct {
	cfg      SLOConfig
	budget   float64 // 1 - objective
	nbuckets int
	buckets  []sloBucket
}

// NewSLOTracker builds a tracker; zero config fields take defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg.applyDefaults()
	n := int((cfg.LongWindow + cfg.BucketWidth - 1) / cfg.BucketWidth)
	// One extra slot so the oldest in-window bucket is not reused by the
	// current epoch mid-read.
	n++
	return &SLOTracker{
		cfg:      cfg,
		budget:   1 - cfg.Objective,
		nbuckets: n,
		buckets:  make([]sloBucket, n),
	}
}

// Config returns the tracker's resolved configuration.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// Observe records one request outcome at the current time.
func (t *SLOTracker) Observe(d time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.ObserveAt(time.Now(), d, failed)
}

// ObserveAt is Observe with an explicit clock, for deterministic tests.
func (t *SLOTracker) ObserveAt(now time.Time, d time.Duration, failed bool) {
	if t == nil {
		return
	}
	good := !failed && (t.cfg.LatencyTarget <= 0 || d <= t.cfg.LatencyTarget)
	epoch := now.UnixNano() / int64(t.cfg.BucketWidth)
	b := &t.buckets[int(epoch%int64(t.nbuckets))]
	if e := b.epoch.Load(); e != epoch {
		if b.epoch.CompareAndSwap(e, epoch) {
			b.good.Store(0)
			b.bad.Store(0)
		}
	}
	if good {
		b.good.Add(1)
	} else {
		b.bad.Add(1)
	}
}

// SLOWindow is one window's aggregated counts and burn rate.
type SLOWindow struct {
	// Window is the nominal width ("5m0s", "1h0m0s" rendered by caller).
	Window time.Duration `json:"window_ns"`
	Good   uint64        `json:"good"`
	Bad    uint64        `json:"bad"`
	// BurnRate is (bad/total)/(1-objective); 0 when the window is empty.
	// 1.0 means the error budget is being consumed exactly at the rate
	// the objective allows.
	BurnRate float64 `json:"burn_rate"`
}

// SLOStatus is the tracker's verdict: per-window burn plus an
// ok|warn|page state.
type SLOStatus struct {
	Objective     float64   `json:"objective"`
	LatencyTarget float64   `json:"latency_target_ms,omitempty"`
	Short         SLOWindow `json:"short"`
	Long          SLOWindow `json:"long"`
	// State is "ok", "warn" or "page".
	State string `json:"state"`
}

// Status computes the current verdict.
func (t *SLOTracker) Status() SLOStatus {
	return t.StatusAt(time.Now())
}

// StatusAt is Status with an explicit clock, for deterministic tests.
// A bucket counts toward a window when its epoch lies within the last
// window/width epochs including the current (partial) one, so the
// effective horizon is [window-width, window) behind now — boundaries
// land exactly on bucket edges.
func (t *SLOTracker) StatusAt(now time.Time) SLOStatus {
	if t == nil {
		return SLOStatus{State: "disabled"}
	}
	nowEpoch := now.UnixNano() / int64(t.cfg.BucketWidth)
	shortN := int64((t.cfg.ShortWindow + t.cfg.BucketWidth - 1) / t.cfg.BucketWidth)
	longN := int64((t.cfg.LongWindow + t.cfg.BucketWidth - 1) / t.cfg.BucketWidth)
	var st SLOStatus
	st.Objective = t.cfg.Objective
	st.LatencyTarget = float64(t.cfg.LatencyTarget) / 1e6
	st.Short.Window = t.cfg.ShortWindow
	st.Long.Window = t.cfg.LongWindow
	for i := range t.buckets {
		b := &t.buckets[i]
		e := b.epoch.Load()
		age := nowEpoch - e
		if age < 0 || age >= longN {
			continue
		}
		good, bad := b.good.Load(), b.bad.Load()
		st.Long.Good += good
		st.Long.Bad += bad
		if age < shortN {
			st.Short.Good += good
			st.Short.Bad += bad
		}
	}
	st.Short.BurnRate = t.burn(st.Short.Good, st.Short.Bad)
	st.Long.BurnRate = t.burn(st.Long.Good, st.Long.Bad)
	switch {
	case st.Short.BurnRate >= t.cfg.PageBurn && st.Long.BurnRate >= t.cfg.PageBurn:
		st.State = "page"
	case st.Short.BurnRate >= t.cfg.WarnBurn && st.Long.BurnRate >= t.cfg.WarnBurn:
		st.State = "warn"
	default:
		st.State = "ok"
	}
	return st
}

func (t *SLOTracker) burn(good, bad uint64) float64 {
	total := good + bad
	if total == 0 || t.budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / t.budget
}

// sloStateValue maps a verdict to its gauge encoding (0 ok, 1 warn,
// 2 page).
func sloStateValue(state string) int {
	switch state {
	case "warn":
		return 1
	case "page":
		return 2
	default:
		return 0
	}
}

// WriteSLOMetrics renders the tracker's verdict as Prometheus gauges
// under the given metric prefix ("coloserve", "colorouter"):
// <prefix>_slo_objective, _slo_burn_rate{window=}, _slo_good_total /
// _slo_bad_total{window=} (window-scoped gauges, not counters — they
// fall as buckets expire), and _slo_state (0 ok / 1 warn / 2 page).
// No-op on a nil tracker.
func (t *SLOTracker) WriteSLOMetrics(w io.Writer, prefix string) {
	if t == nil {
		return
	}
	st := t.Status()
	fmt.Fprintf(w, "# HELP %s_slo_objective Configured good-request fraction objective.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_slo_objective gauge\n", prefix)
	fmt.Fprintf(w, "%s_slo_objective %g\n", prefix, st.Objective)
	fmt.Fprintf(w, "# HELP %s_slo_burn_rate Error-budget burn rate per alert window (1 = exactly on budget).\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_slo_burn_rate gauge\n", prefix)
	fmt.Fprintf(w, "%s_slo_burn_rate{window=%q} %g\n", prefix, st.Short.Window.String(), st.Short.BurnRate)
	fmt.Fprintf(w, "%s_slo_burn_rate{window=%q} %g\n", prefix, st.Long.Window.String(), st.Long.BurnRate)
	fmt.Fprintf(w, "# HELP %s_slo_good_total Good requests in each alert window.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_slo_good_total gauge\n", prefix)
	fmt.Fprintf(w, "%s_slo_good_total{window=%q} %d\n", prefix, st.Short.Window.String(), st.Short.Good)
	fmt.Fprintf(w, "%s_slo_good_total{window=%q} %d\n", prefix, st.Long.Window.String(), st.Long.Good)
	fmt.Fprintf(w, "# HELP %s_slo_bad_total Bad requests in each alert window.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_slo_bad_total gauge\n", prefix)
	fmt.Fprintf(w, "%s_slo_bad_total{window=%q} %d\n", prefix, st.Short.Window.String(), st.Short.Bad)
	fmt.Fprintf(w, "%s_slo_bad_total{window=%q} %d\n", prefix, st.Long.Window.String(), st.Long.Bad)
	fmt.Fprintf(w, "# HELP %s_slo_state SLO verdict: 0 ok, 1 warn, 2 page.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_slo_state gauge\n", prefix)
	fmt.Fprintf(w, "%s_slo_state %d\n", prefix, sloStateValue(st.State))
}
