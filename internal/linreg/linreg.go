// Package linreg implements the linear modeling technique of Section
// III-C: a least-squares fit of Eq. 1,
//
//	co-located execution time = Σ coefficientᵢ · featureᵢ + constant,
//
// solved by Householder QR (the stand-in for SciPy's linear least squares
// used by the paper).
package linreg

import (
	"fmt"

	"colocmodel/internal/linalg"
)

// Model is a fitted linear predictor.
type Model struct {
	// Coefficients holds one weight per feature, in feature order.
	Coefficients []float64
	// Constant is the intercept term of Eq. 1.
	Constant float64
}

// Fit trains a linear model on the design matrix x (samples × features)
// and labels y by ordinary least squares with an intercept column.
func Fit(x *linalg.Matrix, y []float64) (*Model, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d labels", x.Rows, len(y))
	}
	if x.Rows < x.Cols+1 {
		return nil, fmt.Errorf("linreg: %d samples insufficient for %d features plus intercept", x.Rows, x.Cols)
	}
	// Augment with the intercept column.
	aug := linalg.NewMatrix(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		copy(aug.Data[i*aug.Cols:], x.Data[i*x.Cols:(i+1)*x.Cols])
		aug.Data[i*aug.Cols+x.Cols] = 1
	}
	w, err := linalg.LeastSquares(aug, y)
	if err != nil {
		return nil, err
	}
	return &Model{Coefficients: w[:x.Cols], Constant: w[x.Cols]}, nil
}

// Predict evaluates Eq. 1 for one feature vector.
func (m *Model) Predict(features []float64) (float64, error) {
	if len(features) != len(m.Coefficients) {
		return 0, fmt.Errorf("linreg: %d features, model has %d coefficients", len(features), len(m.Coefficients))
	}
	out := m.Constant
	for i, f := range features {
		out += m.Coefficients[i] * f
	}
	return out, nil
}

// PredictBatch evaluates the model for every row of x.
func (m *Model) PredictBatch(x *linalg.Matrix) ([]float64, error) {
	if x.Cols != len(m.Coefficients) {
		return nil, fmt.Errorf("linreg: matrix has %d columns, model has %d coefficients", x.Cols, len(m.Coefficients))
	}
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		v, err := m.Predict(x.Data[i*x.Cols : (i+1)*x.Cols])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// NumFeatures returns the model's feature arity.
func (m *Model) NumFeatures() int { return len(m.Coefficients) }
