// Package linreg implements the linear modeling technique of Section
// III-C: a least-squares fit of Eq. 1,
//
//	co-located execution time = Σ coefficientᵢ · featureᵢ + constant,
//
// solved by Householder QR (the stand-in for SciPy's linear least squares
// used by the paper).
package linreg

import (
	"fmt"

	"colocmodel/internal/linalg"
)

// Model is a fitted linear predictor.
type Model struct {
	// Coefficients holds one weight per feature, in feature order.
	Coefficients []float64
	// Constant is the intercept term of Eq. 1.
	Constant float64
}

// Fit trains a linear model on the design matrix x (samples × features)
// and labels y by ordinary least squares with an intercept column. Each
// call uses a private Fitter; callers fitting many models (bootstrap
// partitions, retrain attempts) should hold a Fitter to reuse its scratch.
func Fit(x *linalg.Matrix, y []float64) (*Model, error) {
	var f Fitter
	return f.Fit(x, y)
}

// Fitter fits linear models while reusing its augmented design matrix and
// Householder QR scratch across calls, so repeated fits (the evaluation
// protocol trains hundreds) allocate only the returned Model. A Fitter is
// not goroutine-safe; keep one per worker.
type Fitter struct {
	aug linalg.Matrix
	qr  linalg.QRWorkspace
	sol []float64
}

// Fit trains a model on x and y, reusing the Fitter's scratch. The
// returned Model owns its coefficients and stays valid after further fits.
func (f *Fitter) Fit(x *linalg.Matrix, y []float64) (*Model, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d labels", x.Rows, len(y))
	}
	if x.Rows < x.Cols+1 {
		return nil, fmt.Errorf("linreg: %d samples insufficient for %d features plus intercept", x.Rows, x.Cols)
	}
	// Augment with the intercept column.
	rows, cols := x.Rows, x.Cols+1
	if cap(f.aug.Data) < rows*cols {
		f.aug.Data = make([]float64, rows*cols)
	}
	f.aug.Rows, f.aug.Cols = rows, cols
	f.aug.Data = f.aug.Data[:rows*cols]
	for i := 0; i < rows; i++ {
		copy(f.aug.Data[i*cols:], x.Data[i*x.Cols:(i+1)*x.Cols])
		f.aug.Data[i*cols+x.Cols] = 1
	}
	if cap(f.sol) < cols {
		f.sol = make([]float64, cols)
	}
	f.sol = f.sol[:cols]
	if err := f.qr.LeastSquares(&f.aug, y, f.sol); err != nil {
		return nil, err
	}
	w := append([]float64(nil), f.sol...)
	return &Model{Coefficients: w[:x.Cols], Constant: w[x.Cols]}, nil
}

// Predict evaluates Eq. 1 for one feature vector.
func (m *Model) Predict(features []float64) (float64, error) {
	if len(features) != len(m.Coefficients) {
		return 0, fmt.Errorf("linreg: %d features, model has %d coefficients", len(features), len(m.Coefficients))
	}
	out := m.Constant
	for i, f := range features {
		out += m.Coefficients[i] * f
	}
	return out, nil
}

// PredictBatch evaluates the model for every row of x.
func (m *Model) PredictBatch(x *linalg.Matrix) ([]float64, error) {
	out := make([]float64, x.Rows)
	if err := m.PredictBatchInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto evaluates the model for every row of x into out without
// allocating. Each row's sum starts at the constant and adds coefficient
// terms in feature order — the same order Predict uses, so results are
// bit-identical to the per-row path.
func (m *Model) PredictBatchInto(x *linalg.Matrix, out []float64) error {
	if x.Cols != len(m.Coefficients) {
		return fmt.Errorf("linreg: matrix has %d columns, model has %d coefficients", x.Cols, len(m.Coefficients))
	}
	if len(out) != x.Rows {
		return fmt.Errorf("linreg: output length %d for %d rows", len(out), x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		s := m.Constant
		for j, f := range row {
			s += m.Coefficients[j] * f
		}
		out[i] = s
	}
	return nil
}

// NumFeatures returns the model's feature arity.
func (m *Model) NumFeatures() int { return len(m.Coefficients) }
