package linreg

import (
	"testing"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

func randomProblem(src *xrand.Source, rows, cols int) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = src.Normal(0, 1)
	}
	y := make([]float64, rows)
	for i := range y {
		y[i] = src.Normal(0, 2)
	}
	return x, y
}

// A reused Fitter must produce the same model as a fresh package-level
// Fit, bit-for-bit, regardless of what shapes it fitted before.
func TestFitterMatchesFitAcrossShapes(t *testing.T) {
	src := xrand.New(42)
	var f Fitter
	shapes := []struct{ rows, cols int }{
		{30, 4}, {8, 2}, {120, 7}, {5, 1}, {30, 4}, {64, 3},
	}
	for _, sh := range shapes {
		x, y := randomProblem(src, sh.rows, sh.cols)
		got, err := f.Fit(x, y)
		if err != nil {
			t.Fatalf("%dx%d: Fitter.Fit: %v", sh.rows, sh.cols, err)
		}
		want, err := Fit(x, y)
		if err != nil {
			t.Fatalf("%dx%d: Fit: %v", sh.rows, sh.cols, err)
		}
		if got.Constant != want.Constant {
			t.Fatalf("%dx%d: constant %v != %v", sh.rows, sh.cols, got.Constant, want.Constant)
		}
		for j := range want.Coefficients {
			if got.Coefficients[j] != want.Coefficients[j] {
				t.Fatalf("%dx%d: coef %d: %v != %v", sh.rows, sh.cols, j, got.Coefficients[j], want.Coefficients[j])
			}
		}
	}
}

// The model returned by a Fitter must own its coefficients: fitting again
// with the same Fitter must not mutate previously returned models.
func TestFitterModelsIndependent(t *testing.T) {
	src := xrand.New(7)
	var f Fitter
	x1, y1 := randomProblem(src, 40, 3)
	m1, err := f.Fit(x1, y1)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]float64(nil), m1.Coefficients...)
	snapC := m1.Constant
	x2, y2 := randomProblem(src, 25, 5)
	if _, err := f.Fit(x2, y2); err != nil {
		t.Fatal(err)
	}
	if m1.Constant != snapC {
		t.Fatalf("constant mutated by later fit: %v != %v", m1.Constant, snapC)
	}
	for j := range snap {
		if m1.Coefficients[j] != snap[j] {
			t.Fatalf("coef %d mutated by later fit", j)
		}
	}
}

func TestFitterValidation(t *testing.T) {
	var f Fitter
	x := linalg.NewMatrix(3, 2)
	if _, err := f.Fit(x, []float64{1, 2}); err == nil {
		t.Fatal("want row/label mismatch error")
	}
	small := linalg.NewMatrix(2, 2)
	if _, err := f.Fit(small, []float64{1, 2}); err == nil {
		t.Fatal("want insufficient-samples error (2 rows, 2 features + intercept)")
	}
}

// PredictBatchInto must agree bit-for-bit with per-row Predict and with
// the allocating PredictBatch.
func TestPredictBatchIntoMatchesPredict(t *testing.T) {
	src := xrand.New(11)
	x, y := randomProblem(src, 50, 4)
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{0, 1, 33} {
		q := linalg.NewMatrix(rows, 4)
		for i := range q.Data {
			q.Data[i] = src.Normal(0, 3)
		}
		out := make([]float64, rows)
		if err := m.PredictBatchInto(q, out); err != nil {
			t.Fatal(err)
		}
		batch, err := m.PredictBatch(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			want, err := m.Predict(q.Data[i*q.Cols : (i+1)*q.Cols])
			if err != nil {
				t.Fatal(err)
			}
			if out[i] != want || batch[i] != want {
				t.Fatalf("rows=%d i=%d: into=%v batch=%v scalar=%v", rows, i, out[i], batch[i], want)
			}
		}
	}
	if err := m.PredictBatchInto(linalg.NewMatrix(2, 3), make([]float64, 2)); err == nil {
		t.Fatal("want column mismatch error")
	}
	if err := m.PredictBatchInto(linalg.NewMatrix(2, 4), make([]float64, 3)); err == nil {
		t.Fatal("want output length error")
	}
}
