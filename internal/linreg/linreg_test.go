package linreg

import (
	"math"
	"testing"
	"testing/quick"

	"colocmodel/internal/linalg"
	"colocmodel/internal/xrand"
)

func TestFitRecoversKnownCoefficients(t *testing.T) {
	src := xrand.New(1)
	n, d := 100, 3
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	want := []float64{2, -1, 0.5}
	const c = 7.0
	for i := 0; i < n; i++ {
		s := c
		for j := 0; j < d; j++ {
			v := src.Normal(0, 1)
			x.Set(i, j, v)
			s += want[j] * v
		}
		y[i] = s
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(m.Coefficients[j]-want[j]) > 1e-8 {
			t.Fatalf("coef %d = %v, want %v", j, m.Coefficients[j], want[j])
		}
	}
	if math.Abs(m.Constant-c) > 1e-8 {
		t.Fatalf("constant = %v, want %v", m.Constant, c)
	}
	if m.NumFeatures() != 3 {
		t.Fatal("NumFeatures wrong")
	}
}

func TestFitErrors(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	if _, err := Fit(x, []float64{1, 2}); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, err := Fit(linalg.NewMatrix(2, 2), []float64{1, 2}); err == nil {
		t.Fatal("underdetermined system accepted")
	}
}

func TestPredictErrors(t *testing.T) {
	m := &Model{Coefficients: []float64{1, 2}, Constant: 3}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("short feature vector accepted")
	}
	if _, err := m.PredictBatch(linalg.NewMatrix(2, 3)); err == nil {
		t.Fatal("wrong-width matrix accepted")
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	m := &Model{Coefficients: []float64{1.5, -2}, Constant: 0.5}
	x := linalg.NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	batch, err := m.PredictBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		single, err := m.Predict(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if single != batch[i] {
			t.Fatalf("row %d: %v vs %v", i, single, batch[i])
		}
	}
}

func TestFitWithNoiseApproximates(t *testing.T) {
	src := xrand.New(2)
	n := 2000
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := src.Uniform(0, 10)
		x.Set(i, 0, v)
		y[i] = 3*v + 1 + src.Normal(0, 0.5)
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coefficients[0]-3) > 0.05 || math.Abs(m.Constant-1) > 0.15 {
		t.Fatalf("noisy fit = %+v", m)
	}
}

// Property: the fitted model is invariant to the order of samples.
func TestFitOrderInvariantProperty(t *testing.T) {
	f := func(seed uint16) bool {
		src := xrand.New(uint64(seed) + 11)
		n := 30
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []float64{src.Normal(0, 1), src.Normal(0, 1)}
			y[i] = 2*rows[i][0] - rows[i][1] + 4 + src.Normal(0, 0.01)
		}
		m1, err := Fit(linalg.NewMatrixFromRows(rows), y)
		if err != nil {
			return false
		}
		perm := src.Perm(n)
		rows2 := make([][]float64, n)
		y2 := make([]float64, n)
		for i, p := range perm {
			rows2[i] = rows[p]
			y2[i] = y[p]
		}
		m2, err := Fit(linalg.NewMatrixFromRows(rows2), y2)
		if err != nil {
			return false
		}
		for j := range m1.Coefficients {
			if math.Abs(m1.Coefficients[j]-m2.Coefficients[j]) > 1e-8 {
				return false
			}
		}
		return math.Abs(m1.Constant-m2.Constant) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFit2000x8(b *testing.B) {
	src := xrand.New(3)
	n, d := 2000, 8
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, src.Normal(0, 1))
		}
		y[i] = src.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
