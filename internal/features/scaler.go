package features

import (
	"fmt"
	"math"

	"colocmodel/internal/linalg"
)

// Scaler standardises feature columns to zero mean and unit variance.
// Neural-network training is sensitive to feature magnitudes (baseExTime
// is hundreds of seconds while targetMem is ~1e-5), so inputs and the
// label are standardised before training and predictions are mapped back.
type Scaler struct {
	// Mean and Std are per-column statistics fitted on training data.
	Mean []float64
	Std  []float64
}

// FitScaler computes per-column statistics of x.
func FitScaler(x *linalg.Matrix) *Scaler {
	s := &Scaler{Mean: make([]float64, x.Cols), Std: make([]float64, x.Cols)}
	n := float64(x.Rows)
	for j := 0; j < x.Cols; j++ {
		sum := 0.0
		for i := 0; i < x.Rows; i++ {
			sum += x.At(i, j)
		}
		s.Mean[j] = sum / n
		ss := 0.0
		for i := 0; i < x.Rows; i++ {
			d := x.At(i, j) - s.Mean[j]
			ss += d * d
		}
		std := 0.0
		if x.Rows > 1 {
			std = ss / (n - 1)
		}
		if std > 0 {
			s.Std[j] = math.Sqrt(std)
		} else {
			// Constant column: leave it centred but unscaled.
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardised copy of x.
func (s *Scaler) Transform(x *linalg.Matrix) (*linalg.Matrix, error) {
	if x.Cols != len(s.Mean) {
		return nil, fmt.Errorf("features: scaler fitted on %d columns, got %d", len(s.Mean), x.Cols)
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			out.Set(i, j, (out.At(i, j)-s.Mean[j])/s.Std[j])
		}
	}
	return out, nil
}

// TransformVec standardises a single feature vector.
func (s *Scaler) TransformVec(v []float64) ([]float64, error) {
	if len(v) != len(s.Mean) {
		return nil, fmt.Errorf("features: scaler fitted on %d columns, got %d", len(s.Mean), len(v))
	}
	out := make([]float64, len(v))
	for j := range v {
		out[j] = (v[j] - s.Mean[j]) / s.Std[j]
	}
	return out, nil
}

// VecScaler standardises a scalar label stream.
type VecScaler struct {
	Mean, Std float64
}

// FitVecScaler computes mean/std of y.
func FitVecScaler(y []float64) *VecScaler {
	n := float64(len(y))
	if n == 0 {
		return &VecScaler{Mean: 0, Std: 1}
	}
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	mean := sum / n
	ss := 0.0
	for _, v := range y {
		d := v - mean
		ss += d * d
	}
	std := 1.0
	if n > 1 && ss > 0 {
		std = math.Sqrt(ss / (n - 1))
	}
	return &VecScaler{Mean: mean, Std: std}
}

// Transform standardises y into a new slice.
func (s *VecScaler) Transform(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = (v - s.Mean) / s.Std
	}
	return out
}

// Inverse maps a standardised value back to the original scale.
func (s *VecScaler) Inverse(v float64) float64 { return v*s.Std + s.Mean }
